"""Packaging for the repro library (src/ layout).

Metadata is declared here rather than in a ``[project]`` table so that
editable installs work on old setuptools too (offline environments
without ``wheel``); ``pyproject.toml`` carries only the build-system
pin.  After ``pip install -e .`` the package imports without manual
``PYTHONPATH`` and the CLI is available as ``repro`` (equivalent to
``python -m repro``).
"""

from setuptools import find_packages, setup

setup(
    name="repro-election-advice",
    version="0.2.0",
    description=(
        "Reproduction of Dieudonné & Pelc, 'Impact of Knowledge on Election "
        "Time in Anonymous Networks' (SPAA 2017): leader election with "
        "advice, lower-bound constructions, and a parallel experiment engine"
    ),
    package_dir={"": "src"},
    packages=find_packages(where="src"),
    python_requires=">=3.9",
    install_requires=["networkx"],
    extras_require={
        "dev": ["pytest", "hypothesis", "pytest-benchmark", "pytest-cov"],
    },
    entry_points={
        "console_scripts": ["repro=repro.cli:main"],
    },
)
