"""The service result cache: LRU tier, persistence tier, store warming."""

import json
import random

import pytest

from repro.engine import ResultStore, run_stream
from repro.engine.records import record_to_json
from repro.engine.tasks import get_task
from repro.errors import ServiceError
from repro.graphs import (
    canonical_form,
    canonical_graph,
    graph_fingerprint,
    random_tree,
    relabel_nodes,
    ring,
)
from repro.service.cache import (
    ResultCache,
    canonical_query_name,
    warm_from_stores,
)


def rec(i):
    return {"task": "index", "name": f"r{i}", "n": i}


class TestLRUTier:
    def test_get_put_contains(self):
        cache = ResultCache()
        key = ("fp0", "index")
        assert cache.get(key) is None
        cache.put(key, rec(0))
        assert key in cache and cache.get(key) == rec(0)
        assert len(cache) == 1 and cache.persisted == 0

    def test_eviction_is_lru(self):
        cache = ResultCache(capacity=2)
        a, b, c = (("a", "t"), ("b", "t"), ("c", "t"))
        cache.put(a, rec(1))
        cache.put(b, rec(2))
        cache.get(a)  # refresh: b is now least recent
        cache.put(c, rec(3))
        assert a in cache and c in cache and b not in cache

    def test_capacity_zero_never_retains(self):
        cache = ResultCache(capacity=0)
        cache.put(("a", "t"), rec(1))
        assert cache.get(("a", "t")) is None and len(cache) == 0

    def test_negative_capacity_rejected(self):
        with pytest.raises(ServiceError):
            ResultCache(capacity=-1)


class TestPersistenceTier:
    def test_roundtrip(self, tmp_path):
        import os

        path = str(tmp_path / "cache.jsonl")
        with ResultCache(path=path) as cache:
            cache.put(("fp1", "index"), rec(1))
            cache.put(("fp2", "elect"), rec(2))
            assert cache.persisted == 2
            # the offset index mirrors the bytes actually on disk (the
            # append handle must not translate newlines on any OS)
            assert cache._append_end == os.path.getsize(path)
            assert set(cache._offsets.values()) < {0, cache._append_end} | {
                cache._offsets[("fp2", "elect")]
            }
        with ResultCache(path=path) as cache:
            assert cache.get(("fp1", "index")) == rec(1)
            assert cache.get(("fp2", "elect")) == rec(2)
            assert cache.persisted == 2
            # offsets recorded at load time match the ones at write time
            for key in (("fp1", "index"), ("fp2", "elect")):
                assert key in cache._offsets

    def test_put_is_idempotent_on_disk(self, tmp_path):
        path = str(tmp_path / "cache.jsonl")
        with ResultCache(path=path) as cache:
            for _ in range(3):
                cache.put(("fp1", "index"), rec(1))
        assert sum(1 for _ in open(path)) == 1

    def test_memory_tier_keeps_most_recent_of_big_file(self, tmp_path):
        path = str(tmp_path / "cache.jsonl")
        with ResultCache(path=path) as cache:
            for i in range(10):
                cache.put((f"fp{i}", "index"), rec(i))
        with ResultCache(path=path, capacity=3) as cache:
            assert len(cache) == 3 and cache.persisted == 10
            assert cache.get(("fp9", "index")) == rec(9)

    def test_eviction_falls_back_to_the_disk_tier(self, tmp_path):
        """An LRU eviction must never cost a recompute: the offset index
        re-reads the entry's line and promotes it back into the LRU."""
        path = str(tmp_path / "cache.jsonl")
        with ResultCache(path=path, capacity=2) as cache:
            for i in range(5):
                cache.put((f"fp{i}", "index"), rec(i))
            assert len(cache) == 2  # fp0..fp2 evicted from memory
            assert cache.get(("fp0", "index")) == rec(0)  # disk fallback
            assert ("fp0", "index") in cache
            # the promotion is a real LRU insert: fp0 is now resident
            assert cache._entries[("fp0", "index")] == rec(0)
        # same across a reopen with a tiny memory tier
        with ResultCache(path=path, capacity=1) as cache:
            for i in range(5):
                assert cache.get((f"fp{i}", "index")) == rec(i)

    def test_evicted_entries_never_recompute_through_the_core(self, tmp_path):
        from repro.service import ServiceCore

        g = random_tree(11, seed=4)
        cache = ResultCache(path=str(tmp_path / "c.jsonl"), capacity=1)
        core = ServiceCore(cache)
        first = core.query("index", g)
        core.query("quotient", g)  # evicts the index entry from memory
        again = core.query("index", g)
        assert again.cached and again.record == first.record
        core.close()

    def test_torn_tail_repaired(self, tmp_path):
        path = str(tmp_path / "cache.jsonl")
        with ResultCache(path=path) as cache:
            cache.put(("fp1", "index"), rec(1))
            cache.put(("fp2", "index"), rec(2))
        with open(path, "a", encoding="utf-8") as fh:
            fh.write('{"fingerprint": "fp3", "tas')  # kill mid-write
        with ResultCache(path=path) as cache:
            assert cache.persisted == 2
            cache.put(("fp4", "index"), rec(4))
        lines = [json.loads(l) for l in open(path) if l.strip()]
        assert [e["fingerprint"] for e in lines] == ["fp1", "fp2", "fp4"]

    def test_interior_corruption_raises(self, tmp_path):
        path = str(tmp_path / "cache.jsonl")
        with ResultCache(path=path) as cache:
            cache.put(("fp1", "index"), rec(1))
        data = open(path).read()
        with open(path, "w", encoding="utf-8") as fh:
            fh.write("NOT JSON\n" + data)
        with pytest.raises(ServiceError, match="corrupt at line 1"):
            ResultCache(path=path)

    def test_non_entry_line_rejected(self, tmp_path):
        path = str(tmp_path / "cache.jsonl")
        with open(path, "w", encoding="utf-8") as fh:
            fh.write('{"fingerprint": "x", "task": "t"}\n')  # no record
            fh.write('{"fingerprint": "y", "task": "t", "record": {}}\n')
        with pytest.raises(ServiceError, match="corrupt at line 1"):
            ResultCache(path=path)


class TestWarming:
    def _sweep(self, tmp_path, corpus, task):
        store_path = str(tmp_path / f"store_{task}.jsonl")
        with ResultStore(store_path) as store:
            for record in run_stream(iter(corpus), task):
                store.append(record)
        return store_path

    def test_warm_matches_cold_compute_byte_for_byte(self, tmp_path):
        corpus = [
            (f"t{i}", random_tree(10 + i, seed=i)) for i in range(4)
        ]
        stores = [
            self._sweep(tmp_path, corpus, "index"),
            self._sweep(tmp_path, corpus, "elect"),
        ]
        cache = ResultCache()
        warmed, skipped = warm_from_stores(cache, stores, iter(corpus))
        assert warmed == 8 and skipped == 0
        for _name, g in corpus:
            fp = graph_fingerprint(g)
            for task in ("index", "elect"):
                warmed_record = cache.get((fp, task))
                cold = get_task(task)(
                    canonical_query_name(fp), canonical_graph(g)
                )
                assert record_to_json(warmed_record) == record_to_json(cold)

    def test_warm_serves_relabeled_queries(self, tmp_path):
        from repro.service import ServiceCore

        g = random_tree(14, seed=9)
        store = self._sweep(tmp_path, [("g", g)], "elect")
        cache = ResultCache()
        warm_from_stores(cache, [store], iter([("g", g)]))
        core = ServiceCore(cache)
        perm = list(range(g.n))
        random.Random(0).shuffle(perm)
        result = core.query("elect", relabel_nodes(g, perm))
        assert result.cached

    def test_unmatched_and_nonwarmable_records_are_skipped(self, tmp_path):
        corpus = [("a", ring(6)), ("b", ring(8))]
        store = self._sweep(tmp_path, corpus, "index")
        with ResultStore(store, resume=True) as s:
            s.append({"task": "messages", "name": "a", "n": 6})  # not warmable
        cache = ResultCache()
        # corpus stream only supplies "a": the record for "b" has no graph
        warmed, skipped = warm_from_stores(cache, [store], iter(corpus[:1]))
        assert warmed == 1 and skipped == 2
        assert (graph_fingerprint(ring(6)), "index") in cache

    def test_warm_stops_once_all_records_matched(self, tmp_path):
        g = ring(5)
        store = self._sweep(tmp_path, [("a", g)], "index")

        def stream():
            yield "a", g
            raise AssertionError("stream read past the last matched record")

        cache = ResultCache()
        warmed, _ = warm_from_stores(cache, [store], stream())
        assert warmed == 1
