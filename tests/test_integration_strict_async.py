"""Cross-cutting integration: the strict wire mode composed with the
asynchronous engine — the most adversarial execution the library offers
(serialized traffic, adversarial delays) must still reproduce the
synchronous fast path bit for bit."""

import pytest

from repro.core import compute_advice, verify_election
from repro.core.elect import ElectAlgorithm
from repro.core.generic import GenericAlgorithm
from repro.graphs import cycle_with_leader_gadget, lollipop
from repro.lowerbounds import necklace
from repro.sim import run_async, run_sync, wire_wrapped
from repro.views import election_index


class TestStrictAsync:
    @pytest.mark.parametrize("seed", [1, 8])
    def test_elect_strict_async(self, seed):
        g = cycle_with_leader_gadget(6)
        bundle = compute_advice(g)
        baseline = run_sync(g, ElectAlgorithm, advice=bundle.bits)
        hostile = run_async(
            g, wire_wrapped(ElectAlgorithm), advice=bundle.bits, seed=seed
        )
        assert hostile.outputs == baseline.outputs
        assert verify_election(g, hostile.outputs).leader == bundle.root

    def test_generic_strict_async(self):
        g = lollipop(4, 2)
        phi = election_index(g)
        baseline = run_sync(g, lambda: GenericAlgorithm(phi))
        hostile = run_async(
            g, wire_wrapped(lambda: GenericAlgorithm(phi)), seed=3
        )
        assert hostile.outputs == baseline.outputs

    def test_on_necklace(self):
        g = necklace(4, 2)
        bundle = compute_advice(g)
        hostile = run_async(
            g, wire_wrapped(ElectAlgorithm), advice=bundle.bits, seed=5
        )
        assert verify_election(g, hostile.outputs).leader == bundle.root
        assert hostile.election_time == bundle.phi
