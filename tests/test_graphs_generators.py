"""Unit tests for the topology generators, including their documented
feasibility/infeasibility."""

import pytest

from repro.errors import GraphStructureError
from repro.graphs import (
    clique,
    complete_bipartite,
    cycle_with_leader_gadget,
    grid_torus,
    hypercube,
    lollipop,
    path_graph,
    random_connected_graph,
    random_regular,
    ring,
    star,
)
from repro.views import is_feasible


class TestRing:
    def test_structure(self):
        g = ring(6)
        assert g.n == 6
        assert g.num_edges == 6
        assert all(g.degree(v) == 2 for v in g.nodes())

    def test_infeasible(self):
        assert not is_feasible(ring(5))

    def test_rejects_small(self):
        with pytest.raises(GraphStructureError):
            ring(2)


class TestPath:
    def test_structure(self):
        g = path_graph(5)
        assert g.num_edges == 4
        assert g.degree(0) == 1 and g.degree(4) == 1

    def test_paths_feasible(self):
        # the directional port numbering (port 0 points away from node 0)
        # breaks the mirror symmetry, so paths of any length are feasible
        assert is_feasible(path_graph(5))
        assert is_feasible(path_graph(4))

    def test_two_node_path_infeasible(self):
        # the paper's canonical impossible instance
        assert not is_feasible(path_graph(2))


class TestClique:
    def test_canonical_structure(self):
        g = clique(5)
        assert g.num_edges == 10
        assert all(g.degree(v) == 4 for v in g.nodes())

    def test_canonical_infeasible(self):
        assert not is_feasible(clique(5))

    def test_seeded_valid(self):
        g = clique(6, seed=7)
        assert g.num_edges == 15
        assert all(g.degree(v) == 5 for v in g.nodes())

    def test_seeded_reproducible(self):
        assert clique(6, seed=7) == clique(6, seed=7)
        assert clique(6, seed=7) != clique(6, seed=8) or True  # may coincide


class TestStar:
    def test_structure(self):
        g = star(4)
        assert g.n == 5
        assert g.degree(0) == 4
        assert all(g.degree(v) == 1 for v in range(1, 5))

    def test_star_feasible(self):
        # leaves are distinguished by the center-side port of their edge
        assert is_feasible(star(3))


class TestCompleteBipartite:
    def test_structure(self):
        g = complete_bipartite(2, 3)
        assert g.n == 5
        assert g.num_edges == 6
        assert g.degree(0) == 3 and g.degree(2) == 2


class TestHypercubeTorus:
    def test_hypercube(self):
        g = hypercube(3)
        assert g.n == 8
        assert all(g.degree(v) == 3 for v in g.nodes())
        assert not is_feasible(g)

    def test_torus(self):
        g = grid_torus(3, 4)
        assert g.n == 12
        assert all(g.degree(v) == 4 for v in g.nodes())
        assert not is_feasible(g)

    def test_torus_rejects_small(self):
        with pytest.raises(GraphStructureError):
            grid_torus(2, 5)


class TestLollipop:
    def test_structure(self):
        g = lollipop(4, 3)
        assert g.n == 7
        assert g.degree(0) == 4  # clique node carrying the tail
        assert g.degree(6) == 1

    def test_feasible(self):
        assert is_feasible(lollipop(4, 3))


class TestGadgetRing:
    def test_structure(self):
        g = cycle_with_leader_gadget(6)
        assert g.n == 7
        assert g.degree(0) == 3
        assert g.degree(6) == 1

    def test_feasible(self):
        assert is_feasible(cycle_with_leader_gadget(9))


class TestRandomRegular:
    def test_structure(self):
        g = random_regular(10, 3, seed=5)
        assert g.n == 10
        assert all(g.degree(v) == 3 for v in g.nodes())
        assert g.is_connected()

    def test_reproducible(self):
        assert random_regular(10, 3, seed=5) == random_regular(10, 3, seed=5)

    def test_rejects_odd_product(self):
        with pytest.raises(GraphStructureError):
            random_regular(5, 3)


class TestRandomConnected:
    def test_connected_and_sized(self):
        g = random_connected_graph(15, extra_edges=7, seed=1)
        assert g.n == 15
        assert g.is_connected()
        assert g.num_edges == 14 + 7

    def test_reproducible(self):
        a = random_connected_graph(12, extra_edges=4, seed=9)
        b = random_connected_graph(12, extra_edges=4, seed=9)
        assert a == b

    def test_tree_when_no_extra(self):
        g = random_connected_graph(10, extra_edges=0, seed=2)
        assert g.num_edges == 9
