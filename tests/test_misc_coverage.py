"""Coverage for remaining corners: rng helpers, sweep corpus, lock
combinators, milestone-4 arithmetic at larger phi, CLI flags, and the
optimize-then-elect integration pipeline."""

import pytest

from repro.analysis.sweep import corpus_default, fit_ratio
from repro.cli import main
from repro.coding import decode_uint
from repro.core import run_elect
from repro.core.elections import election_advice, round_parameter
from repro.errors import GraphStructureError
from repro.graphs import PortGraphBuilder, optimize_ports, path_graph, ring
from repro.lowerbounds import compose_star, z_lock
from repro.lowerbounds.locks import attach_clique
from repro.util.rng import make_rng, sample_distinct
from repro.views import election_index, is_feasible


class TestRngHelpers:
    def test_make_rng_from_int(self):
        assert make_rng(5).random() == make_rng(5).random()

    def test_make_rng_passthrough(self):
        rng = make_rng(3)
        assert make_rng(rng) is rng

    def test_make_rng_default_seeded(self):
        assert make_rng(None).random() == make_rng(None).random()

    def test_sample_distinct(self):
        rng = make_rng(1)
        out = sample_distinct(rng, range(10), 4)
        assert len(set(out)) == 4

    def test_sample_distinct_too_many(self):
        with pytest.raises(ValueError):
            sample_distinct(make_rng(1), range(3), 5)


class TestSweepCorpus:
    def test_corpus_default_feasible(self):
        corpus = corpus_default()
        assert len(corpus) >= 6
        for name, g in corpus:
            assert is_feasible(g), name

    def test_corpus_respects_max_n(self):
        for _, g in corpus_default(max_n=20):
            assert g.n <= 21  # pendant adds one node

    def test_fit_ratio_mismatched(self):
        with pytest.raises(ValueError):
            fit_ratio([1, 2], [1])


class TestLockCombinators:
    def test_compose_star_three_components(self):
        g = compose_star(
            [z_lock(4), path_graph(3), z_lock(5)], [(0, 0), (2, 1)]
        )
        assert g.is_connected()
        assert g.n == 6 + 3 + 7

    def test_compose_star_wrong_joins(self):
        with pytest.raises(GraphStructureError):
            compose_star([z_lock(4), z_lock(4)], [])

    def test_attach_clique_minimum(self):
        b = PortGraphBuilder(1)
        with pytest.raises(GraphStructureError):
            attach_clique(b, 0, 1)

    def test_attach_clique_degree(self):
        b = PortGraphBuilder(2)
        b.add_edge(0, 0, 1, 0)
        attach_clique(b, 0, 4)
        g = b.build()
        assert g.degree(0) == 1 + 3


class TestMilestone4Arithmetic:
    @pytest.mark.parametrize("phi,expected_p", [(4, 15), (15, 15), (16, 65535)])
    def test_tower_parameters(self, phi, expected_p):
        value = decode_uint(election_advice(phi, 4))
        assert round_parameter(value, 4) == expected_p

    def test_huge_phi_advice_tiny(self):
        # log*(2^65536) territory is unreachable, but 2^1000 works:
        advice = election_advice(2**1000, 4)
        assert len(advice) <= 4  # log*(2^1000) = small


class TestCliFlags:
    def test_spectrum_custom_c(self, capsys):
        assert main(["spectrum", "necklace:4,2", "--c", "3"]) == 0
        assert "c = 3" in capsys.readouterr().out

    def test_report_stdout(self, capsys):
        assert main(["report"]) == 0
        assert "# repro experiment report" in capsys.readouterr().out


class TestOptimizeThenElect:
    def test_pipeline_on_ring(self):
        """End-to-end: an infeasible canonical ring, re-numbered by the
        optimizer, runs the full Theorem 3.1 pipeline."""
        g = ring(6)
        assert not is_feasible(g)
        result = optimize_ports(g, restarts=30, seed=11)
        assert result.feasible
        record = run_elect(result.graph)
        assert record.phi == result.phi
        assert record.election_time == record.phi

    def test_pipeline_respects_minimality(self):
        g = ring(5)
        result = optimize_ports(g, restarts=30, seed=4)
        if not result.feasible:
            pytest.skip("no feasible assignment sampled")
        assert election_index(result.graph) == result.phi
