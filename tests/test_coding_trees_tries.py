"""Codec tests for labeled rooted trees (advice item A2) and tries
(advice item A1), including hypothesis-generated random structures."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.coding import (
    Bits,
    LabeledRootedTree,
    Trie,
    decode_tree,
    decode_trie,
    encode_tree,
    encode_trie,
    trie_leaf,
    trie_node,
)
from repro.coding.nested import decode_e2, e2_as_maps, encode_e2
from repro.errors import CodingError


# ----------------------------------------------------------------------
# random structure generators
# ----------------------------------------------------------------------
def random_tree(rng_draw, max_nodes=12) -> LabeledRootedTree:
    labels = iter(range(1, max_nodes + 1))
    root = LabeledRootedTree(next(labels))
    nodes = [root]
    # attach remaining labels to random existing nodes with fresh ports
    for label in labels:
        parent = nodes[rng_draw(len(nodes))]
        port_parent = len(parent.children) + 1  # ports need not be dense in T
        child = LabeledRootedTree(label)
        parent.add_child(port_parent, rng_draw(5), child)
        nodes.append(child)
    return root


tree_strategy = st.builds(
    lambda seeds: _tree_from_seeds(seeds),
    st.lists(st.integers(min_value=0, max_value=10**6), min_size=1, max_size=14),
)


def _tree_from_seeds(seeds):
    root = LabeledRootedTree(1)
    nodes = [root]
    for i, seed in enumerate(seeds, start=2):
        parent = nodes[seed % len(nodes)]
        child = LabeledRootedTree(i)
        parent.add_child(len(parent.children), seed % 7, child)
        nodes.append(child)
    return root


def _trie_from_seeds(seeds):
    """A random trie with distinct-leaf structure."""
    it = iter(seeds)

    def build(depth):
        try:
            seed = next(it)
        except StopIteration:
            return trie_leaf()
        if depth > 4 or seed % 3 == 0:
            return trie_leaf()
        return trie_node(
            (seed % 5, seed % 11), build(depth + 1), build(depth + 1)
        )

    return build(0)


trie_strategy = st.builds(
    _trie_from_seeds,
    st.lists(st.integers(min_value=0, max_value=10**6), min_size=1, max_size=30),
)


# ----------------------------------------------------------------------
class TestTreeCodec:
    def test_single_node(self):
        t = LabeledRootedTree(7)
        assert decode_tree(encode_tree(t)) == t

    def test_small_tree(self):
        root = LabeledRootedTree(1)
        a = LabeledRootedTree(2)
        b = LabeledRootedTree(3)
        root.add_child(0, 1, a)
        root.add_child(2, 0, b)
        a.add_child(1, 0, LabeledRootedTree(4))
        assert decode_tree(encode_tree(root)) == root

    @given(tree_strategy)
    @settings(max_examples=40)
    def test_round_trip(self, tree):
        assert decode_tree(encode_tree(tree)) == tree

    @given(tree_strategy)
    @settings(max_examples=20)
    def test_size_preserved(self, tree):
        assert decode_tree(encode_tree(tree)).size() == tree.size()

    def test_code_length_n_log_n(self):
        """O(n log n) length: a 100-node path with small ports/labels."""
        root = LabeledRootedTree(1)
        node = root
        for i in range(2, 101):
            child = LabeledRootedTree(i)
            node.add_child(0, 1, child)
            node = child
        bits = encode_tree(root)
        import math

        assert len(bits) <= 40 * 100 * math.log2(100)

    def test_malformed_rejected(self):
        with pytest.raises(CodingError):
            decode_tree(Bits("10"))


class TestTreePaths:
    def _tree(self):
        root = LabeledRootedTree(1)
        mid = LabeledRootedTree(2)
        leaf = LabeledRootedTree(3)
        root.add_child(4, 0, mid)  # port 4 at root, 0 at mid
        mid.add_child(1, 2, leaf)  # port 1 at mid, 2 at leaf
        return root

    def test_find_label(self):
        t = self._tree()
        assert t.find_label(3).label == 3
        assert t.find_label(9) is None

    def test_path_to_root(self):
        t = self._tree()
        # from node 3 upward: (its port to parent, parent's port), then again
        assert t.path_to_root_ports(3) == [(2, 1), (0, 4)]
        assert t.path_to_root_ports(1) == []

    def test_path_missing_label(self):
        with pytest.raises(CodingError):
            self._tree().path_to_root_ports(42)

    def test_labels_preorder(self):
        assert self._tree().labels() == [1, 2, 3]


class TestTrieCodec:
    def test_leaf(self):
        t = trie_leaf()
        assert t.is_leaf and t.num_leaves() == 1
        assert decode_trie(encode_trie(t)) == t

    def test_internal_structure_validated(self):
        with pytest.raises(CodingError):
            Trie((1, 2))  # internal node missing children
        with pytest.raises(CodingError):
            Trie(None, trie_leaf(), trie_leaf())  # leaf with children

    def test_negative_query_rejected(self):
        with pytest.raises(CodingError):
            trie_node((-1, 0), trie_leaf(), trie_leaf())

    @given(trie_strategy)
    @settings(max_examples=40)
    def test_round_trip(self, trie):
        assert decode_trie(encode_trie(trie)) == trie

    @given(trie_strategy)
    @settings(max_examples=20)
    def test_size_identity(self, trie):
        assert trie.size() == 2 * trie.num_leaves() - 1

    def test_queries_preorder(self):
        t = trie_node((1, 5), trie_node((0, 3), trie_leaf(), trie_leaf()), trie_leaf())
        assert t.queries() == [(1, 5), (0, 3)]

    def test_malformed_rejected(self):
        with pytest.raises(CodingError):
            decode_trie(Bits(""))


class TestE2Codec:
    def test_empty(self):
        assert decode_e2(encode_e2([])) == []

    def test_round_trip(self):
        t1 = trie_node((0, 2), trie_leaf(), trie_leaf())
        e2 = [(2, [(1, t1), (4, trie_leaf())]), (3, [])]
        assert decode_e2(encode_e2(e2)) == e2

    def test_as_maps(self):
        t1 = trie_node((0, 2), trie_leaf(), trie_leaf())
        e2 = [(2, [(1, t1)]), (3, [])]
        maps = e2_as_maps(e2)
        assert maps[2][1] == t1
        assert maps[3] == {}

    def test_as_maps_rejects_duplicates(self):
        with pytest.raises(CodingError):
            e2_as_maps([(2, []), (2, [])])
        with pytest.raises(CodingError):
            e2_as_maps([(2, [(1, trie_leaf()), (1, trie_leaf())])])
