"""Property-based round trips for the whole ``coding/`` layer.

Seeded random structures (bitstrings, integers, labeled rooted trees,
tries, nested E2 lists, Concat sequences) must satisfy
``decode(encode(x)) == x`` exactly, and deliberate truncation/corruption
of any code must raise :class:`~repro.errors.CodingError` — never return
garbage.  Random generation is fully deterministic per seed, so a failure
reproduces from its parametrized id alone.
"""

import random

import pytest

from repro.coding import Bits
from repro.coding.concat import concat_bits, decode_concat
from repro.coding.integers import decode_uint, encode_uint
from repro.coding.nested import decode_e2, encode_e2
from repro.coding.trees import LabeledRootedTree, decode_tree, encode_tree
from repro.coding.tries import Trie, decode_trie, encode_trie, trie_leaf, trie_node
from repro.errors import CodingError

SEEDS = list(range(12))


# ----------------------------------------------------------------------
# random structure generators (all randomness from one rng per case)
# ----------------------------------------------------------------------
def random_bits(rng: random.Random, max_len: int = 40) -> Bits:
    return Bits("".join(rng.choice("01") for _ in range(rng.randint(0, max_len))))


def random_tree(rng: random.Random, labels: list) -> LabeledRootedTree:
    """Random labeled rooted tree consuming ``labels`` (distinct)."""
    root = LabeledRootedTree(labels[0])
    nodes = [root]
    next_port = {id(root): 0}
    for label in labels[1:]:
        parent = rng.choice(nodes)
        child = LabeledRootedTree(label)
        p = next_port[id(parent)]
        next_port[id(parent)] = p + 1
        next_port[id(child)] = 1  # port 0 at the child leads to the parent
        parent.add_child(p, 0, child)
        nodes.append(child)
    return root


def random_trie(rng: random.Random, depth: int = 4) -> Trie:
    if depth == 0 or rng.random() < 0.3:
        return trie_leaf()
    query = (rng.randint(0, 30), rng.randint(0, 1))
    return trie_node(
        query, random_trie(rng, depth - 1), random_trie(rng, depth - 1)
    )


def random_e2(rng: random.Random):
    return [
        (
            depth,
            [
                (rng.randint(1, 50), random_trie(rng, 3))
                for _ in range(rng.randint(0, 3))
            ],
        )
        for depth in range(2, 2 + rng.randint(0, 3))
    ]


def corrupt(rng: random.Random, bits: Bits) -> Bits:
    """Flip one bit, drop a prefix/suffix, or splice garbage — whichever
    the seed picks (never a no-op on non-empty input)."""
    s = bits.as_str()
    assert s, "corrupt() needs a non-empty code"
    mode = rng.randrange(3)
    if mode == 0:  # flip one bit
        i = rng.randrange(len(s))
        s = s[:i] + ("1" if s[i] == "0" else "0") + s[i + 1 :]
    elif mode == 1:  # truncate
        s = s[: rng.randrange(len(s))]
    else:  # splice a random block in the middle
        i = rng.randrange(len(s))
        block = "".join(rng.choice("01") for _ in range(rng.randint(1, 7)))
        s = s[:i] + block + s[i:]
    return Bits(s)


# ----------------------------------------------------------------------
# round trips
# ----------------------------------------------------------------------
@pytest.mark.parametrize("seed", SEEDS)
def test_concat_roundtrip(seed):
    rng = random.Random(seed)
    for _ in range(50):
        comps = [random_bits(rng, 20) for _ in range(rng.randint(0, 6))]
        encoded = concat_bits(comps)
        decoded = decode_concat(encoded)
        # the empty encoding is the documented corner case: both [] and
        # [Bits("")] encode to "", decoded as []
        assert decoded == ([] if encoded.as_str() == "" else comps)


@pytest.mark.parametrize("seed", SEEDS)
def test_uint_roundtrip(seed):
    rng = random.Random(seed)
    for _ in range(100):
        x = rng.randrange(0, 2 ** rng.randint(1, 48))
        assert decode_uint(encode_uint(x)) == x


@pytest.mark.parametrize("seed", SEEDS)
def test_tree_roundtrip(seed):
    rng = random.Random(seed)
    labels = list(range(1, rng.randint(2, 25)))
    rng.shuffle(labels)
    tree = random_tree(rng, labels)
    decoded = decode_tree(encode_tree(tree))
    assert decoded == tree
    assert decoded.labels() == tree.labels()


@pytest.mark.parametrize("seed", SEEDS)
def test_trie_roundtrip(seed):
    rng = random.Random(seed)
    for _ in range(20):
        trie = random_trie(rng)
        decoded = decode_trie(encode_trie(trie))
        assert decoded == trie
        assert decoded.queries() == trie.queries()


@pytest.mark.parametrize("seed", SEEDS)
def test_e2_roundtrip(seed):
    rng = random.Random(seed)
    for _ in range(10):
        e2 = random_e2(rng)
        assert decode_e2(encode_e2(e2)) == e2


@pytest.mark.parametrize("seed", SEEDS)
def test_bits_string_roundtrip(seed):
    rng = random.Random(seed)
    b = random_bits(rng)
    assert Bits.from_str(b.as_str()) == b
    assert Bits(list(b)) == b
    assert len(b) == len(b.as_str())


# ----------------------------------------------------------------------
# corruption: clean errors, never garbage
# ----------------------------------------------------------------------
def _decodes_to_same(decoder, original, corrupted):
    """A corrupted code must either raise CodingError or decode to a
    *different* value than the original (a lucky re-framing is fine —
    silently decoding to the same value would mean the corruption was
    invisible, which only happens for a no-op edit)."""
    try:
        return decoder(corrupted) == original
    except CodingError:
        return False
    except RecursionError:  # pragma: no cover - would be a real bug
        raise


@pytest.mark.parametrize("seed", SEEDS)
def test_concat_corruption_raises_or_changes(seed):
    rng = random.Random(seed)
    comps = [random_bits(rng, 12) for _ in range(3)]
    encoded = concat_bits(comps)
    hits = 0
    for _ in range(30):
        bad = corrupt(rng, encoded)
        if bad == encoded:
            continue
        try:
            if decode_concat(bad) != comps:
                hits += 1
        except CodingError:
            hits += 1
    assert hits > 0  # corruption is detectable, not silently absorbed


@pytest.mark.parametrize("seed", SEEDS)
def test_tree_corruption_never_garbage(seed):
    rng = random.Random(seed)
    labels = list(range(1, 12))
    tree = random_tree(rng, labels)
    encoded = encode_tree(tree)
    for _ in range(25):
        bad = corrupt(rng, encoded)
        if bad == encoded:
            continue
        assert not _decodes_to_same(decode_tree, tree, bad)


@pytest.mark.parametrize("seed", SEEDS)
def test_trie_corruption_never_garbage(seed):
    rng = random.Random(seed)
    trie = random_trie(rng)
    encoded = encode_trie(trie)
    for _ in range(25):
        bad = corrupt(rng, encoded)
        if bad == encoded:
            continue
        assert not _decodes_to_same(decode_trie, trie, bad)


def test_truncation_raises_cleanly():
    """Hard truncations of every codec raise CodingError specifically."""
    tree = LabeledRootedTree(1)
    tree.add_child(0, 0, LabeledRootedTree(2))
    cases = [
        (decode_uint, Bits("")),
        (decode_concat, Bits("0")),  # dangling bit
        (decode_concat, Bits("10")),  # invalid pair
        (decode_tree, encode_tree(tree)[: len(encode_tree(tree)) // 2]),
        (
            decode_trie,
            encode_trie(random_trie(random.Random(0)))[:5],
        ),
        (decode_e2, Bits("11")),  # one component: missing inner list
    ]
    for decoder, bad in cases:
        with pytest.raises(CodingError):
            decoder(bad)


def test_uint_rejects_noncanonical():
    with pytest.raises(CodingError):
        decode_uint(Bits("007"[:2] if False else "01"))  # leading zero
    with pytest.raises(CodingError):
        decode_uint(Bits(""))
    assert decode_uint(Bits("0")) == 0
