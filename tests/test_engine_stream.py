"""The streaming engine entry point: record parity with the batch path,
bounded corpus residency, and the failure paths of the ISSUE checklist
(worker errors carry context, unknown tasks fail before the stream is
touched, empty iterators are fine)."""

from __future__ import annotations

import pytest

from repro.analysis.sweep import corpus_with_phi
from repro.corpus import iter_corpus
from repro.engine import (
    EngineConfig,
    EngineError,
    records_to_jsonl,
    register_task,
    run_experiments,
    run_stream,
)
from repro.errors import SimulationError
from repro.graphs import ring


@register_task("boom-for-tests")
def _boom_task(name, g):
    """Deliberately failing task; registered at import time so forked
    workers inherit it."""
    if "detonate" in name:
        raise SimulationError("synthetic failure")
    return {"task": "boom-for-tests", "name": name, "n": g.n}


def _corpus(k=12):
    return list(iter_corpus(f"vertex-transitive:{k},seed=6"))


# ----------------------------------------------------------------------
# parity with the batch engine
# ----------------------------------------------------------------------
def test_stream_matches_batch_serial_and_parallel():
    corpus = _corpus()
    batch = run_experiments(corpus, task="index", workers=1)
    serial = list(
        run_stream(iter(corpus), "index", EngineConfig(chunk_size=3))
    )
    parallel = list(
        run_stream(
            iter(corpus), "index", EngineConfig(workers=3, chunk_size=2)
        )
    )
    assert records_to_jsonl(serial) == records_to_jsonl(batch)
    assert records_to_jsonl(parallel) == records_to_jsonl(batch)


def test_stream_default_config_and_elect_task():
    corpus = corpus_with_phi(1, sizes=(4, 6))
    assert list(run_stream(iter(corpus), "elect")) == run_experiments(
        corpus, task="elect"
    )


def test_stream_chunk_size_never_changes_records():
    corpus = _corpus()
    baseline = records_to_jsonl(
        list(run_stream(iter(corpus), "index", EngineConfig(chunk_size=1)))
    )
    for chunk_size in (2, 5, len(corpus) + 10):
        got = list(
            run_stream(
                iter(corpus), "index", EngineConfig(chunk_size=chunk_size)
            )
        )
        assert records_to_jsonl(got) == baseline


# ----------------------------------------------------------------------
# laziness / bounded residency
# ----------------------------------------------------------------------
def test_empty_iterator_yields_nothing():
    assert list(run_stream(iter([]), "index")) == []
    assert list(run_stream(iter([]), "index", EngineConfig(workers=4))) == []


def test_unknown_task_fails_before_consuming_the_stream():
    pulled = []

    def corpus():
        for i in range(5):
            pulled.append(i)
            yield f"ring-{i}", ring(5)

    stream = run_stream(corpus(), "no-such-task")
    with pytest.raises(EngineError, match="unknown engine task"):
        next(stream)
    assert pulled == []  # the corpus generator was never advanced


def test_thousand_graph_sweep_is_chunk_bounded():
    """The acceptance criterion: a streamed >= 1000-graph sweep never
    materializes the corpus — corpus entries in flight (pulled from the
    generator but not yet returned as records) stay bounded by one chunk."""
    total = 1000
    chunk_size = 8
    pulled = 0

    def corpus():
        nonlocal pulled
        for i in range(total):
            pulled += 1
            yield f"ring-{i}", ring(3 + (i % 17))

    seen = 0
    max_in_flight = 0
    for record in run_stream(
        corpus(), "index", EngineConfig(chunk_size=chunk_size)
    ):
        seen += 1
        max_in_flight = max(max_in_flight, pulled - seen)
    assert seen == total
    assert max_in_flight <= chunk_size


def test_parallel_stream_in_flight_is_window_bounded():
    """The parallel path may hold a full submission window, but never the
    corpus: in-flight entries stay <= (window + 1) * chunk_size."""
    from repro.engine import STREAM_WINDOW_PER_WORKER

    total, chunk_size, workers = 240, 4, 2
    window = workers * STREAM_WINDOW_PER_WORKER
    pulled = 0

    def corpus():
        nonlocal pulled
        for i in range(total):
            pulled += 1
            yield f"ring-{i}", ring(3 + (i % 11))

    seen = 0
    max_in_flight = 0
    for record in run_stream(
        corpus(), "index", EngineConfig(workers=workers, chunk_size=chunk_size)
    ):
        seen += 1
        max_in_flight = max(max_in_flight, pulled - seen)
    assert seen == total
    assert max_in_flight <= (window + 1) * chunk_size


# ----------------------------------------------------------------------
# failure propagation
# ----------------------------------------------------------------------
def test_task_failure_carries_entry_context_serial():
    corpus = [("fine-0", ring(4)), ("detonate-1", ring(5)), ("fine-2", ring(6))]
    with pytest.raises(EngineError) as excinfo:
        list(run_stream(iter(corpus), "boom-for-tests"))
    message = str(excinfo.value)
    assert "boom-for-tests" in message
    assert "detonate-1" in message
    assert "SimulationError" in message


def test_task_failure_carries_entry_context_across_workers():
    """A crash in a worker process must surface as the same EngineError
    (not an unpicklable traceback or a bare RemoteError)."""
    corpus = [(f"fine-{i}", ring(4 + i)) for i in range(6)]
    corpus.insert(4, ("detonate-4", ring(9)))
    with pytest.raises(EngineError, match="detonate-4"):
        list(
            run_stream(
                iter(corpus), "boom-for-tests",
                EngineConfig(workers=2, chunk_size=1),
            )
        )
    with pytest.raises(EngineError, match="detonate-4"):
        run_experiments(corpus, task="boom-for-tests", workers=2, chunk_size=1)


def test_messages_task_bound_derives_from_graph(monkeypatch):
    """With a sabotaged slack the derived bound is too small and the task
    must refuse with a clear EngineError naming the entry — never record
    a truncated trace (the old silent max_rounds=200 failure mode)."""
    import repro.engine.tasks as tasks

    g = corpus_with_phi(1, sizes=(4,))[0][1]
    ok = run_experiments([("hk", g)], task="messages")
    assert ok[0]["algorithms"][0]["rounds"] >= 1

    monkeypatch.setattr(tasks, "MESSAGES_ROUND_SLACK", -(g.diameter() + 10))
    with pytest.raises(EngineError, match="refusing to record"):
        run_experiments([("hk", g)], task="messages")
