"""Theorem 3.3's k-necklaces: Claim 3.10 (election index exactly phi),
the Observation (leaf views coincide across the family), and the fooling
mechanics behind Claim 3.11."""

import pytest

from repro.errors import GraphStructureError
from repro.lowerbounds import necklace, necklace_family_size, necklace_node_count
from repro.views import election_index, truncate_view, views_of_graph


class TestStructure:
    @pytest.mark.parametrize("k,phi", [(4, 2), (4, 3), (5, 2), (6, 4)])
    def test_node_count(self, k, phi):
        g, layout = necklace(k, phi, with_layout=True)
        x = 3  # smallest x with (x-1)^x >= k for these k
        if k > 8:
            pytest.skip("x formula differs")
        assert g.n == necklace_node_count(k, x, phi)
        assert len(layout.joints) == k
        assert len(layout.diamonds) == k - 1
        assert len(layout.left_chain) == phi - 1

    def test_leaves_have_degree_one(self):
        g, layout = necklace(4, 3, with_layout=True)
        assert g.degree(layout.left_leaf) == 1
        assert g.degree(layout.right_leaf) == 1

    def test_joint_degrees(self):
        g, layout = necklace(5, 2, with_layout=True)
        x = 3
        # terminal joints: x (emerald) + x (rays) + 1 (chain)
        assert g.degree(layout.joints[0]) == 2 * x + 1
        assert g.degree(layout.joints[-1]) == 2 * x + 1
        # interior joints: x + 2x rays
        for w in layout.joints[1:-1]:
            assert g.degree(w) == 3 * x

    def test_diamond_degrees(self):
        g, layout = necklace(4, 2, with_layout=True)
        x = 3
        for diamond in layout.diamonds:
            for d in diamond:
                assert g.degree(d) == x + 1

    def test_validation(self):
        with pytest.raises(GraphStructureError):
            necklace(4, 1)  # phi must be >= 2
        with pytest.raises(GraphStructureError):
            necklace(4, 3, code=[1, 0, 0])  # end shift must be 0
        with pytest.raises(GraphStructureError):
            necklace(4, 3, code=[0, 9, 0], x=3)  # shift out of range
        with pytest.raises(GraphStructureError):
            necklace(4, 3, code=[0, 0])  # wrong length


class TestClaim310:
    """Election index of every k-necklace is exactly phi."""

    @pytest.mark.parametrize("k,phi", [(4, 2), (4, 3), (4, 4), (5, 2), (5, 3), (6, 5)])
    def test_index_exact(self, k, phi):
        assert election_index(necklace(k, phi)) == phi

    @pytest.mark.parametrize("code", [[0, 1, 0], [0, 3, 0], [0, 2, 0]])
    def test_index_exact_under_codes(self, code):
        assert election_index(necklace(4, 3, code=code)) == 3

    def test_leaf_views_collide_below_phi(self):
        """The engine of the lower bound on the index: B^{phi-1}(left leaf)
        == B^{phi-1}(right leaf)."""
        phi = 3
        g, layout = necklace(4, phi, with_layout=True)
        views = views_of_graph(g, phi - 1)
        assert views[layout.left_leaf] is views[layout.right_leaf]
        full = views_of_graph(g, phi)
        assert full[layout.left_leaf] is not full[layout.right_leaf]


class TestObservation:
    """Leaf views at depth phi are equal across family members (the codes
    only shift inner diamonds)."""

    @pytest.mark.parametrize("phi", [2, 3])
    def test_left_leaf_views_equal(self, phi):
        k = 5
        g1, l1 = necklace(k, phi, code=[0, 1, 2, 0], with_layout=True)
        g2, l2 = necklace(k, phi, code=[0, 3, 0, 0], with_layout=True)
        v1 = views_of_graph(g1, phi)[l1.left_leaf]
        v2 = views_of_graph(g2, phi)[l2.left_leaf]
        assert v1 is v2
        w1 = views_of_graph(g1, phi)[l1.right_leaf]
        w2 = views_of_graph(g2, phi)[l2.right_leaf]
        assert w1 is w2


class TestClaim311Mechanics:
    """Distinct codes are detectable: the diamond-side ray ports differ, so
    the graphs are genuinely different (fooling requires different advice)."""

    def test_codes_change_ray_ports(self):
        k, phi, x = 4, 2, 3
        g1, l1 = necklace(k, phi, code=[0, 0, 0], with_layout=True)
        g2, l2 = necklace(k, phi, code=[0, 2, 0], with_layout=True)
        # diamond D_2's rays toward w_2: port (x-1+c) mod (x+1) at diamond side
        d1 = l1.diamonds[1][0]
        d2 = l2.diamonds[1][0]
        joint1 = l1.joints[1]
        joint2 = l2.joints[1]
        p1 = g1.port_to(d1, joint1)
        p2 = g2.port_to(d2, joint2)
        assert p1 == (x - 1) % (x + 1)
        assert p2 == (x - 1 + 2) % (x + 1)

    def test_family_size(self):
        assert necklace_family_size(5, 3) == 4**2
        with pytest.raises(GraphStructureError):
            necklace_family_size(3, 3)
