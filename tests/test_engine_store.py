"""The persistent result store: canonical append, resume bookkeeping,
torn-tail repair, and the headline byte-identity contract — an
interrupted-then-resumed sweep produces the same file, byte for byte, as
an uninterrupted run."""

from __future__ import annotations

import json

import pytest

from repro.analysis.sweep import sweep_to_store
from repro.corpus import iter_corpus
from repro.engine import ResultStore, StoreError, load_records, record_key

SPEC = "caterpillars:18,seed=13"
TASK = "index"


def _reference_bytes(tmp_path):
    path = tmp_path / "reference.jsonl"
    with ResultStore(str(path)) as store:
        ran, skipped = sweep_to_store(iter_corpus(SPEC), TASK, store)
    assert (ran, skipped) == (18, 0)
    return path.read_bytes()


# ----------------------------------------------------------------------
# basics
# ----------------------------------------------------------------------
def test_append_writes_canonical_lines_and_tracks_keys(tmp_path):
    path = tmp_path / "s.jsonl"
    rec = {"task": "index", "name": "a", "n": 5, "feasible": False}
    with ResultStore(str(path)) as store:
        store.append(rec)
        assert ("a", "index") in store
        assert len(store) == 1
    line = path.read_text()
    assert line == json.dumps(rec, sort_keys=True,
                              separators=(",", ":")) + "\n"
    assert list(load_records(str(path))) == [rec]


def test_record_key_requires_engine_fields():
    with pytest.raises(StoreError, match="not an engine record"):
        record_key({"n": 4})
    with pytest.raises(StoreError, match="not an engine record"):
        record_key(42)  # valid JSON, but not even a dict


def test_fresh_store_truncates_existing_file(tmp_path):
    path = tmp_path / "s.jsonl"
    path.write_text('{"task":"index","name":"old","n":1}\n')
    with ResultStore(str(path)) as store:
        assert len(store) == 0
    assert path.read_text() == ""


def test_resume_missing_file_is_fresh(tmp_path):
    with ResultStore(str(tmp_path / "new.jsonl"), resume=True) as store:
        assert len(store) == 0


# ----------------------------------------------------------------------
# resume and repair
# ----------------------------------------------------------------------
def test_resume_loads_keys_and_skips(tmp_path):
    reference = _reference_bytes(tmp_path)
    path = tmp_path / "partial.jsonl"
    lines = reference.split(b"\n")
    path.write_bytes(b"\n".join(lines[:10]) + b"\n")
    with ResultStore(str(path), resume=True) as store:
        assert len(store) == 10
        ran, skipped = sweep_to_store(iter_corpus(SPEC), TASK, store)
    assert (ran, skipped) == (8, 10)
    assert path.read_bytes() == reference


def test_resume_repairs_torn_tail_to_byte_identical(tmp_path):
    """Kill mid-write: the file ends in half a record.  Resume must
    truncate the torn line, redo that entry, and still converge to the
    uninterrupted file byte-for-byte."""
    reference = _reference_bytes(tmp_path)
    lines = reference.split(b"\n")
    for torn in (b'{"na', lines[6][: len(lines[6]) // 2], b"\xff\xfe garbage"):
        path = tmp_path / "torn.jsonl"
        path.write_bytes(b"\n".join(lines[:6]) + b"\n" + torn)
        with ResultStore(str(path), resume=True) as store:
            assert len(store) == 6
            ran, skipped = sweep_to_store(iter_corpus(SPEC), TASK, store)
        assert (ran, skipped) == (12, 6)
        assert path.read_bytes() == reference


def test_resume_complete_file_is_a_noop(tmp_path):
    reference = _reference_bytes(tmp_path)
    path = tmp_path / "done.jsonl"
    path.write_bytes(reference)
    with ResultStore(str(path), resume=True) as store:
        ran, skipped = sweep_to_store(iter_corpus(SPEC), TASK, store)
    assert (ran, skipped) == (0, 18)
    assert path.read_bytes() == reference


def test_parallel_resume_matches_serial_reference(tmp_path):
    """The acceptance criterion end-to-end: interrupted file + parallel
    resumed run == uninterrupted *serial* run, byte for byte."""
    reference = _reference_bytes(tmp_path)
    path = tmp_path / "par.jsonl"
    path.write_bytes(b"\n".join(reference.split(b"\n")[:5]) + b"\n")
    with ResultStore(str(path), resume=True) as store:
        sweep_to_store(iter_corpus(SPEC), TASK, store, workers=3,
                       chunk_size=2)
    assert path.read_bytes() == reference


def test_interior_corruption_refuses_to_repair(tmp_path):
    reference = _reference_bytes(tmp_path)
    lines = reference.split(b"\n")
    path = tmp_path / "corrupt.jsonl"
    # `42` is valid JSON but not a record: both corruption shapes must
    # raise StoreError when followed by further records, not TypeError
    for bad in (b"not json", b"42"):
        path.write_bytes(
            b"\n".join(lines[:3]) + b"\n" + bad + b"\n"
            + b"\n".join(lines[3:])
        )
        with pytest.raises(StoreError, match="corrupt at line 4"):
            ResultStore(str(path), resume=True)


def test_final_non_record_line_is_repaired_as_torn(tmp_path):
    reference = _reference_bytes(tmp_path)
    lines = reference.split(b"\n")
    path = tmp_path / "torn2.jsonl"
    path.write_bytes(b"\n".join(lines[:5]) + b"\n42\n")
    with ResultStore(str(path), resume=True) as store:
        assert len(store) == 5
        sweep_to_store(iter_corpus(SPEC), TASK, store)
    assert path.read_bytes() == reference


def test_load_records_is_lazy(tmp_path):
    path = tmp_path / "big.jsonl"
    path.write_bytes(_reference_bytes(tmp_path))
    records = load_records(str(path))
    first = next(records)
    assert first["task"] == TASK  # a generator, consumable one at a time
    assert sum(1 for _ in records) == 17
