"""The fingerprint-sharded service: deterministic routing, byte-identical
answers across compute modes, in-flight deduplication, worker failure
mapping and recovery."""

import json
import os
import subprocess
import sys
import threading

import pytest

from repro.engine.records import record_to_json
from repro.errors import InfeasibleGraphError, ReproError, ServiceError
from repro.graphs import (
    graph_fingerprint,
    grid_torus,
    random_tree,
    relabel_nodes,
    ring,
)
from repro.service import ResultCache, ServiceCore, ShardPool, shard_of


@pytest.fixture()
def sharded():
    core = ServiceCore(shards=2)
    yield core
    core.close()


class TestRouting:
    def test_pinned_values(self):
        """The route is int(fp[:16], 16) % N — pinned so a refactor
        cannot silently re-home every cached workload's shard."""
        assert shard_of("0" * 64, 4) == 0
        assert shard_of("f" * 64, 4) == int("f" * 16, 16) % 4
        assert shard_of("00000000000000010000", 7) == 1
        for n in (1, 2, 3, 8):
            assert 0 <= shard_of(graph_fingerprint(random_tree(9, seed=1)), n) < n

    def test_rejects_bad_inputs(self):
        with pytest.raises(ServiceError, match="num_shards"):
            shard_of("ab" * 32, 0)
        with pytest.raises(ServiceError, match="fingerprint"):
            shard_of("not-hex!", 4)

    def test_same_graph_same_shard_across_processes(self):
        """Restart determinism: a fresh interpreter — with a different
        hash salt — routes the same graph to the same shard.  (This is
        why the route is arithmetic on the digest, not ``hash()``.)"""
        g = random_tree(11, seed=4)
        fingerprint = graph_fingerprint(g)
        local = shard_of(fingerprint, 8)
        code = (
            "from repro.graphs import random_tree, graph_fingerprint\n"
            "from repro.service import shard_of\n"
            "fp = graph_fingerprint(random_tree(11, seed=4))\n"
            "print(fp, shard_of(fp, 8))\n"
        )
        for salt in ("12345", "54321"):
            env = dict(os.environ, PYTHONHASHSEED=salt)
            out = subprocess.run(
                [sys.executable, "-c", code],
                capture_output=True,
                text=True,
                env=env,
                check=True,
            ).stdout.split()
            assert out == [fingerprint, str(local)]

    def test_isomorphic_graphs_share_a_shard(self):
        g = random_tree(13, seed=6)
        h = relabel_nodes(g, list(reversed(range(g.n))))
        assert shard_of(graph_fingerprint(g), 5) == shard_of(
            graph_fingerprint(h), 5
        )


class TestShardedParity:
    def test_query_byte_identical_to_inprocess(self, sharded):
        inproc = ServiceCore()
        trees = [random_tree(12, seed=3), random_tree(15, seed=8)]
        cases = [
            (task, g) for task in ("elect", "index", "advice", "quotient")
            for g in trees
        ] + [("index", ring(7)), ("quotient", ring(7))]
        for task, g in cases:
            a = sharded.query(task, g)
            b = inproc.query(task, g)
            assert json.dumps(a.payload(), sort_keys=True) == json.dumps(
                b.payload(), sort_keys=True
            )

    def test_isomorphic_query_hits_shared_cache(self, sharded):
        g = random_tree(12, seed=3)
        r1 = sharded.query("elect", g)
        r2 = sharded.query("elect", relabel_nodes(g, list(reversed(range(g.n)))))
        assert not r1.cached and r2.cached
        assert record_to_json(r1.record) == record_to_json(r2.record)
        metrics = sharded.metrics()
        assert metrics["misses"] == 1 and metrics["memory_hits"] == 1

    def test_batch_byte_identical_to_inprocess(self, sharded):
        inproc = ServiceCore()
        requests = [
            ("index", random_tree(12, seed=3)),
            ("elect", random_tree(14, seed=5)),
            ("index", grid_torus(3, 4)),
            ("index", relabel_nodes(grid_torus(3, 4), list(range(12)))),
            ("quotient", ring(6)),
        ]
        a = sharded.batch(requests)
        b = inproc.batch(requests)
        assert [
            json.dumps(r.payload(), sort_keys=True) for r in a
        ] == [json.dumps(r.payload(), sort_keys=True) for r in b]
        # duplicate cold keys dedup identically in both modes
        assert sharded.metrics()["inflight_hits"] == 1
        assert inproc.metrics()["inflight_hits"] == 1

    def test_task_failure_maps_to_original_error_class(self, sharded):
        """An infeasible elect fails inside a worker process; the parent
        re-raises the *domain* error by name, so the HTTP layer still
        maps it to 422 with the right error class."""
        with pytest.raises(InfeasibleGraphError, match="infeasible"):
            sharded.query("elect", ring(6))
        metrics = sharded.metrics()
        assert metrics["errors"] == 1 and metrics["misses"] == 0

    def test_shards_surface_in_metrics_and_healthz(self, sharded):
        assert sharded.metrics()["shards"] == 2
        assert ServiceCore().metrics()["shards"] == 0
        assert sharded._pool.alive() == [True, True]

    def test_negative_shards_rejected(self):
        with pytest.raises(ServiceError, match="shards"):
            ServiceCore(shards=-1)


class TestWorkerFailure:
    def test_dead_worker_fails_one_query_then_recovers(self):
        g = random_tree(12, seed=3)
        core = ServiceCore(ResultCache(capacity=0), shards=2)
        try:
            shard = core._pool.shard_of(graph_fingerprint(g))
            victim, _conn = core._pool._workers[shard]
            victim.terminate()
            victim.join(5)
            with pytest.raises(ServiceError, match="worker died"):
                core.query("elect", g)
            # the shard respawned: the same query now computes fine
            result = core.query("elect", g)
            assert not result.cached
            reference = ServiceCore().query("elect", g)
            assert record_to_json(result.record) == record_to_json(
                reference.record
            )
        finally:
            core.close()

    def test_closed_pool_rejects_computes(self):
        pool = ShardPool(2)
        pool.close()
        with pytest.raises(ServiceError, match="closed"):
            pool.compute("index", "ab" * 32, "{}")
        pool.close()  # idempotent


class TestInflightDedup:
    def test_concurrent_cold_queries_compute_once(self, monkeypatch):
        """N threads race the same cold fingerprint.  The leader's
        compute is gated until every thread has joined the in-flight
        entry, so the schedule is deterministic: exactly one compute,
        one miss, N-1 inflight hits, byte-identical records for all."""
        n_threads = 6
        core = ServiceCore()
        g = random_tree(14, seed=9)
        joined = []
        all_joined = threading.Event()
        real_join = ServiceCore._join_inflight

        def counting_join(self, key):
            flight, leader = real_join(self, key)
            joined.append(leader)
            if len(joined) >= n_threads:
                all_joined.set()
            return flight, leader

        real_compute = ServiceCore._compute
        computes = []

        def gated_compute(self, task, form):
            assert all_joined.wait(30), "threads never all joined"
            computes.append(task)
            return real_compute(self, task, form)

        monkeypatch.setattr(ServiceCore, "_join_inflight", counting_join)
        monkeypatch.setattr(ServiceCore, "_compute", gated_compute)

        results = [None] * n_threads
        def run(i):
            results[i] = core.query("elect", g)

        threads = [
            threading.Thread(target=run, args=(i,)) for i in range(n_threads)
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join(60)
        assert all(r is not None for r in results)
        assert len(computes) == 1  # the whole point
        assert joined.count(True) == 1
        assert len({record_to_json(r.record) for r in results}) == 1
        assert sum(1 for r in results if not r.cached) == 1
        metrics = core.metrics()
        assert metrics["misses"] == 1
        assert metrics["inflight_hits"] == n_threads - 1
        assert metrics["hits"] == n_threads - 1

    def test_leader_error_propagates_to_followers(self, monkeypatch):
        """A failing leader must fail every waiter with the same domain
        error — and must not leave a stale in-flight entry behind."""
        n_threads = 4
        core = ServiceCore()
        g = ring(6)  # infeasible for elect
        all_joined = threading.Event()
        joined = []
        real_join = ServiceCore._join_inflight

        def counting_join(self, key):
            flight, leader = real_join(self, key)
            joined.append(leader)
            if len(joined) >= n_threads:
                all_joined.set()
            return flight, leader

        real_compute = ServiceCore._compute

        def gated_compute(self, task, form):
            assert all_joined.wait(30)
            return real_compute(self, task, form)

        monkeypatch.setattr(ServiceCore, "_join_inflight", counting_join)
        monkeypatch.setattr(ServiceCore, "_compute", gated_compute)

        outcomes = [None] * n_threads
        def run(i):
            try:
                core.query("elect", g)
                outcomes[i] = "ok"
            except InfeasibleGraphError:
                outcomes[i] = "infeasible"

        threads = [
            threading.Thread(target=run, args=(i,)) for i in range(n_threads)
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join(60)
        assert outcomes == ["infeasible"] * n_threads
        assert core.metrics()["errors"] == n_threads
        assert core._inflight == {}  # no stale entry: the next query leads

    def test_live_dedup_smoke_unpatched(self, sharded):
        """No gating: whatever the real schedule, every caller gets the
        byte-identical record and the counters add up."""
        n_threads = 8
        g = random_tree(16, seed=11)
        results = [None] * n_threads

        def run(i):
            results[i] = sharded.query("elect", g)

        threads = [
            threading.Thread(target=run, args=(i,)) for i in range(n_threads)
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join(60)
        assert len({record_to_json(r.record) for r in results}) == 1
        metrics = sharded.metrics()
        assert metrics["misses"] >= 1
        assert metrics["misses"] + metrics["hits"] == n_threads
        assert (
            metrics["memory_hits"]
            + metrics["inflight_hits"]
            + metrics["misses"]
            == n_threads
        )

    def test_single_query_joins_a_batch_compute(self, monkeypatch):
        """The batch path registers its unique cold keys in-flight, so a
        concurrent single query for one of them waits instead of
        recomputing."""
        core = ServiceCore()
        g = random_tree(14, seed=2)
        batch_started = threading.Event()
        real_inproc = ServiceCore._batch_compute_inprocess

        def slow_batch_compute(self, *args, **kwargs):
            batch_started.set()
            return real_inproc(self, *args, **kwargs)

        monkeypatch.setattr(
            ServiceCore, "_batch_compute_inprocess", slow_batch_compute
        )
        computes = []
        real_compute = ServiceCore._compute

        def counted_compute(self, task, form):
            computes.append(task)
            return real_compute(self, task, form)

        monkeypatch.setattr(ServiceCore, "_compute", counted_compute)

        batch_result = []
        def run_batch():
            batch_result.extend(core.batch([("elect", g)]))

        single_result = []
        def run_single():
            assert batch_started.wait(30)
            single_result.append(core.query("elect", g))

        threads = [
            threading.Thread(target=run_batch),
            threading.Thread(target=run_single),
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join(60)
        assert record_to_json(batch_result[0].record) == record_to_json(
            single_result[0].record
        )
        # the single query either joined the batch's flight or hit the
        # cache after it landed — it never ran a second compute
        assert computes == []  # the batch computes via run_stream
        metrics = core.metrics()
        assert metrics["misses"] == 1
        assert metrics["hits"] == 1
