"""Rendering helpers and the Theorem 4.2 counting additions."""

import pytest

from repro.graphs import lollipop, path_graph, ring
from repro.lowerbounds import thm42_k_star, thm42_lower_bound_bits
from repro.lowerbounds.families_t import index_b
from repro.views import views_of_graph
from repro.views.render import graph_to_dot, render_graph, render_view


class TestRenderView:
    def test_depth_zero(self):
        v = views_of_graph(ring(5), 0)[0]
        assert render_view(v) == "deg=2"

    def test_depth_one_shows_ports(self):
        v = views_of_graph(path_graph(3), 1)[1]  # the middle node
        text = render_view(v)
        assert "deg=2" in text
        assert "(0->" in text and "(1->" in text
        assert text.count("deg=1") == 2

    def test_max_depth_elides(self):
        v = views_of_graph(ring(6), 4)[0]
        text = render_view(v, max_depth=1)
        assert "..." in text
        # full render of the same view is much longer
        assert len(render_view(v)) > len(text)


class TestRenderGraph:
    def test_listing_complete(self):
        g = lollipop(4, 2)
        text = render_graph(g)
        assert f"n={g.n}" in text
        assert text.count("[deg") == g.n

    def test_dot_has_all_edges(self):
        g = ring(5)
        dot = graph_to_dot(g)
        assert dot.count(" -- ") == g.num_edges
        assert dot.startswith("graph G {")
        assert 'taillabel="0"' in dot


class TestThm42Counting:
    def test_k_star_definition(self):
        alpha, c = 100, 2
        k = thm42_k_star(alpha, c, part=1)
        assert index_b(k, c, 1) <= alpha
        assert index_b(k + 1, c, 1) > alpha

    def test_part1_linear(self):
        # B(k,2) = (c+2)k + 1 = 4k+1 -> k* ~ alpha/4
        assert thm42_k_star(401, 2, part=1) == 100

    def test_part2_logarithmic(self):
        # B(k,2) = 4^k
        assert thm42_k_star(4**5, 2, part=2) == 5

    def test_forced_bits_grow_with_alpha(self):
        bits = [
            thm42_lower_bound_bits(a, part=1)["forced_bits"]
            for a in (10, 10**3, 10**6)
        ]
        assert bits == sorted(bits)
        assert bits[-1] > bits[0]

    def test_ratio_bounded_part1(self):
        d = thm42_lower_bound_bits(10**9, part=1)
        assert 0.3 < d["ratio"] <= 1.5

    def test_bad_part_rejected(self):
        with pytest.raises(ValueError):
            thm42_lower_bound_bits(100, part=7)
        with pytest.raises(ValueError):
            thm42_k_star(0, 2, 1)
