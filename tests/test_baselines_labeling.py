"""The informative-labeling contrast: per-node advice elects anything in
zero rounds — even infeasible graphs."""

import pytest

from repro.baselines import labeling_advice_map, run_labeling_scheme
from repro.errors import AdviceError, SimulationError
from repro.graphs import clique, cycle_with_leader_gadget, hypercube, ring
from repro.views import is_feasible


class TestLabelingScheme:
    def test_zero_rounds_on_feasible(self):
        rec = run_labeling_scheme(cycle_with_leader_gadget(8), leader=3)
        assert rec.election_time == 0
        assert rec.leader == 3

    @pytest.mark.parametrize(
        "g", [ring(7), clique(5), hypercube(3)], ids=["ring", "clique", "cube"]
    )
    def test_elects_infeasible_graphs(self, g):
        """THE contrast: these graphs cannot elect with any identical
        advice, but per-node advice breaks the symmetry externally."""
        assert not is_feasible(g)
        rec = run_labeling_scheme(g, leader=0)
        assert rec.election_time == 0

    def test_any_leader_choosable(self):
        g = ring(6)
        for leader in range(6):
            assert run_labeling_scheme(g, leader=leader).leader == leader

    def test_advice_size_d_log(self):
        import math

        g = ring(16)  # D = 8
        rec = run_labeling_scheme(g)
        # path of <= D pairs, each port < 2: O(D) bits here
        assert rec.max_advice_bits <= 8 * 2 * (math.log2(2) + 4)

    def test_leader_gets_empty_advice(self):
        advice = labeling_advice_map(ring(5), leader=2)
        assert len(advice[2]) == 0

    def test_invalid_leader_rejected(self):
        with pytest.raises(AdviceError):
            labeling_advice_map(ring(5), leader=9)

    def test_advice_and_map_mutually_exclusive(self):
        from repro.coding import Bits
        from repro.baselines.labeling_scheme import LabelingSchemeAlgorithm
        from repro.sim import SyncEngine

        g = ring(5)
        with pytest.raises(SimulationError):
            SyncEngine(
                g,
                LabelingSchemeAlgorithm,
                advice=Bits("1"),
                advice_map=labeling_advice_map(g),
            )
