"""Post-election protocols composed on top of verified elections."""

import pytest

from repro.core import compute_advice, run_elect, run_generic
from repro.core.elect import ElectAlgorithm
from repro.core.post_election import (
    run_broadcast,
    run_convergecast,
    sequential_factory,
)
from repro.graphs import cycle_with_leader_gadget, lollipop
from repro.sim import run_sync
from repro.views import election_index


def _elect_outputs(g):
    bundle = compute_advice(g)
    result = run_sync(g, ElectAlgorithm, advice=bundle.bits)
    return result.outputs, bundle.root


class TestBroadcast:
    def test_delivers_to_all(self, gadget6):
        outputs, leader = _elect_outputs(gadget6)
        rec = run_broadcast(gadget6, outputs, payload="token-42")
        assert rec.payload == "token-42"

    def test_rounds_equal_leader_eccentricity(self, gadget6):
        outputs, leader = _elect_outputs(gadget6)
        rec = run_broadcast(gadget6, outputs, payload=1)
        assert rec.rounds == gadget6.eccentricity(leader)

    def test_composes_with_generic(self):
        g = lollipop(4, 3)
        phi = election_index(g)
        from repro.core.generic import GenericAlgorithm

        result = run_sync(
            g, lambda: GenericAlgorithm(phi), max_rounds=g.diameter() + phi + 2
        )
        rec = run_broadcast(g, result.outputs, payload=("new", "token"))
        assert rec.payload == ("new", "token")


class TestConvergecast:
    def test_total_at_leader(self, gadget6):
        outputs, leader = _elect_outputs(gadget6)
        values = {v: float(v + 1) for v in gadget6.nodes()}
        rec = run_convergecast(gadget6, outputs, values)
        assert rec.leader_total == sum(values.values())

    def test_subtree_sums_partition(self, gadget6):
        """The leader's children's subtree sums plus the leader's own value
        must add up to the total."""
        outputs, leader = _elect_outputs(gadget6)
        values = {v: 1.0 for v in gadget6.nodes()}
        rec = run_convergecast(gadget6, outputs, values)
        assert rec.leader_total == gadget6.n
        # every node's subtree sum is a positive integer <= n
        assert all(1.0 <= s <= gadget6.n for s in rec.subtree_sums.values())

    def test_on_lollipop(self):
        g = lollipop(5, 3)
        outputs, _ = _elect_outputs(g)
        values = {v: float(v) for v in g.nodes()}
        rec = run_convergecast(g, outputs, values)
        assert rec.leader_total == sum(values.values())

    def test_rounds_bounded_by_depth(self, gadget6):
        outputs, leader = _elect_outputs(gadget6)
        rec = run_convergecast(
            gadget6, outputs, {v: 0.0 for v in gadget6.nodes()}
        )
        # announcements + depth-many aggregation rounds, +1 slack
        assert rec.rounds <= gadget6.eccentricity(leader) + 2


class TestSequentialFactory:
    def test_instances_in_order(self):
        class Tagged:
            def __init__(self, tag):
                self.tag = tag

            def setup(self, ctx):
                ctx.output((self.tag, self.tag))

            def compose(self, ctx):
                return None

            def deliver(self, ctx, inbox):
                pass

        g = cycle_with_leader_gadget(4)
        instances = [Tagged(v) for v in g.nodes()]
        result = run_sync(g, sequential_factory(instances), max_rounds=1)
        # engine instantiates in node order, so tags line up — but outputs
        # must be valid paths for the verifier, so just check the mapping
        assert all(result.outputs[v] == (v, v) for v in g.nodes())


class TestEndToEndPipeline:
    def test_elect_then_broadcast_then_convergecast(self):
        """The full lifecycle the paper's intro describes: recover from a
        lost token (elect), distribute the new token id (broadcast), and
        audit the ring (convergecast)."""
        g = cycle_with_leader_gadget(9)
        record = run_elect(g)
        outputs, _ = _elect_outputs(g)
        b = run_broadcast(g, outputs, payload=f"token-{record.leader}")
        c = run_convergecast(g, outputs, {v: 1.0 for v in g.nodes()})
        assert b.payload.endswith(str(record.leader))
        assert c.leader_total == g.n
