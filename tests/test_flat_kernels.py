"""Property tests for the flat-kernel layer.

The CSR arrays, the class-splitting refinement, the dense view ranks and
the batched engines are all *re-implementations* of semantics that other
modules already define; these tests pin each one to its specification:

* :class:`~repro.graphs.csr.CSRAdjacency` is structurally identical to
  the PortGraph API it flattens, and cached per instance;
* CSR refinement levels are tuple-identical to first-occurrence numbering
  of the interned views of :func:`view_levels` — on every connected graph
  with <= 5 nodes (two port assignments each) and on corpus prefixes;
* the dense-rank order equals the recursive comparison (kept in
  :mod:`repro.views.order` as the executable specification), and stays
  correct when later graphs intern new views and force a re-rank;
* ``clear_view_caches`` resets the rank tables and the depth registry
  (see also ``test_view_cache_lifecycle.py``);
* the builder's amortized next-free-port hint agrees with a naive scan
  under adversarial explicit/auto interleavings;
* the engines keep their termination/identity contracts under the
  undecided-counter and reused-inbox rewrite;
* the ``repro-bench/1`` record schema validator accepts what the harness
  emits and rejects malformed records.
"""

from __future__ import annotations

import functools
import itertools
import random

import networkx as nx
import pytest

from repro.corpus import get_family
from repro.engine import EngineConfig, run_experiments, run_stream
from repro.errors import GraphStructureError, PortNumberingError, ReproError
from repro.graphs import csr_of, from_networkx, grid_torus, random_tree, ring
from repro.graphs.port_graph import PortGraphBuilder
from repro.lowerbounds import hk_graph
from repro.sim import run_sync
from repro.views import (
    clear_view_caches,
    sort_views,
    view_compare,
    view_levels,
    view_min,
)
from repro.views.election_index import _partition_signature
from repro.views.order import _view_compare_recursive
from repro.views.refinement import refinement_levels, stable_partition


def _small_connected_instances():
    instances = []
    for atlas_graph in nx.graph_atlas_g():
        n = atlas_graph.number_of_nodes()
        if not (2 <= n <= 5):
            continue
        if atlas_graph.number_of_edges() == 0 or not nx.is_connected(atlas_graph):
            continue
        gid = f"atlas-{atlas_graph.name or id(atlas_graph)}"
        instances.append((f"{gid}-canonical", from_networkx(atlas_graph)))
        instances.append((f"{gid}-seeded", from_networkx(atlas_graph, seed=11)))
    return instances


SMALL_INSTANCES = _small_connected_instances()


def _corpus_prefix_instances():
    entries = []
    for family, count in (
        ("tori", 3),
        ("random-trees", 4),
        ("caterpillars", 3),
        ("lifts", 3),
    ):
        entries.extend(get_family(family).generate(count, seed=0))
    return entries


CORPUS_INSTANCES = _corpus_prefix_instances()


# ----------------------------------------------------------------------
# CSR structure
# ----------------------------------------------------------------------
@pytest.mark.parametrize(
    "g",
    [ring(7), hk_graph(4), grid_torus(3, 4), random_tree(23, seed=5)],
    ids=["ring7", "hk4", "torus3x4", "tree23"],
)
def test_csr_matches_port_graph(g):
    csr = csr_of(g)
    assert csr.n == g.n
    assert csr.offsets[0] == 0
    assert csr.offsets[-1] == 2 * g.num_edges
    for v in g.nodes():
        row = g.ports(v)
        start, end = csr.offsets[v], csr.offsets[v + 1]
        assert csr.degrees[v] == g.degree(v) == end - start
        assert csr.neighbor_tuples[v] == tuple(u for u, _ in row)
        assert csr.remote_port_tuples[v] == tuple(q for _, q in row)
        assert tuple(csr.neighbors[start:end]) == csr.neighbor_tuples[v]
        assert tuple(csr.remote_ports[start:end]) == csr.remote_port_tuples[v]
    # port keys: dense, and injective in (degree, remote-port tuple)
    assert 0 < csr.num_port_keys <= g.n
    assert set(csr.port_keys) == set(range(csr.num_port_keys))
    for u in g.nodes():
        for v in g.nodes():
            same_static = (
                csr.remote_port_tuples[u] == csr.remote_port_tuples[v]
            )
            assert (csr.port_keys[u] == csr.port_keys[v]) == same_static


def test_csr_is_cached_per_instance():
    g = ring(9)
    assert csr_of(g) is csr_of(g)
    # distinct (even structurally equal) graphs get their own view
    assert csr_of(g) is not csr_of(ring(9))


# ----------------------------------------------------------------------
# CSR refinement == interned-View refinement
# ----------------------------------------------------------------------
def _assert_refinement_parity(g, max_depth):
    view_it = view_levels(g, max_depth=max_depth)
    array_it = refinement_levels(g, max_depth=max_depth)
    for level, sig in itertools.zip_longest(view_it, array_it):
        assert level is not None and sig is not None
        assert sig == _partition_signature(level)


@pytest.mark.parametrize("name_g", SMALL_INSTANCES, ids=lambda p: p[0])
def test_refinement_matches_views_on_all_small_graphs(name_g):
    _, g = name_g
    _assert_refinement_parity(g, max_depth=g.n + 2)


@pytest.mark.parametrize("name_g", CORPUS_INSTANCES, ids=lambda p: p[0])
def test_refinement_matches_views_on_corpus_prefixes(name_g):
    _, g = name_g
    stable = stable_partition(g)
    # cover every level the refinement can distinguish, plus the repeat
    _assert_refinement_parity(g, max_depth=stable.depth + 2)
    # and the stabilized summary agrees with the view-side numbering
    levels = view_levels(g, max_depth=stable.depth)
    final = None
    for final in levels:
        pass
    assert stable.signature == _partition_signature(final)
    assert stable.num_classes == len(set(stable.signature))


# ----------------------------------------------------------------------
# dense ranks == the recursive order specification
# ----------------------------------------------------------------------
def _levels_views(g, depth):
    out = []
    for level in view_levels(g, max_depth=depth):
        out.append(level)
    return out


def _assert_order_parity(views):
    distinct = list(dict.fromkeys(views))
    ranked = sort_views(distinct)
    reference = sorted(
        distinct, key=functools.cmp_to_key(_view_compare_recursive)
    )
    assert ranked == reference
    for a, b in itertools.combinations(distinct[:20], 2):
        got = view_compare(a, b)
        want = _view_compare_recursive(a, b)
        assert got == want
        assert view_compare(b, a) == -want


@pytest.mark.parametrize(
    "name_g", SMALL_INSTANCES[::3], ids=lambda p: p[0]
)
def test_rank_order_matches_recursive_on_small_graphs(name_g):
    _, g = name_g
    for level in _levels_views(g, depth=3):
        _assert_order_parity(level)


@pytest.mark.parametrize("name_g", CORPUS_INSTANCES[::2], ids=lambda p: p[0])
def test_rank_order_matches_recursive_on_corpus_prefixes(name_g):
    _, g = name_g
    depth = min(stable_partition(g).depth + 1, 4)
    for level in _levels_views(g, depth):
        _assert_order_parity(level)


def test_rank_order_stable_when_new_views_force_a_rerank():
    """Interning views of a *second* graph re-ranks each depth; the
    relative order of the first graph's views must not move (and must
    still equal the recursive specification)."""
    clear_view_caches()
    first = _levels_views(ring(8), depth=3)
    pairs_before = {}
    for level in first:
        distinct = list(dict.fromkeys(level))
        for a, b in itertools.combinations(distinct, 2):
            pairs_before[(id(a), id(b))] = view_compare(a, b)
    # force re-ranks at every depth with fresh structure
    _levels_views(hk_graph(5), depth=3)
    _levels_views(grid_torus(3, 5), depth=3)
    for level in first:
        distinct = list(dict.fromkeys(level))
        for a, b in itertools.combinations(distinct, 2):
            assert view_compare(a, b) == pairs_before[(id(a), id(b))]
            assert view_compare(a, b) == _view_compare_recursive(a, b)
    clear_view_caches()


def test_view_min_safe_on_view_creating_iterables():
    """Regression: a generator that interns new views while ``view_min``
    consumes it must not poison the comparison — the mid-iteration
    re-rank used to shift rank integers under a cached best key."""
    from repro.views.view import View

    clear_view_caches()
    bigger = View.make(1, ((0, View.make(2, ())),))

    def creating():
        yield bigger
        # interning this depth-1 view re-ranks depth 1: it sorts before
        # `bigger` (child degree 1 < 2), stealing rank 0
        yield View.make(1, ((0, View.make(1, ())),))

    winner = view_min(creating())
    assert _view_compare_recursive(winner, bigger) == -1
    clear_view_caches()


def test_mixed_depth_comparisons_order_by_depth():
    clear_view_caches()
    levels = _levels_views(ring(6), depth=2)
    shallow, deep = levels[0][0], levels[2][0]
    assert view_compare(shallow, deep) == -1
    assert view_compare(deep, shallow) == 1
    assert sort_views([deep, shallow]) == [shallow, deep]
    clear_view_caches()


# ----------------------------------------------------------------------
# builder next-free-port hint
# ----------------------------------------------------------------------
def test_next_free_port_skips_explicitly_taken_ports():
    b = PortGraphBuilder(4)
    b.add_edge(0, 2, 1, 0)  # explicit port above the hint
    assert b.next_free_port(0) == 0
    b.add_edge(0, 0, 2, 0)
    assert b.next_free_port(0) == 1
    b.add_edge(0, 1, 3, 0)
    assert b.next_free_port(0) == 3  # 0,1,2 all taken now
    g = b.build()
    assert g.degree(0) == 3


def test_next_free_port_matches_naive_scan_under_fuzz():
    rng = random.Random(1234)
    for _ in range(25):
        n = rng.randint(4, 10)
        b = PortGraphBuilder(n)
        for _ in range(rng.randint(3, 14)):
            u, v = rng.sample(range(n), 2)
            if b.has_edge(u, v):
                continue
            if rng.random() < 0.5:
                b.add_edge_auto(u, v)
            else:
                pu = rng.randint(0, 8)
                pv = rng.randint(0, 8)
                if pu in dict(
                    (p, None) for p in b.used_ports(u)
                ) or pv in dict((p, None) for p in b.used_ports(v)):
                    continue
                b.add_edge(u, pu, v, pv)
            for w in range(n):
                used = set(b.used_ports(w))
                naive = 0
                while naive in used:
                    naive += 1
                assert b.next_free_port(w) == naive


def test_large_auto_built_star_is_fast_and_correct():
    # the O(d^2) scan made hub-heavy builds quadratic; the hint makes
    # this linear — and the result identical
    b = PortGraphBuilder(1)
    hub = 0
    for _ in range(2000):
        leaf = b.add_node()
        b.add_edge_auto(hub, leaf)
    g = b.build()
    assert g.degree(hub) == 2000
    assert sorted(
        g.neighbor(hub, p)[0] for p in range(2000)
    ) == list(range(1, 2001))


# ----------------------------------------------------------------------
# engines
# ----------------------------------------------------------------------
def test_serial_fast_path_records_equal_parallel_records():
    corpus = list(get_family("caterpillars").generate(8, seed=3))
    serial = run_experiments(corpus, task="index", workers=1, chunk_size=3)
    parallel = run_experiments(corpus, task="index", workers=2, chunk_size=3)
    assert serial == parallel
    streamed = list(
        run_stream(iter(corpus), "index", EngineConfig(workers=1, chunk_size=3))
    )
    assert streamed == serial
    # the serial fast path must not pin CSR arrays on the caller's graphs
    # (the chunk-bounded memory contract); opting out keeps them warm
    assert all(g._csr_cache is None for _, g in corpus)
    run_experiments(corpus[:1], task="index", workers=1, clear_caches=False)
    assert corpus[0][1]._csr_cache is not None


def test_sync_engine_terminates_on_compose_phase_outputs():
    """The undecided counter must catch outputs produced during compose,
    not only during setup/deliver."""

    class ComposeOutputter:
        def setup(self, ctx):
            pass

        def compose(self, ctx):
            if not ctx.has_output:
                ctx.output(("early",))
            return None

        def deliver(self, ctx, inbox):
            pass

    result = run_sync(ring(5), ComposeOutputter)
    assert result.rounds == 1
    assert set(result.outputs.values()) == {("early",)}


def test_async_engine_rejects_bad_ports():
    from repro.sim.async_model import run_async

    class BadSender:
        def setup(self, ctx):
            pass

        def compose(self, ctx):
            return {ctx.degree: ("oops", 0)}  # one past the last port

        def deliver(self, ctx, inbox):
            pass

    with pytest.raises(PortNumberingError):
        run_async(ring(4), BadSender)


# ----------------------------------------------------------------------
# bench record schema
# ----------------------------------------------------------------------
def test_bench_record_roundtrip_and_speedup():
    from repro.analysis.bench import (
        make_bench_record,
        make_table_record,
        validate_bench_record,
    )

    baseline = {
        "schema": "repro-bench-baseline/1",
        "env": {},
        "modes": {"full": {"refinement": {"case-a": 1.0}}},
    }
    record = make_bench_record(
        "refinement",
        [
            {"case": "case-a", "seconds": 0.25, "repeats": 3},
            {"case": "case-b", "seconds": 0.5, "repeats": 3},
        ],
        quick=False,
        baseline=baseline,
        baseline_path="x.json",
    )
    validate_bench_record(record)
    by_case = {c["case"]: c for c in record["cases"]}
    assert by_case["case-a"]["speedup"] == pytest.approx(4.0)
    assert by_case["case-b"]["speedup"] is None  # not in the baseline
    validate_bench_record(make_table_record("legacy", "Title", "body text"))


@pytest.mark.parametrize(
    "mutate",
    [
        lambda r: r.update(schema="nope/9"),
        lambda r: r.update(kind="prose"),
        lambda r: r.update(scenario=""),
        lambda r: r.update(quick="yes"),
        lambda r: r.update(env={}),
        lambda r: r.update(cases=[]),
        lambda r: r["cases"][0].update(seconds=-1),
        lambda r: r["cases"][0].update(repeats=0),
        lambda r: r["cases"][0].update(speedup="fast"),
        lambda r: r["cases"][0].pop("case"),
    ],
)
def test_bench_record_validator_rejects_malformed(mutate):
    from repro.analysis.bench import make_bench_record, validate_bench_record

    record = make_bench_record(
        "refinement",
        [{"case": "case-a", "seconds": 0.25, "repeats": 3}],
        quick=True,
    )
    validate_bench_record(record)
    mutate(record)
    with pytest.raises(ReproError):
        validate_bench_record(record)


def test_bench_check_dir_gates_on_malformed_records(tmp_path):
    from repro.analysis.bench import check_bench_dir, run_bench

    out = tmp_path / "out"
    with pytest.raises(ReproError):
        check_bench_dir(str(out))  # missing directory
    written = run_bench(
        ["refinement"], quick=True, out_dir=str(out), baseline_path=None
    )
    assert [p.split("/")[-1] for p in written] == ["BENCH_refinement.json"]
    assert check_bench_dir(str(out)) == written
    (out / "BENCH_broken.json").write_text('{"schema": "nope"}')
    with pytest.raises(ReproError):
        check_bench_dir(str(out))


def test_bench_unknown_scenario_fails_fast(tmp_path):
    from repro.analysis.bench import run_bench

    with pytest.raises(ReproError):
        run_bench(
            ["no-such-scenario"],
            quick=True,
            out_dir=str(tmp_path),
            baseline_path=None,
        )
