"""Election index and feasibility: Proposition 2.1's characterization,
known values on constructions, Proposition 2.2's bound, and the
brute-force cross-check of the refinement shortcut."""

import math

import pytest

from repro.errors import InfeasibleGraphError
from repro.graphs import (
    PortGraphBuilder,
    clique,
    cycle_with_leader_gadget,
    hypercube,
    lollipop,
    path_graph,
    random_connected_graph,
    ring,
    star,
)
from repro.views import (
    election_index,
    explicit_view_tree,
    is_feasible,
    view_classes,
    view_partition_trace,
    views_of_graph,
)


class TestInfeasible:
    @pytest.mark.parametrize(
        "g",
        [ring(4), ring(7), clique(5), hypercube(3), path_graph(2)],
        ids=["ring4", "ring7", "clique5", "cube3", "path2"],
    )
    def test_symmetric_graphs_infeasible(self, g):
        assert not is_feasible(g)
        with pytest.raises(InfeasibleGraphError):
            election_index(g)

    def test_two_node_graph_infeasible(self):
        b = PortGraphBuilder(2)
        b.add_edge(0, 0, 1, 0)
        assert not is_feasible(b.build())


class TestKnownIndices:
    def test_index_at_least_one(self):
        """No graph has all node degrees distinct, so phi >= 1 always."""
        for g in (lollipop(4, 3), cycle_with_leader_gadget(7)):
            assert election_index(g) >= 1

    def test_midpoint_path(self):
        # path on 5 nodes: phi computed = minimum depth of distinct views
        g = path_graph(5)
        phi = election_index(g)
        views = views_of_graph(g, phi)
        assert len(set(views)) == g.n
        if phi > 0:
            assert len(set(views_of_graph(g, phi - 1))) < g.n

    @pytest.mark.parametrize("seed", [1, 4, 9, 16])
    def test_minimality_on_random(self, seed):
        g = random_connected_graph(12, extra_edges=6, seed=seed)
        if not is_feasible(g):
            pytest.skip("sampled graph infeasible")
        phi = election_index(g)
        assert len(set(views_of_graph(g, phi))) == g.n
        assert len(set(views_of_graph(g, phi - 1))) < g.n


class TestAgainstBruteForce:
    @pytest.mark.parametrize("seed", [2, 5, 7])
    def test_refinement_matches_explicit_trees(self, seed):
        """The refinement's classes at each depth equal brute-force
        equality of explicitly expanded view trees."""
        g = random_connected_graph(8, extra_edges=3, seed=seed)
        for depth in range(4):
            interned = views_of_graph(g, depth)
            explicit = [explicit_view_tree(g, v, depth) for v in g.nodes()]
            for u in g.nodes():
                for v in g.nodes():
                    assert (interned[u] is interned[v]) == (
                        explicit[u] == explicit[v]
                    )


class TestProposition22:
    """phi = O(D log(n/D)) — check the concrete inequality phi <=
    2 * D * (log2(n/D) + 2) on the corpus (a generous constant; the point
    is the shape, not the constant)."""

    @pytest.mark.parametrize("seed", [3, 6, 10, 21])
    def test_bound_random(self, seed):
        g = random_connected_graph(14, extra_edges=8, seed=seed)
        if not is_feasible(g):
            pytest.skip("sampled graph infeasible")
        phi = election_index(g)
        d = g.diameter()
        bound = 2 * d * (math.log2(max(2, g.n / d)) + 2)
        assert phi <= bound

    def test_bound_structured(self):
        for g in (lollipop(5, 4), cycle_with_leader_gadget(10)):
            phi = election_index(g)
            d = g.diameter()
            assert phi <= 2 * d * (math.log2(max(2, g.n / d)) + 2)


class TestPartitionDiagnostics:
    def test_trace_monotone(self):
        g = cycle_with_leader_gadget(8)
        trace = view_partition_trace(g)
        counts = [c for _, c in trace]
        assert counts == sorted(counts)
        assert counts[-1] == g.n

    def test_trace_stops_on_stabilization(self):
        trace = view_partition_trace(ring(6))
        counts = [c for _, c in trace]
        assert counts[-1] < 6

    def test_view_classes_partition(self):
        g = lollipop(4, 3)
        classes = view_classes(g, 1)
        all_nodes = sorted(v for nodes in classes.values() for v in nodes)
        assert all_nodes == list(g.nodes())
