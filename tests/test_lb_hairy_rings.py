"""Proposition 4.1: hairy rings, stretches, and the fooling-view
mechanics (nodes deep inside a stretch are indistinguishable, for a
bounded number of rounds, from nodes of the original hairy ring)."""

import pytest

from repro.errors import GraphStructureError
from repro.lowerbounds import (
    cut_of_hairy_ring,
    gamma_stretch,
    hairy_ring,
    prop41_fooling_graph,
)
from repro.views import is_feasible, views_of_graph

SIZES_A = [1, 2, 0, 3, 0]
SIZES_B = [0, 1, 3, 0, 2]


class TestHairyRing:
    def test_structure(self):
        g = hairy_ring(SIZES_A)
        assert g.n == 5 + sum(SIZES_A)
        assert g.degree(0) == 2 + SIZES_A[0]

    def test_feasible(self):
        assert is_feasible(hairy_ring(SIZES_A))
        assert is_feasible(hairy_ring([0, 0, 4]))

    def test_rejects_non_unique_max(self):
        with pytest.raises(GraphStructureError):
            hairy_ring([2, 1, 2])

    def test_rejects_small_ring(self):
        with pytest.raises(GraphStructureError):
            hairy_ring([3, 1])


class TestCutAndStretch:
    def test_cut_size(self):
        g = cut_of_hairy_ring(SIZES_A)
        # ring + stars + 2 pendant caps
        assert g.n == 5 + sum(SIZES_A) + 2

    def test_stretch_size(self):
        g = gamma_stretch(SIZES_A, 3)
        assert g.n == 3 * (5 + sum(SIZES_A)) + 2

    def test_stretch_layout(self):
        g, layout = gamma_stretch(SIZES_A, 3, with_layout=True)
        assert len(layout.copy_starts) == 3
        assert layout.first == layout.copy_starts[0]

    def test_rejects_gamma_one(self):
        with pytest.raises(GraphStructureError):
            gamma_stretch(SIZES_A, 1)


class TestFoolingViews:
    """The proof's engine: B^T of a ring node of the hairy ring H equals
    B^T of the corresponding node deep inside a stretch of H, as long as T
    is smaller than the distance to the stretch's irregularities."""

    def test_stretch_interior_matches_ring(self):
        gamma = 6
        h = hairy_ring(SIZES_A)
        s, layout = gamma_stretch(SIZES_A, gamma, with_layout=True)
        t = 4  # < one copy-length from the ends
        h_views = views_of_graph(h, t)
        s_views = views_of_graph(s, t)
        # w_1 of the middle copy of the stretch vs w_1 of the ring
        mid_first = layout.copy_starts[gamma // 2]
        assert s_views[mid_first] is h_views[0]

    def test_two_foci_share_views(self):
        """Two distinct deep nodes of the same stretch have equal B^T —
        the pair Proposition 4.1 uses to derail any fixed-advice algorithm."""
        gamma = 8
        s, layout = gamma_stretch(SIZES_A, gamma, with_layout=True)
        t = 4
        views = views_of_graph(s, t)
        a = layout.copy_starts[3]
        b = layout.copy_starts[5]
        assert a != b
        assert views[a] is views[b]

    def test_fooling_graph_is_hairy_ring_class(self):
        g, layout = prop41_fooling_graph([SIZES_A, SIZES_B], gamma=4, with_layout=True)
        assert is_feasible(g)
        # unique max degree at the hub
        degrees = sorted(g.degree(v) for v in g.nodes())
        assert degrees[-1] == g.degree(layout.hub)
        assert degrees[-2] < degrees[-1]

    def test_fooling_graph_foci_match_component_rings(self):
        """B^T at a focus of component j inside G equals B^T at the cut
        node of the original hairy ring H_j."""
        gamma = 6
        g, layout = prop41_fooling_graph(
            [SIZES_A, SIZES_B], gamma=gamma, with_layout=True
        )
        t = 4
        g_views = views_of_graph(g, t)
        for sizes, starts in zip([SIZES_A, SIZES_B], layout.stretch_copy_starts):
            h = hairy_ring(sizes)
            h_views = views_of_graph(h, t)
            focus = starts[gamma // 2]
            assert g_views[focus] is h_views[0]
