"""View wire format and byte-honest (strict) execution."""

import pytest
from hypothesis import HealthCheck, assume, given, settings
from hypothesis import strategies as st

from repro.core import compute_advice, verify_election
from repro.core.elect import ElectAlgorithm
from repro.core.generic import GenericAlgorithm
from repro.errors import CodingError, SimulationError
from repro.coding import Bits
from repro.graphs import cycle_with_leader_gadget, lollipop, random_connected_graph, ring
from repro.sim import run_sync
from repro.sim.strict import WireWrapped, wire_wrapped
from repro.views import election_index, is_feasible, views_of_graph
from repro.views.wire import decode_view_wire, encode_view_wire


class TestWireFormat:
    def test_round_trip_reinterns(self):
        """Decoding must return the *same interned object*."""
        for g in (ring(6), lollipop(4, 2), cycle_with_leader_gadget(7)):
            for depth in (0, 1, 3):
                for v in set(views_of_graph(g, depth)):
                    assert decode_view_wire(encode_view_wire(v)) is v

    @given(
        st.integers(min_value=4, max_value=12),
        st.integers(min_value=0, max_value=8),
        st.integers(min_value=0, max_value=10**6),
        st.integers(min_value=0, max_value=4),
    )
    @settings(max_examples=25, deadline=None,
              suppress_health_check=[HealthCheck.too_slow])
    def test_round_trip_random(self, n, extra, seed, depth):
        g = random_connected_graph(n, extra_edges=extra, seed=seed)
        for v in set(views_of_graph(g, depth)):
            assert decode_view_wire(encode_view_wire(v)) is v

    def test_wire_size_is_dag_not_tree(self):
        """Deep symmetric views have tiny DAGs: the wire format must not
        blow up exponentially."""
        v = views_of_graph(ring(8), 6)[0]
        wire = encode_view_wire(v)
        assert len(wire) < 100 * (v.depth + 1)
        assert v.tree_size() > 2**v.depth  # the tree *is* exponential

    def test_malformed_rejected(self):
        with pytest.raises(CodingError):
            decode_view_wire(Bits(""))
        with pytest.raises(CodingError):
            decode_view_wire(Bits("10"))

    def test_forward_reference_rejected(self):
        # hand-craft a record referencing itself
        from repro.coding.concat import concat_bits
        from repro.coding.integers import encode_uint

        record = concat_bits(
            [encode_uint(1), encode_uint(0), encode_uint(0)]
        )  # degree 1, child ref 0 = itself
        with pytest.raises(CodingError):
            decode_view_wire(concat_bits([record]))


class TestStrictExecution:
    def test_elect_strict_equals_fast(self):
        g = cycle_with_leader_gadget(6)
        bundle = compute_advice(g)
        fast = run_sync(g, ElectAlgorithm, advice=bundle.bits)
        strict = run_sync(g, wire_wrapped(ElectAlgorithm), advice=bundle.bits)
        assert strict.outputs == fast.outputs
        assert strict.election_time == fast.election_time
        assert verify_election(g, strict.outputs).leader == bundle.root

    def test_generic_strict(self):
        g = lollipop(4, 3)
        phi = election_index(g)
        fast = run_sync(g, lambda: GenericAlgorithm(phi))
        strict = run_sync(g, wire_wrapped(lambda: GenericAlgorithm(phi)))
        assert strict.outputs == fast.outputs

    def test_bits_counted(self):
        g = cycle_with_leader_gadget(6)
        bundle = compute_advice(g)
        instances = []

        def factory():
            w = WireWrapped(ElectAlgorithm())
            instances.append(w)
            return w

        run_sync(g, factory, advice=bundle.bits)
        assert all(w.bits_sent > 0 for w in instances)

    def test_non_com_message_rejected(self):
        class SendsInt:
            def setup(self, ctx):
                pass

            def compose(self, ctx):
                return {0: 42}

            def deliver(self, ctx, inbox):
                ctx.output(())

        with pytest.raises(SimulationError):
            run_sync(ring(4), wire_wrapped(SendsInt))

    def test_mixed_peers_rejected(self):
        """A strict node receiving raw (non-Bits) traffic must complain."""
        g = ring(4)
        bundleless = []

        class RawCom:
            def setup(self, ctx):
                from repro.sim.com import ViewAccumulator

                self.acc = ViewAccumulator(ctx.degree)

            def compose(self, ctx):
                return self.acc.outgoing()

            def deliver(self, ctx, inbox):
                ctx.output(())

        toggle = [True]

        def factory():
            toggle[0] = not toggle[0]
            return WireWrapped(RawCom()) if toggle[0] else RawCom()

        with pytest.raises(SimulationError):
            run_sync(g, factory, max_rounds=3)
