"""View wire format and byte-honest (strict) execution."""

import pytest
from hypothesis import HealthCheck, assume, given, settings
from hypothesis import strategies as st

from repro.core import compute_advice, verify_election
from repro.core.elect import ElectAlgorithm
from repro.core.generic import GenericAlgorithm
from repro.errors import CodingError, SimulationError
from repro.coding import Bits
from repro.graphs import cycle_with_leader_gadget, lollipop, random_connected_graph, ring
from repro.sim import run_sync
from repro.sim.strict import (
    MessagePlane,
    WireWrapped,
    seed_wire_wrapped,
    wire_wrapped,
)
from repro.views import (
    clear_view_caches,
    election_index,
    is_feasible,
    view_levels,
    views_of_graph,
)
from repro.views.wire import (
    _encode_view_wire_uncached,
    decode_view_wire,
    encode_view_wire,
)


class TestWireFormat:
    def test_round_trip_reinterns(self):
        """Decoding must return the *same interned object*."""
        for g in (ring(6), lollipop(4, 2), cycle_with_leader_gadget(7)):
            for depth in (0, 1, 3):
                for v in set(views_of_graph(g, depth)):
                    assert decode_view_wire(encode_view_wire(v)) is v

    @given(
        st.integers(min_value=4, max_value=12),
        st.integers(min_value=0, max_value=8),
        st.integers(min_value=0, max_value=10**6),
        st.integers(min_value=0, max_value=4),
    )
    @settings(max_examples=25, deadline=None,
              suppress_health_check=[HealthCheck.too_slow])
    def test_round_trip_random(self, n, extra, seed, depth):
        g = random_connected_graph(n, extra_edges=extra, seed=seed)
        for v in set(views_of_graph(g, depth)):
            assert decode_view_wire(encode_view_wire(v)) is v

    def test_wire_size_is_dag_not_tree(self):
        """Deep symmetric views have tiny DAGs: the wire format must not
        blow up exponentially."""
        v = views_of_graph(ring(8), 6)[0]
        wire = encode_view_wire(v)
        assert len(wire) < 100 * (v.depth + 1)
        assert v.tree_size() > 2**v.depth  # the tree *is* exponential

    def test_malformed_rejected(self):
        with pytest.raises(CodingError):
            decode_view_wire(Bits(""))
        with pytest.raises(CodingError):
            decode_view_wire(Bits("10"))

    def test_forward_reference_rejected(self):
        # hand-craft a record referencing itself
        from repro.coding.concat import concat_bits
        from repro.coding.integers import encode_uint

        record = concat_bits(
            [encode_uint(1), encode_uint(0), encode_uint(0)]
        )  # degree 1, child ref 0 = itself
        with pytest.raises(CodingError):
            decode_view_wire(concat_bits([record]))


class TestStrictExecution:
    def test_elect_strict_equals_fast(self):
        g = cycle_with_leader_gadget(6)
        bundle = compute_advice(g)
        fast = run_sync(g, ElectAlgorithm, advice=bundle.bits)
        strict = run_sync(g, wire_wrapped(ElectAlgorithm), advice=bundle.bits)
        assert strict.outputs == fast.outputs
        assert strict.election_time == fast.election_time
        assert verify_election(g, strict.outputs).leader == bundle.root

    def test_generic_strict(self):
        g = lollipop(4, 3)
        phi = election_index(g)
        fast = run_sync(g, lambda: GenericAlgorithm(phi))
        strict = run_sync(g, wire_wrapped(lambda: GenericAlgorithm(phi)))
        assert strict.outputs == fast.outputs

    def test_bits_counted(self):
        g = cycle_with_leader_gadget(6)
        bundle = compute_advice(g)
        instances = []

        def factory():
            w = WireWrapped(ElectAlgorithm())
            instances.append(w)
            return w

        run_sync(g, factory, advice=bundle.bits)
        assert all(w.bits_sent > 0 for w in instances)

    def test_non_com_message_rejected(self):
        class SendsInt:
            def setup(self, ctx):
                pass

            def compose(self, ctx):
                return {0: 42}

            def deliver(self, ctx, inbox):
                ctx.output(())

        with pytest.raises(SimulationError):
            run_sync(ring(4), wire_wrapped(SendsInt))

    def test_deep_views_do_not_recurse(self):
        """Regression: the codec and ``tree_size`` used to be recursive
        and hit the interpreter recursion limit on path/ring families
        where view depth is Theta(n).  Depth 2000 must work."""
        clear_view_caches()
        deep = None
        for level in view_levels(ring(4), max_depth=2000):
            deep = level[0]
        assert deep.depth == 2000
        fast = encode_view_wire(deep)
        assert fast.as_str() == _encode_view_wire_uncached(deep).as_str()
        assert decode_view_wire(fast) is deep
        assert deep.tree_size() > 0

    def test_bits_sent_exact_under_codec_caches(self):
        """The tentpole's exactness pin: a cached (fast) strict run and a
        seed (uncached, per-message) strict run must agree on every
        observable — outputs, rounds, per-round message counts and each
        node's ``bits_sent`` — because every cache hit returns the
        byte-identical wire the seed path would build."""
        for g in (cycle_with_leader_gadget(6), lollipop(5, 4)):
            bundle = compute_advice(g)

            def run_capture(make):
                instances = []

                def factory():
                    a = make()
                    instances.append(a)
                    return a

                result = run_sync(g, factory, advice=bundle.bits)
                return result, [a.bits_sent for a in instances]

            clear_view_caches()
            fast, fast_bits = run_capture(wire_wrapped(ElectAlgorithm))
            clear_view_caches()
            seed, seed_bits = run_capture(seed_wire_wrapped(ElectAlgorithm))
            assert fast.outputs == seed.outputs
            assert fast.output_round == seed.output_round
            assert fast.rounds == seed.rounds
            assert fast.total_messages == seed.total_messages
            assert fast.per_round_messages == seed.per_round_messages
            assert fast_bits == seed_bits

    def test_message_plane_dedups_and_counts(self):
        """All nodes of a run share one plane; repeated (port, view)
        messages and repeated wire strings must hit its caches, and the
        counters must account for every codec call."""
        g = lollipop(5, 4)
        bundle = compute_advice(g)
        clear_view_caches()
        plane = MessagePlane()
        result = run_sync(
            g, wire_wrapped(ElectAlgorithm, plane), advice=bundle.bits
        )
        stats = plane.stats()
        # every sent message was encoded through the plane and every
        # received one decoded through it
        assert stats["encode_calls"] == result.total_messages
        assert stats["decode_calls"] == result.total_messages
        # dedup must actually fire: a node's view is sent through several
        # ports and received by several neighbors each round
        assert 0 < stats["encode_hits"] < stats["encode_calls"]
        assert 0 < stats["decode_hits"] < stats["decode_calls"]

    def test_message_plane_cleared_with_view_caches(self):
        """A plane surviving ``clear_view_caches`` would serve interned
        views from before the clear — the lifecycle contract forbids
        mixing those with fresh ones."""
        g = lollipop(4, 3)
        bundle = compute_advice(g)
        clear_view_caches()
        plane = MessagePlane()
        run_sync(g, wire_wrapped(ElectAlgorithm, plane), advice=bundle.bits)
        assert plane._encode_cache and plane._decode_cache
        clear_view_caches()
        assert not plane._encode_cache
        assert not plane._decode_cache
        assert not plane._doubled_view

    def test_mixed_peers_rejected(self):
        """A strict node receiving raw (non-Bits) traffic must complain."""
        g = ring(4)
        bundleless = []

        class RawCom:
            def setup(self, ctx):
                from repro.sim.com import ViewAccumulator

                self.acc = ViewAccumulator(ctx.degree)

            def compose(self, ctx):
                return self.acc.outgoing()

            def deliver(self, ctx, inbox):
                ctx.output(())

        toggle = [True]

        def factory():
            toggle[0] = not toggle[0]
            return WireWrapped(RawCom()) if toggle[0] else RawCom()

        with pytest.raises(SimulationError):
            run_sync(g, factory, max_rounds=3)
