"""The conformance subsystem: schedulers, the algorithm registry, the
differential oracle, multi-record engine plumbing, and the CLI."""

import json

import pytest

from repro.cli import main as cli_main
from repro.conformance import (
    ALGORITHMS,
    ConformanceConfig,
    conformance_entry,
    conformance_task_name,
    get_algorithm,
    profile_graph,
)
from repro.core import compute_advice, leaders_equivalent
from repro.core.elect import ElectAlgorithm
from repro.corpus import iter_corpus
from repro.engine import (
    EngineConfig,
    ResultStore,
    get_task,
    load_records,
    records_to_jsonl,
    run_experiments,
    run_stream,
)
from repro.engine.records import record_to_json
from repro.errors import (
    ConformanceError,
    EngineError,
    SimulationError,
)
from repro.graphs import (
    cycle_with_leader_gadget,
    grid_torus,
    lollipop,
    path_graph,
    ring,
)
from repro.sim import (
    AsyncEngine,
    DelayOneNodeScheduler,
    RandomDelayScheduler,
    ReverseDeliveryScheduler,
    make_schedules,
    run_async,
    run_sync,
)
from repro.sim.schedulers import Schedule


# ----------------------------------------------------------------------
# schedulers
# ----------------------------------------------------------------------
class TestSchedulers:
    def test_random_scheduler_is_seed_deterministic(self):
        a = RandomDelayScheduler(7)
        b = RandomDelayScheduler(7)
        delays_a = [a.delay(0, 0, 1, 0, 1, i) for i in range(50)]
        delays_b = [b.delay(0, 0, 1, 0, 1, i) for i in range(50)]
        assert delays_a == delays_b
        assert all(0.01 <= d <= 10.0 for d in delays_a)

    def test_delay_one_node_slows_only_the_victim(self):
        s = DelayOneNodeScheduler(victim_index=5, seed=1, slowdown=25.0)
        s.bind(3)  # victim 5 % 3 == 2
        to_victim = [s.delay(0, 0, 2, 0, 1, i) for i in range(30)]
        s2 = DelayOneNodeScheduler(victim_index=5, seed=1, slowdown=25.0)
        s2.bind(3)
        to_other = [s2.delay(0, 0, 1, 0, 1, i) for i in range(30)]
        # same seed, same draw sequence: victim traffic is exactly the
        # slowdown multiple of the corresponding non-victim delay
        for victim_delay, other_delay in zip(to_victim, to_other):
            assert victim_delay == pytest.approx(25.0 * other_delay)

    def test_reverse_delivery_reverses_same_instant_sends(self):
        s = ReverseDeliveryScheduler()
        d = [s.delay(0, 0, 1, 0, 1, seq) for seq in range(10)]
        assert d == sorted(d, reverse=True)
        assert all(x > 0 for x in d)

    def test_roster_is_deterministic_and_prefix_stable(self):
        names = [sch.name for sch in make_schedules(7, seed=3)]
        assert names == [sch.name for sch in make_schedules(7, seed=3)]
        assert names[:4] == [sch.name for sch in make_schedules(4, seed=3)]
        # all three adversary kinds appear
        assert any(n.startswith("random") for n in names)
        assert "reverse" in names
        assert any(n.startswith("delay-node") for n in names)

    def test_roster_slots_are_all_distinct(self):
        # no duplicate adversaries (e.g. the second reverse slot widens
        # its horizon instead of repeating the first)
        names = [sch.name for sch in make_schedules(9, seed=0)]
        assert len(set(names)) == 9, names

    def test_roster_schedules_give_identical_async_outputs(self):
        g = cycle_with_leader_gadget(6)
        bundle = compute_advice(g)
        base = run_sync(g, ElectAlgorithm, advice=bundle.bits)
        for schedule in make_schedules(4, seed=1):
            hostile = AsyncEngine(
                g,
                ElectAlgorithm,
                advice=bundle.bits,
                scheduler=schedule.make(),
                max_rounds=100,
            ).run()
            assert hostile.outputs == base.outputs, schedule.name
            assert hostile.output_round == base.output_round, schedule.name

    def test_nonpositive_delay_is_rejected(self):
        class BadScheduler:
            def delay(self, *args):
                return 0.0

        g = ring(4)
        from repro.core.generic import GenericAlgorithm

        with pytest.raises(SimulationError, match="non-positive"):
            AsyncEngine(
                g, lambda: GenericAlgorithm(1), scheduler=BadScheduler()
            ).run()

    def test_async_advice_map_matches_sync(self):
        from repro.baselines import LabelingSchemeAlgorithm, labeling_advice_map

        g = ring(5)  # infeasible, but the labeling scheme does not care
        advice_map = labeling_advice_map(g, leader=0)
        base = run_sync(
            g, LabelingSchemeAlgorithm, advice_map=advice_map, max_rounds=1
        )
        hostile = AsyncEngine(
            g, LabelingSchemeAlgorithm, advice_map=advice_map
        ).run()
        assert hostile.outputs == base.outputs

    def test_async_rejects_both_advice_forms(self):
        from repro.coding import Bits

        with pytest.raises(SimulationError, match="not both"):
            AsyncEngine(
                ring(4),
                ElectAlgorithm,
                advice=Bits("1"),
                advice_map={0: Bits("1")},
            )

    def test_legacy_seed_behavior_unchanged(self):
        # AsyncEngine(seed=s) must still mean RandomDelayScheduler(s)
        g = cycle_with_leader_gadget(6)
        bundle = compute_advice(g)
        by_seed = run_async(g, ElectAlgorithm, advice=bundle.bits, seed=5)
        by_sched = AsyncEngine(
            g,
            ElectAlgorithm,
            advice=bundle.bits,
            scheduler=RandomDelayScheduler(5),
        ).run()
        assert by_seed.outputs == by_sched.outputs
        assert by_seed.total_messages == by_sched.total_messages


# ----------------------------------------------------------------------
# outcome equivalence
# ----------------------------------------------------------------------
class TestLeaderEquivalence:
    def test_ring_nodes_are_all_equivalent(self):
        g = ring(6)
        assert leaders_equivalent(g, 0, 4)

    def test_rigid_graph_distinguishes_nodes(self):
        g = cycle_with_leader_gadget(6)  # feasible => rigid
        assert leaders_equivalent(g, 2, 2)
        assert not leaders_equivalent(g, 0, 1)

    def test_degree_mismatch_is_cheaply_refused(self):
        g = lollipop(4, 2)
        hub = max(g.nodes(), key=g.degree)
        leaf = min(g.nodes(), key=g.degree)
        assert not leaders_equivalent(g, hub, leaf)


# ----------------------------------------------------------------------
# the algorithm registry
# ----------------------------------------------------------------------
class TestAlgorithmRegistry:
    def test_registry_contents(self):
        assert set(ALGORITHMS) == {
            "elect",
            "known-d-phi",
            "map-based",
            "naive-rank",
            "tree-no-advice",
            "labeling-scheme",
        }

    def test_unknown_algorithm_raises(self):
        with pytest.raises(ConformanceError, match="unknown election"):
            get_algorithm("quantum-elect")

    def test_gates(self):
        torus = grid_torus(3, 3)
        profile = profile_graph(torus)
        assert not profile.feasible
        assert get_algorithm("elect").applicable(torus, profile) is not None
        assert (
            get_algorithm("labeling-scheme").applicable(torus, profile) is None
        )
        tree = path_graph(4)  # odd-length path: feasible tree
        tprof = profile_graph(tree)
        assert tprof.is_tree
        if tprof.feasible:
            assert (
                get_algorithm("tree-no-advice").applicable(tree, tprof) is None
            )
        assert get_algorithm("tree-no-advice").applicable(torus, profile)

    def test_profile_matches_views(self):
        g = cycle_with_leader_gadget(6)
        profile = profile_graph(g)
        from repro.views import election_index

        assert profile.feasible
        assert profile.phi == election_index(g)
        assert profile.is_tree is False


# ----------------------------------------------------------------------
# the oracle
# ----------------------------------------------------------------------
class TestOracle:
    def test_feasible_entry_is_clean_and_grouped(self):
        g = cycle_with_leader_gadget(6)
        records = conformance_entry("gadget6", g, ConformanceConfig(schedules=2))
        summary = records[-1]
        assert summary["name"] == summary["entry"] == "gadget6"
        assert summary["feasible"] is True
        assert summary["total_disagreements"] == 0
        subs = records[:-1]
        assert all(r["entry"] == "gadget6" for r in subs)
        assert all(r["name"].startswith("gadget6/") for r in subs)
        assert set(summary["algorithms"]) == {r["algorithm"] for r in subs}
        # every per-algorithm sub-record covered local, strict, async and
        # strict-async; the orbit-collapse rule compares engines, not sim
        # models, so its model axis is its own
        for r in subs:
            if r["algorithm"] == "orbit-collapse":
                assert "probe[pernode]" in r["models"]
                assert "probe[orbit]" in r["models"]
                assert "elect[orbit]" in r["models"]  # gadget6 is feasible
                continue
            assert "local" in r["models"] and "strict" in r["models"]
            assert any(m.startswith("async[") for m in r["models"])
            assert any(m.startswith("strict-async[") for m in r["models"])

    def test_infeasible_entry_runs_labeling_scheme_only(self):
        records = conformance_entry("torus", grid_torus(3, 3))
        summary = records[-1]
        assert summary["feasible"] is False
        assert summary["algorithms"] == ["labeling-scheme", "orbit-collapse"]
        assert "elect" in summary["skipped"]
        assert summary["total_disagreements"] == 0

    def test_orbit_check_knob_and_subset_filtering(self):
        """The collapsed-vs-full rule is on by default, off under
        ``orbit_check=False``, and — like any algorithm — skipped by a
        subset that omits it and kept by one that names it."""
        g = grid_torus(3, 3)
        on = conformance_entry("t", g, ConformanceConfig(schedules=1))
        off = conformance_entry(
            "t", g, ConformanceConfig(schedules=1, orbit_check=False)
        )
        assert "orbit-collapse" in on[-1]["algorithms"]
        assert "orbit-collapse" not in off[-1]["algorithms"]
        only = conformance_entry(
            "t",
            g,
            ConformanceConfig(schedules=1, algorithms=("orbit-collapse",)),
        )
        assert only[-1]["algorithms"] == ["orbit-collapse"]
        assert only[-1]["total_disagreements"] == 0

    def test_min_view_leaders_coincide(self):
        g = cycle_with_leader_gadget(8)
        records = conformance_entry("gadget8", g, ConformanceConfig(schedules=1))
        leaders = {
            r["algorithm"]: r["leader"]
            for r in records[:-1]
            if r["leader_rule"] == "min-view"
        }
        assert len(set(leaders.values())) == 1

    def test_algorithm_subset_filter(self):
        g = cycle_with_leader_gadget(6)
        records = conformance_entry(
            "gadget6",
            g,
            ConformanceConfig(schedules=1, algorithms=("elect", "map-based")),
        )
        assert records[-1]["algorithms"] == ["elect", "map-based"]

    def test_task_name_is_canonical(self):
        assert conformance_task_name() == "conformance"
        assert (
            conformance_task_name(schedules=5, seed=2)
            == "conformance:schedules=5,seed=2"
        )

    def test_bare_task_name_matches_default_schedules(self):
        """The factory's default roster must be DEFAULT_SCHEDULES — the
        constant conformance_task_name's canonicalization relies on."""
        from repro.conformance.oracle import DEFAULT_SCHEDULES

        records = get_task("conformance")("t", grid_torus(3, 3))
        assert records[-1]["schedules"] == DEFAULT_SCHEDULES

    def test_run_failures_are_recorded_not_raised(self):
        """A model run that blows its round budget (or any ReproError) is
        a recorded disagreement; the sweep must never abort."""
        from repro.conformance.algorithms import (
            AlgorithmSpec,
            Prepared,
            register_algorithm,
        )
        from repro.core.advice import compute_advice

        def bad_prepare(g, profile):
            bundle = compute_advice(g)
            return Prepared(
                factory=ElectAlgorithm,
                advice=bundle.bits,
                advice_bits=bundle.size_bits,
                max_rounds=1,  # < phi: the sync run must overrun
                time_bound=("==", bundle.phi),
            )

        register_algorithm(
            AlgorithmSpec(
                name="zz-bad-budget",
                leader_rule="trie-label",
                applicable=lambda g, p: None,
                prepare=bad_prepare,
            )
        )
        try:
            records = conformance_entry(
                "t",
                cycle_with_leader_gadget(6),
                ConformanceConfig(schedules=1, algorithms=("zz-bad-budget",)),
            )
        finally:
            del ALGORITHMS["zz-bad-budget"]
        kinds = {d["kind"] for d in records[0]["disagreements"]}
        assert "run-failed" in kinds
        assert records[-1]["total_disagreements"] > 0

    def test_prepare_failures_are_recorded_not_raised(self):
        from repro.conformance.algorithms import AlgorithmSpec, register_algorithm

        def broken_prepare(g, profile):
            raise SimulationError("synthetic prepare explosion")

        register_algorithm(
            AlgorithmSpec(
                name="zz-broken",
                leader_rule="pinned",
                applicable=lambda g, p: None,
                prepare=broken_prepare,
            )
        )
        try:
            records = conformance_entry(
                "t",
                cycle_with_leader_gadget(6),
                ConformanceConfig(schedules=1, algorithms=("zz-broken",)),
            )
        finally:
            del ALGORITHMS["zz-broken"]
        assert records[0]["disagreements"][0]["kind"] == "prepare-failed"
        assert records[0]["cells"] == 0


# ----------------------------------------------------------------------
# engine plumbing: parameterized names, multi-record, store groups
# ----------------------------------------------------------------------
class TestEnginePlumbing:
    def test_parameterized_task_resolution(self):
        assert callable(get_task("conformance"))
        assert callable(get_task("conformance:schedules=1,seed=4"))
        with pytest.raises(EngineError, match="no parameters"):
            get_task("elect:schedules=1")
        with pytest.raises(EngineError, match="bad parameters"):
            get_task("conformance:warp=9")
        with pytest.raises(EngineError, match="not an integer"):
            get_task("conformance:schedules=many")
        with pytest.raises(EngineError, match="unknown engine task"):
            get_task("conformal")

    def test_records_carry_the_sweep_task_string(self):
        g = grid_torus(3, 3)
        task = get_task("conformance:seed=0,schedules=1")  # reordered keys
        records = task("t", g)
        assert all(r["task"] == "conformance:seed=0,schedules=1" for r in records)

    def test_multi_record_parallel_equals_serial(self):
        corpus = list(iter_corpus("lifts:4"))
        serial = run_experiments(
            corpus, task="conformance:schedules=1,seed=0", workers=1
        )
        parallel = run_experiments(
            corpus,
            task="conformance:schedules=1,seed=0",
            workers=3,
            chunk_size=1,
        )
        assert records_to_jsonl(serial) == records_to_jsonl(parallel)
        # groups are contiguous: each summary directly follows its subs
        entries = [r["entry"] for r in serial]
        assert entries == sorted(entries, key=entries.index)

    def test_store_truncates_unterminated_group(self, tmp_path):
        path = str(tmp_path / "store.jsonl")
        group = [
            {"task": "t", "name": "e1/a", "entry": "e1", "x": 1},
            {"task": "t", "name": "e1", "entry": "e1", "x": 2},
            {"task": "t", "name": "e2/a", "entry": "e2", "x": 3},
        ]
        with open(path, "w", encoding="utf-8") as fh:
            for r in group:
                fh.write(record_to_json(r) + "\n")
        with ResultStore(path, resume=True) as store:
            assert ("e1", "t") in store
            assert ("e1/a", "t") in store
            assert ("e2/a", "t") not in store  # truncated with its group
        lines = [l for l in open(path, encoding="utf-8") if l.strip()]
        assert len(lines) == 2
        assert json.loads(lines[-1])["name"] == "e1"

    def test_store_resume_is_byte_identical_after_group_tear(self, tmp_path):
        from repro.analysis.sweep import sweep_to_store

        task = "conformance:schedules=1,seed=0"

        def corpus():
            return iter_corpus("lifts:3")

        ref_path = str(tmp_path / "ref.jsonl")
        with ResultStore(ref_path) as store:
            sweep_to_store(corpus(), task, store)
        ref = open(ref_path, "rb").read()

        # tear mid-second-group, plus a torn final line
        torn_path = str(tmp_path / "torn.jsonl")
        lines = ref.split(b"\n")
        with open(torn_path, "wb") as fh:
            fh.write(b"\n".join(lines[:3]) + b"\n" + lines[3][:17])
        with ResultStore(torn_path, resume=True) as store:
            sweep_to_store(corpus(), task, store)
        assert open(torn_path, "rb").read() == ref

    def test_single_record_stores_unaffected_by_group_logic(self, tmp_path):
        path = str(tmp_path / "plain.jsonl")
        with ResultStore(path) as store:
            for r in run_stream(iter_corpus("lifts:3"), "index", EngineConfig()):
                store.append(r)
        data = open(path, "rb").read()
        with ResultStore(path, resume=True) as store:
            assert len(store) == 3
        assert open(path, "rb").read() == data


# ----------------------------------------------------------------------
# CLI
# ----------------------------------------------------------------------
class TestConformanceCli:
    def test_cli_clean_run_exits_zero(self, tmp_path, capsys):
        out = str(tmp_path / "c.jsonl")
        rc = cli_main(
            [
                "conformance",
                "--families",
                "lifts",
                "--count",
                "2",
                "--schedules",
                "1",
                "--out",
                out,
            ]
        )
        assert rc == 0
        text = capsys.readouterr().out
        assert "zero disagreements" in text
        assert len(list(load_records(out))) > 2

    def test_cli_summary_filters_by_task_parameterization(
        self, tmp_path, capsys
    ):
        """A store holding sweeps of two parameterizations must be
        summarized per task string, not double-counted."""
        out = str(tmp_path / "mixed.jsonl")
        base = ["conformance", "--families", "lifts", "--count", "2", "--out", out]
        assert cli_main(base + ["--schedules", "1"]) == 0
        capsys.readouterr()
        assert cli_main(base + ["--schedules", "2", "--resume"]) == 0
        text = capsys.readouterr().out
        # both sweeps' records are in the file, but the summary counts
        # only the schedules=2 task: 2 entries, not 4
        assert "2 entries" in text
        # 2 entries x 2 tasks x 3 records (labeling-scheme, orbit-collapse,
        # summary) per group
        assert len(list(load_records(out))) == 12

    def test_cli_resume_requires_out(self, capsys):
        rc = cli_main(["conformance", "--resume"])
        assert rc == 2
        assert "--resume requires --out" in capsys.readouterr().err

    def test_cli_rejects_empty_families(self, capsys):
        rc = cli_main(["conformance", "--families", " , "])
        assert rc == 2

    def test_cli_reports_disagreements_nonzero_exit(self, tmp_path, capsys):
        # forge a store with one disagreement record and summarize it
        from repro.analysis import summarize_conformance

        records = [
            {
                "task": "conformance",
                "name": "x-s0-0/elect",
                "entry": "x-s0-0",
                "algorithm": "elect",
                "cells": 3,
                "disagreements": [{"kind": "outputs", "detail": "boom"}],
            },
            {
                "task": "conformance",
                "name": "x-s0-0",
                "entry": "x-s0-0",
                "feasible": True,
                "cells": 3,
                "disagreements": [],
                "total_disagreements": 1,
            },
        ]
        summary = summarize_conformance(records)
        assert not summary.clean
        assert summary.disagreement_entries == ["x-s0-0"]
        assert summary.by_family["x"]["disagreements"] == 1
