"""Counting arithmetic for the lower bounds, plus the analysis helpers."""

import math

import pytest

from repro.analysis import fit_ratio, format_markdown_table, format_table
from repro.analysis.sweep import corpus_with_phi, sweep_elect
from repro.lowerbounds import (
    advice_bits_required,
    thm32_lower_bound_bits,
    thm33_lower_bound_bits,
)
from repro.views import election_index


class TestAdviceBitsRequired:
    def test_small_counts(self):
        assert advice_bits_required(1) == 0
        assert advice_bits_required(2) == 1  # strings of length <=0: just ""
        assert advice_bits_required(3) == 1
        assert advice_bits_required(4) == 2
        assert advice_bits_required(7) == 2
        assert advice_bits_required(8) == 3

    def test_counting_identity(self):
        """2^{L+1} - 1 strings of length <= L."""
        for m in (1, 5, 100, 10**6):
            L = advice_bits_required(m)
            assert 2 ** (L + 1) - 1 >= m
            if L > 0:
                assert 2**L - 1 < m

    def test_rejects_zero(self):
        with pytest.raises(ValueError):
            advice_bits_required(0)


class TestTheoremComparators:
    def test_thm32_shape(self):
        """Forced bits track Omega(n log log n): the ratio stays bounded
        below and does not collapse as k grows."""
        rows = [thm32_lower_bound_bits(k) for k in (8, 32, 128, 1024)]
        ratios = [r["ratio"] for r in rows]
        assert all(r > 0.05 for r in ratios)
        # log((k-1)!) ~ k log k grows strictly
        bits = [r["advice_bits_forced"] for r in rows]
        assert bits == sorted(bits)

    def test_thm33_shape(self):
        rows = [thm33_lower_bound_bits(k, phi=3, x=4) for k in (8, 64, 512)]
        assert all(r["family_size"] == 5 ** (r["k"] - 3) for r in rows)
        bits = [r["advice_bits_forced"] for r in rows]
        assert bits == sorted(bits)

    def test_thm32_factorial_count(self):
        assert thm32_lower_bound_bits(6)["family_size"] == math.factorial(5)


class TestAnalysisHelpers:
    def test_format_table(self):
        text = format_table(["a", "bb"], [[1, 2.5], [10, 0.001]])
        lines = text.splitlines()
        assert len(lines) == 4
        assert "a" in lines[0] and "--" in lines[1]

    def test_format_markdown(self):
        text = format_markdown_table(["x"], [[3]])
        assert text.splitlines()[0] == "| x |"

    def test_fit_ratio(self):
        a, dev = fit_ratio([1, 2, 3], [2, 4, 6])
        assert abs(a - 2) < 1e-9
        assert dev < 1e-9

    def test_fit_ratio_rejects_empty(self):
        with pytest.raises(ValueError):
            fit_ratio([], [])


class TestCorpusGenerators:
    @pytest.mark.parametrize("phi", [1, 2, 3])
    def test_corpus_with_phi_delivers(self, phi):
        for name, g in corpus_with_phi(phi, sizes=(4, 5)):
            assert election_index(g) == phi, name

    def test_sweep_elect_records(self):
        records = sweep_elect(corpus_with_phi(1, sizes=(4,)))
        assert len(records) == 1
        rec = records[0]
        assert rec.phi == 1
        assert rec.advice_bits > 0
        assert rec.bits_per_nlogn > 0
