"""Exhaustive verification on ALL small connected graphs.

The networkx graph atlas enumerates every graph on up to 7 nodes; we take
every *connected* graph on 3..5 nodes, give it two different legal port
assignments, and verify, for each resulting anonymous network:

* the refinement-based election index agrees with brute-force explicit
  view-tree comparison at every relevant depth;
* feasibility implies the absence of a nontrivial port-automorphism
  (the easy direction of Yamashita-Kameda, checked exactly);
* on every feasible instance, the full Theorem 3.1 pipeline succeeds
  (valid election, time exactly phi, labels bijective);
* Generic(phi) succeeds within D + phi + 1.

On top of that, the cross-model conformance oracle
(:mod:`repro.conformance`) sweeps *all* port-numbered graphs up to 6
nodes: every connected shape on 3..6 nodes under two port assignments,
plus — for shapes on <= 4 nodes — **every legal port assignment there
is**.  Any disagreement between the synchronous, strict-wire and
adversarial-async models is a hard failure that prints a minimized
repro (instances are swept smallest-first, so the first failure is a
smallest witness; its graph JSON reconstructs it exactly).

This is the library's strongest correctness artifact: nothing on <= 6
nodes can be wrong without this file failing.
"""

import itertools

import networkx as nx
import pytest

from repro.conformance import ConformanceConfig, conformance_entry
from repro.core import compute_advice, run_elect, run_generic
from repro.graphs import from_networkx, to_json
from repro.graphs.isomorphism import port_automorphism_exists
from repro.graphs.port_graph import PortGraphBuilder
from repro.views import (
    election_index,
    explicit_view_tree,
    is_feasible,
    view_nested_tuple,
    views_of_graph,
)


def _small_connected_instances():
    """All connected atlas graphs on 3..5 nodes, each with the canonical
    and one seeded port assignment."""
    instances = []
    for atlas_graph in nx.graph_atlas_g():
        n = atlas_graph.number_of_nodes()
        if not (3 <= n <= 5):
            continue
        if atlas_graph.number_of_edges() == 0 or not nx.is_connected(atlas_graph):
            continue
        gid = f"atlas-{atlas_graph.name or id(atlas_graph)}"
        instances.append((f"{gid}-canonical", from_networkx(atlas_graph)))
        instances.append((f"{gid}-seeded", from_networkx(atlas_graph, seed=7)))
    return instances


INSTANCES = _small_connected_instances()


def test_enumeration_is_substantial():
    # 3..5-node connected graphs: 2 + 6 + 21 = 29 shapes, x2 assignments
    assert len(INSTANCES) == 58


@pytest.mark.parametrize("name_g", INSTANCES, ids=lambda p: p[0])
def test_refinement_matches_bruteforce(name_g):
    _, g = name_g
    for depth in range(0, 4):
        interned = views_of_graph(g, depth)
        explicit = [explicit_view_tree(g, v, depth) for v in g.nodes()]
        for u in g.nodes():
            assert view_nested_tuple(interned[u]) == explicit[u]


@pytest.mark.parametrize("name_g", INSTANCES, ids=lambda p: p[0])
def test_feasible_implies_rigid(name_g):
    _, g = name_g
    if is_feasible(g):
        assert not port_automorphism_exists(g)


@pytest.mark.parametrize("name_g", INSTANCES, ids=lambda p: p[0])
def test_full_pipeline_on_feasible(name_g):
    _, g = name_g
    if not is_feasible(g):
        pytest.skip("infeasible instance")
    record = run_elect(g)  # asserts validity + time == phi internally
    assert sorted(compute_advice(g).labels.values()) == list(range(1, g.n + 1))
    phi = election_index(g)
    run_generic(g, phi)  # asserts D + phi + 1 internally


def test_feasibility_rate_sane():
    """Sanity on the corpus itself: both feasible and infeasible instances
    must be present (the atlas includes rigid and symmetric shapes)."""
    flags = [is_feasible(g) for _, g in INSTANCES]
    assert any(flags) and not all(flags)


# ----------------------------------------------------------------------
# the conformance oracle over all port-numbered graphs up to 6 nodes
# ----------------------------------------------------------------------
def _connected_atlas(min_n, max_n):
    for atlas_graph in nx.graph_atlas_g():
        n = atlas_graph.number_of_nodes()
        if not (min_n <= n <= max_n):
            continue
        if atlas_graph.number_of_edges() == 0 or not nx.is_connected(atlas_graph):
            continue
        yield atlas_graph


def _all_port_assignments(nxg):
    """Every legal port numbering of a (small!) networkx graph: one
    permutation of incident edges per node, in deterministic order."""
    nodes = sorted(nxg.nodes())
    index = {v: i for i, v in enumerate(nodes)}
    edges = sorted(tuple(sorted((index[u], index[v]))) for u, v in nxg.edges())
    incident = {i: [e for e in edges if i in e] for i in range(len(nodes))}
    slot = {
        e: {u: incident[u].index(e) for u in e} for e in edges
    }
    perm_sets = [
        list(itertools.permutations(range(len(incident[i]))))
        for i in range(len(nodes))
    ]
    for combo in itertools.product(*perm_sets):
        builder = PortGraphBuilder(len(nodes))
        for e in edges:
            u, v = e
            builder.add_edge(u, combo[u][slot[e][u]], v, combo[v][slot[e][v]])
        yield builder.build()


def _conformance_instances():
    """Connected atlas shapes on 3..6 nodes, canonical + seeded ports,
    smallest shapes first (the atlas is ordered by (n, m))."""
    out = []
    for atlas_graph in _connected_atlas(3, 6):
        gid = f"atlas-{atlas_graph.name or id(atlas_graph)}"
        out.append((f"{gid}-canonical", from_networkx(atlas_graph)))
        out.append((f"{gid}-seeded", from_networkx(atlas_graph, seed=7)))
    return out


CONFORMANCE_INSTANCES = _conformance_instances()

#: Small roster, but covering all three adversary kinds via two entries
#: (random + reverse); the exhaustive sweep below adds delay-node runs.
_ORACLE_CONFIG = ConformanceConfig(schedules=2)


def _fail_with_repro(name, g, summary):
    problems = list(summary["disagreements"])
    pytest.fail(
        "conformance disagreement on a small graph — minimized repro:\n"
        f"  instance: {name} (n = {summary['n']}, m = {summary['m']})\n"
        f"  graph JSON: {to_json(g)}\n"
        f"  total disagreements: {summary['total_disagreements']}\n"
        f"  summary-level: {problems}\n"
        "  (sub-record disagreements are listed in the per-algorithm "
        "records; re-run conformance_entry on the graph JSON to see them)"
    )


def test_conformance_instances_cover_all_small_shapes():
    # connected shapes: 2 (n=3) + 6 (n=4) + 21 (n=5) + 112 (n=6), x2 ports
    assert len(CONFORMANCE_INSTANCES) == 2 * (2 + 6 + 21 + 112)


@pytest.mark.parametrize("name_g", CONFORMANCE_INSTANCES, ids=lambda p: p[0])
def test_conformance_oracle_atlas_up_to_6(name_g):
    name, g = name_g
    records = conformance_entry(name, g, _ORACLE_CONFIG)
    summary = records[-1]
    if summary["total_disagreements"]:
        _fail_with_repro(name, g, summary)


def test_conformance_oracle_every_port_assignment_up_to_4():
    """ALL port-numbered graphs on <= 4 nodes (every shape x every legal
    port assignment), swept smallest-first through the full oracle — the
    first disagreement is a smallest witness and fails hard."""
    config = ConformanceConfig(schedules=3)
    count = 0
    for atlas_graph in _connected_atlas(3, 4):
        gid = f"atlas-{atlas_graph.name or id(atlas_graph)}"
        for k, g in enumerate(_all_port_assignments(atlas_graph)):
            name = f"{gid}-ports{k}"
            records = conformance_entry(name, g, config)
            summary = records[-1]
            if summary["total_disagreements"]:
                _fail_with_repro(name, g, summary)
            count += 1
    # 3-node shapes: 2 + 8; 4-node shapes: 4 + 6 + 16 + 24 + 144 + 1296
    assert count == 1500
