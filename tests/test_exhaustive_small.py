"""Exhaustive verification on ALL small connected graphs.

The networkx graph atlas enumerates every graph on up to 7 nodes; we take
every *connected* graph on 3..5 nodes, give it two different legal port
assignments, and verify, for each resulting anonymous network:

* the refinement-based election index agrees with brute-force explicit
  view-tree comparison at every relevant depth;
* feasibility implies the absence of a nontrivial port-automorphism
  (the easy direction of Yamashita-Kameda, checked exactly);
* on every feasible instance, the full Theorem 3.1 pipeline succeeds
  (valid election, time exactly phi, labels bijective);
* Generic(phi) succeeds within D + phi + 1.

This is the library's strongest correctness artifact: nothing on <= 5
nodes can be wrong without this file failing.
"""

import networkx as nx
import pytest

from repro.core import compute_advice, run_elect, run_generic
from repro.graphs import from_networkx
from repro.graphs.isomorphism import port_automorphism_exists
from repro.views import (
    election_index,
    explicit_view_tree,
    is_feasible,
    view_nested_tuple,
    views_of_graph,
)


def _small_connected_instances():
    """All connected atlas graphs on 3..5 nodes, each with the canonical
    and one seeded port assignment."""
    instances = []
    for atlas_graph in nx.graph_atlas_g():
        n = atlas_graph.number_of_nodes()
        if not (3 <= n <= 5):
            continue
        if atlas_graph.number_of_edges() == 0 or not nx.is_connected(atlas_graph):
            continue
        gid = f"atlas-{atlas_graph.name or id(atlas_graph)}"
        instances.append((f"{gid}-canonical", from_networkx(atlas_graph)))
        instances.append((f"{gid}-seeded", from_networkx(atlas_graph, seed=7)))
    return instances


INSTANCES = _small_connected_instances()


def test_enumeration_is_substantial():
    # 3..5-node connected graphs: 2 + 6 + 21 = 29 shapes, x2 assignments
    assert len(INSTANCES) == 58


@pytest.mark.parametrize("name_g", INSTANCES, ids=lambda p: p[0])
def test_refinement_matches_bruteforce(name_g):
    _, g = name_g
    for depth in range(0, 4):
        interned = views_of_graph(g, depth)
        explicit = [explicit_view_tree(g, v, depth) for v in g.nodes()]
        for u in g.nodes():
            assert view_nested_tuple(interned[u]) == explicit[u]


@pytest.mark.parametrize("name_g", INSTANCES, ids=lambda p: p[0])
def test_feasible_implies_rigid(name_g):
    _, g = name_g
    if is_feasible(g):
        assert not port_automorphism_exists(g)


@pytest.mark.parametrize("name_g", INSTANCES, ids=lambda p: p[0])
def test_full_pipeline_on_feasible(name_g):
    _, g = name_g
    if not is_feasible(g):
        pytest.skip("infeasible instance")
    record = run_elect(g)  # asserts validity + time == phi internally
    assert sorted(compute_advice(g).labels.values()) == list(range(1, g.n + 1))
    phi = election_index(g)
    run_generic(g, phi)  # asserts D + phi + 1 internally


def test_feasibility_rate_sane():
    """Sanity on the corpus itself: both feasible and infeasible instances
    must be present (the atlas includes rigid and symmetric shapes)."""
    flags = [is_feasible(g) for _, g in INSTANCES]
    assert any(flags) and not all(flags)
