"""The extended generator set: wheels, caterpillars, brooms, binary
trees, circulants."""

import pytest

from repro.errors import GraphStructureError
from repro.graphs import (
    broom,
    caterpillar,
    circulant,
    complete_binary_tree,
    wheel,
)
from repro.views import election_index, is_feasible


class TestWheel:
    def test_structure(self):
        g = wheel(6)
        assert g.n == 7
        assert g.degree(0) == 6
        assert all(g.degree(v) == 3 for v in range(1, 7))

    def test_feasible_hub_pins_rim(self):
        # the hub's distinct ports make every rim node identifiable
        assert is_feasible(wheel(5))
        assert election_index(wheel(8)) == 1

    def test_rejects_small(self):
        with pytest.raises(GraphStructureError):
            wheel(3)


class TestCaterpillar:
    def test_structure(self):
        g = caterpillar(4, [1, 0, 2, 0])
        assert g.n == 4 + 3
        assert g.num_edges == g.n - 1

    def test_feasible_asymmetric(self):
        assert is_feasible(caterpillar(4, [1, 0, 2, 0]))

    def test_leg_mismatch_rejected(self):
        with pytest.raises(GraphStructureError):
            caterpillar(3, [1, 2])
        with pytest.raises(GraphStructureError):
            caterpillar(3, [1, -1, 0])

    def test_spine_ports_directional(self):
        g = caterpillar(3, [0, 0, 0])
        # same scheme as path_graph
        v, q = g.neighbor(0, 0)
        assert v == 1


class TestBroom:
    def test_structure(self):
        g = broom(4, 3)
        assert g.n == 7
        assert g.degree(3) == 1 + 3  # spine end: 1 back + 3 bristles

    def test_feasible(self):
        assert is_feasible(broom(3, 4))

    def test_election_on_broom(self):
        from repro.core import run_elect

        run_elect(broom(4, 3))

    def test_tree_baseline_on_broom(self):
        from repro.baselines import run_tree_no_advice

        rec = run_tree_no_advice(broom(5, 2))
        assert rec.election_time <= rec.diameter


class TestCompleteBinaryTree:
    @pytest.mark.parametrize("h", [1, 2, 3])
    def test_size(self, h):
        g = complete_binary_tree(h)
        assert g.n == 2 ** (h + 1) - 1
        assert g.num_edges == g.n - 1

    def test_feasible_ports_break_symmetry(self):
        assert is_feasible(complete_binary_tree(2))

    def test_small_phi(self):
        # left/right children are port-distinguished immediately at depth 1?
        # computed, not assumed:
        phi = election_index(complete_binary_tree(3))
        assert phi >= 1

    def test_tree_baseline(self):
        from repro.baselines import run_tree_no_advice

        rec = run_tree_no_advice(complete_binary_tree(3))
        assert rec.election_time <= rec.diameter


class TestCirculant:
    def test_structure(self):
        g = circulant(9, [1, 2])
        assert g.n == 9
        assert all(g.degree(v) == 4 for v in g.nodes())

    def test_infeasible(self):
        assert not is_feasible(circulant(8, [1, 3]))

    def test_validation(self):
        with pytest.raises(GraphStructureError):
            circulant(8, [4])  # n/2 folds
        with pytest.raises(GraphStructureError):
            circulant(8, [1, 1])
        with pytest.raises(GraphStructureError):
            circulant(8, [])
