"""Extended asynchronous-engine coverage: all algorithms, seed
robustness, and failure paths."""

import pytest

from repro.core import compute_advice, verify_election
from repro.core.elect import ElectAlgorithm
from repro.core.elections import election_advice, make_election_algorithm
from repro.core.generic import GenericAlgorithm
from repro.core.known_d_phi import KnownDPhiAlgorithm, known_d_phi_advice
from repro.errors import SimulationError
from repro.graphs import cycle_with_leader_gadget, lollipop
from repro.sim import run_async, run_sync
from repro.views import election_index


class TestAsyncAllAlgorithms:
    @pytest.fixture(scope="class")
    def graph(self):
        return cycle_with_leader_gadget(6)

    def test_generic_async_equals_sync(self, graph):
        phi = election_index(graph)
        sync = run_sync(graph, lambda: GenericAlgorithm(phi))
        async_ = run_async(graph, lambda: GenericAlgorithm(phi), seed=5)
        assert sync.outputs == async_.outputs
        assert verify_election(graph, async_.outputs)

    def test_known_d_phi_async(self, graph):
        phi = election_index(graph)
        advice = known_d_phi_advice(graph.diameter(), phi)
        sync = run_sync(graph, KnownDPhiAlgorithm, advice=advice)
        async_ = run_async(graph, KnownDPhiAlgorithm, advice=advice, seed=2)
        assert sync.outputs == async_.outputs
        assert sync.election_time == async_.election_time

    def test_milestone_async(self, graph):
        phi = election_index(graph)
        advice = election_advice(phi, 1)
        sync = run_sync(graph, make_election_algorithm(1), advice=advice)
        async_ = run_async(
            graph, make_election_algorithm(1), advice=advice, seed=9
        )
        assert sync.outputs == async_.outputs

    @pytest.mark.parametrize("seed", [0, 3, 17, 99])
    def test_seed_independence(self, graph, seed):
        """Outputs must not depend on the delay schedule at all."""
        bundle = compute_advice(graph)
        baseline = run_sync(graph, ElectAlgorithm, advice=bundle.bits)
        async_ = run_async(
            graph, ElectAlgorithm, advice=bundle.bits, seed=seed, max_delay=50.0
        )
        assert async_.outputs == baseline.outputs

    def test_different_topology(self):
        g = lollipop(4, 3)
        bundle = compute_advice(g)
        sync = run_sync(g, ElectAlgorithm, advice=bundle.bits)
        async_ = run_async(g, ElectAlgorithm, advice=bundle.bits, seed=7)
        assert sync.outputs == async_.outputs


class TestAsyncFailurePaths:
    def test_max_events_guard(self):
        g = cycle_with_leader_gadget(6)
        bundle = compute_advice(g)
        with pytest.raises(SimulationError):
            run_async(g, ElectAlgorithm, advice=bundle.bits, max_events=3)

    def test_silent_algorithm_detected(self):
        class Silent:
            def setup(self, ctx):
                pass

            def compose(self, ctx):
                return None

            def deliver(self, ctx, inbox):
                pass

        g = cycle_with_leader_gadget(5)
        with pytest.raises(SimulationError):
            run_async(g, Silent, seed=1)
