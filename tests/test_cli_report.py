"""CLI and report generator tests."""

import pytest

from repro.cli import main, parse_graph_spec
from repro.errors import ReproError


class TestSpecParser:
    def test_positional(self):
        g = parse_graph_spec("ring:8")
        assert g.n == 8

    def test_multiple_positional(self):
        g = parse_graph_spec("necklace:5,3")
        assert g.n == 36

    def test_keyword(self):
        g = parse_graph_spec("random:10,extra_edges=4,seed=2")
        assert g.n == 10
        assert g.num_edges == 13

    def test_no_args(self):
        with pytest.raises(TypeError):
            parse_graph_spec("ring")  # ring requires n

    def test_unknown_generator(self):
        with pytest.raises(ReproError):
            parse_graph_spec("mystery:4")

    def test_json_file(self, tmp_path):
        from repro.graphs import lollipop, to_json

        path = tmp_path / "g.json"
        path.write_text(to_json(lollipop(4, 2)))
        g = parse_graph_spec(f"@{path}")
        assert g.n == 6

    def test_whitespace_tolerant(self):
        g = parse_graph_spec("necklace: 4, 2")
        assert g.n == 27


class TestCommands:
    def test_index_feasible(self, capsys):
        assert main(["index", "necklace:4,2"]) == 0
        out = capsys.readouterr().out
        assert "phi = 2" in out

    def test_index_infeasible(self, capsys):
        assert main(["index", "ring:6"]) == 1
        assert "INFEASIBLE" in capsys.readouterr().out

    def test_elect(self, capsys):
        assert main(["elect", "gadget-ring:6"]) == 0
        out = capsys.readouterr().out
        assert "advice" in out and "elected node" in out

    def test_spectrum(self, capsys):
        assert main(["spectrum", "necklace:4,2"]) == 0
        out = capsys.readouterr().out
        assert "phi (minimum)" in out and "D+c^phi" in out

    def test_quotient_symmetric(self, capsys):
        assert main(["quotient", "hypercube:3"]) == 0
        out = capsys.readouterr().out
        assert "8 indistinguishable" in out

    def test_quotient_feasible(self, capsys):
        assert main(["quotient", "lollipop:4,2"]) == 0
        assert "discrete" in capsys.readouterr().out

    def test_error_exit_code(self, capsys):
        assert main(["index", "mystery:1"]) == 2
        assert "error:" in capsys.readouterr().err

    def test_report_to_file(self, tmp_path, capsys):
        out_file = tmp_path / "report.md"
        assert main(["report", "--out", str(out_file)]) == 0
        text = out_file.read_text()
        assert "# repro experiment report" in text
        assert "Theorem 3.1" in text
        assert "Open question" in text


class TestCorpusAndStreamingSweep:
    def test_corpus_list(self, capsys):
        assert main(["corpus", "list"]) == 0
        out = capsys.readouterr().out
        for family in ("tori", "circulants", "lifts", "vertex-transitive"):
            assert family in out

    def test_corpus_emit(self, tmp_path, capsys):
        import json

        path = tmp_path / "corpus.jsonl"
        assert main(["corpus", "emit", "hypercubes:3,seed=1,min_dim=2,max_dim=2",
                     "--out", str(path)]) == 0
        lines = path.read_text().splitlines()
        assert len(lines) == 3
        entry = json.loads(lines[0])
        assert entry["name"].startswith("hypercubes-s1-00000")
        assert len(entry["graph"]["edges"]) == 4  # the 2-cube

    def test_corpus_emit_roundtrips_through_graph_spec(self, tmp_path):
        import json

        from repro.cli import parse_graph_spec

        path = tmp_path / "corpus.jsonl"
        assert main(["corpus", "emit", "random-trees:2,seed=4",
                     "--out", str(path)]) == 0
        entry = json.loads(path.read_text().splitlines()[0])
        graph_file = tmp_path / "g.json"
        graph_file.write_text(json.dumps(entry["graph"]))
        g = parse_graph_spec(f"@{graph_file}")
        assert g.n == entry["graph"]["n"]

    def test_sweep_family_table(self, capsys):
        assert main(["sweep", "--corpus", "tori:3,seed=2", "--task",
                     "index"]) == 0
        out = capsys.readouterr().out
        assert "feasible" in out and "tori-s2-00000" in out

    def test_sweep_out_and_resume(self, tmp_path, capsys):
        path = tmp_path / "store.jsonl"
        spec = "caterpillars:8,seed=3"
        assert main(["sweep", "--corpus", spec, "--task", "index",
                     "--out", str(path)]) == 0
        first = path.read_bytes()
        assert first.count(b"\n") == 8
        assert "8 records appended" in capsys.readouterr().out
        # resume over a complete store is a no-op and keeps the bytes
        assert main(["sweep", "--corpus", spec, "--task", "index",
                     "--out", str(path), "--resume"]) == 0
        assert "0 records appended" in capsys.readouterr().out
        assert path.read_bytes() == first

    def test_resume_without_out_is_an_error(self, capsys):
        assert main(["sweep", "--corpus", "tori:2", "--resume"]) == 2
        assert "--resume requires --out" in capsys.readouterr().err

    def test_json_and_out_are_mutually_exclusive(self, tmp_path, capsys):
        assert main(["sweep", "--corpus", "tori:2",
                     "--out", str(tmp_path / "a.jsonl"),
                     "--json", str(tmp_path / "b.jsonl")]) == 2
        assert "mutually exclusive" in capsys.readouterr().err


class TestReportContent:
    @pytest.fixture(scope="class")
    def report(self):
        from repro.analysis.report import generate_report

        return generate_report()

    def test_has_all_sections(self, report):
        for heading in (
            "Theorem 3.1",
            "Headline spectrum",
            "Lower bounds",
            "Open question",
        ):
            assert heading in report

    def test_markdown_tables_present(self, report):
        assert report.count("|---") >= 5
