"""Golden regressions: exact pinned values for deterministic pipelines.

Every construction and codec in the library is deterministic, so these
exact numbers must never drift.  A change here means a *semantic* change
to the advice format, the canonical orders, or a construction — which
must be deliberate and documented, never incidental.
"""

import json

import pytest

from repro.coding import Bits, concat_bits
from repro.core import compute_advice, run_elect
from repro.graphs import cycle_with_leader_gadget, lollipop, to_json
from repro.lowerbounds import hk_graph, necklace
from repro.views import election_index


class TestGoldenElections:
    def test_gadget6(self):
        rec = run_elect(cycle_with_leader_gadget(6))
        assert (rec.n, rec.phi, rec.advice_bits, rec.leader) == (7, 2, 2824, 6)

    def test_gadget8(self):
        rec = run_elect(cycle_with_leader_gadget(8))
        assert (rec.n, rec.phi, rec.advice_bits, rec.leader) == (9, 3, 4440, 8)

    def test_lollipop(self):
        rec = run_elect(lollipop(4, 3))
        assert (rec.n, rec.phi) == (7, 1)
        assert rec.advice_bits == compute_advice(lollipop(4, 3)).size_bits

    def test_hk5(self):
        rec = run_elect(hk_graph(5))
        assert (rec.n, rec.phi, rec.advice_bits) == (20, 1, 6654)

    def test_necklace_4_2(self):
        rec = run_elect(necklace(4, 2))
        assert (rec.n, rec.phi, rec.advice_bits) == (27, 2, 10488)


class TestGoldenIndices:
    @pytest.mark.parametrize(
        "build,expected",
        [
            (lambda: cycle_with_leader_gadget(6), 2),
            (lambda: cycle_with_leader_gadget(10), 4),
            (lambda: lollipop(5, 4), 1),
            (lambda: hk_graph(7), 1),
            (lambda: necklace(5, 4), 4),
        ],
        ids=["gadget6", "gadget10", "lollipop", "hk7", "necklace54"],
    )
    def test_indices(self, build, expected):
        assert election_index(build()) == expected


class TestGoldenConformance:
    """Canonical conformance record groups for three corpus families.

    The conformance task is deterministic end to end (seeded corpora,
    seeded schedule roster, canonical JSON), so the exact bytes of a
    record group are a regression surface: any engine, scheduler, codec
    or record-schema change that alters them must be deliberate — and
    will be caught here at review time, not in a downstream sweep diff.
    """

    #: (family, sha256 of the canonical JSONL of the first entry's group)
    #: — re-pinned when the orbit-collapse rule joined every group (the
    #: collapsed-vs-full sub-record is part of the canonical bytes now)
    GOLDEN_GROUPS = [
        ("tori",
         "ebe33cf2a90579f10c26e9f98fe8fcd1eb1d98577e14877fdc90cb5dd0a703b2"),
        ("random-trees",
         "4de2c031e20271bf16b6c5b4291114d45da96917d5ede12e862775c89f918d14"),
        ("lifts",
         "5b6e271a4d88be231e1e44b3418180ad5836bbe5924577cbbb22851bd2494b2f"),
        ("random-regular",
         "7f3323706f32130d983b06e6fe25538d0f88ee7abf8657d241bd50b452a28c96"),
    ]

    @staticmethod
    def _first_entry_group(family):
        import hashlib

        from repro.corpus import iter_corpus
        from repro.engine import get_task
        from repro.engine.records import records_to_jsonl

        name, g = next(iter(iter_corpus(f"{family}:1")))
        records = get_task("conformance")(name, g)
        digest = hashlib.sha256(
            records_to_jsonl(records).encode("utf-8")
        ).hexdigest()
        return name, records, digest

    @pytest.mark.parametrize(
        "family,expected", GOLDEN_GROUPS, ids=[f for f, _ in GOLDEN_GROUPS]
    )
    def test_group_bytes_pinned(self, family, expected):
        _, records, digest = self._first_entry_group(family)
        assert digest == expected, (
            f"canonical conformance bytes for family '{family}' drifted; "
            f"if the record schema or a checked quantity changed "
            f"deliberately, re-pin the hash (records: {records})"
        )

    def test_random_trees_summary_fields(self):
        """Key summary fields pinned readably (the hash above pins the
        rest, this shows *what* the numbers are)."""
        from repro.engine.records import record_to_json

        name, records, _ = self._first_entry_group("random-trees")
        summary = records[-1]
        assert name == "random-trees-s0-00000-n30"
        assert (summary["n"], summary["phi"], summary["diameter"]) == (30, 3, 9)
        assert summary["feasible"] is True
        assert summary["cells"] == 36
        assert summary["total_disagreements"] == 0
        assert summary["advice_bits"] == {"elect": 14952, "map-based": 5398}
        assert summary["algorithms"] == [
            "elect", "known-d-phi", "labeling-scheme", "map-based",
            "tree-no-advice", "orbit-collapse",
        ]
        # the summary is the group terminator the store keys resume on
        assert summary["name"] == summary["entry"]
        assert json.loads(record_to_json(summary)) == summary

    def test_orbit_collapse_sub_record_fields(self):
        """The collapsed-vs-full rule's sub-record, pinned readably: a
        feasible tree collapses to singletons (rigidity), a torus to one
        orbit, a 3-fold lift to base-size classes of size 3."""
        expectations = {
            "random-trees": dict(
                num_orbits=30, num_classes=30, max_orbit_size=1,
                probe_depth=4, cells=6,
            ),
            "tori": dict(
                num_orbits=1, num_classes=1, max_orbit_size=54,
                probe_depth=1, cells=5,
            ),
            "lifts": dict(
                num_orbits=11, num_classes=11, max_orbit_size=3,
                probe_depth=5, cells=5,
            ),
        }
        for family, expected in expectations.items():
            _, records, _ = self._first_entry_group(family)
            orbit = [
                r for r in records if r.get("algorithm") == "orbit-collapse"
            ]
            assert len(orbit) == 1
            rec = orbit[0]
            assert {k: rec[k] for k in expected} == expected
            assert rec["disagreements"] == []
            # elect runs through the collapsed engine only where election
            # is possible at all (feasible => every orbit is a singleton)
            assert ("elect[orbit]" in rec["models"]) == (
                expected["max_orbit_size"] == 1
            )

    def test_infeasible_families_run_labeling_scheme_only(self):
        """Infeasible entries skip every election algorithm; the two
        graph-level rules (labeling scheme, orbit collapse) still run."""
        for family in ("tori", "lifts"):
            _, records, _ = self._first_entry_group(family)
            summary = records[-1]
            assert summary["feasible"] is False
            assert summary["algorithms"] == [
                "labeling-scheme", "orbit-collapse",
            ]
            assert summary["total_disagreements"] == 0


class TestGoldenCodecs:
    def test_concat_paper_example(self):
        assert concat_bits([Bits("01"), Bits("00")]).as_str() == "0011010000"

    def test_graph_json_stable(self):
        text = to_json(cycle_with_leader_gadget(4))
        assert text == (
            '{"edges":[[0,0,1,1],[0,1,3,0],[0,2,4,0],[1,0,2,1],[2,0,3,1]],'
            '"n":5}'
        )

    def test_advice_prefix_stable(self):
        bits = compute_advice(lollipop(4, 2)).bits
        # bin(phi=1) doubled, then the A1 separator
        assert bits.as_str().startswith("1101")
