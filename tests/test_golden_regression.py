"""Golden regressions: exact pinned values for deterministic pipelines.

Every construction and codec in the library is deterministic, so these
exact numbers must never drift.  A change here means a *semantic* change
to the advice format, the canonical orders, or a construction — which
must be deliberate and documented, never incidental.
"""

import pytest

from repro.coding import Bits, concat_bits
from repro.core import compute_advice, run_elect
from repro.graphs import cycle_with_leader_gadget, lollipop, to_json
from repro.lowerbounds import hk_graph, necklace
from repro.views import election_index


class TestGoldenElections:
    def test_gadget6(self):
        rec = run_elect(cycle_with_leader_gadget(6))
        assert (rec.n, rec.phi, rec.advice_bits, rec.leader) == (7, 2, 2824, 6)

    def test_gadget8(self):
        rec = run_elect(cycle_with_leader_gadget(8))
        assert (rec.n, rec.phi, rec.advice_bits, rec.leader) == (9, 3, 4440, 8)

    def test_lollipop(self):
        rec = run_elect(lollipop(4, 3))
        assert (rec.n, rec.phi) == (7, 1)
        assert rec.advice_bits == compute_advice(lollipop(4, 3)).size_bits

    def test_hk5(self):
        rec = run_elect(hk_graph(5))
        assert (rec.n, rec.phi, rec.advice_bits) == (20, 1, 6654)

    def test_necklace_4_2(self):
        rec = run_elect(necklace(4, 2))
        assert (rec.n, rec.phi, rec.advice_bits) == (27, 2, 10488)


class TestGoldenIndices:
    @pytest.mark.parametrize(
        "build,expected",
        [
            (lambda: cycle_with_leader_gadget(6), 2),
            (lambda: cycle_with_leader_gadget(10), 4),
            (lambda: lollipop(5, 4), 1),
            (lambda: hk_graph(7), 1),
            (lambda: necklace(5, 4), 4),
        ],
        ids=["gadget6", "gadget10", "lollipop", "hk7", "necklace54"],
    )
    def test_indices(self, build, expected):
        assert election_index(build()) == expected


class TestGoldenCodecs:
    def test_concat_paper_example(self):
        assert concat_bits([Bits("01"), Bits("00")]).as_str() == "0011010000"

    def test_graph_json_stable(self):
        text = to_json(cycle_with_leader_gadget(4))
        assert text == (
            '{"edges":[[0,0,1,1],[0,1,3,0],[0,2,4,0],[1,0,2,1],[2,0,3,1]],'
            '"n":5}'
        )

    def test_advice_prefix_stable(self):
        bits = compute_advice(lollipop(4, 2)).bits
        # bin(phi=1) doubled, then the A1 separator
        assert bits.as_str().startswith("1101")
