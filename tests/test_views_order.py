"""The canonical total order on views: totality, antisymmetry,
transitivity, consistency — checked on concrete view populations drawn
from real graphs."""

import itertools

import pytest

from repro.graphs import lollipop, random_connected_graph, ring
from repro.views import view_compare, view_min, views_of_graph
from repro.views.order import sort_views, view_sort_key


def _view_population(depth=2):
    views = set()
    for g in (
        ring(5),
        lollipop(4, 2),
        random_connected_graph(9, extra_edges=4, seed=3),
        random_connected_graph(7, extra_edges=2, seed=8),
    ):
        views.update(views_of_graph(g, depth))
    return sorted(views, key=view_sort_key)


class TestOrderAxioms:
    def test_reflexive_zero(self):
        for v in _view_population():
            assert view_compare(v, v) == 0

    def test_antisymmetric(self):
        pop = _view_population()
        for a, b in itertools.combinations(pop, 2):
            assert view_compare(a, b) == -view_compare(b, a)
            assert view_compare(a, b) != 0  # distinct interned views

    def test_transitive(self):
        pop = _view_population()
        for a, b, c in itertools.combinations(pop, 3):
            if view_compare(a, b) < 0 and view_compare(b, c) < 0:
                assert view_compare(a, c) < 0

    def test_sorting_is_stable_total(self):
        pop = _view_population()
        once = sort_views(pop)
        twice = sort_views(list(reversed(pop)))
        assert [id(v) for v in once] == [id(v) for v in twice]

    def test_depth_dominates(self):
        g = ring(6)
        shallow = views_of_graph(g, 1)[0]
        deep = views_of_graph(g, 2)[0]
        assert view_compare(shallow, deep) < 0

    def test_degree_breaks_ties_at_equal_depth(self):
        from repro.views.view import View

        a = View.make(1, ())
        b = View.make(2, ())
        assert view_compare(a, b) < 0


class TestViewMin:
    def test_min_matches_sort(self):
        pop = _view_population()
        assert view_min(pop) is sort_views(pop)[0]

    def test_min_of_singleton(self):
        v = views_of_graph(ring(5), 1)[0]
        assert view_min([v]) is v

    def test_min_of_empty_raises(self):
        with pytest.raises(ValueError):
            view_min([])

    def test_min_deterministic_across_orders(self):
        pop = _view_population()
        assert view_min(pop) is view_min(list(reversed(pop)))
