"""Parity of the array refinement fast path with the interned-view path.

``election_index`` and ``view_quotient`` now run on
:mod:`repro.views.refinement`; these tests pin the fast path to the
view-based ground truth: signatures must be *tuple-equal* level by level
(not merely induce the same partition), and the derived quantities (phi,
feasibility, quotient structure) must be unchanged.
"""

from __future__ import annotations

import itertools

import pytest

from repro.errors import InfeasibleGraphError
from repro.graphs import (
    clique,
    cycle_with_leader_gadget,
    grid_torus,
    hypercube,
    lollipop,
    random_connected_graph,
    ring,
    star,
)
from repro.lowerbounds import hk_graph, necklace
from repro.views import (
    election_index,
    refinement_levels,
    stable_partition,
    view_levels,
    view_quotient,
)
from repro.views.election_index import _partition_signature

CORPUS = [
    ("ring-6", ring(6)),                       # infeasible: full symmetry
    ("clique-5", clique(5)),                   # infeasible
    ("star-5", star(5)),                       # leaves are symmetric
    ("torus-3x4", grid_torus(3, 4)),
    ("hypercube-3", hypercube(3)),
    ("pendant-ring-7", cycle_with_leader_gadget(7)),   # feasible
    ("lollipop-4-3", lollipop(4, 3)),                  # feasible
    ("hk-4", hk_graph(4)),                             # feasible, phi = 1
    ("necklace-4-3", necklace(4, 3)),                  # feasible, phi = 3
    ("random-12", random_connected_graph(12, extra_edges=6, seed=5)),
]


@pytest.mark.parametrize("name,g", CORPUS, ids=[n for n, _ in CORPUS])
def test_signatures_match_view_levels(name, g):
    depths = 8
    fast = itertools.islice(refinement_levels(g), depths)
    slow = itertools.islice(view_levels(g), depths)
    for depth, (sig, level) in enumerate(zip(fast, slow)):
        assert sig == _partition_signature(level), (
            f"{name}: fast/slow signatures diverge at depth {depth}"
        )


@pytest.mark.parametrize("name,g", CORPUS, ids=[n for n, _ in CORPUS])
def test_election_index_matches_view_reference(name, g):
    def reference_phi(graph):
        """The pre-fast-path algorithm, verbatim on interned views."""
        prev = None
        for depth, level in enumerate(view_levels(graph)):
            sig = _partition_signature(level)
            if len(set(sig)) == graph.n:
                return depth
            if sig == prev:
                raise InfeasibleGraphError("stabilized before discrete")
            prev = sig

    try:
        expected = reference_phi(g)
    except InfeasibleGraphError:
        with pytest.raises(InfeasibleGraphError):
            election_index(g)
        return
    assert election_index(g) == expected


@pytest.mark.parametrize("name,g", CORPUS, ids=[n for n, _ in CORPUS])
def test_stable_partition_consistent_with_quotient(name, g):
    stable = stable_partition(g)
    q = view_quotient(g)
    assert list(stable.signature) == q.class_of
    assert stable.num_classes == q.num_classes
    assert stable.depth == q.stabilization_depth
    assert stable.discrete == q.is_discrete
    # class members listed in node order and disjoint
    seen = set()
    for members in q.classes:
        assert members == sorted(members)
        seen.update(members)
    assert seen == set(g.nodes())


def test_feasible_iff_discrete():
    for name, g in CORPUS:
        try:
            election_index(g)
            feasible = True
        except InfeasibleGraphError:
            feasible = False
        assert stable_partition(g).discrete == feasible, name


def test_refinement_allocates_no_views():
    """The fast path must not touch the global intern table."""
    from repro.views import clear_view_caches
    from repro.views.view import intern_table_size

    clear_view_caches()
    g = necklace(4, 3)
    stable_partition(g)
    election_index(g)
    view_quotient(g)
    assert intern_table_size() == 0
    clear_view_caches()
