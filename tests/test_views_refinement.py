"""Parity of the array refinement fast path with the interned-view path.

``election_index`` and ``view_quotient`` now run on
:mod:`repro.views.refinement`; these tests pin the fast path to the
view-based ground truth: signatures must be *tuple-equal* level by level
(not merely induce the same partition), and the derived quantities (phi,
feasibility, quotient structure) must be unchanged.
"""

from __future__ import annotations

import itertools

import pytest

from repro.errors import InfeasibleGraphError
from repro.graphs import (
    clique,
    cycle_with_leader_gadget,
    grid_torus,
    hypercube,
    lollipop,
    random_connected_graph,
    ring,
    star,
)
from repro.lowerbounds import hk_graph, necklace
from repro.views import (
    election_index,
    refinement_levels,
    stable_partition,
    view_levels,
    view_quotient,
)
from repro.views.election_index import _partition_signature

CORPUS = [
    ("ring-6", ring(6)),                       # infeasible: full symmetry
    ("clique-5", clique(5)),                   # infeasible
    ("star-5", star(5)),                       # leaves are symmetric
    ("torus-3x4", grid_torus(3, 4)),
    ("hypercube-3", hypercube(3)),
    ("pendant-ring-7", cycle_with_leader_gadget(7)),   # feasible
    ("lollipop-4-3", lollipop(4, 3)),                  # feasible
    ("hk-4", hk_graph(4)),                             # feasible, phi = 1
    ("necklace-4-3", necklace(4, 3)),                  # feasible, phi = 3
    ("random-12", random_connected_graph(12, extra_edges=6, seed=5)),
]


@pytest.mark.parametrize("name,g", CORPUS, ids=[n for n, _ in CORPUS])
def test_signatures_match_view_levels(name, g):
    depths = 8
    fast = itertools.islice(refinement_levels(g), depths)
    slow = itertools.islice(view_levels(g), depths)
    for depth, (sig, level) in enumerate(zip(fast, slow)):
        assert sig == _partition_signature(level), (
            f"{name}: fast/slow signatures diverge at depth {depth}"
        )


@pytest.mark.parametrize("name,g", CORPUS, ids=[n for n, _ in CORPUS])
def test_election_index_matches_view_reference(name, g):
    def reference_phi(graph):
        """The pre-fast-path algorithm, verbatim on interned views."""
        prev = None
        for depth, level in enumerate(view_levels(graph)):
            sig = _partition_signature(level)
            if len(set(sig)) == graph.n:
                return depth
            if sig == prev:
                raise InfeasibleGraphError("stabilized before discrete")
            prev = sig

    try:
        expected = reference_phi(g)
    except InfeasibleGraphError:
        with pytest.raises(InfeasibleGraphError):
            election_index(g)
        return
    assert election_index(g) == expected


@pytest.mark.parametrize("name,g", CORPUS, ids=[n for n, _ in CORPUS])
def test_stable_partition_consistent_with_quotient(name, g):
    stable = stable_partition(g)
    q = view_quotient(g)
    assert list(stable.signature) == q.class_of
    assert stable.num_classes == q.num_classes
    assert stable.depth == q.stabilization_depth
    assert stable.discrete == q.is_discrete
    # class members listed in node order and disjoint
    seen = set()
    for members in q.classes:
        assert members == sorted(members)
        seen.update(members)
    assert seen == set(g.nodes())


def test_feasible_iff_discrete():
    for name, g in CORPUS:
        try:
            election_index(g)
            feasible = True
        except InfeasibleGraphError:
            feasible = False
        assert stable_partition(g).discrete == feasible, name


class TestStabilizationDepth:
    """Regression for the depth off-by-one: `StablePartition.depth` and
    `ViewQuotient.stabilization_depth` must report the *stabilized* level
    (the docstring and `election_index`'s error message convention), not
    the first level that repeats it."""

    def test_fully_symmetric_graphs_stabilize_at_zero(self):
        # one class at level 0, and level 1 does not refine it
        for g in (ring(6), clique(5), hypercube(3), grid_torus(3, 4)):
            stable = stable_partition(g)
            assert stable.depth == 0
            assert stable.num_classes == 1
            assert view_quotient(g).stabilization_depth == 0

    def test_lift_stabilizes_at_base_phi(self):
        """A k-fold cover of a feasible base has a known stabilization
        depth: exactly phi(base) — level phi-1 still refines (the base
        partition is not yet discrete there), level phi+1 repeats."""
        from repro.graphs import lift

        for ring_size, multiplicity, seed in ((5, 2, 1), (7, 3, 2)):
            base = cycle_with_leader_gadget(ring_size)
            phi = election_index(base)
            lifted = lift(base, multiplicity, seed=seed)
            stable = stable_partition(lifted)
            assert not stable.discrete
            assert stable.depth == phi, (ring_size, multiplicity)
            assert view_quotient(lifted).stabilization_depth == phi

    def test_error_message_agrees_with_stable_depth(self):
        for g in (ring(6), clique(5), grid_torus(3, 3)):
            depth = stable_partition(g).depth
            with pytest.raises(
                InfeasibleGraphError,
                match=rf"stabilizes at depth {depth} ",
            ):
                election_index(g)

    def test_feasible_depth_still_equals_phi(self):
        for name, g in CORPUS:
            stable = stable_partition(g)
            if stable.discrete:
                assert stable.depth == election_index(g), name


def test_refinement_allocates_no_views():
    """The fast path must not touch the global intern table."""
    from repro.views import clear_view_caches
    from repro.views.view import intern_table_size

    clear_view_caches()
    g = necklace(4, 3)
    stable_partition(g)
    election_index(g)
    view_quotient(g)
    assert intern_table_size() == 0
    clear_view_caches()
