"""Views: interning, equality-by-identity, truncation, and the
cross-validation of the interned construction against the explicit
recursive tree expansion (the load-bearing equivalence of the library)."""

import pytest

from repro.graphs import (
    cycle_with_leader_gadget,
    lollipop,
    path_graph,
    random_connected_graph,
    ring,
)
from repro.views import (
    View,
    explicit_view_tree,
    truncate_view,
    view_nested_tuple,
    views_of_graph,
)


class TestInterning:
    def test_depth0_views_by_degree(self):
        g = ring(5)
        views = views_of_graph(g, 0)
        assert len(set(views)) == 1  # all degree 2
        assert views[0].degree == 2
        assert views[0].depth == 0

    def test_identity_equality(self):
        g = ring(6)
        v1 = views_of_graph(g, 3)
        v2 = views_of_graph(g, 3)
        assert all(a is b for a, b in zip(v1, v2))

    def test_cross_graph_interning(self):
        """Views of isomorphic-with-ports structures are the same object
        even across different graphs — the fooling-pair machinery."""
        a = views_of_graph(ring(6), 2)
        b = views_of_graph(ring(9), 2)
        # at depth 2 a large ring looks locally identical everywhere
        assert a[0] is b[0]

    def test_ring_views_all_equal_at_any_depth(self):
        g = ring(7)
        for depth in range(5):
            assert len(set(views_of_graph(g, depth))) == 1

    def test_direct_instantiation_forbidden(self):
        with pytest.raises(TypeError):
            View(2, ())

    def test_immutable(self):
        v = views_of_graph(ring(5), 1)[0]
        with pytest.raises(AttributeError):
            v.degree = 3

    def test_children_arity_enforced(self):
        v0 = View.make(2, ())
        with pytest.raises(ValueError):
            View.make(3, ((0, v0), (1, v0)))  # 2 children for degree 3


class TestAgainstExplicitExpansion:
    @pytest.mark.parametrize("depth", [0, 1, 2, 3])
    def test_matches_explicit_on_gadget(self, depth):
        g = cycle_with_leader_gadget(5)
        interned = views_of_graph(g, depth)
        for v in g.nodes():
            assert view_nested_tuple(interned[v]) == explicit_view_tree(g, v, depth)

    @pytest.mark.parametrize("seed", [1, 2, 3])
    def test_matches_explicit_on_random(self, seed):
        g = random_connected_graph(8, extra_edges=3, seed=seed)
        interned = views_of_graph(g, 2)
        for v in g.nodes():
            assert view_nested_tuple(interned[v]) == explicit_view_tree(g, v, 2)

    def test_equality_matches_explicit_equality(self):
        g = lollipop(4, 3)
        depth = 2
        interned = views_of_graph(g, depth)
        explicit = [explicit_view_tree(g, v, depth) for v in g.nodes()]
        for u in g.nodes():
            for v in g.nodes():
                assert (interned[u] is interned[v]) == (explicit[u] == explicit[v])


class TestTruncation:
    def test_truncate_to_same_depth_is_identity(self):
        v = views_of_graph(ring(5), 3)[0]
        assert truncate_view(v, 3) is v

    def test_truncate_matches_direct_computation(self):
        g = lollipop(4, 2)
        deep = views_of_graph(g, 4)
        for target in range(5):
            shallow = views_of_graph(g, target)
            for node in g.nodes():
                assert truncate_view(deep[node], target) is shallow[node]

    def test_cannot_extend(self):
        v = views_of_graph(ring(5), 1)[0]
        with pytest.raises(ValueError):
            truncate_view(v, 2)


class TestViewAccessors:
    def test_child_and_remote_port(self):
        g = path_graph(3)  # 0 -1- 2
        views = views_of_graph(g, 1)
        center = views[1]
        assert center.degree == 2
        assert center.child(0).degree == 1
        # edge {0,1}: at node 1 (internal), port toward 0... check reciprocity
        for p in range(2):
            q = center.remote_port(p)
            assert q in (0, 1)

    def test_tree_size_small(self):
        g = ring(5)
        v = views_of_graph(g, 2)[0]
        # ring view tree: 1 + 2 + 4 nodes
        assert v.tree_size() == 7
