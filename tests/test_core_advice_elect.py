"""Theorem 3.1 end to end: ComputeAdvice size/shape, advice decoding,
Algorithm Elect's correctness and exact time phi."""

import math

import pytest

from repro.core import compute_advice, run_elect, verify_election
from repro.core.advice import canonical_bfs_tree, decode_advice
from repro.core.elect import ElectAlgorithm
from repro.errors import AdviceError, ElectionFailure, InfeasibleGraphError
from repro.graphs import cycle_with_leader_gadget, lollipop, ring
from repro.lowerbounds import hk_graph, necklace
from repro.sim import run_sync

from tests.conftest import feasible_corpus


class TestComputeAdvice:
    @pytest.mark.parametrize("name_g", feasible_corpus(), ids=lambda p: p[0])
    def test_advice_size_envelope(self, name_g):
        """|Adv| = O(n log n): generous concrete constant on the corpus."""
        _, g = name_g
        bundle = compute_advice(g)
        assert bundle.size_bits <= 220 * g.n * max(1.0, math.log2(g.n))

    @pytest.mark.parametrize("name_g", feasible_corpus(), ids=lambda p: p[0])
    def test_decode_round_trip(self, name_g):
        _, g = name_g
        bundle = compute_advice(g)
        phi, e1, e2, tree = decode_advice(bundle.bits)
        assert phi == bundle.phi
        assert e1 == bundle.e1
        assert e2 == bundle.e2
        assert tree == bundle.tree

    def test_infeasible_rejected(self):
        with pytest.raises(InfeasibleGraphError):
            compute_advice(ring(6))

    def test_root_has_label_one(self):
        g = cycle_with_leader_gadget(7)
        bundle = compute_advice(g)
        assert bundle.labels[bundle.root] == 1

    def test_tree_contains_all_labels(self):
        g = lollipop(5, 3)
        bundle = compute_advice(g)
        assert sorted(bundle.tree.labels()) == list(range(1, g.n + 1))

    def test_e2_layers_cover_depths(self):
        g = necklace(4, 3)
        bundle = compute_advice(g)
        assert [depth for depth, _ in bundle.e2] == list(range(2, bundle.phi + 1))

    def test_e2_empty_when_phi_one(self):
        g = hk_graph(4)
        bundle = compute_advice(g)
        assert bundle.phi == 1
        assert bundle.e2 == []


class TestCanonicalBfsTree:
    def test_parent_is_smallest_port(self):
        g = cycle_with_leader_gadget(6)
        labels = {v: v + 1 for v in g.nodes()}
        tree = canonical_bfs_tree(g, 0, labels)
        assert tree.size() == g.n
        # root label
        assert tree.label == 1

    def test_tree_edges_exist_in_graph(self):
        g = lollipop(4, 3)
        labels = {v: v + 1 for v in g.nodes()}
        tree = canonical_bfs_tree(g, 2, labels)

        def check(node, graph_node):
            for q, p, child in node.children:
                # q = port at parent, p = port at child
                v, back = g.neighbor(graph_node, q)
                assert back == p
                check(child, v)

        check(tree, 2)


class TestElect:
    @pytest.mark.parametrize("name_g", feasible_corpus(), ids=lambda p: p[0])
    def test_end_to_end(self, name_g):
        """run_elect already asserts: valid election, leader == oracle's
        root, time exactly phi."""
        _, g = name_g
        record = run_elect(g)
        assert record.n == g.n
        assert record.advice_bits > 0

    def test_paranoid_mode(self, gadget6):
        run_elect(gadget6, paranoid=True)

    def test_on_lower_bound_families(self):
        for g in (hk_graph(4), necklace(4, 2), necklace(4, 3)):
            run_elect(g)

    def test_elect_requires_advice(self, gadget6):
        with pytest.raises(AdviceError):
            run_sync(gadget6, ElectAlgorithm, advice=None)

    def test_corrupted_advice_detected(self, gadget6):
        from repro.coding import Bits
        from repro.errors import CodingError, ReproError

        bundle = compute_advice(gadget6)
        corrupted = Bits(bundle.bits.as_str()[:-2])
        with pytest.raises(ReproError):
            run_sync(gadget6, ElectAlgorithm, advice=corrupted)


class TestVerifyElection:
    def test_accepts_valid(self, gadget6):
        bundle = compute_advice(gadget6)
        result = run_sync(gadget6, ElectAlgorithm, advice=bundle.bits)
        outcome = verify_election(gadget6, result.outputs)
        assert outcome.leader == bundle.root
        assert outcome.paths[bundle.root] == [bundle.root]

    def test_rejects_missing_output(self, gadget6):
        with pytest.raises(ElectionFailure):
            verify_election(gadget6, {0: ()})

    def test_rejects_odd_length(self, gadget6):
        outputs = {v: (0,) for v in gadget6.nodes()}
        with pytest.raises(ElectionFailure):
            verify_election(gadget6, outputs)

    def test_rejects_disagreeing_leaders(self, gadget6):
        # everyone claims themselves: empty paths ending at different nodes
        outputs = {v: () for v in gadget6.nodes()}
        with pytest.raises(ElectionFailure):
            verify_election(gadget6, outputs)

    def test_rejects_non_simple_path(self):
        g = ring(4)
        # walk around the whole ring back to start: revisits the start node
        outputs = {v: (0, 1, 0, 1, 0, 1, 0, 1) for v in g.nodes()}
        with pytest.raises(ElectionFailure):
            verify_election(g, outputs)

    def test_rejects_invalid_port_pair(self, gadget6):
        outputs = {v: (0, 9) for v in gadget6.nodes()}
        with pytest.raises(ElectionFailure):
            verify_election(gadget6, outputs)
