"""Property-based end-to-end tests: random feasible graphs through the
full Theorem 3.1 / 4.1 pipelines, plus view invariants under random
graph perturbations."""

import math

import pytest
from hypothesis import HealthCheck, assume, given, settings
from hypothesis import strategies as st

from repro.core import compute_advice, run_elect, run_generic
from repro.core.elections import run_election_milestone
from repro.graphs import random_connected_graph
from repro.views import election_index, is_feasible, truncate_view, views_of_graph

graph_strategy = st.builds(
    random_connected_graph,
    n=st.integers(min_value=4, max_value=14),
    extra_edges=st.integers(min_value=0, max_value=10),
    seed=st.integers(min_value=0, max_value=10**6),
)

common_settings = settings(
    max_examples=25,
    deadline=None,
    suppress_health_check=[HealthCheck.filter_too_much, HealthCheck.too_slow],
)


class TestElectProperty:
    @given(graph_strategy)
    @common_settings
    def test_elect_on_random_feasible(self, g):
        assume(is_feasible(g))
        record = run_elect(g)  # internally verifies leader + time == phi
        assert record.advice_bits <= 250 * g.n * max(1.0, math.log2(g.n))

    @given(graph_strategy)
    @common_settings
    def test_labels_bijection(self, g):
        assume(is_feasible(g))
        bundle = compute_advice(g)
        assert sorted(bundle.labels.values()) == list(range(1, g.n + 1))


class TestGenericProperty:
    @given(graph_strategy, st.integers(min_value=0, max_value=3))
    @settings(max_examples=15, deadline=None,
              suppress_health_check=[HealthCheck.filter_too_much, HealthCheck.too_slow])
    def test_generic_time_bound(self, g, slack):
        assume(is_feasible(g))
        phi = election_index(g)
        rec = run_generic(g, phi + slack)  # internally checks D + x + 1
        assert rec.leader in range(g.n)


class TestMilestoneProperty:
    @given(graph_strategy, st.sampled_from([1, 2, 4]))
    @settings(max_examples=12, deadline=None,
              suppress_health_check=[HealthCheck.filter_too_much, HealthCheck.too_slow])
    def test_milestones_on_random(self, g, milestone):
        assume(is_feasible(g))
        rec = run_election_milestone(g, milestone)
        assert rec.within_budget


class TestViewInvariants:
    @given(graph_strategy, st.integers(min_value=0, max_value=4))
    @common_settings
    def test_truncation_coherence(self, g, depth):
        """truncate(B^{d+1}, d) == B^d for every node — the consistency the
        whole view machinery rests on."""
        deep = views_of_graph(g, depth + 1)
        shallow = views_of_graph(g, depth)
        for v in g.nodes():
            assert truncate_view(deep[v], depth) is shallow[v]

    @given(graph_strategy)
    @common_settings
    def test_partition_refines_monotonically(self, g):
        prev = 1
        for depth in range(5):
            classes = len(set(views_of_graph(g, depth)))
            assert classes >= prev
            prev = classes

    @given(graph_strategy)
    @common_settings
    def test_view_degree_matches_graph(self, g):
        views = views_of_graph(g, 2)
        for v in g.nodes():
            assert views[v].degree == g.degree(v)
            for p in range(g.degree(v)):
                u, q = g.neighbor(v, p)
                assert views[v].remote_port(p) == q
                assert views[v].child(p).degree == g.degree(u)
