"""Message-complexity tracing: DAG-size accounting and engine hook."""

import pytest

from repro.graphs import cycle_with_leader_gadget, ring
from repro.sim import ViewAccumulator, run_sync
from repro.sim.trace import Tracer, message_cost, view_dag_size
from repro.views import views_of_graph


class ComFor:
    def __init__(self, rounds):
        self._rounds = rounds
        self._acc = None

    def setup(self, ctx):
        self._acc = ViewAccumulator(ctx.degree)

    def compose(self, ctx):
        return self._acc.outgoing()

    def deliver(self, ctx, inbox):
        self._acc.absorb(inbox)
        if self._acc.depth == self._rounds and not ctx.has_output:
            ctx.output(())


class TestViewDagSize:
    def test_depth_zero(self):
        v = views_of_graph(ring(5), 0)[0]
        assert view_dag_size(v) == 1

    def test_ring_views_linear_in_depth(self):
        """On a symmetric ring all nodes share views, so the DAG of a
        depth-d view has exactly d+1 distinct nodes."""
        for d in range(4):
            v = views_of_graph(ring(6), d)[0]
            assert view_dag_size(v) == d + 1

    def test_dag_never_exceeds_tree(self):
        g = cycle_with_leader_gadget(6)
        for v in views_of_graph(g, 3):
            assert view_dag_size(v) <= v.tree_size()

    def test_cached(self):
        v = views_of_graph(ring(5), 2)[0]
        assert view_dag_size(v) == view_dag_size(v)


class TestMessageCost:
    def test_plain_values(self):
        assert message_cost(42) == 1
        assert message_cost("x") == 1

    def test_tuple_sums(self):
        v = views_of_graph(ring(5), 1)[0]
        assert message_cost((0, v)) == 1 + view_dag_size(v)


class TestTracerIntegration:
    def test_rounds_recorded(self):
        g = ring(6)
        tracer = Tracer()
        result = run_sync(g, lambda: ComFor(3), tracer=tracer)
        assert len(tracer.rounds) == result.rounds == 3
        assert tracer.total_messages == result.total_messages

    def test_cost_grows_with_depth(self):
        """COM messages get costlier round over round (deeper views)."""
        g = cycle_with_leader_gadget(6)
        tracer = Tracer()
        run_sync(g, lambda: ComFor(4), tracer=tracer)
        costs = [r.total_cost for r in tracer.rounds]
        assert costs == sorted(costs)
        depths = [r.max_view_depth for r in tracer.rounds]
        assert depths == [0, 1, 2, 3]

    def test_summary(self):
        tracer = Tracer()
        run_sync(ring(5), lambda: ComFor(2), tracer=tracer)
        s = tracer.summary()
        assert s["rounds"] == 2
        assert s["messages"] == 20
        assert s["max_view_depth"] == 1
