"""Round-trip tests for graph serialization and the networkx bridge."""

import networkx as nx
import pytest

from repro.errors import CodingError
from repro.graphs import (
    PortGraphBuilder,
    from_dict,
    from_json,
    from_networkx,
    lollipop,
    ring,
    to_dict,
    to_json,
    to_networkx,
)


class TestDictJson:
    def test_dict_round_trip(self):
        g = lollipop(4, 3)
        assert from_dict(to_dict(g)) == g

    def test_json_round_trip(self):
        g = ring(9)
        assert from_json(to_json(g)) == g

    def test_json_stable(self):
        g = lollipop(5, 2)
        assert to_json(g) == to_json(from_json(to_json(g)))

    def test_malformed_dict(self):
        with pytest.raises(CodingError):
            from_dict({"edges": []})
        with pytest.raises(CodingError):
            from_dict({"n": 3, "edges": [[0, 0, 1]]})

    def test_malformed_json(self):
        with pytest.raises(CodingError):
            from_json("{not json")


class TestNetworkxBridge:
    def test_round_trip_preserves_ports(self):
        g = lollipop(4, 2)
        assert from_networkx(to_networkx(g)) == g

    def test_plain_graph_gets_ports(self):
        nxg = nx.petersen_graph()
        g = from_networkx(nxg)
        assert g.n == 10
        assert all(g.degree(v) == 3 for v in g.nodes())

    def test_seeded_assignment_reproducible(self):
        nxg = nx.petersen_graph()
        assert from_networkx(nxg, seed=4) == from_networkx(nxg, seed=4)

    def test_node_count_and_edges(self):
        nxg = nx.path_graph(6)
        g = from_networkx(nxg)
        assert g.n == 6 and g.num_edges == 5
