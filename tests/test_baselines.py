"""Baseline algorithms: full-map, naive-rank, tree-no-advice — and the
advice-size ordering the paper's Section 3 discussion predicts."""

import pytest

from repro.baselines import (
    run_map_based,
    run_naive_rank,
    run_tree_no_advice,
)
from repro.baselines.naive_rank import encode_view_nested
from repro.core import compute_advice
from repro.errors import AlgorithmError
from repro.graphs import PortGraphBuilder, path_graph
from repro.lowerbounds import hk_graph
from repro.views import views_of_graph

from tests.conftest import feasible_corpus, feasible_tree


class TestMapBased:
    @pytest.mark.parametrize("name_g", feasible_corpus()[:5], ids=lambda p: p[0])
    def test_elects_in_time_phi(self, name_g):
        _, g = name_g
        rec = run_map_based(g)
        assert rec.election_time == rec.phi

    def test_advice_larger_than_trie_advice_on_dense(self):
        """On dense graphs the map costs Theta(m log n) vs the trie's
        O(n log n); the gap opens as the clique parameter grows."""
        g = hk_graph(12)  # ring of cliques: m ~ n * x, x grows with k
        assert run_map_based(g).advice_bits > compute_advice(g).size_bits


class TestNaiveRank:
    @pytest.mark.parametrize("name_g", feasible_corpus()[:4], ids=lambda p: p[0])
    def test_elects_in_time_phi(self, name_g):
        _, g = name_g
        rec = run_naive_rank(g)
        assert rec.election_time == rec.phi

    def test_quadratic_blowup_at_phi_one(self):
        """The strawman's point: naive advice >> trie advice, and the ratio
        *grows* with the instance (view encodings are Theta(n log n) each,
        so naive is super-linear while the trie stays O(n log n))."""
        ratios = []
        for k in (5, 16):
            g = hk_graph(k)
            naive = run_naive_rank(g).advice_bits
            trie = compute_advice(g).size_bits
            assert naive > 1.5 * trie
            ratios.append(naive / trie)
        assert ratios[1] > ratios[0]

    def test_view_code_distinctness(self):
        g = hk_graph(4)
        codes = {encode_view_nested(v).as_str() for v in views_of_graph(g, 1)}
        assert len(codes) == g.n


class TestTreeNoAdvice:
    def test_elects_within_diameter(self, tree8):
        rec = run_tree_no_advice(tree8)
        assert rec.election_time <= rec.diameter

    def test_per_node_time_is_eccentricity(self, tree8):
        from repro.baselines.tree_no_advice import TreeNoAdviceAlgorithm
        from repro.sim import run_sync

        result = run_sync(tree8, TreeNoAdviceAlgorithm, max_rounds=20)
        for v in tree8.nodes():
            assert result.output_round[v] == tree8.eccentricity(v)

    def test_path_graph(self):
        rec = run_tree_no_advice(path_graph(7))
        assert rec.election_time == 6

    def test_rejects_non_tree(self, gadget6):
        with pytest.raises(AlgorithmError):
            run_tree_no_advice(gadget6)

    def test_deeper_tree(self):
        b = PortGraphBuilder(10)
        for (u, v) in [(0, 1), (1, 2), (2, 3), (3, 4), (4, 5), (2, 6), (6, 7), (1, 8), (8, 9)]:
            b.add_edge_auto(u, v)
        rec = run_tree_no_advice(b.build())
        assert rec.n == 10


class TestAdviceSizeOrdering:
    def test_hierarchy_on_ring_of_cliques(self):
        """naive >> map ~ trie-sized statements: check the full ordering
        trie < map < naive on the Theorem 3.2 family, which is exactly the
        regime the Section 3 discussion contrasts."""
        g = hk_graph(5)
        trie = compute_advice(g).size_bits
        map_bits = run_map_based(g).advice_bits
        naive = run_naive_rank(g).advice_bits
        assert trie < naive
        assert map_bits < naive
