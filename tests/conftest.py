"""Shared fixtures and corpus helpers for the test suite."""

from __future__ import annotations

import pytest

from repro.graphs import (
    PortGraphBuilder,
    cycle_with_leader_gadget,
    lollipop,
    random_connected_graph,
)
from repro.views import is_feasible


def feasible_corpus(max_n: int = 30):
    """A list of (name, graph) pairs of small feasible graphs covering
    different shapes: pendant rings, lollipops, random sparse/dense."""
    corpus = [
        ("pendant-ring-5", cycle_with_leader_gadget(5)),
        ("pendant-ring-8", cycle_with_leader_gadget(8)),
        ("lollipop-4-3", lollipop(4, 3)),
        ("lollipop-5-2", lollipop(5, 2)),
    ]
    for n, extra, seed in ((8, 4, 11), (12, 8, 12), (16, 5, 13), (20, 14, 14)):
        if n <= max_n:
            g = random_connected_graph(n, extra_edges=extra, seed=seed)
            if is_feasible(g):
                corpus.append((f"random-{n}-{seed}", g))
    return corpus


def feasible_tree(kind: str = "caterpillar"):
    """A small feasible (asymmetric) tree."""
    b = PortGraphBuilder(8)
    edges = [(0, 1), (1, 2), (2, 3), (3, 4), (1, 5), (2, 6), (6, 7)]
    for u, v in edges:
        b.add_edge_auto(u, v)
    return b.build()


@pytest.fixture(scope="session")
def corpus():
    return feasible_corpus()


@pytest.fixture()
def gadget6():
    return cycle_with_leader_gadget(6)


@pytest.fixture()
def tree8():
    return feasible_tree()
