"""Theorem 4.2's constructions: z-locks, the S_0 family (Claim 4.1), the
pruned-view replacement lemma (Claim 4.2 — machine-verified), and the
merge operation's structural invariants."""

import pytest

from repro.errors import GraphStructureError
from repro.graphs import PortGraphBuilder
from repro.lowerbounds import (
    MergeParams,
    S0Params,
    merge_graphs,
    s0_graph,
    z_lock,
)
from repro.lowerbounds.families_t import (
    _copy_except,
    index_b,
    offset_a,
    paper_merge_params,
    transform_lock,
)
from repro.views import election_index, views_of_graph


class TestZLock:
    def test_structure(self):
        g = z_lock(5)
        assert g.n == 7
        degrees = sorted(g.degree(v) for v in g.nodes())
        # central: z+1; two cycle nodes: 2; clique nodes: z-1
        assert degrees.count(2) == 2
        assert degrees.count(6) == 1  # z + 1
        assert degrees.count(4) == 4  # z - 1

    def test_principal_via_port_zero(self):
        from repro.lowerbounds.locks import add_z_lock

        b = PortGraphBuilder()
        h = add_z_lock(b, 5)
        g = b.build()
        v, _ = g.neighbor(h.central, 0)
        assert v == h.principal

    def test_rejects_small(self):
        with pytest.raises(GraphStructureError):
            z_lock(3)


class TestS0:
    def test_claim_41_election_index_one(self):
        """Claim 4.1: every graph of S_0 has election index 1."""
        params = S0Params(alpha=1, c=2)
        for i in (0, 1, 2):
            member = s0_graph(params, i)
            assert election_index(member.graph) == 1

    def test_lock_sizes_grow(self):
        """Property 2: right lock of G_i smaller than left lock of G_{i+1}."""
        params = S0Params(alpha=1, c=2)
        for i in (0, 1):
            right = s0_graph(params, i)
            left_next = s0_graph(params, i + 1)
            z_right = right.graph.degree(right.right_lock.central) - 2
            z_left_next = left_next.graph.degree(left_next.left_lock.central) - 2
            assert z_right < z_left_next

    def test_min_degree_two(self):
        """Property 3: no degree-1 nodes (needed for Claim 4.3)."""
        member = s0_graph(S0Params(alpha=1, c=2), 0)
        assert min(member.graph.degree(v) for v in member.graph.nodes()) >= 2

    def test_principal_distance_is_diameter(self):
        """Property 10: dist(left principal, right principal) == diameter."""
        member = s0_graph(S0Params(alpha=1, c=2), 0)
        g = member.graph
        assert (
            g.distance(member.left_principal, member.right_principal)
            == g.diameter()
        )

    def test_distinct_members_have_disjoint_view_worlds(self):
        """Property 13 at depth B(0,c)=1: all depth-1 views differ between
        distinct members."""
        params = S0Params(alpha=1, c=2)
        a = s0_graph(params, 0)
        b = s0_graph(params, 1)
        va = set(views_of_graph(a.graph, 1))
        vb = set(views_of_graph(b.graph, 1))
        assert va.isdisjoint(vb)

    def test_family_size_formula(self):
        assert S0Params(alpha=2, c=2).family_size == 2 * 2 * 2**3


class TestParameterFunctions:
    def test_part1(self):
        assert offset_a(5, 3, part=1) == 8
        assert index_b(1, 2, part=1) == 5

    def test_part2(self):
        assert offset_a(5, 3, part=2) == 15
        assert index_b(2, 2, part=2) == 16

    def test_part4_tower(self):
        assert offset_a(3, 2, part=4) == 8
        assert index_b(2, 2, part=4) == 2 * (2**2)

    def test_bad_part(self):
        with pytest.raises(ValueError):
            offset_a(1, 2, part=5)


class TestClaim42PrunedReplacement:
    """THE load-bearing lemma: replacing a lock's 3-cycle by the pruned
    view of its central node to depth l preserves B^{l-1} of the central
    node, and B^{d+l-1} of every node at distance d outside the replaced
    component."""

    @pytest.mark.parametrize("depth", [2, 3, 4])
    def test_central_view_preserved(self, depth):
        member = s0_graph(S0Params(alpha=1, c=2), 0)
        g = member.graph
        maxdeg = g.max_degree()
        b = PortGraphBuilder()
        lmap = _copy_except(
            b, g, [member.right_lock.principal, member.right_lock.other_cycle]
        )
        transform_lock(
            b,
            g,
            member.right_lock,
            lmap,
            MergeParams(pruned_depth=depth, clique_base=maxdeg, chain_len=2),
        )
        gstar = b.build()
        central, central_star = member.right_lock.central, lmap[member.right_lock.central]
        assert (
            views_of_graph(g, depth - 1)[central]
            is views_of_graph(gstar, depth - 1)[central_star]
        )
        # and one level deeper they may legitimately differ (the lemma is tight)
        deeper_g = views_of_graph(g, depth)[central]
        deeper_star = views_of_graph(gstar, depth)[central_star]
        assert deeper_g is not deeper_star

    def test_outside_views_preserved(self):
        depth = 3
        member = s0_graph(S0Params(alpha=1, c=2), 0)
        g = member.graph
        b = PortGraphBuilder()
        lmap = _copy_except(
            b, g, [member.right_lock.principal, member.right_lock.other_cycle]
        )
        transform_lock(
            b,
            g,
            member.right_lock,
            lmap,
            MergeParams(pruned_depth=depth, clique_base=g.max_degree(), chain_len=2),
        )
        gstar = b.build()
        central = member.right_lock.central
        # check every node outside G' = {central, two cycle nodes}
        outside = [
            v
            for v in g.nodes()
            if v
            not in (
                central,
                member.right_lock.principal,
                member.right_lock.other_cycle,
            )
        ]
        for v in outside[:12]:  # a representative prefix keeps the test fast
            d = g.distance(v, central)
            lhs = views_of_graph(g, d + depth - 1)[v]
            rhs = views_of_graph(gstar, d + depth - 1)[lmap[v]]
            assert lhs is rhs


class TestMerge:
    @pytest.fixture(scope="class")
    def merged(self):
        params = S0Params(alpha=1, c=2)
        left = s0_graph(params, 0)
        right = s0_graph(params, 1)
        q = merge_graphs(
            left, right, MergeParams(pruned_depth=3, clique_base=40, chain_len=4)
        )
        return left, right, q

    def test_level_increments(self, merged):
        _, _, q = merged
        assert q.family_level == 1

    def test_connected_and_larger(self, merged):
        left, right, q = merged
        assert q.graph.is_connected()
        assert q.graph.n > left.graph.n + right.graph.n

    def test_outer_locks_preserved(self, merged):
        """Property 1: Q = L1 * ... * L4 with H's outer locks intact."""
        left, right, q = merged
        g = q.graph
        assert g.degree(q.left_lock.principal) == 2
        assert g.degree(q.right_lock.principal) == 2
        # left lock central keeps its degree from H'
        assert g.degree(q.left_lock.central) == left.graph.degree(
            left.left_lock.central
        )

    def test_election_index_bounded(self, merged):
        """Claim 4.5 shape: phi(Q) <= B(k+1, c) (demo depth stands in for
        B(k+1,c); the index must stay small, not blow up)."""
        _, _, q = merged
        assert election_index(q.graph) <= 3

    def test_property9_principal_views_preserved(self, merged):
        """Property 9 (the fooling property): the left principal of Q has
        the same deep view as the left principal of H', to depth
        d(principal, transformed central) + pruned_depth - 1."""
        left, _, q = merged
        depth_budget = (
            left.graph.distance(left.left_principal, left.right_lock.central)
            + 3  # pruned_depth
            - 1
        )
        lhs = views_of_graph(left.graph, depth_budget)[left.left_principal]
        rhs = views_of_graph(q.graph, depth_budget)[q.left_principal]
        assert lhs is rhs

    def test_property9_right_side(self, merged):
        _, right, q = merged
        depth_budget = (
            right.graph.distance(right.right_principal, right.left_lock.central)
            + 3
            - 1
        )
        lhs = views_of_graph(right.graph, depth_budget)[right.right_principal]
        rhs = views_of_graph(q.graph, depth_budget)[q.right_principal]
        assert lhs is rhs

    def test_paper_params_formula(self):
        p = paper_merge_params(k=0, c=2, prev_max_size=100, prev_max_degree=30)
        assert p.pruned_depth == index_b(1, 2)
        assert p.chain_len == 200
        assert p.clique_base == 30
