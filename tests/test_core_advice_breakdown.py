"""advice_breakdown: component accounting of the advice string."""

from repro.core import compute_advice
from repro.core.advice import advice_breakdown
from repro.lowerbounds import hk_graph, necklace


class TestAdviceBreakdown:
    def test_components_present(self):
        b = compute_advice(necklace(4, 2))
        d = advice_breakdown(b)
        assert set(d) == {
            "phi",
            "E1_trie",
            "E2_nested_tries",
            "A2_bfs_tree",
            "total_with_framing",
        }

    def test_e2_empty_iff_phi_one(self):
        assert advice_breakdown(compute_advice(hk_graph(4)))["E2_nested_tries"] == 0
        assert advice_breakdown(compute_advice(necklace(4, 3)))["E2_nested_tries"] > 0

    def test_framing_overhead_bounded(self):
        """Framing: E1/E2 sit two Concat levels deep (doubled twice, 4x),
        phi and A2 one level deep (2x), plus O(1) separators."""
        b = compute_advice(necklace(4, 2))
        d = advice_breakdown(b)
        expected = (
            2 * d["phi"]
            + 4 * (d["E1_trie"] + d["E2_nested_tries"])
            + 2 * d["A2_bfs_tree"]
        )
        assert expected <= d["total_with_framing"] <= expected + 16

    def test_tree_dominates_at_phi_one(self):
        """At phi = 1 the labeled BFS tree is the bulk of the advice."""
        d = advice_breakdown(compute_advice(hk_graph(8)))
        assert d["A2_bfs_tree"] > d["E1_trie"]
