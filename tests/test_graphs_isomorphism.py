"""Unit tests for port-preserving isomorphism."""

from repro.graphs import PortGraphBuilder, clique, ring
from repro.graphs.isomorphism import (
    are_port_isomorphic,
    port_automorphism_exists,
    port_isomorphism,
)
from repro.lowerbounds import clique_family_f


def relabeled_ring(n, shift):
    """A ring with node ids rotated by ``shift`` (port structure intact)."""
    b = PortGraphBuilder(n)
    for i in range(n):
        u = (i + shift) % n
        v = (i + 1 + shift) % n
        b.add_edge(u, 0, v, 1)
    return b.build()


class TestIsomorphism:
    def test_self_isomorphic(self):
        g = ring(6)
        assert are_port_isomorphic(g, g)

    def test_relabeling_is_isomorphic(self):
        assert are_port_isomorphic(ring(7), relabeled_ring(7, 3))

    def test_mapping_preserves_ports(self):
        g1, g2 = ring(6), relabeled_ring(6, 2)
        mapping = port_isomorphism(g1, g2)
        assert mapping is not None
        for u in g1.nodes():
            for p in range(g1.degree(u)):
                v, q = g1.neighbor(u, p)
                v2, q2 = g2.neighbor(mapping[u], p)
                assert v2 == mapping[v] and q2 == q

    def test_different_sizes_not_isomorphic(self):
        assert not are_port_isomorphic(ring(6), ring(7))

    def test_port_swap_breaks_isomorphism(self):
        # same underlying graph, different port numbering at one node
        b = PortGraphBuilder(4)
        b.add_edge(0, 0, 1, 1)
        b.add_edge(1, 0, 2, 1)
        b.add_edge(2, 0, 3, 1)
        b.add_edge(3, 0, 0, 1)
        g1 = b.build()
        b2 = PortGraphBuilder(4)
        b2.add_edge(0, 1, 1, 1)  # ports swapped at node 0
        b2.add_edge(1, 0, 2, 1)
        b2.add_edge(2, 0, 3, 1)
        b2.add_edge(3, 0, 0, 0)
        g2 = b2.build()
        assert not are_port_isomorphic(g1, g2)

    def test_family_f_members_not_isomorphic_with_anchored_ports(self):
        """Distinct F(x) cliques differ as port-labeled graphs rooted at r
        (the property Claim 3.8 exploits); some pairs can still be abstractly
        isomorphic, so we check a known-distinguishable pair."""
        a = clique_family_f(3, 0)
        b = clique_family_f(3, 0)
        assert are_port_isomorphic(a, b)


class TestAutomorphism:
    def test_symmetric_graph_has_automorphism(self):
        assert port_automorphism_exists(ring(6))
        assert port_automorphism_exists(clique(4))

    def test_rigid_graph_has_none(self):
        from repro.graphs import cycle_with_leader_gadget

        assert not port_automorphism_exists(cycle_with_leader_gadget(5))
