"""RetrieveLabel/LocalLabel/BuildTrie: the label uniqueness claims
(Claims 3.2, 3.4, 3.7) verified directly on graph corpora."""

import pytest

from repro.core.advice import compute_advice
from repro.core.labels import LabelingContext, local_label, retrieve_label
from repro.core.trie_builder import build_trie
from repro.errors import AdviceError
from repro.graphs import lollipop, random_connected_graph
from repro.views import election_index, is_feasible, views_of_graph
from repro.views.order import sort_views

from tests.conftest import feasible_corpus


def _depth1_context(g):
    ctx = LabelingContext()
    s1 = sort_views(set(views_of_graph(g, 1)))
    ctx.e1 = build_trie(s1, ctx)
    return ctx, s1


class TestDepth1Tries:
    """Claims 3.1 / 3.2: the depth-1 trie has 2|S|-1 nodes and routes
    distinct views to distinct labels in {1..|S|}."""

    @pytest.mark.parametrize("name_g", feasible_corpus(), ids=lambda p: p[0])
    def test_trie_shape(self, name_g):
        _, g = name_g
        ctx, s1 = _depth1_context(g)
        assert ctx.e1.num_leaves() == len(s1)
        assert ctx.e1.size() == 2 * len(s1) - 1

    @pytest.mark.parametrize("name_g", feasible_corpus(), ids=lambda p: p[0])
    def test_labels_bijective(self, name_g):
        _, g = name_g
        ctx, s1 = _depth1_context(g)
        labels = {local_label(b, (), ctx.e1, ctx) for b in s1}
        assert labels == set(range(1, len(s1) + 1))

    def test_single_view_label_one(self):
        from repro.graphs import ring

        g = ring(6)  # all depth-1 views identical
        ctx, s1 = _depth1_context(g)
        assert len(s1) == 1
        assert local_label(s1[0], (), ctx.e1, ctx) == 1


class TestRetrieveLabelFullDepth:
    """Claim 3.7 at depth phi: RetrieveLabel is a bijection onto {1..n}."""

    @pytest.mark.parametrize("name_g", feasible_corpus(), ids=lambda p: p[0])
    def test_bijection(self, name_g):
        _, g = name_g
        bundle = compute_advice(g)
        assert sorted(bundle.labels.values()) == list(range(1, g.n + 1))

    @pytest.mark.parametrize("name_g", feasible_corpus()[:4], ids=lambda p: p[0])
    def test_intermediate_depths_injective(self, name_g):
        """Distinct views at every depth d <= phi get distinct labels in
        {1..|S_d|} under the final advice context."""
        _, g = name_g
        bundle = compute_advice(g)
        ctx = LabelingContext(e1=bundle.e1)
        for depth, layer in bundle.e2:
            ctx.add_layer(depth, dict(layer))
        for d in range(1, bundle.phi + 1):
            distinct = sort_views(set(views_of_graph(g, d)))
            labels = [retrieve_label(b, ctx) for b in distinct]
            assert len(set(labels)) == len(distinct)
            assert all(1 <= lab <= len(distinct) for lab in labels)

    def test_depth_zero_rejected(self):
        from repro.views.view import View

        ctx = LabelingContext()
        with pytest.raises(AdviceError):
            retrieve_label(View.make(2, ()), ctx)


class TestBuildTrieValidation:
    def test_rejects_empty(self):
        with pytest.raises(AdviceError):
            build_trie([], LabelingContext())

    def test_rejects_duplicates(self):
        g = lollipop(4, 2)
        v = views_of_graph(g, 1)[0]
        with pytest.raises(AdviceError):
            build_trie([v, v], LabelingContext())

    def test_rejects_mixed_depths(self):
        g = lollipop(4, 2)
        v1 = views_of_graph(g, 1)[0]
        v2 = views_of_graph(g, 2)[0]
        with pytest.raises(AdviceError):
            build_trie([v1, v2], LabelingContext())


class TestDeepTries:
    """Deep-mode tries (Claim 3.6): built per label group at each depth,
    with queries whose integers stay O(n)."""

    @pytest.mark.parametrize("seed", [5, 12])
    def test_queries_bounded(self, seed):
        g = random_connected_graph(14, extra_edges=7, seed=seed)
        if not is_feasible(g) or election_index(g) < 2:
            pytest.skip("need a feasible graph with phi >= 2")
        bundle = compute_advice(g)
        for depth, layer in bundle.e2:
            for label, trie in layer:
                for (a, b) in trie.queries():
                    assert 0 <= a < g.max_degree()
                    assert 1 <= b <= g.n
