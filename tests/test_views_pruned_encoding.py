"""Pruned views (standalone semantics) and the faithful bin(B^1)
encoding of Proposition 3.3."""

import pytest

from repro.coding.concat import decode_concat
from repro.coding.integers import decode_uint
from repro.errors import GraphStructureError
from repro.graphs import PortGraphBuilder, lollipop, ring
from repro.lowerbounds import z_lock
from repro.views import materialize_pruned_view, views_of_graph
from repro.views.encoding import encode_b1


class TestPrunedView:
    def test_ring_pruned_is_path(self):
        """Pruning one port of a ring node unrolls the ring into a path."""
        g = ring(6)
        b = PortGraphBuilder()
        res = materialize_pruned_view(b, g, 0, excluded_ports=[1], depth=3)
        # cap the leaf stub: attach a pendant? leaves carry their parent
        # port; for the ring the parent port at each level is 1, so add a
        # pendant at port 0 of the leaf to make ports contiguous
        for leaf in res.leaves:
            cap = b.add_node()
            b.add_edge(leaf, 0, cap, 0)
        t = b.build()
        # path of 4 nodes + cap
        assert t.n == 5
        assert len(res.leaves) == 1

    def test_branching_counts(self):
        g = z_lock(5)
        central = max(g.nodes(), key=g.degree)
        # exclude the clique ports, keep the two cycle ports
        cycle_ports = [0, 1]
        excluded = [p for p in range(g.degree(central)) if p not in cycle_ports]
        b = PortGraphBuilder()
        res = materialize_pruned_view(b, g, central, excluded, depth=2)
        # depth 1: two cycle nodes; depth 2: one child each (cycle of 3)
        assert len(res.leaves) == 2

    def test_root_keeps_original_ports(self):
        g = lollipop(4, 2)
        b = PortGraphBuilder()
        res = materialize_pruned_view(b, g, 0, excluded_ports=[0], depth=1)
        # root has ports 1..deg-1 assigned, port 0 free
        assert b.next_free_port(res.root) == 0

    def test_excluded_port_validation(self):
        g = ring(5)
        b = PortGraphBuilder()
        with pytest.raises(GraphStructureError):
            materialize_pruned_view(b, g, 0, excluded_ports=[5], depth=2)
        with pytest.raises(GraphStructureError):
            materialize_pruned_view(b, g, 0, excluded_ports=[0, 1], depth=2)
        with pytest.raises(GraphStructureError):
            materialize_pruned_view(b, g, 0, excluded_ports=[], depth=0)

    def test_degree_one_interior_rejected(self):
        g = lollipop(4, 2)  # tail end has degree 1
        b = PortGraphBuilder()
        tail_neighbor_port = None
        # from clique node 0, walk toward the tail: excluded = clique ports
        with pytest.raises(GraphStructureError):
            materialize_pruned_view(
                b, g, 0, excluded_ports=[0, 1, 2], depth=4
            )

    def test_source_mapping(self):
        g = ring(4)
        b = PortGraphBuilder()
        res = materialize_pruned_view(b, g, 0, excluded_ports=[1], depth=2)
        assert res.source_of[res.root] == 0
        assert set(res.source_of.values()) <= set(g.nodes())


class TestEncodeB1:
    def test_structure_decodable(self):
        g = lollipop(4, 2)
        views = views_of_graph(g, 1)
        bits = encode_b1(views[0])
        triples = decode_concat(bits)
        assert len(triples) == g.degree(0)
        for j, triple in enumerate(triples):
            fields = decode_concat(triple)
            assert decode_uint(fields[0]) == j
            u, q = g.neighbor(0, j)
            assert decode_uint(fields[1]) == q
            assert decode_uint(fields[2]) == g.degree(u)

    def test_injective_on_distinct_views(self):
        g = lollipop(5, 3)
        views = views_of_graph(g, 1)
        codes = {}
        for v in g.nodes():
            codes.setdefault(encode_b1(views[v]).as_str(), set()).add(views[v])
        for code, view_set in codes.items():
            assert len(view_set) == 1

    def test_rejects_wrong_depth(self):
        g = ring(5)
        with pytest.raises(ValueError):
            encode_b1(views_of_graph(g, 2)[0])
        with pytest.raises(ValueError):
            encode_b1(views_of_graph(g, 0)[0])

    def test_cached(self):
        g = ring(5)
        v = views_of_graph(g, 1)[0]
        assert encode_b1(v) is encode_b1(v)
