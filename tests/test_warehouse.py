"""The results warehouse: one indexed sqlite store under sweeps,
conformance, the service cache and bench records.

The invariants proven here are the ones the JSONL stores already carry —
resume byte-identity, group atomicity under SIGKILL, warm-equals-cold
service answers — re-proven on the warehouse backend, plus the ones only
a shared indexed store can offer: byte-identical import/export
round-trips, join-query warming with no corpus re-stream, tiered
hit metrics, concurrent multi-process writers, and the cross-run bench
trend."""

from __future__ import annotations

import json
import os
import signal
import subprocess
import sys
import threading
import time

import pytest

from repro.analysis.sweep import sweep_to_store
from repro.corpus import iter_corpus
from repro.engine import ResultStore, StoreError, load_records, open_result_store
from repro.engine.records import record_to_json
from repro.service import (
    ResultCache,
    ServiceCore,
    warm_from_stores,
    warm_from_warehouse,
)
from repro.warehouse import (
    Warehouse,
    WarehouseStore,
    export_bench,
    export_dataset,
    import_file,
    is_warehouse_path,
    register_corpus_graphs,
    sniff_format,
    trend_table,
)

SPEC = "caterpillars:18,seed=13"
TASK = "index"
DATA_DIR = os.path.join(os.path.dirname(__file__), "data")

ENV = dict(os.environ)
ENV["PYTHONPATH"] = (
    os.path.join(os.path.dirname(os.path.dirname(__file__)), "src")
    + os.pathsep
    + ENV.get("PYTHONPATH", "")
)


def _reference_bytes(tmp_path):
    """The uninterrupted plain-JSONL sweep: the byte-identity oracle."""
    path = tmp_path / "reference.jsonl"
    with ResultStore(str(path)) as store:
        ran, skipped = sweep_to_store(iter_corpus(SPEC), TASK, store)
    assert (ran, skipped) == (18, 0)
    return path.read_bytes()


def _export_bytes(wh_path, dataset="sweep"):
    out = str(wh_path) + f".{dataset}.export.jsonl"
    with Warehouse(str(wh_path)) as wh:
        export_dataset(wh, dataset, out)
    with open(out, "rb") as fh:
        return fh.read()


# ----------------------------------------------------------------------
# backend dispatch and basics
# ----------------------------------------------------------------------
def test_is_warehouse_path_by_extension():
    assert is_warehouse_path("results.sqlite")
    assert is_warehouse_path("/a/b/WH.DB")
    assert not is_warehouse_path("results.jsonl")
    assert not is_warehouse_path(None)
    assert not is_warehouse_path("")


def test_open_result_store_dispatches(tmp_path):
    with open_result_store(str(tmp_path / "s.jsonl")) as store:
        assert isinstance(store, ResultStore)
    with open_result_store(str(tmp_path / "s.sqlite")) as store:
        assert isinstance(store, WarehouseStore)


def test_schema_version_gate(tmp_path):
    path = str(tmp_path / "wh.sqlite")
    with Warehouse(path) as wh:
        wh._conn.execute(
            "UPDATE meta SET value='repro-warehouse/999' "
            "WHERE key='schema_version'"
        )
    with pytest.raises(StoreError, match="schema version"):
        Warehouse(path)


def test_store_interface_tracks_keys(tmp_path):
    path = str(tmp_path / "wh.sqlite")
    rec = {"task": "index", "name": "a", "n": 5, "feasible": False}
    with WarehouseStore(path) as store:
        store.append(rec)
        assert ("a", "index") in store
        assert len(store) == 1
    assert list(load_records(path)) == [rec]
    with Warehouse(path) as wh:
        assert wh.integrity_check() == "ok"


# ----------------------------------------------------------------------
# byte-identity: export == plain JSONL sweep, resume convergence
# ----------------------------------------------------------------------
def test_export_equals_plain_jsonl_sweep(tmp_path):
    reference = _reference_bytes(tmp_path)
    wh_path = tmp_path / "wh.sqlite"
    with open_result_store(str(wh_path)) as store:
        ran, skipped = sweep_to_store(iter_corpus(SPEC), TASK, store)
    assert (ran, skipped) == (18, 0)
    assert _export_bytes(wh_path) == reference


def test_resume_is_a_key_query_and_converges(tmp_path):
    reference = _reference_bytes(tmp_path)
    wh_path = tmp_path / "wh.sqlite"
    # first pass: interrupt after 10 entries (close with work remaining)
    def first_ten():
        for i, entry in enumerate(iter_corpus(SPEC)):
            if i == 10:
                return
            yield entry

    with open_result_store(str(wh_path)) as store:
        sweep_to_store(first_ten(), TASK, store)
    with open_result_store(str(wh_path), resume=True) as store:
        assert len(store) == 10
        ran, skipped = sweep_to_store(iter_corpus(SPEC), TASK, store)
    assert (ran, skipped) == (8, 10)
    assert _export_bytes(wh_path) == reference


def test_fresh_open_clears_the_dataset(tmp_path):
    wh_path = str(tmp_path / "wh.sqlite")
    with WarehouseStore(wh_path) as store:
        store.append({"task": "index", "name": "old", "n": 1})
    with WarehouseStore(wh_path) as store:  # resume=False: fresh
        assert len(store) == 0
    with Warehouse(wh_path) as wh:
        assert wh.result_keys("sweep") == set()


def test_unterminated_group_is_never_durable(tmp_path):
    """Sub-records with no summary are the transactional torn tail: they
    vanish on close, and a resumed run re-does the whole entry."""
    wh_path = str(tmp_path / "wh.sqlite")
    with WarehouseStore(wh_path) as store:
        store.append({"task": "conf", "name": "e1", "entry": "e1-sub0"})
        store.append({"task": "conf", "name": "e1-sub1", "entry": "e1"})
        assert len(store) == 0  # nothing durable until the summary
        store.append({"task": "conf", "name": "e1", "entry": "e1"})
        assert ("e1", "conf") in store and ("e1-sub1", "conf") in store
        # a second group left unterminated...
        store.append({"task": "conf", "name": "e2", "entry": "e2-sub0"})
    with Warehouse(wh_path) as wh:
        names = [r["name"] for r in wh.iter_records("sweep")]
    assert names == ["e1", "e1-sub1", "e1"]  # e2's sub-record is gone


def test_multi_record_groups_roundtrip_conformance(tmp_path):
    """The conformance shape end-to-end on both backends: group-by-group
    parity, byte for byte."""
    from repro.conformance import conformance_task_name

    task = conformance_task_name(schedules=2, seed=0)
    spec = "tori:2,seed=0"
    ref = tmp_path / "conf.jsonl"
    with ResultStore(str(ref)) as store:
        sweep_to_store(iter_corpus(spec), task, store)
    wh_path = tmp_path / "conf.sqlite"
    with open_result_store(str(wh_path), dataset="conformance") as store:
        sweep_to_store(iter_corpus(spec), task, store)
    assert _export_bytes(wh_path, "conformance") == ref.read_bytes()


# ----------------------------------------------------------------------
# genuine SIGKILL mid-run
# ----------------------------------------------------------------------
def test_sigkill_mid_sweep_resumes_byte_identical(tmp_path):
    """Kill -9 a warehouse-backed sweep mid-run; the next open sees only
    whole committed groups (sqlite's rollback is the torn-tail repair),
    and the resumed sweep converges to the uninterrupted bytes."""
    spec = "caterpillars:300,seed=13"
    reference = tmp_path / "reference.jsonl"
    with ResultStore(str(reference)) as store:
        sweep_to_store(iter_corpus(spec), TASK, store)

    wh_path = str(tmp_path / "wh.sqlite")
    proc = subprocess.Popen(
        [
            sys.executable, "-m", "repro", "sweep",
            "--corpus", spec, "--task", TASK, "--out", wh_path,
        ],
        env=ENV,
        stdout=subprocess.DEVNULL,
        stderr=subprocess.DEVNULL,
    )
    try:
        deadline = time.time() + 60
        killed = False
        while time.time() < deadline:
            if proc.poll() is not None:
                break  # finished before we could kill: still a valid run
            if os.path.exists(wh_path):
                try:
                    with Warehouse(wh_path) as wh:
                        done = len(wh.result_keys("sweep"))
                except StoreError:
                    done = 0
                if done >= 20:
                    proc.send_signal(signal.SIGKILL)
                    proc.wait()
                    killed = True
                    break
            time.sleep(0.02)
        assert killed or proc.poll() is not None
    finally:
        if proc.poll() is None:
            proc.kill()
            proc.wait()

    with Warehouse(wh_path) as wh:
        assert wh.integrity_check() == "ok"
        survivors = len(wh.result_keys("sweep"))
    assert survivors <= 300
    with open_result_store(wh_path, resume=True) as store:
        ran, skipped = sweep_to_store(iter_corpus(spec), TASK, store)
    assert skipped == survivors and ran == 300 - survivors
    assert _export_bytes(wh_path) == reference.read_bytes()


# ----------------------------------------------------------------------
# concurrent writers
# ----------------------------------------------------------------------
def test_concurrent_process_and_thread_writers(tmp_path):
    """Two sweep processes (different datasets) and a service-cache
    thread all writing one warehouse file: every record lands, sqlite
    stays healthy."""
    wh_path = str(tmp_path / "shared.sqlite")
    specs = {
        "sweep-a": "caterpillars:40,seed=1",
        "sweep-b": "random-trees:40,seed=2,min_n=8,max_n=16",
    }
    procs = [
        subprocess.Popen(
            [
                sys.executable, "-m", "repro", "sweep",
                "--corpus", spec, "--task", TASK,
                "--out", wh_path, "--dataset", dataset,
            ],
            env=ENV,
            stdout=subprocess.DEVNULL,
            stderr=subprocess.DEVNULL,
        )
        for dataset, spec in specs.items()
    ]

    errors = []

    def cache_writer():
        try:
            cache = ResultCache(wh_path, capacity=4)
            for i in range(50):
                cache.put(
                    (f"{i:064x}", "index"),
                    {"task": "index", "name": f"graph:{i:016x}", "n": i},
                )
            cache.close()
        except Exception as exc:  # pragma: no cover - the assert below
            errors.append(exc)

    thread = threading.Thread(target=cache_writer)
    thread.start()
    thread.join(timeout=120)
    for proc in procs:
        assert proc.wait(timeout=120) == 0
    assert not errors and not thread.is_alive()

    with Warehouse(wh_path) as wh:
        assert wh.integrity_check() == "ok"
        assert len(wh.result_keys("sweep-a")) == 40
        assert len(wh.result_keys("sweep-b")) == 40
        assert wh.cache_size("service-cache") == 50


# ----------------------------------------------------------------------
# import/export round-trips
# ----------------------------------------------------------------------
def test_store_import_export_roundtrip(tmp_path):
    reference = _reference_bytes(tmp_path)
    src = tmp_path / "src.jsonl"
    src.write_bytes(reference)
    wh_path = str(tmp_path / "wh.sqlite")
    with Warehouse(wh_path) as wh:
        fmt, dataset, imported = import_file(wh, str(src))
        assert (fmt, dataset, imported) == ("store", "src", 18)
        out = str(tmp_path / "back.jsonl")
        assert export_dataset(wh, "src", out) == 18
    with open(out, "rb") as fh:
        assert fh.read() == reference


def test_golden_store_roundtrip_byte_identical(tmp_path):
    """The checked-in golden store (written by a past sweep, a frozen
    wire-format sample) must survive import -> export untouched — the
    migration gate CI runs."""
    golden = os.path.join(DATA_DIR, "golden_store_caterpillars_index.jsonl")
    with open(golden, "rb") as fh:
        reference = fh.read()
    wh_path = str(tmp_path / "wh.sqlite")
    out = str(tmp_path / "back.jsonl")
    with Warehouse(wh_path) as wh:
        fmt, dataset, imported = import_file(wh, golden)
        assert fmt == "store" and imported > 0
        export_dataset(wh, dataset, out)
    with open(out, "rb") as fh:
        assert fh.read() == reference


def test_golden_cache_roundtrip_byte_identical(tmp_path):
    golden = os.path.join(DATA_DIR, "golden_cache_caterpillars.jsonl")
    with open(golden, "rb") as fh:
        reference = fh.read()
    assert sniff_format(golden) == "cache"
    wh_path = str(tmp_path / "wh.sqlite")
    out = str(tmp_path / "back.jsonl")
    with Warehouse(wh_path) as wh:
        fmt, dataset, imported = import_file(wh, golden)
        assert fmt == "cache" and imported > 0
        export_dataset(wh, dataset, out)
    with open(out, "rb") as fh:
        assert fh.read() == reference


def test_bench_import_export_roundtrip(tmp_path):
    from repro.analysis.bench import env_fingerprint, write_json

    record = {
        "schema": "repro-bench/1",
        "kind": "timing",
        "scenario": "demo",
        "quick": True,
        "env": env_fingerprint(),
        "baseline": None,
        "cases": [
            {"case": "c1", "seconds": 0.25, "repeats": 2,
             "baseline_seconds": None, "speedup": None},
        ],
    }
    src = str(tmp_path / "BENCH_demo.json")
    write_json(src, record)
    wh_path = str(tmp_path / "wh.sqlite")
    with Warehouse(wh_path) as wh:
        fmt, dataset, imported = import_file(wh, src)
        assert (fmt, dataset, imported) == ("bench", "bench", 1)
        written = export_bench(wh, str(tmp_path / "out"))
    assert len(written) == 1
    with open(src, "rb") as a, open(written[0], "rb") as b:
        assert a.read() == b.read()


def test_import_refuses_torn_store(tmp_path):
    src = tmp_path / "torn.jsonl"
    src.write_text('{"name":"a","task":"t","entry":"a-sub"}\n')
    with Warehouse(str(tmp_path / "wh.sqlite")) as wh:
        with pytest.raises(StoreError, match="unterminated record group"):
            import_file(wh, str(src))


def test_export_unknown_dataset_raises(tmp_path):
    with Warehouse(str(tmp_path / "wh.sqlite")) as wh:
        with pytest.raises(StoreError, match="no dataset"):
            export_dataset(wh, "nope", str(tmp_path / "out.jsonl"))


# ----------------------------------------------------------------------
# the service warm tier
# ----------------------------------------------------------------------
@pytest.fixture(scope="module")
def warm_setup(tmp_path_factory):
    """One warehouse-backed elect sweep over a small feasible corpus,
    shared by the warm/metrics tests (the sweep is the slow part)."""
    tmp = tmp_path_factory.mktemp("warm")
    from repro.analysis.sweep import corpus_default

    corpus = corpus_default(max_n=20)
    wh_path = str(tmp / "results.sqlite")
    with open_result_store(wh_path) as store:
        sweep_to_store(iter(corpus), "elect", store)
    store_path = str(tmp / "sweep.jsonl")
    with Warehouse(wh_path) as wh:
        export_dataset(wh, "sweep", store_path)
    return corpus, wh_path, store_path


def test_warm_join_matches_cold_compute_byte_for_byte(warm_setup):
    corpus, wh_path, _store_path = warm_setup
    cache = ResultCache(capacity=64)
    warmed = warm_from_warehouse(cache, wh_path)
    assert warmed == len(corpus)
    warm_core = ServiceCore(cache=cache)
    cold_core = ServiceCore(cache=ResultCache(capacity=0))
    for _name, graph in corpus:
        warm_answer = warm_core.query("elect", graph)
        cold_answer = cold_core.query("elect", graph)
        assert warm_answer.cached and not cold_answer.cached
        assert record_to_json(warm_answer.record) == record_to_json(
            cold_answer.record
        )


def test_warm_join_equals_warm_from_stores(warm_setup):
    corpus, wh_path, store_path = warm_setup
    by_stream = ResultCache(capacity=64)
    warmed, _skipped = warm_from_stores(by_stream, [store_path], iter(corpus))
    by_join = ResultCache(capacity=64)
    assert warm_from_warehouse(by_join, wh_path) == warmed
    assert by_stream._entries == by_join._entries


def test_register_corpus_graphs_migrates_imported_stores(tmp_path):
    """A store swept before the warehouse existed: import it, register
    its corpus once, and the join warms it like a native dataset."""
    from repro.analysis.sweep import corpus_default

    corpus = corpus_default(max_n=20)
    store_path = str(tmp_path / "legacy.jsonl")
    with ResultStore(store_path) as store:
        sweep_to_store(iter(corpus), "elect", store)
    wh_path = str(tmp_path / "wh.sqlite")
    with Warehouse(wh_path) as wh:
        import_file(wh, store_path, dataset="legacy")
        cache = ResultCache(capacity=64)
        assert warm_from_warehouse(cache, wh) == 0  # no graphs registered
        assert register_corpus_graphs(wh, "legacy", iter(corpus)) == len(
            corpus
        )
        assert warm_from_warehouse(cache, wh) == len(corpus)


def test_warehouse_cache_persists_across_restarts(tmp_path, warm_setup):
    corpus, _wh_path, _store_path = warm_setup
    cache_path = str(tmp_path / "cache.sqlite")
    core = ServiceCore(cache=ResultCache(cache_path))
    first = core.query("elect", corpus[0][1])
    assert not first.cached
    core.close()
    # restart: same answer from the durable tier, byte for byte
    core = ServiceCore(cache=ResultCache(cache_path))
    assert core.cache.persisted == 1
    again = core.query("elect", corpus[0][1])
    assert again.cached
    assert record_to_json(again.record) == record_to_json(first.record)
    core.close()


def test_eviction_hits_warehouse_and_metrics_tier_split(tmp_path, warm_setup):
    """capacity=1 forces an LRU eviction between queries: the evicted
    entry must come back from the warehouse (never recompute), and
    /metrics must say which tier answered."""
    corpus, _wh_path, _store_path = warm_setup
    cache_path = str(tmp_path / "cache.sqlite")
    core = ServiceCore(cache=ResultCache(cache_path, capacity=1))
    g1, g2 = corpus[0][1], corpus[1][1]
    core.query("elect", g1)  # cold compute
    core.query("elect", g2)  # cold compute, evicts g1 from memory
    assert core.query("elect", g1).cached  # back from the warehouse tier
    assert core.query("elect", g1).cached  # now resident: memory tier
    m = core.metrics()
    assert m["misses"] == 2
    assert m["hits"] == 2
    assert m["warehouse_hits"] == 1
    assert m["memory_hits"] == 1
    assert m["file_hits"] == 0
    per_task = m["tasks"]["elect"]
    assert per_task["hits"] == 2 and per_task["warehouse_hits"] == 1
    core.close()


def test_jsonl_cache_reports_file_tier(tmp_path, warm_setup):
    corpus, _wh_path, _store_path = warm_setup
    cache_path = str(tmp_path / "cache.jsonl")
    core = ServiceCore(cache=ResultCache(cache_path, capacity=1))
    core.query("elect", corpus[0][1])
    core.query("elect", corpus[1][1])
    assert core.query("elect", corpus[0][1]).cached
    m = core.metrics()
    assert m["file_hits"] == 1 and m["warehouse_hits"] == 0
    core.close()


# ----------------------------------------------------------------------
# the bench trend
# ----------------------------------------------------------------------
def test_trend_table_across_runs(tmp_path):
    from repro.analysis.bench import env_fingerprint

    def bench_record(seconds):
        return {
            "schema": "repro-bench/1",
            "kind": "timing",
            "scenario": "demo",
            "quick": True,
            "env": env_fingerprint(),
            "baseline": None,
            "cases": [{"case": "c1", "seconds": seconds, "repeats": 1}],
        }

    wh_path = str(tmp_path / "wh.sqlite")
    with Warehouse(wh_path) as wh:
        with pytest.raises(StoreError, match="no timed bench records"):
            trend_table(wh)
        for label, seconds in (("pr6", 0.5), ("pr7", 0.25)):
            run_id = wh.begin_run("bench", label)
            wh.append_bench(bench_record(seconds), run_id)
            wh.finish_run(run_id)
        columns, rows = trend_table(wh)
    assert columns == ["scenario", "case", "pr6/quick", "pr7/quick"]
    assert rows == [("demo", "c1", "0.5000", "0.2500")]


# ----------------------------------------------------------------------
# the CLI surface
# ----------------------------------------------------------------------
class TestWarehouseCLI:
    def _sweep(self, wh_path, dataset="sweep"):
        from repro.cli import main

        assert main([
            "sweep", "--corpus", "caterpillars:6,seed=13", "--task", TASK,
            "--out", wh_path, "--dataset", dataset,
        ]) == 0

    def test_sweep_export_info_roundtrip(self, tmp_path, capsys):
        from repro.cli import main

        wh_path = str(tmp_path / "wh.sqlite")
        self._sweep(wh_path)
        out = str(tmp_path / "out.jsonl")
        assert main(["warehouse", "export", wh_path, "sweep", out]) == 0
        ref = tmp_path / "ref.jsonl"
        with ResultStore(str(ref)) as store:
            sweep_to_store(iter_corpus("caterpillars:6,seed=13"), TASK, store)
        with open(out, "rb") as fh:
            assert fh.read() == ref.read_bytes()
        assert main(["warehouse", "info", wh_path]) == 0
        text = capsys.readouterr().out
        assert "sweep" in text and "integrity: ok" in text

    def test_import_register_and_labeled_run_grouping(self, tmp_path, capsys):
        from repro.cli import main

        ref = str(tmp_path / "ref.jsonl")
        with ResultStore(ref) as store:
            sweep_to_store(iter_corpus("caterpillars:6,seed=13"), "elect", store)
        wh_path = str(tmp_path / "wh.sqlite")
        assert main([
            "warehouse", "import", wh_path, ref,
            "--dataset", "legacy", "--label", "migration",
        ]) == 0
        assert main([
            "warehouse", "register", wh_path, "legacy",
            "caterpillars:6,seed=13",
        ]) == 0
        assert "6 graph(s) registered" in capsys.readouterr().out
        cache = ResultCache(capacity=8)
        assert warm_from_warehouse(cache, wh_path) == 6
        with Warehouse(wh_path) as wh:
            labels = [run["label"] for run in wh.runs()]
        assert labels.count("migration") == 1  # one labeled run per import

    def test_trend_via_report_and_warehouse_commands(self, tmp_path, capsys):
        from repro.analysis.bench import env_fingerprint, write_json
        from repro.cli import main

        record = {
            "schema": "repro-bench/1",
            "kind": "timing",
            "scenario": "demo",
            "quick": True,
            "env": env_fingerprint(),
            "baseline": None,
            "cases": [{"case": "c1", "seconds": 0.125, "repeats": 1}],
        }
        src = str(tmp_path / "BENCH_demo.json")
        write_json(src, record)
        wh_path = str(tmp_path / "wh.sqlite")
        for label in ("pr6", "pr7"):
            assert main([
                "warehouse", "import", wh_path, src, "--label", label,
            ]) == 0
        capsys.readouterr()
        assert main(["warehouse", "trend", wh_path]) == 0
        text = capsys.readouterr().out
        assert "pr6/quick" in text and "pr7/quick" in text
        trend_md = str(tmp_path / "trend.md")
        assert main(["report", "--trend", wh_path, "--out", trend_md]) == 0
        with open(trend_md) as fh:
            assert "demo" in fh.read()
        # exporting bench records back out is byte-identical
        assert main([
            "warehouse", "export", wh_path, "--bench", str(tmp_path / "bo"),
        ]) == 0
        out = capsys.readouterr().out.strip().splitlines()[-1]
        with open(src, "rb") as a, open(out, "rb") as b:
            assert a.read() == b.read()

    def test_export_without_dataset_errors(self, tmp_path, capsys):
        from repro.cli import main

        wh_path = str(tmp_path / "wh.sqlite")
        self._sweep(wh_path)
        assert main(["warehouse", "export", wh_path]) != 0
        assert "export needs DATASET and OUT" in capsys.readouterr().err

    def test_trend_without_bench_records_errors(self, tmp_path, capsys):
        from repro.cli import main

        wh_path = str(tmp_path / "wh.sqlite")
        self._sweep(wh_path)
        assert main(["warehouse", "trend", wh_path]) != 0
        assert "no timed bench records" in capsys.readouterr().err
