"""Integer code tests: canonical binary, round trips, rejection cases."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.coding import Bits, decode_uint, encode_uint
from repro.errors import CodingError


class TestEncodeUint:
    def test_zero(self):
        assert encode_uint(0) == Bits("0")

    def test_small_values(self):
        assert encode_uint(1) == Bits("1")
        assert encode_uint(2) == Bits("10")
        assert encode_uint(10) == Bits("1010")

    def test_rejects_negative(self):
        with pytest.raises(CodingError):
            encode_uint(-1)

    def test_length_is_log(self):
        assert len(encode_uint(2**20)) == 21


class TestDecodeUint:
    @given(st.integers(min_value=0, max_value=10**15))
    def test_round_trip(self, x):
        assert decode_uint(encode_uint(x)) == x

    def test_rejects_empty(self):
        with pytest.raises(CodingError):
            decode_uint(Bits(""))

    def test_rejects_leading_zero(self):
        with pytest.raises(CodingError):
            decode_uint(Bits("01"))

    def test_zero_is_canonical(self):
        assert decode_uint(Bits("0")) == 0
