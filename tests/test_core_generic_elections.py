"""Generic(x) (Lemma 4.1), Election1..4 (Theorem 4.1) and the D+phi
remark: correctness, time budgets, advice sizes, and cross-algorithm
leader agreement."""

import pytest

from repro.core import run_elect, run_generic, run_known_d_phi
from repro.core.elections import (
    MILESTONES,
    election_advice,
    milestone_round_budget,
    round_parameter,
    run_election_milestone,
)
from repro.coding import decode_uint
from repro.errors import AdviceError, AlgorithmError
from repro.graphs import cycle_with_leader_gadget, lollipop
from repro.lowerbounds import necklace
from repro.views import election_index

from tests.conftest import feasible_corpus


class TestGeneric:
    @pytest.mark.parametrize("name_g", feasible_corpus()[:6], ids=lambda p: p[0])
    def test_correct_at_phi(self, name_g):
        _, g = name_g
        phi = election_index(g)
        rec = run_generic(g, phi)
        assert rec.election_time <= rec.diameter + phi + 1

    @pytest.mark.parametrize("extra", [0, 1, 3])
    def test_correct_above_phi(self, gadget6, extra):
        phi = election_index(gadget6)
        rec = run_generic(gadget6, phi + extra)
        assert rec.election_time <= rec.diameter + phi + extra + 1

    def test_leader_is_min_view_node(self, gadget6):
        """Generic's leader: the node whose depth-x view is canonically
        smallest — cross-check against direct computation."""
        from repro.views import views_of_graph
        from repro.views.order import view_min

        phi = election_index(gadget6)
        rec = run_generic(gadget6, phi)
        views = views_of_graph(gadget6, phi)
        assert views[rec.leader] is view_min(views)

    def test_rejects_x_below_one(self):
        from repro.core.generic import GenericAlgorithm

        with pytest.raises(AlgorithmError):
            GenericAlgorithm(0)

    def test_x_below_phi_fails_or_elects_wrong(self):
        """With x < phi two nodes share a depth-x view; Generic must not
        produce a *verified* correct election with a unique leader in every
        such case — specifically on a necklace, whose two leaves collide
        below phi.  (The run may still terminate; the election verifier or
        the minimum-uniqueness is what breaks.)"""
        from repro.core.verify import verify_election
        from repro.errors import ElectionFailure, ReproError, SimulationError
        from repro.core.generic import GenericAlgorithm
        from repro.sim import run_sync

        g = necklace(4, 3)  # phi = 3
        try:
            result = run_sync(
                g, lambda: GenericAlgorithm(1), max_rounds=g.diameter() + 30
            )
        except ReproError:
            return  # acceptable failure mode: simulation-level breakdown
        with pytest.raises(ElectionFailure):
            verify_election(g, result.outputs)


class TestMilestoneAdvice:
    def test_advice_sizes_shrink(self):
        # asymptotic hierarchy log > loglog > logloglog > log log* — use a
        # phi large enough for the envelopes to separate
        phi = 2**20
        sizes = [len(election_advice(phi, m)) for m in MILESTONES]
        assert sizes[0] >= sizes[1] >= sizes[2] >= sizes[3]
        assert sizes[0] > sizes[2]

    def test_advice_values(self):
        assert decode_uint(election_advice(9, 1)) == 9
        assert decode_uint(election_advice(9, 2)) == 3  # floor log 9
        assert decode_uint(election_advice(9, 3)) == 1  # floor loglog 9
        assert decode_uint(election_advice(9, 4)) == 2  # log* 9

    @pytest.mark.parametrize("phi", [1, 2, 3, 5, 9, 17])
    @pytest.mark.parametrize("milestone", MILESTONES)
    def test_round_parameter_dominates_phi(self, phi, milestone):
        """P_i >= phi: the property Lemma 4.1 needs."""
        value = decode_uint(election_advice(phi, milestone))
        assert round_parameter(value, milestone) >= phi

    def test_bad_milestone_rejected(self):
        with pytest.raises(AdviceError):
            election_advice(3, 7)
        with pytest.raises(AdviceError):
            round_parameter(3, 0)
        with pytest.raises(AdviceError):
            milestone_round_budget(4, 2, 9, c=2)

    def test_budget_requires_c_above_one(self):
        with pytest.raises(AdviceError):
            milestone_round_budget(4, 2, 1, c=1)


class TestMilestoneRuns:
    @pytest.mark.parametrize("milestone", MILESTONES)
    def test_gadget(self, gadget6, milestone):
        rec = run_election_milestone(gadget6, milestone)
        assert rec.within_budget

    @pytest.mark.parametrize("milestone", MILESTONES)
    def test_necklace_phi2(self, milestone):
        g = necklace(4, 2)
        rec = run_election_milestone(g, milestone)
        assert rec.within_budget
        assert rec.phi == 2

    def test_milestone1_exact_phi_knowledge(self):
        g = lollipop(4, 3)
        rec = run_election_milestone(g, 1)
        assert rec.round_parameter == rec.phi

    def test_phi1_milestone3_budget_waived(self):
        """The documented phi=1 degenerate case of part 3."""
        from repro.lowerbounds import hk_graph

        g = hk_graph(4)
        rec = run_election_milestone(g, 3)
        assert rec.phi == 1
        assert not rec.budget_applies
        assert rec.within_budget  # vacuously


class TestCrossAlgorithmAgreement:
    def test_generic_knownDphi_agree(self, gadget6):
        """Both elect the canonical minimum-view node at depth phi."""
        phi = election_index(gadget6)
        a = run_generic(gadget6, phi)
        b = run_known_d_phi(gadget6)
        assert a.leader == b.leader

    def test_map_based_agrees_with_generic(self, gadget6):
        from repro.baselines import run_map_based

        phi = election_index(gadget6)
        assert run_map_based(gadget6).leader == run_generic(gadget6, phi).leader

    def test_elect_leader_valid_but_possibly_different(self, gadget6):
        """Elect's leader is the trie's label-1 node, not necessarily the
        canonical min-view node; both must be valid elections."""
        rec = run_elect(gadget6)
        assert 0 <= rec.leader < gadget6.n


class TestKnownDPhi:
    @pytest.mark.parametrize("name_g", feasible_corpus()[:5], ids=lambda p: p[0])
    def test_time_exactly_d_plus_phi(self, name_g):
        _, g = name_g
        rec = run_known_d_phi(g)
        assert rec.election_time == rec.diameter + rec.phi

    def test_advice_logarithmic(self, gadget6):
        import math

        rec = run_known_d_phi(gadget6)
        assert rec.advice_bits <= 8 * (
            math.log2(rec.diameter + 1) + math.log2(rec.phi + 1) + 4
        )
