"""The view-cache lifecycle contract the engine relies on.

Within a chunk, interning must be in full force (structurally equal views
are one object, across graphs); at chunk boundaries,
``clear_view_caches()`` must actually release every process-local table —
the intern table, the truncation cache, the per-depth view registry, the
order rank tables and the B^1 encoding cache — so a long sweep's memory
is bounded by its largest chunk.
"""

from __future__ import annotations

from repro.coding import Bits
from repro.engine import run_experiments
from repro.graphs import ring
from repro.lowerbounds import hk_graph
from repro.views import (
    clear_view_caches,
    encode_b1,
    truncate_view,
    view_compare,
    views_of_graph,
)
from repro.views import encoding as encoding_mod
from repro.views import order as order_mod
from repro.views import view as view_mod
from repro.views import wire as wire_mod
from repro.views.view import intern_table_size


def test_interning_survives_within_a_batch():
    clear_view_caches()
    # same graph, two computations: every view is pointer-shared
    g = ring(8)
    first = views_of_graph(g, 2)
    second = views_of_graph(g, 2)
    assert all(a is b for a, b in zip(first, second))
    # interning is cross-graph: a ring's views recur inside a larger ring
    big = views_of_graph(ring(12), 2)
    assert first[0] is big[0]
    assert intern_table_size() > 0


def test_clear_view_caches_frees_every_table():
    clear_view_caches()
    g = ring(6)
    views = views_of_graph(g, 3)
    truncate_view(views[0], 1)
    # distinct views (a ring node vs a lollipop node), so the comparison
    # cannot short-circuit on identity and must populate the cache
    other = views_of_graph(hk_graph(4), 3)[0]
    assert view_compare(views[0], other) != 0
    encode_b1(views_of_graph(g, 1)[0])
    from repro.views.wire import encode_view_wire

    encode_view_wire(views[0])
    assert view_mod._INTERN
    assert view_mod._TRUNCATE_CACHE
    assert view_mod._BY_DEPTH
    assert order_mod._RANK
    assert order_mod._RANKED_COUNT
    assert encoding_mod._B1_CACHE
    assert wire_mod._ENCODE_CACHE
    assert wire_mod._DECODE_CACHE
    assert wire_mod._SUBENC_CACHE

    clear_view_caches()
    assert intern_table_size() == 0
    assert not view_mod._INTERN
    assert not view_mod._TRUNCATE_CACHE
    assert not view_mod._BY_DEPTH
    assert not order_mod._RANK
    assert not order_mod._RANKED_COUNT
    assert not encoding_mod._B1_CACHE
    assert not wire_mod._ENCODE_CACHE
    assert not wire_mod._DECODE_CACHE
    assert not wire_mod._SUBENC_CACHE


def test_clear_drops_live_message_planes():
    """Strict-mode message planes hold interned views keyed on identity;
    a plane surviving a clear would hand stale objects into a fresh run."""
    from repro.core import compute_advice
    from repro.core.elect import ElectAlgorithm
    from repro.graphs import lollipop
    from repro.sim import MessagePlane, run_sync, wire_wrapped

    clear_view_caches()
    g = lollipop(4, 3)
    bundle = compute_advice(g)
    plane = MessagePlane()
    run_sync(g, wire_wrapped(ElectAlgorithm, plane), advice=bundle.bits)
    assert plane._encode_cache and plane._decode_cache
    clear_view_caches()
    assert not plane._encode_cache
    assert not plane._decode_cache


def test_clear_drops_the_tracer_dag_size_cache():
    """Regression: the tracer's DAG-size cache keys on id(view); leaving
    it populated across a clear lets recycled ids misprice *different*
    views, which made `messages` records depend on process history."""
    from repro.sim import trace as trace_mod
    from repro.sim.trace import view_dag_size

    clear_view_caches()
    view_dag_size(views_of_graph(ring(6), 3)[0])
    assert trace_mod._DAG_SIZE_CACHE
    clear_view_caches()
    assert not trace_mod._DAG_SIZE_CACHE


def test_messages_records_do_not_depend_on_chunk_history():
    """The engine purity contract for the `messages` task: the same graph
    must produce the same record whether measured alone or after other
    graphs ran (and cleared caches) in the same process."""
    from repro.corpus import iter_corpus

    corpus = list(iter_corpus("caterpillars:10,seed=8,max_spine=20"))
    solo = run_experiments([corpus[8]], task="messages")
    chunked = run_experiments(corpus, task="messages", chunk_size=4)
    assert solo[0] == chunked[8]


def test_rebuilt_views_are_fresh_but_equivalent():
    clear_view_caches()
    g = ring(8)
    before = views_of_graph(g, 2)
    encoded_before = encode_b1(views_of_graph(g, 1)[0])
    clear_view_caches()
    after = views_of_graph(g, 2)
    # fresh objects (never mix views across a clear) ...
    assert all(a is not b for a, b in zip(before, after))
    # ... but structurally the same computation
    assert [v.degree for v in before] == [v.degree for v in after]
    assert [v.depth for v in before] == [v.depth for v in after]
    assert isinstance(encoded_before, Bits)
    assert encode_b1(views_of_graph(g, 1)[0]) == encoded_before


def test_engine_chunks_bound_the_intern_table():
    """The serial path runs the identical chunk runner as workers do, so a
    sweep leaves no interned views behind — the table is bounded by one
    chunk, not the whole corpus."""
    clear_view_caches()
    corpus = [(f"hk-{k}", hk_graph(k)) for k in (4, 5, 6)]
    records = run_experiments(corpus, task="elect", workers=1, chunk_size=1)
    assert len(records) == 3
    assert intern_table_size() == 0

    # opting out keeps the caches warm (single-shot micro-bench mode)
    run_experiments(corpus[:1], task="elect", workers=1, clear_caches=False)
    assert intern_table_size() > 0
    clear_view_caches()
