"""The experiment engine: determinism, chunking, and the task registry.

The headline contract — parallel runs are record-for-record (and, under
canonical JSON, byte-for-byte) identical to serial runs on a fixed-seed
corpus — is asserted here at test scale and re-asserted at bench scale in
``benchmarks/bench_engine_scaling.py``.
"""

from __future__ import annotations

import pytest

from repro.analysis.sweep import corpus_default, corpus_with_phi, sweep_elect
from repro.engine import (
    EngineConfig,
    EngineError,
    chunk_corpus,
    default_chunk_size,
    records_from_jsonl,
    records_table,
    records_to_jsonl,
    run_experiments,
)
from repro.graphs import from_json


def _fixed_corpus():
    """Small fixed-seed corpus covering both phi regimes."""
    return corpus_default(25) + corpus_with_phi(1, sizes=(4,)) + corpus_with_phi(
        2, sizes=(4,)
    )


# ----------------------------------------------------------------------
# chunking
# ----------------------------------------------------------------------
def test_chunking_partitions_in_order():
    corpus = _fixed_corpus()
    chunks = chunk_corpus(corpus, 2)
    flat = [item for chunk in chunks for item in chunk]
    assert [pos for pos, _, _ in flat] == list(range(len(corpus)))
    assert [name for _, name, _ in flat] == [name for name, _ in corpus]
    assert all(len(chunk) <= 2 for chunk in chunks)
    # graphs round-trip exactly through the transport encoding
    for (pos, _, graph_json), (_, g) in zip(flat, corpus):
        restored = from_json(graph_json)
        assert restored.n == g.n
        assert list(restored.edges()) == list(g.edges())


def test_default_chunk_size_bounds():
    assert default_chunk_size(0, 1) == 1
    assert default_chunk_size(3, 1) == 3
    assert default_chunk_size(100, 1) == 8
    assert default_chunk_size(100, 4) == 7  # ceil(100 / 16)
    assert default_chunk_size(2, 8) == 1


def test_engine_config_validation():
    with pytest.raises(EngineError):
        EngineConfig(workers=0)
    with pytest.raises(EngineError):
        EngineConfig(chunk_size=0)


# ----------------------------------------------------------------------
# determinism: parallel == serial
# ----------------------------------------------------------------------
def test_parallel_records_identical_to_serial():
    corpus = _fixed_corpus()
    serial = run_experiments(corpus, task="elect", workers=1, chunk_size=3)
    parallel = run_experiments(corpus, task="elect", workers=2, chunk_size=2)
    assert parallel == serial
    # byte-identical under the canonical serialization
    assert records_to_jsonl(parallel) == records_to_jsonl(serial)


def test_parallel_sweep_elect_equals_serial():
    corpus = _fixed_corpus()
    serial = sweep_elect(corpus)
    parallel = sweep_elect(corpus, workers=4, chunk_size=1)
    assert parallel == serial
    assert [r.name for r in parallel] == [name for name, _ in corpus]


def test_chunk_size_never_changes_records():
    corpus = _fixed_corpus()
    baseline = run_experiments(corpus, task="index", workers=1)
    for chunk_size in (1, 2, len(corpus)):
        assert (
            run_experiments(
                corpus, task="index", workers=1, chunk_size=chunk_size
            )
            == baseline
        )


def test_empty_corpus():
    assert run_experiments([], task="elect", workers=4) == []


# ----------------------------------------------------------------------
# tasks and records
# ----------------------------------------------------------------------
def test_unknown_task_fails_fast():
    with pytest.raises(EngineError, match="unknown engine task"):
        run_experiments(_fixed_corpus(), task="no-such-task")


def test_every_task_emits_common_keys():
    corpus = corpus_with_phi(1, sizes=(4,))
    for task in ("elect", "advice", "index", "messages", "ablation"):
        records = run_experiments(corpus, task=task)
        assert len(records) == len(corpus)
        for rec in records:
            assert rec["task"] == task
            assert rec["name"] == corpus[0][0]
            assert rec["n"] == corpus[0][1].n


def test_records_jsonl_roundtrip():
    corpus = corpus_with_phi(2, sizes=(4,))
    records = run_experiments(corpus, task="messages")
    assert records_from_jsonl(records_to_jsonl(records)) == records


def test_records_table_projection():
    records = [
        {"task": "elect", "name": "a", "n": 5, "phi": 1},
        {"task": "elect", "name": "b", "n": 7},
    ]
    rows = records_table(records, ["name", "n", "phi"])
    assert rows == [("a", 5, 1), ("b", 7, "-")]
