"""Failure injection: corrupted advice must never produce a silently
wrong election.

For every corruption we accept exactly three outcomes:
1. a library error (CodingError/AdviceError/... — detected corruption),
2. the verifier rejects the outputs (ElectionFailure),
3. the election still succeeds *and matches the uncorrupted leader set
   validity* (e.g. the flipped bit was in a part that only shifts labels).

Anything else — a crash with a non-library exception, or a verified
election with non-converging paths — is a bug.
"""

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.coding import Bits
from repro.core import compute_advice, verify_election
from repro.core.elect import ElectAlgorithm
from repro.errors import ElectionFailure, ReproError
from repro.graphs import cycle_with_leader_gadget
from repro.sim import run_sync

G = cycle_with_leader_gadget(6)
BUNDLE = compute_advice(G)


def _flip(bits: Bits, position: int) -> Bits:
    s = bits.as_str()
    flipped = "1" if s[position] == "0" else "0"
    return Bits(s[:position] + flipped + s[position + 1 :])


class TestBitFlips:
    @given(st.integers(min_value=0, max_value=len(BUNDLE.bits) - 1))
    @settings(max_examples=60, deadline=None,
              suppress_health_check=[HealthCheck.too_slow])
    def test_single_flip_never_silently_wrong(self, position):
        corrupted = _flip(BUNDLE.bits, position)
        try:
            result = run_sync(
                G, ElectAlgorithm, advice=corrupted, max_rounds=BUNDLE.phi + 2
            )
        except ReproError:
            return  # detected: fine
        except RecursionError:
            pytest.fail("corruption caused unbounded recursion")
        try:
            outcome = verify_election(G, result.outputs)
        except ElectionFailure:
            return  # rejected by the verifier: fine
        # survived: must be a genuinely valid election
        assert outcome.leader in range(G.n)

    @given(
        st.integers(min_value=0, max_value=len(BUNDLE.bits) - 2),
        st.integers(min_value=1, max_value=40),
    )
    @settings(max_examples=30, deadline=None,
              suppress_health_check=[HealthCheck.too_slow])
    def test_truncation_never_silently_wrong(self, start, length):
        """Same contract as bit flips: detected, rejected, or — rarely —
        the mutilated string happens to be working advice (legal: the
        spec accepts any advice under which paths converge)."""
        s = BUNDLE.bits.as_str()
        cut = s[:start] + s[start + length :]
        try:
            result = run_sync(
                G, ElectAlgorithm, advice=Bits(cut), max_rounds=BUNDLE.phi + 2
            )
        except ReproError:
            return
        try:
            outcome = verify_election(G, result.outputs)
        except ElectionFailure:
            return
        assert outcome.leader in range(G.n)

    def test_empty_advice_detected(self):
        with pytest.raises(ReproError):
            run_sync(G, ElectAlgorithm, advice=Bits(""), max_rounds=5)

    def test_advice_for_other_graph_not_silently_wrong(self):
        """Advice computed for a different network: the run must either be
        detected, be rejected by the verifier, or happen to constitute a
        *valid* election (legal: the spec accepts any advice that makes
        all paths converge) — never an unverified wrong answer."""
        other = cycle_with_leader_gadget(9)
        other_bundle = compute_advice(other)
        try:
            result = run_sync(
                G, ElectAlgorithm, advice=other_bundle.bits,
                max_rounds=other_bundle.phi + 2,
            )
        except ReproError:
            return
        try:
            outcome = verify_election(G, result.outputs)
        except ElectionFailure:
            return
        assert outcome.leader in range(G.n)
