"""Port-assignment engineering: randomization, optimization, sensitivity."""

import pytest

from repro.graphs import (
    are_port_isomorphic,
    clique,
    cycle_with_leader_gadget,
    lollipop,
    ring,
    to_networkx,
)
from repro.graphs.port_optimizer import (
    optimize_ports,
    port_sensitivity,
    randomize_ports,
)
from repro.views import election_index, is_feasible

import networkx as nx


class TestRandomizePorts:
    def test_topology_preserved(self):
        g = lollipop(4, 3)
        h = randomize_ports(g, seed=3)
        assert nx.is_isomorphic(to_networkx(g), to_networkx(h))
        assert g.degree_sequence() == h.degree_sequence()

    def test_reproducible(self):
        g = lollipop(4, 3)
        assert randomize_ports(g, seed=5) == randomize_ports(g, seed=5)

    def test_usually_changes_assignment(self):
        g = cycle_with_leader_gadget(8)
        changed = sum(
            1 for s in range(5) if randomize_ports(g, seed=s) != g
        )
        assert changed >= 4


class TestOptimizePorts:
    def test_never_worse_than_original(self):
        g = cycle_with_leader_gadget(8)
        original_phi = election_index(g)
        result = optimize_ports(g, restarts=10, seed=1)
        assert result.feasible
        assert result.phi <= original_phi
        # the returned assignment really has that index
        assert election_index(result.graph) == result.phi

    def test_ring_can_become_feasible(self):
        """The canonical ring is infeasible, but odd rings admit feasible
        assignments — the optimizer should find one."""
        g = ring(5)
        assert not is_feasible(g)
        result = optimize_ports(g, restarts=40, seed=2)
        assert result.feasible
        assert result.tried == 41

    def test_clique_randomization_helps(self):
        g = clique(5)  # canonical circulant: infeasible
        result = optimize_ports(g, restarts=20, seed=3)
        assert result.feasible

    def test_counts_consistent(self):
        g = cycle_with_leader_gadget(6)
        result = optimize_ports(g, restarts=8, seed=4)
        assert 1 <= result.feasible_count <= result.tried == 9


class TestPortSensitivity:
    def test_histogram_sums(self):
        g = lollipop(4, 2)
        hist = port_sensitivity(g, samples=12, seed=0)
        assert sum(hist.values()) == 12

    def test_ring_mixes_feasible_and_not(self):
        hist = port_sensitivity(ring(6), samples=30, seed=1)
        # the all-same-orientation assignments are infeasible; most random
        # ones are feasible — both outcomes should appear
        assert len(hist) >= 2
