"""Differential tests for the memoized wire codec (strict-wire fast path).

``encode_view_wire`` is cached on view identity and builds first
encodings level-incrementally from cached child sub-encodings;
``_encode_view_wire_uncached`` is the seed implementation kept as the
executable specification.  These tests pin the two byte-for-byte equal
over every connected <=5-node atlas graph under two port maps and over
corpus-family prefixes — including the merge path, by encoding every
depth-l view before any depth-l+1 view so parents always find their
children's sub-encodings in cache.
"""

from __future__ import annotations

import networkx as nx
import pytest

from repro.corpus import get_family
from repro.graphs.serialization import from_networkx
from repro.views import clear_view_caches, view_levels
from repro.views.wire import (
    _encode_view_wire_uncached,
    decode_view_wire,
    encode_view_wire,
)


def _small_connected_instances():
    instances = []
    for atlas_graph in nx.graph_atlas_g():
        n = atlas_graph.number_of_nodes()
        if not (2 <= n <= 5):
            continue
        if atlas_graph.number_of_edges() == 0 or not nx.is_connected(atlas_graph):
            continue
        gid = f"atlas-{atlas_graph.name or id(atlas_graph)}"
        instances.append((f"{gid}-canonical", from_networkx(atlas_graph)))
        instances.append((f"{gid}-seeded", from_networkx(atlas_graph, seed=11)))
    return instances


SMALL_INSTANCES = _small_connected_instances()


def _corpus_prefix_instances():
    entries = []
    for family, count in (
        ("tori", 2),
        ("random-trees", 3),
        ("caterpillars", 2),
        ("lifts", 2),
    ):
        entries.extend(get_family(family).generate(count, seed=0))
    return entries


CORPUS_INSTANCES = _corpus_prefix_instances()


def _assert_codec_matches_seed(g, max_depth):
    """Encode every view of every level bottom-up (the COM traffic order,
    which makes depth-l+1 first encodings take the cached-child merge
    path) and compare each wire byte-for-byte against the seed encoder;
    decoding must return the identical interned object."""
    clear_view_caches()
    for level in view_levels(g, max_depth=max_depth):
        for v in set(level):
            fast = encode_view_wire(v)
            seed = _encode_view_wire_uncached(v)
            assert fast.as_str() == seed.as_str(), (
                f"cached encoding diverges from seed at depth {v.depth}"
            )
            assert encode_view_wire(v).as_str() == seed.as_str()  # cache hit
            assert decode_view_wire(fast) is v


@pytest.mark.parametrize(
    "name,g", SMALL_INSTANCES, ids=[name for name, _ in SMALL_INSTANCES]
)
def test_cached_encoding_equals_seed_atlas(name, g):
    _assert_codec_matches_seed(g, max_depth=2 * g.n)


@pytest.mark.parametrize(
    "name,g", CORPUS_INSTANCES, ids=[name for name, _ in CORPUS_INSTANCES]
)
def test_cached_encoding_equals_seed_corpus(name, g):
    _assert_codec_matches_seed(g, max_depth=6)


def test_cold_parent_encoding_matches_seed():
    """The other first-encoding shape: a parent encoded with *no* child
    sub-encodings cached (pure DFS path, no merge) must also match."""
    from repro.graphs import lollipop, ring

    for g in (ring(7), lollipop(5, 4)):
        for depth in (0, 1, 4):
            clear_view_caches()
            levels = list(view_levels(g, max_depth=depth))
            for v in set(levels[-1]):  # children never pre-encoded
                assert (
                    encode_view_wire(v).as_str()
                    == _encode_view_wire_uncached(v).as_str()
                )


def test_partial_overlap_merge_matches_seed():
    """Merge with a non-empty index: a parent whose first child was
    encoded standalone but whose later children overlap it exercises the
    reference-remapping branch, not the verbatim splice."""
    from repro.graphs import lollipop

    g = lollipop(6, 3)
    clear_view_caches()
    levels = list(view_levels(g, max_depth=5))
    # encode a strict subset of depth-4 views, then all depth-5 parents:
    # each parent finds some children cached and some not
    subset = sorted(set(levels[4]), key=id)[::2]
    for v in subset:
        encode_view_wire(v)
    for v in set(levels[5]):
        assert (
            encode_view_wire(v).as_str()
            == _encode_view_wire_uncached(v).as_str()
        )


def test_decode_cache_is_exact_not_just_memoized():
    """A foreign-but-valid wire (records in a non-canonical order) must
    still decode correctly and must never poison the encode side: the
    canonical encoding stays canonical."""
    from repro.coding.concat import concat_bits
    from repro.coding.integers import encode_uint
    from repro.graphs import ring

    clear_view_caches()
    v = list(view_levels(ring(4), max_depth=1))[1][0]  # depth-1, degree-2
    assert [q for q, _ in v.children] == [1, 0]
    canonical = encode_view_wire(v)
    # hand-build an equivalent wire listing the leaf record twice — a
    # valid encoding no canonical encoder would emit
    leaf = concat_bits([encode_uint(2)])
    parent = concat_bits(
        [encode_uint(2), encode_uint(1), encode_uint(1), encode_uint(0), encode_uint(0)]
    )
    foreign = concat_bits([leaf, leaf, parent])
    assert foreign.as_str() != canonical.as_str()
    assert decode_view_wire(foreign) is v
    assert encode_view_wire(v).as_str() == canonical.as_str()
