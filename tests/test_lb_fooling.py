"""Fooling-pair diagnostics and the open-question probe."""

import pytest

from repro.graphs import cycle_with_leader_gadget, ring
from repro.lowerbounds import necklace
from repro.lowerbounds.fooling import (
    enumerate_necklace_family,
    fooling_floor_curve,
    shared_view_nodes,
)


class TestSharedViewNodes:
    def test_identical_graphs_all_pairs(self):
        g = ring(5)
        pairs = shared_view_nodes(g, g, depth=2)
        # all views equal on a ring: the join is the full product
        assert len(pairs) == 25

    def test_feasible_graph_against_itself_is_diagonal(self):
        g = cycle_with_leader_gadget(6)
        from repro.views import election_index

        phi = election_index(g)
        pairs = shared_view_nodes(g, g, depth=phi)
        assert sorted(pairs) == [(v, v) for v in g.nodes()]

    def test_coded_necklaces_share_far_nodes(self):
        g1 = necklace(5, 2, code=[0, 1, 0, 0])
        g2 = necklace(5, 2, code=[0, 2, 0, 0])
        shallow = shared_view_nodes(g1, g2, depth=1)
        deep = shared_view_nodes(g1, g2, depth=9)
        assert shallow
        assert len(deep) < len(shallow)

    def test_disjoint_structures_share_nothing_deep(self):
        g1 = ring(6)
        g2 = cycle_with_leader_gadget(5)
        # ring nodes see degree-3 nodes within depth 3 in the gadget only
        deep = shared_view_nodes(g1, g2, depth=6)
        assert deep == []


class TestFamilyEnumeration:
    def test_exhaustive_count(self):
        members = enumerate_necklace_family(5, 2, x=3, limit=100)
        assert len(members) == 4 ** 2  # free coords c_2, c_3

    def test_limit_respected(self):
        assert len(enumerate_necklace_family(5, 2, x=3, limit=5)) == 5

    def test_members_distinct(self):
        members = enumerate_necklace_family(5, 2, x=3, limit=16)
        graphs = {m[0] for m in members}
        assert len(graphs) == 16


class TestFoolingFloor:
    def test_curve_shape(self):
        phi = 2
        points = fooling_floor_curve(5, phi, taus=[2, 3, 4, 5, 6, 10], x=3)
        # at tau = phi everything is fooled
        assert points[0].max_class_size == points[0].num_members
        # pressure is monotone non-increasing and eventually releases
        sizes = [p.max_class_size for p in points]
        assert sizes == sorted(sizes, reverse=True)
        assert sizes[-1] == 1

    def test_forced_bits_consistent(self):
        points = fooling_floor_curve(5, 2, taus=[2], x=3)
        p = points[0]
        assert 2 ** (p.forced_advice_bits + 1) - 1 >= p.max_class_size
