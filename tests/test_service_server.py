"""The HTTP layer and the CLI client, over a real socket.

A server on an ephemeral port, driven through urllib and through
``repro query`` — the same path CI's service-smoke job exercises."""

import io
import json
import threading
import urllib.error
import urllib.request

import pytest

from repro.cli import main as cli_main
from repro.graphs import grid_torus, random_tree, relabel_nodes, ring, to_dict
from repro.service import (
    ResultCache,
    ServiceCore,
    make_server,
    serve_until_shutdown,
)


@pytest.fixture()
def service():
    core = ServiceCore()
    server = make_server(core)
    ready = threading.Event()
    thread = threading.Thread(
        target=serve_until_shutdown,
        kwargs=dict(server=server, ready=ready),
        daemon=True,
    )
    thread.start()
    assert ready.wait(5)
    url = f"http://127.0.0.1:{server.server_address[1]}"
    yield url, core
    server.shutdown()
    thread.join(5)


def post(url, path, payload):
    request = urllib.request.Request(
        url + path,
        data=json.dumps(payload).encode("utf-8"),
        headers={"Content-Type": "application/json"},
    )
    with urllib.request.urlopen(request, timeout=10) as resp:
        return resp.status, json.load(resp)


def get(url, path):
    with urllib.request.urlopen(url + path, timeout=10) as resp:
        return resp.status, json.load(resp)


def post_error(url, path, body: bytes):
    request = urllib.request.Request(
        url + path, data=body, headers={"Content-Type": "application/json"}
    )
    try:
        urllib.request.urlopen(request, timeout=10)
    except urllib.error.HTTPError as exc:
        return exc.code, json.load(exc)
    raise AssertionError("expected an HTTP error")


class TestEndpoints:
    def test_query_then_isomorphic_hit(self, service):
        url, _core = service
        g = random_tree(10, seed=2)
        status, first = post(url, "/v1/index", {"graph": to_dict(g)})
        assert status == 200 and first["cached"] is False
        perm = list(reversed(range(g.n)))
        status, second = post(url, "/v1/index", to_dict(relabel_nodes(g, perm)))
        assert status == 200 and second["cached"] is True
        assert second["record"] == first["record"]
        assert second["fingerprint"] == first["fingerprint"]

    def test_healthz_and_metrics(self, service):
        url, _core = service
        status, health = get(url, "/healthz")
        assert status == 200 and health["status"] == "ok"
        assert "elect" in health["tasks"]
        post(url, "/v1/quotient", to_dict(grid_torus(3, 3)))
        status, metrics = get(url, "/metrics")
        assert status == 200
        assert metrics["misses"] == 1 and metrics["tasks"]["quotient"]

    def test_batch_roundtrip(self, service):
        url, _core = service
        g = random_tree(9, seed=4)
        body = {
            "requests": [
                {"task": "index", "graph": to_dict(g)},
                {"task": "index", "graph": to_dict(g)},
                {"task": "quotient", "graph": to_dict(ring(6))},
            ]
        }
        status, payload = post(url, "/v1/batch", body)
        assert status == 200 and len(payload["results"]) == 3
        assert payload["results"][0]["record"] == payload["results"][1]["record"]

    def test_concurrent_batches_agree(self, service):
        url, _core = service
        g = random_tree(11, seed=6)
        body = {"requests": [{"task": "index", "graph": to_dict(g)}] * 2}
        results = [None] * 4

        def one(i):
            results[i] = post(url, "/v1/batch", body)[1]

        threads = [threading.Thread(target=one, args=(i,)) for i in range(4)]
        for t in threads:
            t.start()
        for t in threads:
            t.join(10)
        assert all(r is not None for r in results)
        records = {
            json.dumps(r["results"][0]["record"], sort_keys=True)
            for r in results
        }
        assert len(records) == 1

    def test_error_mapping(self, service):
        url, _core = service
        # bad JSON -> 400
        code, body = post_error(url, "/v1/index", b"{not json")
        assert code == 400 and body["error"] == "ServiceError"
        # bad graph -> 400
        code, body = post_error(url, "/v1/index", json.dumps({"edges": 1}).encode())
        assert code == 400
        # unknown task route -> 404
        code, body = post_error(
            url, "/v1/messages", json.dumps(to_dict(ring(5))).encode()
        )
        assert code == 404 and "served tasks" in body["detail"]
        # unknown route -> 404 (GET and POST)
        code, _ = post_error(url, "/nope", json.dumps({}).encode())
        assert code == 404
        try:
            get(url, "/nope")
            raise AssertionError("expected 404")
        except urllib.error.HTTPError as exc:
            assert exc.code == 404
        # infeasible elect -> 422, counted as an error
        code, body = post_error(
            url, "/v1/elect", json.dumps(to_dict(ring(6))).encode()
        )
        assert code == 422 and body["error"] == "InfeasibleGraphError"
        # malformed batch envelopes -> 400
        code, _ = post_error(url, "/v1/batch", json.dumps({"requests": 3}).encode())
        assert code == 400
        code, _ = post_error(url, "/v1/batch", json.dumps({"requests": [5]}).encode())
        assert code == 400
        # batch with a failing task -> 422
        code, body = post_error(
            url,
            "/v1/batch",
            json.dumps(
                {"requests": [{"task": "elect", "graph": to_dict(ring(6))}]}
            ).encode(),
        )
        assert code == 422
        # empty body -> 400
        code, _ = post_error(url, "/v1/index", b"")
        assert code == 400
        _status, metrics = get(url, "/metrics")
        assert metrics["errors"] == 2

    def test_non_numeric_content_length_gets_a_400(self, service):
        """A garbage Content-Length must produce a JSON 400, not a dead
        connection (regression: uncaught ValueError in the handler)."""
        import http.client

        url, _core = service
        host, port = url[len("http://") :].split(":")
        conn = http.client.HTTPConnection(host, int(port), timeout=10)
        try:
            conn.putrequest("POST", "/v1/index")
            conn.putheader("Content-Length", "abc")
            conn.endheaders()
            resp = conn.getresponse()
            assert resp.status == 400
            assert json.load(resp)["error"] == "ServiceError"
        finally:
            conn.close()

    def test_chunked_request_gets_a_411_naming_the_problem(self, service):
        """A chunked request has no Content-Length; it used to fall into
        the empty-body branch and get the misleading "body must be a
        JSON document".  It must get a 411 that names the actual problem
        (regression)."""
        import http.client

        url, _core = service
        host, port = url[len("http://") :].split(":")
        conn = http.client.HTTPConnection(host, int(port), timeout=10)
        try:
            conn.putrequest("POST", "/v1/index")
            conn.putheader("Transfer-Encoding", "chunked")
            conn.endheaders()
            conn.send(b"2\r\n{}\r\n0\r\n\r\n")
            resp = conn.getresponse()
            assert resp.status == 411
            body = json.load(resp)
            assert body["error"] == "ServiceError"
            assert "chunked" in body["detail"]
            assert "Content-Length" in body["detail"]
            assert resp.will_close  # the chunked body was never consumed
        finally:
            conn.close()

    def test_oversized_body_rejection_closes_the_connection(self, service):
        """Rejecting a body without consuming it must not leave its bytes
        to desynchronize a keep-alive connection (regression)."""
        import http.client

        from repro.service.server import MAX_BODY_BYTES

        url, _core = service
        host, port = url[len("http://") :].split(":")
        conn = http.client.HTTPConnection(host, int(port), timeout=10)
        try:
            conn.putrequest("POST", "/v1/index")
            conn.putheader("Content-Length", str(MAX_BODY_BYTES + 1))
            conn.endheaders()
            resp = conn.getresponse()
            assert resp.status == 400
            assert "exceeds" in json.load(resp)["detail"]
            assert resp.will_close  # server closed: nothing left to parse
        finally:
            conn.close()


class TestSignalHandlers:
    def test_serve_until_shutdown_restores_previous_handlers(self):
        """Embedding the server must not permanently hijack SIGTERM and
        SIGINT: whatever handlers were installed before the accept loop
        must be back after it exits (regression: the handlers leaked)."""
        import signal

        def custom_handler(signum, frame):  # pragma: no cover - never fired
            pass

        previous_term = signal.signal(signal.SIGTERM, custom_handler)
        previous_int = signal.signal(signal.SIGINT, custom_handler)
        try:
            server = make_server(ServiceCore())
            stopper = threading.Timer(0.3, server.shutdown)
            stopper.start()
            # main thread, so the handlers really are installed
            serve_until_shutdown(server, install_signal_handlers=True)
            stopper.join(5)
            assert signal.getsignal(signal.SIGTERM) is custom_handler
            assert signal.getsignal(signal.SIGINT) is custom_handler
        finally:
            signal.signal(signal.SIGTERM, previous_term)
            signal.signal(signal.SIGINT, previous_int)

    def test_no_handlers_touched_off_main_thread(self):
        """The worker-thread path (the tests' own fixture) must leave
        the process signal table alone entirely."""
        import signal

        before = (
            signal.getsignal(signal.SIGTERM),
            signal.getsignal(signal.SIGINT),
        )
        server = make_server(ServiceCore())
        ready = threading.Event()
        thread = threading.Thread(
            target=serve_until_shutdown,
            kwargs=dict(
                server=server, install_signal_handlers=True, ready=ready
            ),
            daemon=True,
        )
        thread.start()
        assert ready.wait(5)
        server.shutdown()
        thread.join(5)
        assert (
            signal.getsignal(signal.SIGTERM),
            signal.getsignal(signal.SIGINT),
        ) == before


class TestShardedServer:
    def test_sharded_server_answers_and_reports_health(self):
        """End to end over a socket with shards=2: answers byte-identical
        to a single-process server, /healthz reports live shards."""
        cores = [ServiceCore(shards=2), ServiceCore()]
        servers = [make_server(core) for core in cores]
        threads = []
        try:
            for server in servers:
                ready = threading.Event()
                thread = threading.Thread(
                    target=serve_until_shutdown,
                    kwargs=dict(server=server, ready=ready),
                    daemon=True,
                )
                thread.start()
                assert ready.wait(5)
                threads.append(thread)
            urls = [
                f"http://127.0.0.1:{server.server_address[1]}"
                for server in servers
            ]
            g = random_tree(11, seed=13)
            payloads = [
                post(url, "/v1/elect", to_dict(g))[1] for url in urls
            ]
            assert json.dumps(payloads[0], sort_keys=True) == json.dumps(
                payloads[1], sort_keys=True
            )
            _status, health = get(urls[0], "/healthz")
            assert health["shards"] == 2
            assert health["shards_alive"] == [True, True]
            _status, single_health = get(urls[1], "/healthz")
            assert single_health["shards"] == 0
            assert single_health["shards_alive"] == []
            # a 422 maps identically through a shard worker
            code, body = post_error(
                urls[0], "/v1/elect", json.dumps(to_dict(ring(6))).encode()
            )
            assert code == 422 and body["error"] == "InfeasibleGraphError"
        finally:
            for server in servers:
                server.shutdown()
            for thread in threads:
                thread.join(5)


class TestPersistenceAcrossRestart:
    def test_restart_serves_warm(self, tmp_path):
        path = str(tmp_path / "cache.jsonl")
        g = random_tree(10, seed=5)

        core = ServiceCore(ResultCache(path=path))
        first = core.query("elect", g)
        assert not first.cached
        core.close()

        core = ServiceCore(ResultCache(path=path))
        second = core.query("elect", relabel_nodes(g, list(reversed(range(g.n)))))
        assert second.cached and second.record == first.record
        core.close()


class TestCLIClient:
    def test_query_roundtrip(self, service, tmp_path, capsys):
        url, _core = service
        g = random_tree(8, seed=7)
        spec = tmp_path / "g.json"
        spec.write_text(json.dumps({"name": "g", "graph": to_dict(g)}))
        assert cli_main(["query", "index", f"@{spec}", "--url", url]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["record"]["feasible"] is True
        assert cli_main(
            ["query", "index", f"@{spec}", "--url", url, "--record"]
        ) == 0
        record = json.loads(capsys.readouterr().out)
        assert record == payload["record"]

    def test_query_stdin(self, service, capsys, monkeypatch):
        url, _core = service
        g = random_tree(8, seed=7)
        monkeypatch.setattr(
            "sys.stdin", io.StringIO(json.dumps(to_dict(g)) + "\n")
        )
        assert cli_main(["query", "quotient", "-", "--url", url]) == 0
        assert json.loads(capsys.readouterr().out)["task"] == "quotient"

    def test_query_service_rejection_exits_2(self, service, capsys):
        url, _core = service
        spec = to_dict(ring(6))
        import tempfile, os

        with tempfile.NamedTemporaryFile(
            "w", suffix=".json", delete=False
        ) as fh:
            json.dump(spec, fh)
        try:
            code = cli_main(["query", "elect", f"@{fh.name}", "--url", url])
        finally:
            os.unlink(fh.name)
        assert code == 2
        assert "InfeasibleGraphError" in capsys.readouterr().err

    def test_query_unreachable_exits_2(self, capsys):
        code = cli_main(
            ["query", "index", "ring:5", "--url", "http://127.0.0.1:1",
             "--timeout", "2"]
        )
        assert code == 2
        assert "no service reachable" in capsys.readouterr().err


class TestServeCommand:
    def test_warm_requires_warm_corpus(self, capsys):
        assert cli_main(["serve", "--warm", "store.jsonl"]) == 2
        assert "--warm-corpus" in capsys.readouterr().err

    def test_warm_corpus_requires_warm(self, capsys):
        assert cli_main(["serve", "--warm-corpus", "lifts:2"]) == 2
        assert "no effect without --warm" in capsys.readouterr().err

    def test_full_serve_path(self, tmp_path, monkeypatch, capsys):
        """`repro serve` end to end: warm from a store, answer a warmed
        query over HTTP, shut down cleanly, persist the cache."""
        import repro.service as svc
        from repro.engine import ResultStore, run_stream

        corpus = list(
            __import__("repro.corpus", fromlist=["get_family"])
            .get_family("random-trees")
            .generate(2, seed=1)
        )
        store = tmp_path / "store.jsonl"
        with ResultStore(str(store)) as s:
            for record in run_stream(iter(corpus), "index"):
                s.append(record)

        captured = {}
        real_make = svc.make_server

        def grab(core, host="127.0.0.1", port=0):
            captured["server"] = real_make(core, host=host, port=port)
            return captured["server"]

        monkeypatch.setattr(svc, "make_server", grab)
        cache = tmp_path / "cache.jsonl"
        exit_code = {}
        thread = threading.Thread(
            target=lambda: exit_code.setdefault(
                "code",
                cli_main(
                    ["serve", "--port", "0", "--cache", str(cache),
                     "--warm", str(store),
                     "--warm-corpus", "random-trees:2,seed=1"]
                ),
            ),
            daemon=True,
        )
        thread.start()
        for _ in range(100):
            if "server" in captured:
                break
            import time

            time.sleep(0.05)
        server = captured["server"]
        url = f"http://127.0.0.1:{server.server_address[1]}"
        _status, health = get(url, "/healthz")
        assert health["cache"]["persisted_entries"] == 2  # the warm set
        _status, payload = post(
            url, "/v1/index", to_dict(corpus[0][1])
        )
        assert payload["cached"] is True  # served from the warmed cache
        server.shutdown()
        thread.join(10)
        assert exit_code["code"] == 0
        out = capsys.readouterr().out
        assert "warm: 2 entries" in out
        assert "entries persisted" in out
        assert cache.exists()


class TestGraphSpecUX:
    def test_spec_accepts_emit_envelope_file(self, tmp_path, capsys):
        g = random_tree(9, seed=1)
        spec = tmp_path / "g.jsonl"
        spec.write_text(json.dumps({"name": "g", "graph": to_dict(g)}) + "\n")
        assert cli_main(["index", f"@{spec}"]) == 0
        assert "feasible" in capsys.readouterr().out

    def test_spec_stdin_plain_graph(self, capsys, monkeypatch):
        monkeypatch.setattr(
            "sys.stdin", io.StringIO(json.dumps(to_dict(random_tree(9, seed=1))))
        )
        assert cli_main(["index", "-"]) == 0

    def test_spec_stdin_invalid(self, monkeypatch, capsys):
        monkeypatch.setattr("sys.stdin", io.StringIO("garbage"))
        assert cli_main(["index", "-"]) == 2
        assert "not valid graph JSON" in capsys.readouterr().err

    def test_single_graph_file_keeps_legacy_entry_name(self, tmp_path):
        """`sweep --corpus @g.json` must keep keying its record by the
        historical name `@<path>` (one- or multi-line single graph), so
        stores written before the JSONL stream existed stay resumable."""
        import json as _json

        from repro.cli import open_corpus_stream
        from repro.graphs import to_dict, to_json

        g = random_tree(7, seed=2)
        one_line = tmp_path / "one.json"
        one_line.write_text(to_json(g) + "\n")
        pretty = tmp_path / "pretty.json"
        pretty.write_text(_json.dumps(to_dict(g), indent=2))
        for path in (one_line, pretty):
            stream, _hint = open_corpus_stream(f"@{path}")
            entries = list(stream)
            assert entries == [(f"@{path}", g)]
        # several plain graphs are a stream, named by line
        many = tmp_path / "many.jsonl"
        many.write_text(to_json(g) + "\n" + to_json(ring(5)) + "\n")
        stream, _hint = open_corpus_stream(f"@{many}")
        assert [name for name, _g in stream] == [
            f"{many}:1", f"{many}:2"
        ]

    def test_sweep_consumes_emitted_corpus(self, tmp_path, capsys):
        out = tmp_path / "emitted.jsonl"
        assert cli_main(
            ["corpus", "emit", "random-trees:3,seed=4", "--out", str(out)]
        ) == 0
        capsys.readouterr()
        store = tmp_path / "store.jsonl"
        assert cli_main(
            ["sweep", "--corpus", f"@{out}", "--task", "index",
             "--out", str(store)]
        ) == 0
        records = [json.loads(l) for l in open(store) if l.strip()]
        assert len(records) == 3
        assert all(r["name"].startswith("random-trees-s4-") for r in records)
