"""Bitstring and Concat/Decode codec tests, incl. property-based
round-trips (the advice integrity rests on these)."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.coding import Bits, concat_bits, decode_concat
from repro.errors import CodingError

bits_strategy = st.text(alphabet="01", max_size=40).map(Bits)


class TestBits:
    def test_from_str_and_len(self):
        b = Bits("0101")
        assert len(b) == 4
        assert b.as_str() == "0101"

    def test_rejects_non_binary(self):
        with pytest.raises(CodingError):
            Bits("012")

    def test_from_ints(self):
        assert Bits([1, 0, 1]) == Bits("101")

    def test_rejects_bad_ints(self):
        with pytest.raises(CodingError):
            Bits([2])

    def test_indexing_and_iteration(self):
        b = Bits("100")
        assert b[0] == 1 and b[1] == 0
        assert list(b) == [1, 0, 0]
        assert b[1:] == Bits("00")

    def test_concatenation(self):
        assert Bits("01") + Bits("10") == Bits("0110")
        assert Bits.join([Bits("1"), Bits(""), Bits("0")]) == Bits("10")

    def test_one_indexed_bit(self):
        b = Bits("10")
        assert b.bit(1) == 1
        assert b.bit(2) == 0
        with pytest.raises(CodingError):
            b.bit(0)
        with pytest.raises(CodingError):
            b.bit(3)

    def test_ordering_lexicographic(self):
        assert Bits("0") < Bits("1")
        assert Bits("01") < Bits("010")  # prefix first
        assert Bits("10") <= Bits("10")

    def test_hash_eq(self):
        assert hash(Bits("011")) == hash(Bits("011"))
        assert Bits("011") == "011"


class TestConcat:
    def test_paper_example(self):
        """Concat((01), (00)) = (0011010000) — the paper's worked example."""
        assert concat_bits([Bits("01"), Bits("00")]) == Bits("0011010000")

    def test_empty_sequence(self):
        assert concat_bits([]) == Bits("")
        assert decode_concat(Bits("")) == []

    def test_empty_components_preserved(self):
        parts = [Bits("0"), Bits(""), Bits("1")]
        assert decode_concat(concat_bits(parts)) == parts

    @given(st.lists(bits_strategy, min_size=2, max_size=8))
    def test_round_trip(self, parts):
        assert decode_concat(concat_bits(parts)) == parts

    @given(st.lists(bits_strategy, min_size=1, max_size=5))
    def test_nested_round_trip(self, parts):
        from hypothesis import assume

        # documented corner case: Concat([""]) == Concat([]) == "" — every
        # library call site wraps, so the singleton-empty case never occurs
        assume(not (len(parts) == 1 and len(parts[0]) == 0))
        inner = concat_bits(parts)
        outer = concat_bits([inner, Bits("1"), inner])
        a, b, c = decode_concat(outer)
        assert a == inner and b == Bits("1") and c == inner
        assert decode_concat(a) == parts

    def test_length_is_linear(self):
        parts = [Bits("1" * 10), Bits("0" * 10)]
        assert len(concat_bits(parts)) == 2 * 20 + 2

    @pytest.mark.parametrize("bad", ["10", "0010", "001", "1"])
    def test_malformed_rejected(self, bad):
        with pytest.raises(CodingError):
            decode_concat(Bits(bad))

    def test_rejects_non_bits_components(self):
        with pytest.raises(CodingError):
            concat_bits(["01"])  # type: ignore[list-item]
