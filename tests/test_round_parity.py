"""Round-accounting parity: SyncEngine vs the strict wire mode.

The wire codec must be *invisible*: wrapping an algorithm in
:class:`~repro.sim.strict.WireWrapped` may only change the transport, so
on every corpus-family prefix the per-node ``output_round`` map, the
total round count and the message count must be identical to the plain
synchronous run.  This is the exact class of drift the PR-2
stabilization-depth bug exhibited (a silent off-by-one in a derived
count), pinned here at the engine level so it cannot recur unnoticed.
"""

import pytest

from repro.conformance import get_algorithm, profile_graph
from repro.corpus import iter_corpus
from repro.sim import SyncEngine, wire_wrapped


def _feasible_prefix(spec, limit):
    """First ``limit`` feasible entries of a family prefix."""
    out = []
    for name, g in iter_corpus(spec):
        profile = profile_graph(g)
        if profile.feasible:
            out.append((name, g, profile))
        if len(out) == limit:
            break
    return out


# family prefixes chosen to be (mostly) feasible and cheap; the phi
# corpora of analysis.sweep are covered by test_conformance instead
FAMILY_PREFIXES = ["random-trees:8", "caterpillars:8", "random-regular:10"]


@pytest.mark.parametrize("spec", FAMILY_PREFIXES)
@pytest.mark.parametrize("algorithm", ["elect", "map-based", "known-d-phi"])
def test_sync_and_strict_round_accounting_identical(spec, algorithm):
    entries = _feasible_prefix(spec, limit=4)
    assert entries, f"family prefix {spec} produced no feasible entries"
    algo = get_algorithm(algorithm)
    for name, g, profile in entries:
        if algo.applicable(g, profile) is not None:
            continue
        prepared = algo.prepare(g, profile)
        plain = SyncEngine(
            g,
            prepared.factory,
            advice=prepared.advice,
            advice_map=prepared.advice_map,
            max_rounds=prepared.max_rounds,
        ).run()
        strict = SyncEngine(
            g,
            wire_wrapped(prepared.factory),
            advice=prepared.advice,
            advice_map=prepared.advice_map,
            max_rounds=prepared.max_rounds,
        ).run()
        assert strict.output_round == plain.output_round, (name, algorithm)
        assert strict.rounds == plain.rounds, (name, algorithm)
        assert strict.election_time == plain.election_time, (name, algorithm)
        assert strict.total_messages == plain.total_messages, (name, algorithm)
        assert strict.per_round_messages == plain.per_round_messages, (
            name,
            algorithm,
        )
        assert strict.outputs == plain.outputs, (name, algorithm)


def test_tree_no_advice_round_parity_on_trees():
    """The no-advice tree baseline outputs at each node's eccentricity;
    the wire wrapper must preserve that per-node schedule exactly."""
    entries = _feasible_prefix("random-trees:6", limit=3)
    algo = get_algorithm("tree-no-advice")
    checked = 0
    for name, g, profile in entries:
        if algo.applicable(g, profile) is not None:
            continue
        prepared = algo.prepare(g, profile)
        plain = SyncEngine(
            g, prepared.factory, max_rounds=prepared.max_rounds
        ).run()
        strict = SyncEngine(
            g, wire_wrapped(prepared.factory), max_rounds=prepared.max_rounds
        ).run()
        assert strict.output_round == plain.output_round, name
        assert max(plain.output_round.values()) <= profile.diameter
        checked += 1
    assert checked > 0
