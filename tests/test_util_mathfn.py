"""Unit tests for the integer-exact math helpers."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.util.mathfn import (
    ceil_log2,
    floor_log2,
    ilog_iter,
    log_star,
    tower,
    tower_index,
)


class TestFloorCeilLog2:
    def test_powers_of_two(self):
        for e in range(20):
            assert floor_log2(2**e) == e
            assert ceil_log2(2**e) == e

    def test_between_powers(self):
        assert floor_log2(5) == 2
        assert ceil_log2(5) == 3
        assert floor_log2(1023) == 9
        assert ceil_log2(1023) == 10

    def test_one(self):
        assert floor_log2(1) == 0
        assert ceil_log2(1) == 0

    @pytest.mark.parametrize("bad", [0, -1, -100])
    def test_rejects_nonpositive(self, bad):
        with pytest.raises(ValueError):
            floor_log2(bad)
        with pytest.raises(ValueError):
            ceil_log2(bad)

    @given(st.integers(min_value=1, max_value=10**12))
    def test_floor_bracketing(self, x):
        f = floor_log2(x)
        assert 2**f <= x < 2 ** (f + 1)

    @given(st.integers(min_value=1, max_value=10**12))
    def test_ceil_bracketing(self, x):
        c = ceil_log2(x)
        assert 2**c >= x
        if x > 1:
            assert 2 ** (c - 1) < x


class TestIlogIter:
    def test_single_is_floor_log(self):
        assert ilog_iter(100, 1) == floor_log2(100)

    def test_double(self):
        # floor(log floor(log 256)) = floor(log 8) = 3
        assert ilog_iter(256, 2) == 3

    def test_zero_times_identity(self):
        assert ilog_iter(42, 0) == 42


class TestLogStar:
    @pytest.mark.parametrize(
        "x,expected",
        [(1, 0), (2, 1), (3, 1), (4, 2), (15, 2), (16, 3), (65535, 3), (65536, 4)],
    )
    def test_known_values(self, x, expected):
        assert log_star(x) == expected

    def test_rejects_zero(self):
        with pytest.raises(ValueError):
            log_star(0)

    @given(st.integers(min_value=1, max_value=10**9))
    def test_tower_inverse_bound(self, x):
        """tower(log*(x) + 1) >= x: the guarantee Election4 relies on."""
        s = log_star(x)
        if s + 1 <= 4:  # stay within the tower overflow guard
            assert tower(s + 1, 2) - 1 >= x or tower(s + 1, 2) >= x


class TestTower:
    def test_values(self):
        assert tower(0, 2) == 1
        assert tower(1, 2) == 2
        assert tower(2, 2) == 4
        assert tower(3, 2) == 16
        assert tower(4, 2) == 65536

    def test_base_three(self):
        assert tower(2, 3) == 27

    def test_overflow_guard(self):
        with pytest.raises(OverflowError):
            tower(5, 2)

    def test_rejects_bad_args(self):
        with pytest.raises(ValueError):
            tower(-1, 2)
        with pytest.raises(ValueError):
            tower(2, 1)


class TestTowerIndex:
    def test_known(self):
        assert tower_index(1) == 0
        assert tower_index(2) == 1
        assert tower_index(3) == 2
        assert tower_index(4) == 2
        assert tower_index(5) == 3
        assert tower_index(16) == 3
        assert tower_index(17) == 4

    @given(st.integers(min_value=1, max_value=65536))
    def test_is_inverse(self, x):
        i = tower_index(x)
        assert tower(i, 2) >= x
        if i > 0:
            assert tower(i - 1, 2) < x
