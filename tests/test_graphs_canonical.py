"""Canonical forms: invariance, exactness, and parity with VF2.

The certificate's contract is sharp in both directions — equal exactly
for port-isomorphic graphs — so the tests are oracle-style: on every
connected graph up to 5 nodes (two port assignments each), certificate
equality must coincide with the VF2 decision, pairwise; and the rooted
certificate must decide anchored automorphism exactly as the anchored
VF2 search does, for every node pair of every instance.
"""

import itertools
import random

import networkx as nx
import pytest

from repro.graphs import (
    PortGraphBuilder,
    canonical_form,
    canonical_graph,
    clique,
    cycle_with_leader_gadget,
    from_json,
    from_networkx,
    graph_fingerprint,
    grid_torus,
    hypercube,
    lollipop,
    random_connected_graph,
    random_tree,
    relabel_nodes,
    ring,
    rooted_certificate,
)
from repro.graphs.isomorphism import (
    _as_labeled_digraph,
    _port_isomorphism_vf2,
    port_automorphism_maps,
    port_isomorphism,
)
from repro.errors import GraphError


def _small_instances():
    """All connected atlas graphs on 3..5 nodes, two port assignments."""
    out = []
    for atlas_graph in nx.graph_atlas_g():
        n = atlas_graph.number_of_nodes()
        if not (3 <= n <= 5):
            continue
        if atlas_graph.number_of_edges() == 0 or not nx.is_connected(atlas_graph):
            continue
        out.append(from_networkx(atlas_graph))
        out.append(from_networkx(atlas_graph, seed=7))
    return out


SMALL = _small_instances()

SHAPES = [
    ring(7),
    random_tree(20, seed=3),
    hypercube(3),
    grid_torus(3, 4),
    lollipop(4, 3),
    cycle_with_leader_gadget(6),
    random_connected_graph(14, extra_edges=6, seed=9),
    clique(5),
]


def _random_perm(n, rng):
    perm = list(range(n))
    rng.shuffle(perm)
    return perm


class TestInvariance:
    @pytest.mark.parametrize("g", SHAPES, ids=lambda g: f"n{g.n}m{g.num_edges}")
    def test_certificate_invariant_under_relabeling(self, g):
        rng = random.Random(0)
        fp = graph_fingerprint(g)
        cert = canonical_form(g).certificate
        for _ in range(6):
            h = relabel_nodes(g, _random_perm(g.n, rng))
            assert canonical_form(h).certificate == cert
            assert graph_fingerprint(h) == fp

    @pytest.mark.parametrize("g", [ring(6), clique(4), hypercube(3)])
    def test_certificate_invariant_under_every_automorphism(self, g):
        """Relabeling by any port automorphism (enumerated exactly by
        VF2) leaves the certificate — trivially, the labeled graph —
        unchanged."""
        cert = canonical_form(g).certificate
        dg = _as_labeled_digraph(g)
        from networkx.algorithms import isomorphism as nxiso

        matcher = nxiso.DiGraphMatcher(
            dg,
            dg,
            node_match=lambda a, b: a["degree"] == b["degree"],
            edge_match=lambda a, b: a["port"] == b["port"],
        )
        count = 0
        for mapping in matcher.isomorphisms_iter():
            perm = [mapping[u] for u in range(g.n)]
            h = relabel_nodes(g, perm)
            assert h == g  # an automorphism fixes the labeled graph
            assert canonical_form(h).certificate == cert
            count += 1
            if count == 24:
                break  # the orbit check below covers the rest
        assert count > 1  # these graphs are symmetric: several found

    def test_canonical_graph_is_fixed_point(self):
        for g in SHAPES:
            cg = canonical_graph(g)
            assert canonical_graph(cg) == cg
            assert graph_fingerprint(cg) == graph_fingerprint(g)
            assert canonical_form(cg).to_canonical == tuple(range(g.n))

    def test_certificate_reconstructs_canonical_graph(self):
        g = random_tree(15, seed=5)
        cert = canonical_form(g).certificate
        assert from_json(cert.decode("ascii")) == canonical_graph(g)


class TestExactnessOracle:
    def test_pairwise_equality_matches_vf2(self):
        """On all connected <= 5-node instances: equal certificates iff
        VF2 finds a port-isomorphism — both directions, every pair."""
        forms = [canonical_form(g) for g in SMALL]
        for (g1, f1), (g2, f2) in itertools.combinations(
            zip(SMALL, forms), 2
        ):
            vf2 = _port_isomorphism_vf2(g1, g2)
            assert (f1.certificate == f2.certificate) == (vf2 is not None)

    def test_port_isomorphism_mapping_is_witness(self):
        """The certificate-derived mapping of port_isomorphism is a real
        port-isomorphism whenever VF2 says one exists."""
        rng = random.Random(1)
        for g in SMALL[::3]:
            h = relabel_nodes(g, _random_perm(g.n, rng))
            mapping = port_isomorphism(g, h)
            assert mapping is not None
            for u in g.nodes():
                for p in range(g.degree(u)):
                    v, q = g.neighbor(u, p)
                    assert h.neighbor(mapping[u], p) == (mapping[v], q)

    def test_unequal_certificate_means_no_isomorphism(self):
        seen = {}
        for g in SMALL:
            seen.setdefault(canonical_form(g).certificate, g)
        certs = list(seen.items())
        for (c1, g1), (c2, g2) in itertools.combinations(certs, 2):
            assert c1 != c2
            assert port_isomorphism(g1, g2) is None

    def test_corpus_prefix_fingerprints(self):
        from repro.corpus import get_family

        rng = random.Random(3)
        for family in ("random-trees", "tori", "lifts"):
            for _name, g in get_family(family).generate(3, seed=1):
                h = relabel_nodes(g, _random_perm(g.n, rng))
                assert graph_fingerprint(h) == graph_fingerprint(g)


class TestRootedCertificate:
    @pytest.mark.parametrize(
        "g",
        [grid_torus(3, 4), ring(6), clique(4), cycle_with_leader_gadget(5)],
        ids=["torus", "ring", "clique", "gadget"],
    )
    def test_orbit_parity_with_anchored_vf2(self, g):
        certs = [rooted_certificate(g, v) for v in g.nodes()]
        for a in g.nodes():
            for b in g.nodes():
                assert (certs[a] == certs[b]) == port_automorphism_maps(
                    g, a, b
                )

    def test_orbit_parity_exhaustive_small(self):
        for g in SMALL[::5]:
            certs = [rooted_certificate(g, v) for v in g.nodes()]
            for a, b in itertools.combinations(g.nodes(), 2):
                assert (certs[a] == certs[b]) == port_automorphism_maps(
                    g, a, b
                )

    def test_leaders_equivalent_uses_orbits(self):
        from repro.core.verify import leaders_equivalent

        g = ring(6)
        assert leaders_equivalent(g, 0, 0)
        assert leaders_equivalent(g, 0, 3)  # vertex-transitive
        h = cycle_with_leader_gadget(5)  # rigid
        assert not leaders_equivalent(h, 0, 1)

    def test_root_range_checked(self):
        with pytest.raises(GraphError):
            rooted_certificate(ring(5), 5)


class TestOrbitPartition:
    """The collapse partitions of :mod:`repro.core.orbit_elect` are graph
    properties: label-independent, and — for :func:`node_orbits` — exact
    against brute-force automorphism enumeration."""

    @staticmethod
    def _blocks(part):
        return {frozenset(block) for block in part.orbits}

    def test_invariant_under_random_relabelings(self):
        from repro.core.orbit_elect import behavior_classes, node_orbits

        rng = random.Random(5)
        for g in SHAPES:
            for compute in (node_orbits, behavior_classes):
                blocks = self._blocks(compute(g))
                for _ in range(4):
                    perm = _random_perm(g.n, rng)
                    h = relabel_nodes(g, perm)
                    mapped = {
                        frozenset(perm[v] for v in block) for block in blocks
                    }
                    assert self._blocks(compute(h)) == mapped

    def test_node_orbits_match_every_vf2_automorphism(self):
        """On all connected <= 5-node instances: ``same_orbit(a, b)`` iff
        some VF2-enumerated port automorphism maps ``a`` to ``b`` — the
        partition is exactly the automorphism group's node orbits."""
        from networkx.algorithms import isomorphism as nxiso

        from repro.core.orbit_elect import node_orbits

        for g in SMALL:
            dg = _as_labeled_digraph(g)
            matcher = nxiso.DiGraphMatcher(
                dg,
                dg,
                node_match=lambda a, b: a["degree"] == b["degree"],
                edge_match=lambda a, b: a["port"] == b["port"],
            )
            images = {v: set() for v in g.nodes()}
            for mapping in matcher.isomorphisms_iter():
                for v, w in mapping.items():
                    images[v].add(w)
            part = node_orbits(g)
            for a in g.nodes():
                for b in g.nodes():
                    assert part.same_orbit(a, b) == (b in images[a])

    def test_refines_stable_classes(self):
        from repro.core.orbit_elect import behavior_classes, node_orbits

        for g in SHAPES:
            classes = behavior_classes(g)
            for block in node_orbits(g).orbits:
                assert len({classes.orbit_of[v] for v in block}) == 1


class TestRelabelNodes:
    def test_identity(self):
        g = lollipop(4, 2)
        assert relabel_nodes(g, list(range(g.n))) == g

    def test_rejects_non_permutation(self):
        g = ring(4)
        with pytest.raises(GraphError):
            relabel_nodes(g, [0, 1, 2])
        with pytest.raises(GraphError):
            relabel_nodes(g, [0, 1, 2, 2])

    def test_composition(self):
        g = random_tree(12, seed=2)
        rng = random.Random(4)
        p1 = _random_perm(g.n, rng)
        p2 = _random_perm(g.n, rng)
        composed = [p2[p1[u]] for u in range(g.n)]
        assert relabel_nodes(relabel_nodes(g, p1), p2) == relabel_nodes(
            g, composed
        )


class TestCaching:
    def test_form_cached_on_instance(self):
        g = ring(9)
        assert g._canon_cache is None
        f1 = canonical_form(g)
        assert g._canon_cache is f1
        assert canonical_form(g) is f1

    def test_engine_serial_path_drops_canon_cache(self):
        from repro.engine import run_experiments

        g = random_tree(10, seed=1)
        canonical_form(g)
        run_experiments([("t", g)], task="index", workers=1, chunk_size=1)
        assert g._canon_cache is None
