"""The view quotient: minimum bases of symmetric graphs."""

import pytest

from repro.graphs import (
    circulant,
    clique,
    cycle_with_leader_gadget,
    grid_torus,
    hypercube,
    ring,
    star,
    wheel,
)
from repro.views import is_feasible
from repro.views.quotient import view_quotient


class TestSymmetricQuotients:
    def test_ring_collapses_to_one_class(self):
        q = view_quotient(ring(8))
        assert q.num_classes == 1
        assert not q.is_discrete
        assert q.lift_multiplicity() == [8]
        # the single class loops to itself on both ports
        assert q.transitions[0] == [(1, 0), (0, 0)]

    def test_hypercube_one_class(self):
        assert view_quotient(hypercube(3)).num_classes == 1

    def test_torus_one_class(self):
        assert view_quotient(grid_torus(3, 3)).num_classes == 1

    def test_circulant_one_class(self):
        assert view_quotient(circulant(9, [1, 2])).num_classes == 1

    def test_clique_one_class(self):
        assert view_quotient(clique(5)).num_classes == 1

    def test_mirror_path_two_classes(self):
        """A 4-path with mirror-symmetric ports: ends vs middles — the
        smallest quotient with 2 classes."""
        from repro.graphs import PortGraphBuilder

        b = PortGraphBuilder(4)
        b.add_edge(0, 0, 1, 0)
        b.add_edge(1, 1, 2, 1)
        b.add_edge(2, 0, 3, 0)
        q = view_quotient(b.build())
        assert q.num_classes == 2
        assert sorted(q.lift_multiplicity()) == [2, 2]


class TestFeasibleQuotients:
    def test_feasible_graph_is_discrete(self):
        g = cycle_with_leader_gadget(7)
        q = view_quotient(g)
        assert q.is_discrete
        assert q.num_classes == g.n

    def test_star_is_discrete(self):
        # leaves distinguished by center-side port
        assert view_quotient(star(4)).is_discrete

    def test_discrete_iff_feasible(self):
        for g in (ring(5), wheel(5), cycle_with_leader_gadget(5), star(3)):
            assert view_quotient(g).is_discrete == is_feasible(g)


class TestQuotientStructure:
    def test_transitions_well_defined(self):
        """Every class member induces the same (remote_port, class) row —
        checked internally; here we assert classes partition the nodes."""
        for g in (ring(9), wheel(7), grid_torus(3, 4)):
            q = view_quotient(g)
            all_nodes = sorted(v for cls in q.classes for v in cls)
            assert all_nodes == list(g.nodes())
            assert len(q.class_of) == g.n

    def test_class_members_share_degree(self):
        q = view_quotient(wheel(6))
        g = wheel(6)
        for cls in q.classes:
            degrees = {g.degree(v) for v in cls}
            assert len(degrees) == 1

    def test_transition_reciprocity(self):
        """Following port p from class c and then the recorded remote port
        must lead back to c."""
        q = view_quotient(grid_torus(3, 4))
        for c, row in enumerate(q.transitions):
            for p, (remote, target) in enumerate(row):
                back_remote, back_target = q.transitions[target][remote]
                assert back_remote == p
                assert back_target == c
