"""The observability layer: registry, spans, cross-process stitching.

Covers the ISSUE-10 guarantees: the disabled path writes nothing (the
no-op pin the CI bench gate leans on), span context crosses the shard
``Pipe`` protocol and the engine's chunk envelopes, one sharded service
query yields a single stitched Chrome-trace-exportable trace, and the
exporters (Prometheus text, Chrome trace JSON, warehouse telemetry)
round-trip what the core records."""

import json
import threading
import urllib.request

import pytest

from repro import obs
from repro.graphs import random_tree, to_json
from repro.service import (
    ResultCache,
    ServiceCore,
    make_server,
    serve_until_shutdown,
)
from repro.service.shard import ShardPool
from tests.conftest import feasible_corpus


@pytest.fixture(autouse=True)
def obs_reset():
    """Every test starts and ends with obs disabled and empty."""
    obs.reset()
    obs.disable()
    yield
    obs.reset()
    obs.disable()


def span_names(events):
    return [event["name"] for event in events]


def feasible_graph():
    return feasible_corpus()[0][1]


# ---------------------------------------------------------------------------
# registry
# ---------------------------------------------------------------------------
class TestRegistry:
    def test_counters_gauges_histograms(self):
        reg = obs.Registry()
        reg.inc("queries", task="elect")
        reg.inc("queries", 2.0, task="elect")
        reg.inc("queries", task="index")
        reg.set_gauge("inflight", 3)
        reg.observe("latency_s", 0.002)
        reg.observe("latency_s", 50.0)
        snap = reg.snapshot()
        counters = {
            (c["name"], tuple(sorted(c["labels"].items()))): c["value"]
            for c in snap["counters"]
        }
        assert counters[("queries", (("task", "elect"),))] == 3.0
        assert counters[("queries", (("task", "index"),))] == 1.0
        assert snap["gauges"][0]["value"] == 3.0
        (hist,) = snap["histograms"]
        assert hist["count"] == 2 and hist["sum"] == pytest.approx(50.002)
        # one observation per value, each in a finite bucket
        assert sum(hist["bucket_counts"]) == 2
        assert len(hist["bucket_counts"]) == len(hist["buckets"]) + 1

    def test_module_helpers_respect_the_flag(self):
        obs.inc("nope")
        obs.observe("nope_s", 1.0)
        obs.set_gauge("nope_g", 1.0)
        assert obs.registry.writes == 0
        obs.enable()
        obs.inc("yes")
        assert obs.registry.writes == 1


# ---------------------------------------------------------------------------
# spans: no-op path, nesting, remote stitching
# ---------------------------------------------------------------------------
class TestSpans:
    def test_disabled_span_is_shared_noop(self):
        a = obs.span("x")
        b = obs.span("y", attr=1)
        assert a is b  # one shared instance: no allocation when off
        with a as handle:
            assert handle.recording is False
            handle.set("ignored", 1)  # absorbed
        assert obs.trace_events() == []

    def test_nesting_links_parent_child(self):
        obs.enable()
        with obs.span("parent") as parent:
            with obs.span("child"):
                pass
        child_ev, parent_ev = obs.trace_events()
        assert parent_ev["name"] == "parent" and child_ev["name"] == "child"
        assert child_ev["parent_id"] == parent_ev["span_id"]
        assert child_ev["trace_id"] == parent_ev["trace_id"]
        assert parent_ev["parent_id"] is None
        assert parent.trace_id == parent_ev["trace_id"]

    def test_error_and_attrs_recorded(self):
        obs.enable()
        with pytest.raises(ValueError):
            with obs.span("boom", task="elect") as sp:
                sp.set("extra", 7)
                raise ValueError("x")
        (event,) = obs.trace_events()
        assert event["error"] == "ValueError"
        assert event["attrs"] == {"task": "elect", "extra": 7}

    def test_collect_remote_round_trip_in_process(self):
        obs.enable()
        with obs.span("parent") as parent:
            ctx = obs.export_context()
            assert ctx == {
                "trace_id": parent.trace_id,
                "span_id": parent.span_id,
            }
            # simulate the worker side: fresh buffer, remote parenting
            with obs.collect_remote(ctx) as collected:
                with obs.span("worker.op"):
                    pass
            (worker_ev,) = collected.events
            assert worker_ev["trace_id"] == parent.trace_id
            assert worker_ev["parent_id"] == parent.span_id
            obs.ingest(collected.events)
        names = span_names(obs.trace_events())
        assert names == ["worker.op", "parent"]

    def test_collect_remote_restores_prior_state(self):
        obs.enable()
        with obs.span("kept"):
            pass
        before = obs.trace_events()
        with obs.collect_remote({"trace_id": "t", "span_id": "s"}):
            with obs.span("inner"):
                pass
        assert obs.trace_events() == before  # inner went to collected only
        obs.disable()
        with obs.collect_remote({"trace_id": "t", "span_id": "s"}) as c:
            with obs.span("forced"):
                pass
        assert not obs.enabled()  # restored off
        assert span_names(c.events) == ["forced"]

    def test_collect_remote_inert_without_context(self):
        with obs.collect_remote(None) as collected:
            with obs.span("nothing"):
                pass
        assert collected.events == []
        assert obs.trace_events() == []


# ---------------------------------------------------------------------------
# cross-process propagation: shard pipe, engine envelopes
# ---------------------------------------------------------------------------
class TestCrossProcess:
    def test_shard_pipe_round_trip(self):
        import hashlib

        g = feasible_graph()
        certificate = to_json(g)
        fingerprint = hashlib.sha256(certificate.encode()).hexdigest()
        obs.enable()
        with ShardPool(2) as pool:
            with obs.span("parent") as parent:
                record = pool.compute("index", fingerprint, certificate)
        assert record["task"] == "index"
        events = obs.trace_events()
        by_name = {event["name"]: event for event in events}
        shard_ev = by_name["shard.compute"]
        assert shard_ev["trace_id"] == parent.trace_id
        assert shard_ev["parent_id"] == parent.span_id
        assert shard_ev["pid"] != by_name["parent"]["pid"]
        assert shard_ev["attrs"]["fingerprint"] == fingerprint[:16]

    def test_engine_worker_envelopes(self):
        from repro.engine import EngineConfig, run

        entries = feasible_corpus()[:4]
        obs.enable()
        with obs.span("parent") as parent:
            records = run(
                entries, "index", EngineConfig(workers=2, chunk_size=1)
            )
        assert len(records) == len(entries)
        chunk_events = [
            e for e in obs.trace_events() if e["name"] == "engine.chunk"
        ]
        assert len(chunk_events) == len(entries)  # chunk_size=1
        assert {e["trace_id"] for e in chunk_events} == {parent.trace_id}
        assert all(e["parent_id"] == parent.span_id for e in chunk_events)
        assert len({e["pid"] for e in chunk_events}) >= 1  # worker pids

    def test_sharded_query_single_stitched_trace(self):
        """The acceptance trace: one sharded service query = one trace
        covering the parent's cache lookup, the shard worker's compute
        phases and the per-round sim costs, exportable as Chrome JSON."""
        g = feasible_graph()
        obs.enable()
        core = ServiceCore(ResultCache(), shards=2)
        try:
            result = core.query("elect", g)
        finally:
            core.close()
        assert result.record["task"] == "elect"
        events = obs.trace_events()
        names = set(span_names(events))
        assert {
            "service.query",
            "service.fingerprint",
            "service.cache_lookup",
            "service.compute",
            "shard.compute",
            "elect.orbit",
            "elect.advice",
            "elect.simulate",
            "elect.verify",
        } <= names
        # one stitched trace across >= 2 processes
        assert len({e["trace_id"] for e in events}) == 1
        assert len({e["pid"] for e in events}) >= 2
        # every non-root event's parent exists in the same trace
        ids = {e["span_id"] for e in events}
        roots = [e for e in events if e["parent_id"] is None]
        assert [e["name"] for e in roots] == ["service.query"]
        assert all(
            e["parent_id"] in ids for e in events if e["parent_id"]
        )
        # the sim span folds the Tracer accounting in as attributes
        sim_ev = next(e for e in events if e["name"] == "elect.simulate")
        assert sim_ev["attrs"]["rounds"] >= 1
        assert sim_ev["attrs"]["total_messages"] >= 1
        # and the whole thing exports as loadable Chrome trace JSON
        chrome = obs.to_chrome_trace(events)
        assert chrome["traceEvents"]
        for entry in chrome["traceEvents"]:
            assert entry["ph"] == "X"
            assert entry["ts"] >= 0 and entry["dur"] >= 0
        json.dumps(chrome)  # JSON-safe throughout

    def test_disabled_sharded_query_records_nothing(self):
        """The no-op pin: obs off => zero registry writes, empty buffer,
        and no context shipped over the shard pipe."""
        g = feasible_graph()
        core = ServiceCore(ResultCache(), shards=1)
        try:
            core.query("elect", g)
        finally:
            core.close()
        assert obs.trace_events() == []
        assert obs.registry.writes == 0
        assert obs.registry.snapshot() == {
            "counters": [],
            "gauges": [],
            "histograms": [],
        }


# ---------------------------------------------------------------------------
# service surface: metrics negotiation, healthz, slow-query log
# ---------------------------------------------------------------------------
@pytest.fixture()
def service():
    core = ServiceCore()
    server = make_server(core)
    ready = threading.Event()
    thread = threading.Thread(
        target=serve_until_shutdown,
        kwargs=dict(server=server, ready=ready),
        daemon=True,
    )
    thread.start()
    assert ready.wait(5)
    yield f"http://127.0.0.1:{server.server_address[1]}", core
    server.shutdown()
    thread.join(5)


def http_get(url, headers=None):
    request = urllib.request.Request(url, headers=headers or {})
    with urllib.request.urlopen(request, timeout=10) as resp:
        return resp.status, resp.headers.get("Content-Type"), resp.read()


class TestServiceSurface:
    def test_metrics_json_by_default(self, service):
        url, _core = service
        status, ctype, body = http_get(url + "/metrics")
        assert status == 200 and ctype == "application/json"
        payload = json.loads(body)
        assert {"hits", "misses", "errors", "uptime_s"} <= set(payload)

    @pytest.mark.parametrize(
        "headers,query",
        [
            ({"Accept": "text/plain"}, ""),
            ({"Accept": "application/openmetrics-text"}, ""),
            ({}, "?format=prometheus"),
        ],
    )
    def test_metrics_prometheus_negotiation(self, service, headers, query):
        url, core = service
        obs.enable()
        core.query("index", random_tree(8, seed=1))
        status, ctype, body = http_get(url + "/metrics" + query, headers)
        assert status == 200
        assert ctype.startswith("text/plain; version=0.0.4")
        text = body.decode()
        # the core's flat JSON counters, prefixed (exposed as gauges)
        assert "# TYPE repro_misses gauge" in text
        assert "repro_misses 1" in text
        # and the obs registry's query-latency histogram
        assert 'repro_service_query_latency_s_bucket{' in text
        assert "repro_service_query_latency_s_count{" in text

    def test_healthz_shard_health(self):
        obs.reset()
        core = ServiceCore(ResultCache(), shards=2)
        server = make_server(core)
        ready = threading.Event()
        thread = threading.Thread(
            target=serve_until_shutdown,
            kwargs=dict(server=server, ready=ready),
            daemon=True,
        )
        thread.start()
        assert ready.wait(5)
        try:
            url = f"http://127.0.0.1:{server.server_address[1]}"
            _status, _ctype, body = http_get(url + "/healthz")
            payload = json.loads(body)
            assert payload["shards"] == 2
            assert payload["shards_alive"] == [True, True]
            assert payload["shard_health"] == [
                {"shard": 0, "alive": True, "restarts": 0, "last_error": None},
                {"shard": 1, "alive": True, "restarts": 0, "last_error": None},
            ]
        finally:
            server.shutdown()
            thread.join(5)

    def test_healthz_in_process_mode_has_empty_shard_health(self, service):
        url, _core = service
        _status, _ctype, body = http_get(url + "/healthz")
        assert json.loads(body)["shard_health"] == []

    def test_restart_history_after_worker_death(self):
        import hashlib
        import time

        from repro.errors import ServiceError

        g = feasible_graph()
        certificate = to_json(g)
        fingerprint = hashlib.sha256(certificate.encode()).hexdigest()
        with ShardPool(1) as pool:
            proc, _conn = pool._workers[0]
            proc.terminate()
            proc.join(5)
            t0 = time.time()
            with pytest.raises(ServiceError, match="worker restarted"):
                pool.compute("index", fingerprint, certificate)
            (row,) = pool.health()
            assert row["alive"] is True  # respawned on the spot
            assert row["restarts"] == 1
            assert t0 <= row["last_error"]["time"] <= time.time()
            assert "worker died" in row["last_error"]["error"]
            # the respawned worker serves the retry
            record = pool.compute("index", fingerprint, certificate)
            assert record["task"] == "index"

    def test_slow_query_log(self):
        lines = []
        core = ServiceCore(
            ResultCache(),
            slow_query_threshold_s=0.0,  # everything is slow
            slow_query_sink=lines.append,
        )
        try:
            g = random_tree(9, seed=3)
            core.query("index", g)
            core.query("index", g)  # hit: logged with its tier
        finally:
            core.close()
        assert len(lines) == 2
        first, second = (json.loads(line) for line in lines)
        assert first["slow_query"] is True
        assert first["task"] == "index"
        assert first["tier"] == "compute"
        assert first["threshold_s"] == 0.0
        assert first["latency_s"] >= 0
        assert {"fingerprint_s", "lookup_s", "compute_s"} <= set(
            first["phases"]
        )
        assert second["tier"] in ("memory", "persisted")
        assert second["fingerprint"] == first["fingerprint"]

    def test_slow_query_threshold_filters(self):
        lines = []
        core = ServiceCore(
            ResultCache(),
            slow_query_threshold_s=3600.0,
            slow_query_sink=lines.append,
        )
        try:
            core.query("index", random_tree(9, seed=3))
        finally:
            core.close()
        assert lines == []

    def test_negative_threshold_rejected(self):
        from repro.errors import ServiceError

        with pytest.raises(ServiceError, match="slow_query_threshold_s"):
            ServiceCore(ResultCache(), slow_query_threshold_s=-1.0)


# ---------------------------------------------------------------------------
# exporters: prometheus text, chrome trace, warehouse telemetry
# ---------------------------------------------------------------------------
class TestExporters:
    def test_render_prometheus_shapes(self):
        obs.enable()
        obs.inc("shard_restarts", shard=0)
        obs.observe("service_query_latency_s", 0.005, task="elect")
        text = obs.render_prometheus(
            obs.take_snapshot(), extra_counters={"queries": 3}
        )
        assert "# TYPE repro_queries gauge" in text
        assert "repro_queries 3" in text
        assert 'repro_shard_restarts_total{shard="0"} 1' in text
        assert '_bucket{le="+Inf",task="elect"} 1' in text
        assert "repro_service_query_latency_s_sum" in text
        # cumulative buckets: the +Inf bucket equals the count
        count_line = next(
            line
            for line in text.splitlines()
            if line.startswith("repro_service_query_latency_s_count")
        )
        assert count_line.endswith(" 1")

    def test_chrome_trace_writer(self, tmp_path):
        obs.enable()
        with obs.span("outer"):
            with obs.span("inner", step=1):
                pass
        path = tmp_path / "trace.json"
        count = obs.write_chrome_trace(str(path), obs.trace_events())
        assert count == 2
        payload = json.loads(path.read_text())
        assert payload["displayTimeUnit"] == "ms"
        names = {e["name"] for e in payload["traceEvents"]}
        assert names == {"outer", "inner"}

    def test_warehouse_telemetry_round_trip(self, tmp_path):
        from repro.warehouse import Warehouse

        obs.enable()
        obs.inc("queries", task="elect")
        obs.observe("service_query_latency_s", 0.02, task="elect")
        with obs.span("service.query"):
            pass
        db = tmp_path / "wh.sqlite"
        with Warehouse(str(db)) as wh:
            run_id = wh.begin_run("profile", "pr10")
            rows = wh.append_telemetry(
                run_id,
                snapshot=obs.take_snapshot(),
                events=obs.trace_events(),
            )
            wh.finish_run(run_id)
            assert rows == 3
            stored = wh.telemetry_rows(run_id=run_id)
            kinds = sorted(row["kind"] for row in stored)
            assert kinds == ["counter", "histogram", "span"]
            hist = next(r for r in stored if r["kind"] == "histogram")
            assert hist["value"]["count"] == 1
            span_row = next(r for r in stored if r["kind"] == "span")
            assert span_row["value"]["name"] == "service.query"

    def test_trend_renders_telemetry_section(self, tmp_path):
        from repro.warehouse import Warehouse, render_trend

        obs.enable()
        obs.observe("service_query_latency_s", 0.004, task="elect")
        db = tmp_path / "wh.sqlite"
        with Warehouse(str(db)) as wh:
            run_id = wh.begin_run("profile", "pr10")
            wh.append_telemetry(run_id, snapshot=obs.take_snapshot())
            wh.finish_run(run_id)
            text = render_trend(wh)
        assert "telemetry (histogram count:p50/p99" in text
        assert "service_query_latency_s" in text
        assert "(no timed bench records)" in text  # telemetry-only db


# ---------------------------------------------------------------------------
# bench resources
# ---------------------------------------------------------------------------
class TestBenchResources:
    def test_time_case_reports_resources(self):
        from repro.analysis.bench import _time_case

        seconds, reps, resources = _time_case(lambda: [0] * 10000, 2)
        assert seconds >= 0 and reps == 2
        assert resources["peak_rss_kb"] is None or (
            resources["peak_rss_kb"] > 0
        )
        assert resources["gc_collections"] >= 0
        assert resources["gc_collected"] >= 0

    def test_scenario_cases_carry_resources(self):
        from repro.analysis.bench import (
            SCENARIOS,
            make_bench_record,
            validate_bench_record,
        )

        cases = SCENARIOS["refinement"](True)
        for case in cases:
            assert "peak_rss_kb" in case
            assert "gc_collections" in case
            assert "gc_collected" in case
        record = make_bench_record("refinement", cases, quick=True)
        validate_bench_record(record)  # extra fields stay schema-valid
