"""The orbit-collapsed engine against the per-node spec, exhaustively.

The per-node :class:`~repro.sim.local_model.SyncEngine` is the executable
specification; :mod:`repro.core.orbit_elect` claims to reproduce it,
field for field, while simulating one node per orbit.  This file proves
the claim where proof is cheapest and strongest:

* **exhaustively** on every connected graph shape on 3..6 nodes under
  two port assignments (the same instance set the conformance oracle
  sweeps), smallest-first, so the first failure is a smallest witness
  and prints the graph JSON that reconstructs it;
* under **both** valid collapse partitions — the exact automorphism
  orbits (:func:`node_orbits`) and the coarser stable view-refinement
  classes (:func:`behavior_classes`);
* for both workloads: the uniform-advice view probe (runs on every
  graph) and the full Theorem 3.1 election pipeline (runs exactly on
  the feasible ones);
* by **seeded fuzz** over the symmetric corpus families (tori,
  vertex-transitive, lifts) where orbits are genuinely large and the
  collapse is not the identity.
"""

import networkx as nx
import pytest

from repro.core import run_elect
from repro.core.orbit_elect import (
    OrbitEngine,
    ViewProbeAlgorithm,
    behavior_classes,
    node_orbits,
    run_elect_orbit,
    run_orbit,
    run_view_probe,
    view_probe_factory,
)
from repro.errors import SimulationError
from repro.graphs import from_networkx, grid_torus, to_json
from repro.sim import run_sync
from repro.views import is_feasible
from repro.views.refinement import stable_partition


def _small_connected_instances():
    """Connected atlas shapes on 3..6 nodes, canonical + seeded ports,
    smallest shapes first (the atlas is ordered by (n, m))."""
    out = []
    for atlas_graph in nx.graph_atlas_g():
        n = atlas_graph.number_of_nodes()
        if not (3 <= n <= 6):
            continue
        if atlas_graph.number_of_edges() == 0 or not nx.is_connected(atlas_graph):
            continue
        gid = f"atlas-{atlas_graph.name or id(atlas_graph)}"
        out.append((f"{gid}-canonical", from_networkx(atlas_graph)))
        out.append((f"{gid}-seeded", from_networkx(atlas_graph, seed=7)))
    return out


INSTANCES = _small_connected_instances()


def _fail_with_repro(name, g, what):
    pytest.fail(
        "orbit-collapsed engine diverged from the per-node spec — "
        "minimized repro:\n"
        f"  instance: {name} (n = {g.n}, m = {g.num_edges})\n"
        f"  graph JSON: {to_json(g)}\n"
        f"  divergence: {what}"
    )


def test_enumeration_matches_the_conformance_sweep():
    # connected shapes: 2 (n=3) + 6 (n=4) + 21 (n=5) + 112 (n=6), x2 ports
    assert len(INSTANCES) == 2 * (2 + 6 + 21 + 112)


# ----------------------------------------------------------------------
# partitions
# ----------------------------------------------------------------------
@pytest.mark.parametrize("name_g", INSTANCES, ids=lambda p: p[0])
def test_partitions_are_consistent(name_g):
    name, g = name_g
    stable = stable_partition(g)
    orbits = node_orbits(g, stable)
    classes = behavior_classes(g, stable)
    # both are partitions of the node set ...
    for part in (orbits, classes):
        assert sorted(v for block in part.orbits for v in block) == list(
            range(g.n)
        )
        assert all(part.orbit_of[v] == i
                   for i, block in enumerate(part.orbits) for v in block)
        assert part.representatives == tuple(b[0] for b in part.orbits)
    # ... orbits refine classes (same orbit => same view at every depth)
    for block in orbits.orbits:
        assert len({classes.orbit_of[v] for v in block}) == 1
    # ... and feasibility is exactly discreteness of both (Yamashita-
    # Kameda: electable <=> all views distinct <=> rigid)
    feasible = is_feasible(g)
    assert classes.discrete == feasible
    if feasible:
        assert orbits.discrete


# ----------------------------------------------------------------------
# engine parity, exhaustively
# ----------------------------------------------------------------------
@pytest.mark.parametrize("name_g", INSTANCES, ids=lambda p: p[0])
def test_probe_parity_under_both_partitions(name_g):
    name, g = name_g
    stable = stable_partition(g)
    depth = stable.depth + 1
    full = run_view_probe(g, depth, collapsed=False)
    for label, part in (
        ("node_orbits", node_orbits(g, stable)),
        ("behavior_classes", behavior_classes(g, stable)),
    ):
        collapsed = run_view_probe(g, depth, orbits=part)
        if collapsed != full:
            _fail_with_repro(
                name, g, f"depth-{depth} probe under {label}: "
                f"{collapsed} != {full}"
            )


@pytest.mark.parametrize("name_g", INSTANCES, ids=lambda p: p[0])
def test_elect_parity_on_feasible(name_g):
    name, g = name_g
    if not is_feasible(g):
        pytest.skip("infeasible instance")
    full = run_elect(g)
    collapsed = run_elect_orbit(g)
    if collapsed != full:
        _fail_with_repro(name, g, f"elect records: {collapsed} != {full}")


# ----------------------------------------------------------------------
# seeded fuzz where orbits are large
# ----------------------------------------------------------------------
@pytest.mark.parametrize("family", ["tori", "vertex-transitive", "lifts"])
def test_fuzz_symmetric_families(family):
    """Corpus prefixes of the symmetric families: the collapse must be
    genuinely nontrivial (some orbit bigger than one node) and the
    collapsed probe must equal the per-node probe on every entry."""
    from repro.corpus import get_family

    saw_nontrivial = False
    for name, g in get_family(family).generate(4, seed=11):
        stable = stable_partition(g)
        part = behavior_classes(g, stable)
        saw_nontrivial |= part.max_orbit_size > 1
        depth = stable.depth + 1
        full = run_view_probe(g, depth, collapsed=False)
        for orbits in (part, node_orbits(g, stable)):
            collapsed = run_view_probe(g, depth, orbits=orbits)
            if collapsed != full:
                _fail_with_repro(name, g, f"fuzz probe at depth {depth}")
    assert saw_nontrivial, f"family {family} never exercised the collapse"


def test_torus_collapses_to_one_orbit():
    part = behavior_classes(grid_torus(4, 5))
    assert part.num_orbits == 1
    assert part.max_orbit_size == 20
    exact = node_orbits(grid_torus(4, 5))
    assert exact.num_orbits == 1  # vertex-transitive: one true orbit too


# ----------------------------------------------------------------------
# engine guardrails
# ----------------------------------------------------------------------
class TestGuardrails:
    def test_advice_map_is_refused(self):
        g = grid_torus(3, 3)
        with pytest.raises(SimulationError, match="identical advice"):
            OrbitEngine(g, view_probe_factory(1), advice_map={0: None})

    def test_tracer_is_refused(self):
        g = grid_torus(3, 3)
        with pytest.raises(SimulationError, match="per-node tracer"):
            OrbitEngine(g, view_probe_factory(1), tracer=object())

    def test_max_rounds_error_matches_per_node_engine(self):
        """The collapsed engine must fail exactly like the spec: same
        exception, same message (including the reconstructed per-node
        stuck list)."""
        g = grid_torus(3, 3)
        factory = view_probe_factory(50)
        with pytest.raises(SimulationError) as full:
            run_sync(g, factory, max_rounds=3)
        with pytest.raises(SimulationError) as collapsed:
            run_orbit(g, factory, max_rounds=3)
        assert str(collapsed.value) == str(full.value)

    def test_negative_probe_depth_is_rejected(self):
        from repro.errors import AlgorithmError

        with pytest.raises(AlgorithmError, match="depth"):
            ViewProbeAlgorithm(-1)

    def test_single_node_graph(self):
        from repro.graphs.port_graph import PortGraphBuilder

        g = PortGraphBuilder(1).build()
        full = run_view_probe(g, 3, collapsed=False)
        assert run_view_probe(g, 3) == full
        assert full.rounds == 0
