"""The corpus-family registry: laziness, determinism, the prefix
contract, feasibility coverage, and the spec parser."""

from __future__ import annotations

import itertools

import pytest

from repro.corpus import (
    FAMILIES,
    get_family,
    is_family_spec,
    iter_corpus,
    list_families,
    parse_family_spec,
)
from repro.errors import CorpusError
from repro.graphs.serialization import to_json
from repro.views import is_feasible, stable_partition

EXPECTED_FAMILIES = {
    "tori",
    "hypercubes",
    "circulants",
    "random-trees",
    "caterpillars",
    "random-regular",
    "lifts",
    "vertex-transitive",
}


def test_registry_contains_the_issue_families():
    assert EXPECTED_FAMILIES <= set(FAMILIES)
    assert [f.name for f in list_families()] == sorted(FAMILIES)


@pytest.mark.parametrize("family", sorted(EXPECTED_FAMILIES))
def test_family_yields_count_named_entries(family):
    entries = list(get_family(family).generate(6, seed=2))
    assert len(entries) == 6
    names = [name for name, _ in entries]
    assert len(set(names)) == 6  # unique within the stream: the store key
    assert all(name.startswith(f"{family}-s2-") for name in names)
    assert all(g.n >= 2 and g.is_connected() for _, g in entries)


@pytest.mark.parametrize("family", sorted(EXPECTED_FAMILIES))
def test_generation_is_lazy(family):
    stream = get_family(family).generate(10**9, seed=0)
    first = list(itertools.islice(stream, 2))
    assert len(first) == 2  # a billion-entry corpus costs two entries


@pytest.mark.parametrize("family", sorted(EXPECTED_FAMILIES))
def test_prefix_contract(family):
    """The first k entries never depend on count — the property resume
    relies on to re-create an interrupted corpus exactly."""
    fam = get_family(family)
    short = [(n, to_json(g)) for n, g in fam.generate(4, seed=7)]
    long_prefix = [
        (n, to_json(g))
        for n, g in itertools.islice(fam.generate(40, seed=7), 4)
    ]
    assert short == long_prefix


def test_same_seed_same_graphs_different_seed_differs():
    fam = get_family("random-trees")
    a = [(n, to_json(g)) for n, g in fam.generate(5, seed=1)]
    b = [(n, to_json(g)) for n, g in fam.generate(5, seed=1)]
    c = [to_json(g) for _, g in fam.generate(5, seed=2)]
    assert a == b
    assert [j for _, j in a] != c


@pytest.mark.parametrize(
    "family", ["tori", "hypercubes", "circulants", "lifts", "vertex-transitive"]
)
def test_infeasible_families_are_infeasible(family):
    fam = get_family(family)
    assert fam.feasibility == "infeasible"
    for name, g in fam.generate(5, seed=3):
        assert not is_feasible(g), name


def test_lift_family_stabilizes_at_base_phi():
    """The lifts family documents stabilization depth = phi(base); the
    refinement must agree (this is the workload the depth off-by-one
    would have corrupted at scale)."""
    from repro.graphs import cycle_with_leader_gadget
    from repro.views import election_index

    for name, g in get_family("lifts").generate(5, seed=4):
        # name ends in -r<ring>x<mult>
        shape = name.rsplit("-", 1)[1]
        ring_size, mult = (int(x) for x in shape[1:].split("x"))
        base = cycle_with_leader_gadget(ring_size)
        stable = stable_partition(g)
        assert g.n == base.n * mult
        assert stable.depth == election_index(base), name
        assert stable.num_classes == base.n


def test_family_params_are_applied():
    for name, g in get_family("tori").generate(4, seed=0, min_side=5,
                                               max_side=5):
        assert g.n == 25, name
    for _, g in get_family("hypercubes").generate(4, seed=0, min_dim=3,
                                                  max_dim=3):
        assert g.n == 8


def test_random_regular_stays_within_bounds():
    for name, g in get_family("random-regular").generate(
        12, seed=5, min_n=9, max_n=11, min_degree=3, max_degree=3
    ):
        assert 9 <= g.n <= 11, name  # never bumped past max_n for parity
        assert g.n % 2 == 0  # d=3 forces the even n in range


def test_random_regular_unsatisfiable_range_raises():
    with pytest.raises(CorpusError, match="must be even"):
        list(get_family("random-regular").generate(
            1, seed=0, min_n=23, max_n=23, min_degree=3, max_degree=3
        ))


def test_unknown_family_and_params_raise():
    with pytest.raises(CorpusError, match="unknown corpus family"):
        get_family("moebius")
    with pytest.raises(CorpusError, match="no parameter"):
        list(get_family("tori").generate(1, seed=0, sides=4))
    with pytest.raises(CorpusError):
        get_family("tori").generate(-1)


class TestSpecParser:
    def test_bare_family(self):
        family, count, seed, params = parse_family_spec("circulants")
        assert family.name == "circulants"
        assert (count, seed, params) == (100, 0, {})

    def test_positional_count_and_keywords(self):
        family, count, seed, params = parse_family_spec(
            "lifts:250,seed=7,max_ring=12"
        )
        assert family.name == "lifts"
        assert (count, seed) == (250, 7)
        assert params == {"max_ring": 12}

    def test_count_keyword(self):
        _, count, seed, _ = parse_family_spec("tori:count=9,seed=1")
        assert (count, seed) == (9, 1)

    def test_non_integer_rejected(self):
        with pytest.raises(CorpusError, match="not an integer"):
            parse_family_spec("tori:many")

    def test_second_positional_rejected(self):
        with pytest.raises(CorpusError, match="positional"):
            parse_family_spec("tori:5,7")

    def test_is_family_spec(self):
        assert is_family_spec("tori:50")
        assert is_family_spec("random-trees")
        assert not is_family_spec("ring:8")
        assert not is_family_spec("default:25")

    def test_iter_corpus_applies_params(self):
        entries = list(iter_corpus("hypercubes:3,seed=5,min_dim=2,max_dim=2"))
        assert len(entries) == 3
        assert all(g.n == 4 for _, g in entries)
