"""The transport-free service core: caching, canonical coordinates,
batching, metrics — and the service bench scenario."""

import random

import pytest

from repro.engine.records import record_to_json
from repro.engine.tasks import get_task
from repro.errors import (
    EngineError,
    InfeasibleGraphError,
    ReproError,
    ServiceError,
)
from repro.graphs import (
    canonical_graph,
    graph_fingerprint,
    grid_torus,
    random_tree,
    relabel_nodes,
    ring,
    to_dict,
)
from repro.service import (
    SERVICE_TASKS,
    ResultCache,
    ServiceCore,
    canonical_query_name,
)
from repro.service.api import parse_graph_payload


def relabeled(g, seed=0):
    perm = list(range(g.n))
    random.Random(seed).shuffle(perm)
    return relabel_nodes(g, perm)


@pytest.fixture()
def core():
    return ServiceCore()


@pytest.fixture()
def tree():
    return random_tree(12, seed=3)


class TestQuery:
    def test_miss_then_hit(self, core, tree):
        r1 = core.query("index", tree)
        assert not r1.cached
        r2 = core.query("index", tree)
        assert r2.cached and r2.record == r1.record

    def test_isomorphic_query_hits_with_identical_bytes(self, core, tree):
        r1 = core.query("elect", tree)
        r2 = core.query("elect", relabeled(tree, seed=5))
        assert r2.cached
        assert record_to_json(r2.record) == record_to_json(r1.record)
        assert r2.fingerprint == r1.fingerprint

    def test_record_matches_offline_engine_record(self, core, tree):
        for task in SERVICE_TASKS:
            result = core.query(task, tree)
            offline = get_task(task)(
                canonical_query_name(result.fingerprint),
                canonical_graph(tree),
            )
            assert record_to_json(result.record) == record_to_json(offline)

    def test_orbit_collapsed_elect_is_byte_identical(self, tree):
        """The default core serves ``elect`` through the orbit-collapsed
        engine; a core with the fast path off (and the cold per-node
        engine task itself) must produce the same record, byte for byte
        — cache contents are independent of the flag."""
        collapsed = ServiceCore()
        assert collapsed.orbit_collapse
        pernode = ServiceCore(orbit_collapse=False)
        r1 = core_record = collapsed.query("elect", tree)
        r2 = pernode.query("elect", tree)
        assert not r1.cached and not r2.cached
        assert record_to_json(r1.record) == record_to_json(r2.record)
        offline = get_task("elect")(
            canonical_query_name(core_record.fingerprint),
            canonical_graph(tree),
        )
        assert record_to_json(r1.record) == record_to_json(offline)

    def test_to_canonical_translates_leader(self, core, tree):
        h = relabeled(tree, seed=8)
        result = core.query("elect", h)
        leader_canonical = result.record["leader"]
        from_canonical = {
            lab: u for u, lab in enumerate(result.to_canonical)
        }
        leader_local = from_canonical[leader_canonical]
        # the translated leader is the node the offline pipeline elects
        # on the submitted labeling (elections are anonymous)
        from repro.core import run_elect

        assert run_elect(h).leader == leader_local

    def test_unknown_task_rejected_uncounted(self, core, tree):
        with pytest.raises(ServiceError, match="unknown service task"):
            core.query("messages", tree)
        assert core.metrics()["errors"] == 0

    def test_task_failure_counted_as_error(self, core):
        with pytest.raises(InfeasibleGraphError):
            core.query("elect", ring(6))
        metrics = core.metrics()
        assert metrics["errors"] == 1 and metrics["misses"] == 0

    def test_payload_shape(self, core, tree):
        payload = core.query("quotient", tree).payload()
        assert payload["task"] == "quotient"
        assert payload["name"] == canonical_query_name(payload["fingerprint"])
        assert payload["record"]["name"] == payload["name"]
        assert sorted(payload["to_canonical"]) == list(range(tree.n))

    def test_unknown_engine_task_fails_at_construction(self):
        with pytest.raises(EngineError):
            ServiceCore(tasks=("no-such-task",))


class TestBatch:
    def test_mixed_hits_misses_duplicates(self, core, tree):
        pre = core.query("index", tree)  # pre-existing cache entry
        torus = grid_torus(3, 4)
        results = core.batch(
            [
                ("index", relabeled(tree, seed=1)),  # hit (isomorphic)
                ("index", torus),  # miss
                ("index", relabeled(torus, seed=2)),  # duplicate miss
                ("quotient", torus),  # miss, different task
            ]
        )
        assert [r.cached for r in results] == [True, False, False, False]
        assert record_to_json(results[0].record) == record_to_json(pre.record)
        assert results[1].record == results[2].record
        metrics = core.metrics()
        # honest per-item accounting: the pre-query miss plus the two
        # unique cold keys are misses; the pre-existing entry's hit is
        # a memory hit and the duplicate torus item rode the one compute
        # (an inflight hit), not a second miss
        assert metrics["hits"] == 2 and metrics["misses"] == 3
        assert metrics["memory_hits"] == 1
        assert metrics["inflight_hits"] == 1

    def test_batch_records_match_single_queries(self, tree):
        batch_core, single_core = ServiceCore(), ServiceCore()
        graphs = [tree, grid_torus(3, 3), ring(7)]
        batched = batch_core.batch([("index", g) for g in graphs])
        for g, result in zip(graphs, batched):
            assert record_to_json(result.record) == record_to_json(
                single_core.query("index", g).record
            )

    def test_batch_failure_counts_errors(self, core):
        with pytest.raises(ReproError):
            core.batch([("elect", ring(6))])
        assert core.metrics()["errors"] == 1

    def test_batch_failure_still_accounts_other_items(self, core, tree):
        """A failing task group fails the whole batch, but hits stay
        hits and records computed before the failure count as misses —
        they were cached, and the next query will hit them."""
        pre = core.query("index", tree)  # 1 miss
        with pytest.raises(ReproError):
            core.batch(
                [
                    ("index", tree),  # hit
                    ("quotient", ring(6)),  # computes fine
                    ("elect", ring(6)),  # infeasible: fails the batch
                    ("elect", ring(6)),  # duplicate failing request
                ]
            )
        metrics = core.metrics()
        assert metrics["hits"] == 1
        assert metrics["errors"] == 2  # per request, not per unique graph
        # quotient either computed before elect failed (a counted miss,
        # and a cache entry the next query hits) or never ran (an error)
        quotient = metrics["tasks"]["quotient"]
        assert quotient["misses"] + quotient["errors"] == 1
        if quotient["misses"]:
            assert core.query("quotient", ring(6)).cached

    def test_batch_unknown_task_rejected_before_compute(self, core, tree):
        with pytest.raises(ServiceError):
            core.batch([("index", tree), ("nope", tree)])

    def test_cold_cache_batch_still_answers(self, tree):
        core = ServiceCore(ResultCache(capacity=0))
        results = core.batch([("index", tree), ("index", tree)])
        assert [r.cached for r in results] == [False, False]
        assert results[0].record == results[1].record


class TestBatchMetricsAccounting:
    """The honest per-item accounting the metrics sweep pinned down:
    duplicates of a cold key are one miss plus inflight hits, every item
    is charged its own latency (not the batch average), and the error
    path charges real latencies too."""

    def test_duplicate_cold_key_is_one_miss_plus_inflight_hits(self, core):
        torus = grid_torus(3, 4)
        core.batch(
            [
                ("index", torus),
                ("index", relabeled(torus, seed=1)),
                ("index", relabeled(torus, seed=2)),
            ]
        )
        metrics = core.metrics()
        assert metrics["misses"] == 1
        assert metrics["hits"] == 2 and metrics["inflight_hits"] == 2
        assert metrics["errors"] == 0

    def test_hit_latency_is_lookup_not_batch_average(self):
        """Pin the per-item charge directly: one pre-cached hit batched
        with one cold compute must record a hit latency far below the
        miss latency (the old code charged both the same average)."""
        core = ServiceCore()
        tree = random_tree(12, seed=3)
        core.query("index", tree)
        index_warmup_s = core.metrics()["tasks"]["index"]["latency_s"]
        core.batch([("index", tree), ("elect", random_tree(16, seed=7))])
        tasks = core.metrics()["tasks"]
        hit_s = tasks["index"]["latency_s"] - index_warmup_s
        miss_s = tasks["elect"]["latency_s"]
        assert tasks["index"]["hits"] == 1 and tasks["elect"]["misses"] == 1
        assert 0 < hit_s < miss_s

    def test_error_path_charges_latency(self, core, tree):
        """On a failed batch the surviving hit and the errors must carry
        nonzero latency (the old error path recorded 0.0 for all)."""
        core.query("index", tree)
        index_warmup_s = core.metrics()["tasks"]["index"]["latency_s"]
        with pytest.raises(ReproError):
            core.batch([("index", tree), ("elect", ring(6))])
        tasks = core.metrics()["tasks"]
        assert tasks["index"]["hits"] == 1 and tasks["index"]["misses"] == 1
        assert tasks["index"]["latency_s"] > index_warmup_s
        assert tasks["elect"]["errors"] == 1
        assert tasks["elect"]["latency_s"] > 0


class TestComputeLifecycle:
    def test_view_caches_cleared_after_each_query(self, core):
        """One query is the service's view-cache lifetime (the engine's
        one-chunk discipline): a long-running server must not grow the
        global intern table per distinct query graph."""
        from repro.views.view import intern_table_size

        for seed in range(4):
            core.query("elect", random_tree(14, seed=seed * 3))
        assert intern_table_size() == 0

    def test_view_caches_cleared_even_on_task_failure(self, core):
        from repro.views.view import intern_table_size

        with pytest.raises(InfeasibleGraphError):
            core.query("elect", ring(8))
        assert intern_table_size() == 0

    def test_concurrent_mixed_traffic_is_consistent(self):
        """Single queries and batches race from many threads; every
        answer must equal the serial reference (the compute lock keeps
        the global view caches coherent across request threads)."""
        import threading

        graphs = [random_tree(12 + i, seed=i) for i in range(4)]
        reference = {
            i: ServiceCore().query("elect", g).record
            for i, g in enumerate(graphs)
        }
        core = ServiceCore()
        failures = []

        def single(i):
            try:
                record = core.query("elect", graphs[i]).record
                if record != reference[i]:
                    failures.append(("single", i, record))
            except Exception as exc:  # noqa: BLE001 - collected for assert
                failures.append(("single", i, repr(exc)))

        def batch():
            try:
                results = core.batch([("elect", g) for g in graphs])
                for i, result in enumerate(results):
                    if result.record != reference[i]:
                        failures.append(("batch", i, result.record))
            except Exception as exc:  # noqa: BLE001
                failures.append(("batch", None, repr(exc)))

        threads = [
            threading.Thread(target=single, args=(i % 4,)) for i in range(8)
        ] + [threading.Thread(target=batch) for _ in range(3)]
        for t in threads:
            t.start()
        for t in threads:
            t.join(60)
        assert failures == []


class TestMetrics:
    def test_totals_sum_task_counters(self, core, tree):
        core.query("index", tree)
        core.query("index", tree)
        core.query("quotient", tree)
        metrics = core.metrics()
        assert metrics["hits"] == 1 and metrics["misses"] == 2
        assert metrics["tasks"]["index"]["hits"] == 1
        assert metrics["tasks"]["quotient"]["misses"] == 1
        assert metrics["latency_s"] > 0
        assert metrics["cache"]["memory_entries"] == 2

    def test_uptime_advances(self, core):
        assert core.metrics()["uptime_s"] >= 0


class TestGraphPayload:
    def test_plain_dict(self, tree):
        assert parse_graph_payload(to_dict(tree)) == tree

    def test_emit_envelope(self, tree):
        assert (
            parse_graph_payload({"name": "x", "graph": to_dict(tree)}) == tree
        )

    @pytest.mark.parametrize(
        "payload",
        [None, 17, [], {"edges": "nope"}, {"n": 3}, {"graph": None}],
    )
    def test_malformed_rejected(self, payload):
        with pytest.raises(ServiceError):
            parse_graph_payload(payload)

    def test_disconnected_rejected(self):
        with pytest.raises(ServiceError, match="invalid graph"):
            parse_graph_payload({"n": 4, "edges": [[0, 0, 1, 0]]})


class TestQuotientTask:
    def test_record_shape(self):
        record = get_task("quotient")("t", grid_torus(3, 3))
        assert record["feasible"] is False
        assert record["num_classes"] == 1 and record["class_sizes"] == [9]
        feasible = get_task("quotient")("t", random_tree(10, seed=1))
        assert feasible["feasible"] is True
        assert feasible["class_sizes"] == [1] * 10


def test_bench_service_scenario_quick():
    from repro.analysis.bench import SCENARIOS, make_bench_record
    from repro.analysis.bench import validate_bench_record

    cases = SCENARIOS["service"](True)
    names = [c["case"] for c in cases]
    assert names == ["cold-single", "warm-single", "cold-batch", "warm-batch"]
    by_name = {c["case"]: c for c in cases}
    for mode in ("single", "batch"):
        assert by_name[f"warm-{mode}"]["speedup_vs_cold"] > 1
    record = make_bench_record("service", cases, quick=True)
    validate_bench_record(record)


def test_bench_service_load_scenario_quick():
    """The load scenario must cover both compute modes, both cache
    temperatures and the whole concurrency sweep, with coherent latency
    stats and the speedup field the CI gate reads on the sharded cases.
    (No speedup *bar* here: on a 1-CPU box sharding measures ~1x — the
    ≥2x gate lives in CI's service-load-smoke on a multi-core runner.)"""
    from repro.analysis.bench import (
        SCENARIOS,
        make_bench_record,
        validate_bench_record,
    )

    cases = SCENARIOS["service-load"](True)
    names = [c["case"] for c in cases]
    assert names == [
        "cold-inproc-c1", "cold-inproc-c8",
        "cold-shard-c1", "cold-shard-c8",
        "warm-inproc-c1", "warm-inproc-c8",
        "warm-shard-c1", "warm-shard-c8",
    ]
    for case in cases:
        assert case["seconds"] > 0 and case["qps"] > 0
        assert 0 < case["p50_ms"] <= case["p99_ms"]
        assert case["queries"] == 16 and case["clients"] in (1, 8)
        if "shard" in case["case"]:
            assert case["shards"] >= 2
            assert case["speedup_vs_inproc"] > 0
        else:
            assert case["shards"] == 0
            assert "speedup_vs_inproc" not in case
    record = make_bench_record("service-load", cases, quick=True)
    validate_bench_record(record)


def test_bench_elect_orbit_scenario_quick():
    """The elect-orbit scenario must carry the in-run per-node
    comparison the CI gate reads, and the vertex-transitive cases must
    clear the gate's 3x bar (the quick cases are sized so even a noisy
    CI box clears it with slack — full mode measures 20-40x)."""
    from repro.analysis.bench import (
        SCENARIOS,
        make_bench_record,
        validate_bench_record,
    )

    cases = SCENARIOS["elect-orbit"](True)
    assert {c["family"] for c in cases} == {"vertex-transitive", "lifts"}
    for case in cases:
        assert case["orbits"] <= case["n"]
        assert case["speedup_vs_pernode"] > 0
        if case["family"] == "vertex-transitive":
            assert case["orbits"] == 1
            assert case["speedup_vs_pernode"] >= 3
    record = make_bench_record("elect-orbit", cases, quick=True)
    validate_bench_record(record)
