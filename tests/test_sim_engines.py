"""LOCAL-model engine tests: round semantics, COM correctness (the key
integration point: simulated view acquisition must equal the oracle's
direct computation), the paranoid message checker, and sync/async
equivalence."""

import pytest

from repro.errors import AlgorithmError, SimulationError
from repro.graphs import cycle_with_leader_gadget, lollipop, path_graph, ring
from repro.sim import (
    AsyncEngine,
    SyncEngine,
    ViewAccumulator,
    run_async,
    run_sync,
)
from repro.views import views_of_graph


class OutputDegreeAtOnce:
    """Trivial algorithm: output your degree during setup (time 0)."""

    def setup(self, ctx):
        ctx.output((0, 0))

    def compose(self, ctx):
        return None

    def deliver(self, ctx, inbox):
        pass


class ComForRounds:
    """Run COM for a fixed number of rounds, then output the empty path;
    exposes the final view for white-box checks."""

    last_views = []  # class-level capture

    def __init__(self, rounds=3):
        self._rounds = rounds
        self._acc = None

    def setup(self, ctx):
        self._acc = ViewAccumulator(ctx.degree)

    def compose(self, ctx):
        return self._acc.outgoing()

    def deliver(self, ctx, inbox):
        self._acc.absorb(inbox)
        if self._acc.depth == self._rounds and not ctx.has_output:
            ComForRounds.last_views.append(self._acc.view)
            ctx.output(())


class TestSyncEngine:
    def test_time_zero_output(self):
        result = run_sync(ring(5), OutputDegreeAtOnce)
        assert result.rounds == 0
        assert result.election_time == 0
        assert all(r == 0 for r in result.output_round.values())

    def test_com_rounds_counted(self):
        ComForRounds.last_views = []
        result = run_sync(ring(6), lambda: ComForRounds(3))
        assert result.election_time == 3
        assert result.rounds == 3

    def test_com_views_match_oracle(self):
        """After t COM rounds every node's accumulated view equals the
        directly computed B^t — the central simulation/oracle agreement."""
        for g in (ring(6), lollipop(4, 2), cycle_with_leader_gadget(7)):
            ComForRounds.last_views = []
            run_sync(g, lambda: ComForRounds(3))
            oracle = views_of_graph(g, 3)
            assert set(map(id, ComForRounds.last_views)) == set(map(id, oracle))

    def test_message_counting(self):
        g = ring(5)
        result = run_sync(g, lambda: ComForRounds(2))
        # every node sends on both ports every round until all output
        assert result.total_messages == 5 * 2 * 2
        assert result.per_round_messages == [10, 10]

    def test_max_rounds_guard(self):
        class Silent:
            def setup(self, ctx):
                pass

            def compose(self, ctx):
                return None

            def deliver(self, ctx, inbox):
                pass

        with pytest.raises(SimulationError):
            run_sync(ring(4), Silent, max_rounds=5)

    def test_double_output_rejected(self):
        class Doubler:
            def setup(self, ctx):
                ctx.output(())
                ctx.output(())

            def compose(self, ctx):
                return None

            def deliver(self, ctx, inbox):
                pass

        with pytest.raises(AlgorithmError):
            run_sync(ring(4), Doubler)

    def test_bad_port_rejected(self):
        class BadPort:
            def setup(self, ctx):
                pass

            def compose(self, ctx):
                return {99: "hello"}

            def deliver(self, ctx, inbox):
                ctx.output(())

        with pytest.raises(AlgorithmError):
            run_sync(ring(4), BadPort)

    def test_paranoid_rejects_mutable_messages(self):
        class SendsList:
            def setup(self, ctx):
                pass

            def compose(self, ctx):
                return {0: [1, 2]}

            def deliver(self, ctx, inbox):
                ctx.output(())

        with pytest.raises(AlgorithmError):
            run_sync(ring(4), SendsList, paranoid=True)
        # tuples are fine
        class SendsTuple(SendsList):
            def compose(self, ctx):
                return {0: (1, 2)}

        run_sync(ring(4), SendsTuple, paranoid=True)


class TestViewAccumulator:
    def test_initial_depth_zero(self):
        acc = ViewAccumulator(3)
        assert acc.depth == 0
        assert acc.view.degree == 3

    def test_outgoing_tags_ports(self):
        acc = ViewAccumulator(2)
        out = acc.outgoing()
        assert set(out) == {0, 1}
        assert out[1][0] == 1

    def test_absorb_rejects_missing_message(self):
        acc = ViewAccumulator(2)
        with pytest.raises(SimulationError):
            acc.absorb([None, (0, acc.view)])

    def test_absorb_rejects_depth_mismatch(self):
        acc1 = ViewAccumulator(1)
        acc2 = ViewAccumulator(1)
        acc2.absorb([(0, acc1.view)])  # acc2 now at depth 1
        with pytest.raises(SimulationError):
            acc1.absorb([(0, acc2.view)])  # depth-1 view into depth-0 round

    def test_absorb_rejects_non_view(self):
        acc = ViewAccumulator(1)
        with pytest.raises(SimulationError):
            acc.absorb([(0, "not a view")])


class TestAsyncEngine:
    @pytest.mark.parametrize("seed", [0, 1, 7])
    def test_matches_sync_outputs(self, seed):
        """The alpha-synchronizer must reproduce the synchronous outputs
        bit-for-bit under any delay schedule."""
        from repro.core import compute_advice
        from repro.core.elect import ElectAlgorithm

        g = cycle_with_leader_gadget(6)
        bundle = compute_advice(g)
        sync = run_sync(g, ElectAlgorithm, advice=bundle.bits)
        async_ = run_async(g, ElectAlgorithm, advice=bundle.bits, seed=seed)
        assert async_.outputs == sync.outputs
        assert async_.output_round == sync.output_round

    def test_com_algorithm_async(self):
        ComForRounds.last_views = []
        result = run_async(ring(6), lambda: ComForRounds(2), seed=3)
        oracle = views_of_graph(ring(6), 2)
        assert set(map(id, ComForRounds.last_views)) <= set(map(id, oracle))
        assert result.election_time == 2

    def test_setup_only_algorithm(self):
        result = run_async(ring(5), OutputDegreeAtOnce, seed=1)
        assert result.rounds == 0
