"""Lower-bound family tests: F(x) cliques and the Theorem 3.2
ring-of-cliques (Claims 3.8, 3.9's Observation, counting)."""

import itertools

import pytest

from repro.errors import GraphStructureError
from repro.lowerbounds import (
    clique_family_f,
    clique_family_size,
    gk_family_size,
    gk_graph,
    hk_graph,
    hk_params,
    shift_sequence,
)
from repro.lowerbounds.ring_of_cliques import gk_node_count
from repro.views import election_index, views_of_graph


class TestShiftSequences:
    def test_count(self):
        assert clique_family_size(3) == 8
        assert clique_family_size(4) == 81

    def test_sequences_distinct_and_in_range(self):
        seqs = {shift_sequence(3, t) for t in range(8)}
        assert len(seqs) == 8
        for seq in seqs:
            assert len(seq) == 3
            assert all(1 <= h <= 2 for h in seq)

    def test_out_of_range_rejected(self):
        with pytest.raises(GraphStructureError):
            shift_sequence(3, 8)
        with pytest.raises(GraphStructureError):
            clique_family_size(1)


class TestCliqueFamily:
    @pytest.mark.parametrize("x", [2, 3, 4])
    def test_structure(self, x):
        g = clique_family_f(x, 0)
        assert g.n == x + 1
        assert g.num_edges == (x + 1) * x // 2
        # node r (= 0) has port i toward v_i
        for i in range(x):
            v, _ = g.neighbor(0, i)
            assert v == 1 + i

    def test_members_differ_in_some_remote_port_at_r(self):
        """Claim 3.8 Case 1's engine: for distinct cliques attached
        identically, some edge {r, v_i} carries different ports at v_i."""
        x = 3
        for t1, t2 in itertools.combinations(range(clique_family_size(x)), 2):
            g1 = clique_family_f(x, t1)
            g2 = clique_family_f(x, t2)
            remote1 = [g1.neighbor(0, i)[1] for i in range(x)]
            remote2 = [g2.neighbor(0, i)[1] for i in range(x)]
            assert remote1 != remote2

    def test_depth1_views_of_r_distinct_across_family(self):
        x = 3
        views = set()
        for t in range(clique_family_size(x)):
            g = clique_family_f(x, t)
            views.add(views_of_graph(g, 1)[0])
        assert len(views) == clique_family_size(x)


class TestHkFamily:
    def test_params_smallest_valid(self):
        x = hk_params(5)
        assert clique_family_size(x) >= 5
        assert clique_family_size(x - 1) < 5 or x == 2

    @pytest.mark.parametrize("k", [3, 4, 5, 6])
    def test_claim_38_election_index_one(self, k):
        """Claim 3.8: every graph of the family has election index 1."""
        assert election_index(hk_graph(k)) == 1

    def test_gk_members_index_one(self):
        for perm in ([1, 2, 3], [3, 2, 1], [2, 3, 1]):
            assert election_index(gk_graph(4, perm)) == 1

    def test_node_count(self):
        k = 5
        g = hk_graph(k)
        assert g.n == gk_node_count(k)

    def test_ring_node_degrees(self):
        k, x = 5, hk_params(5)
        g = hk_graph(k)
        degrees = sorted(g.degree(v) for v in g.nodes())
        # k ring nodes of degree x+2; k*x clique nodes of degree x
        assert degrees.count(x + 2) == k
        assert degrees.count(x) == k * x

    def test_observation_attachment_views_equal(self):
        """The Observation in Claim 3.9's proof: the node r of the clique
        C_t has the same B^1 regardless of where on the ring the clique
        sits (ring ports are uniform)."""
        k = 5
        g1 = hk_graph(k, clique_indices=[0, 1, 2, 3, 4])
        g2 = hk_graph(k, clique_indices=[0, 2, 1, 4, 3])
        x = hk_params(k)
        stride = x + 1
        # clique 1 sits at ring slot 1 in g1 and slot 2 in g2
        r1 = 1 * stride
        r2 = 2 * stride
        assert views_of_graph(g1, 1)[r1] is views_of_graph(g2, 1)[r2]

    def test_family_count(self):
        assert gk_family_size(5) == 24

    def test_duplicate_cliques_rejected(self):
        with pytest.raises(GraphStructureError):
            hk_graph(4, clique_indices=[0, 1, 1, 2])

    def test_bad_permutation_rejected(self):
        with pytest.raises(GraphStructureError):
            gk_graph(4, [1, 2, 4])
