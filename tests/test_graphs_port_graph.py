"""Unit tests for PortGraph and PortGraphBuilder."""

import pytest

from repro.errors import (
    FrozenGraphError,
    GraphStructureError,
    PortNumberingError,
)
from repro.graphs import PortGraph, PortGraphBuilder, ring


def triangle():
    b = PortGraphBuilder(3)
    b.add_edge(0, 0, 1, 0)
    b.add_edge(1, 1, 2, 0)
    b.add_edge(2, 1, 0, 1)
    return b.build()


class TestBuilderBasics:
    def test_counts(self):
        g = triangle()
        assert g.n == 3
        assert g.num_edges == 3
        assert all(g.degree(v) == 2 for v in g.nodes())

    def test_neighbor_reciprocity(self):
        g = triangle()
        for u in g.nodes():
            for p in range(g.degree(u)):
                v, q = g.neighbor(u, p)
                back, back_port = g.neighbor(v, q)
                assert back == u
                assert back_port == p

    def test_add_nodes_returns_ids(self):
        b = PortGraphBuilder()
        ids = b.add_nodes(4)
        assert ids == [0, 1, 2, 3]
        assert b.add_node() == 4

    def test_auto_ports_are_smallest_free(self):
        b = PortGraphBuilder(3)
        assert b.add_edge_auto(0, 1) == (0, 0)
        assert b.add_edge_auto(0, 2) == (1, 0)
        assert b.add_edge_auto(1, 2) == (1, 1)
        g = b.build()
        assert g.degree(0) == 2

    def test_copy_in_preserves_ports(self):
        g = triangle()
        b = PortGraphBuilder()
        t = b.copy_in(g)
        b2 = PortGraphBuilder()
        t2 = b2.copy_in(g)
        assert t == [0, 1, 2]
        g2 = b.build()
        assert g2 == g  # same adjacency including ports

    def test_builder_frozen_after_build(self):
        b = PortGraphBuilder(2)
        b.add_edge(0, 0, 1, 0)
        b.build()
        with pytest.raises(FrozenGraphError):
            b.add_node()


class TestBuilderValidation:
    def test_rejects_self_loop(self):
        b = PortGraphBuilder(2)
        with pytest.raises(GraphStructureError):
            b.add_edge(0, 0, 0, 1)

    def test_rejects_parallel_edge(self):
        b = PortGraphBuilder(2)
        b.add_edge(0, 0, 1, 0)
        with pytest.raises(GraphStructureError):
            b.add_edge(0, 1, 1, 1)

    def test_rejects_port_reuse(self):
        b = PortGraphBuilder(3)
        b.add_edge(0, 0, 1, 0)
        with pytest.raises(PortNumberingError):
            b.add_edge(0, 0, 2, 0)

    def test_rejects_negative_port(self):
        b = PortGraphBuilder(2)
        with pytest.raises(PortNumberingError):
            b.add_edge(0, -1, 1, 0)

    def test_rejects_port_gap(self):
        b = PortGraphBuilder(3)
        b.add_edge(0, 0, 1, 1, )
        b.add_edge(1, 0, 2, 0)
        # node 1 has ports {0, 1} ok; now give node 2 a gap
        b.add_edge(0, 1, 2, 2)  # node 2 has ports {0, 2}: port 1 missing
        with pytest.raises(PortNumberingError):
            b.build()

    def test_rejects_disconnected(self):
        b = PortGraphBuilder(4)
        b.add_edge(0, 0, 1, 0)
        b.add_edge(2, 0, 3, 0)
        with pytest.raises(GraphStructureError):
            b.build()
        # but allowed when explicitly requested
        b2 = PortGraphBuilder(4)
        b2.add_edge(0, 0, 1, 0)
        b2.add_edge(2, 0, 3, 0)
        g = b2.build(require_connected=False)
        assert not g.is_connected()

    def test_min_nodes(self):
        b = PortGraphBuilder(2)
        b.add_edge(0, 0, 1, 0)
        with pytest.raises(GraphStructureError):
            b.build(min_nodes=3)

    def test_rejects_unknown_node(self):
        b = PortGraphBuilder(2)
        with pytest.raises(GraphStructureError):
            b.add_edge(0, 0, 5, 0)

    def test_direct_instantiation_forbidden(self):
        with pytest.raises(TypeError):
            PortGraph([[(1, 0)], [(0, 0)]])


class TestDistances:
    def test_ring_distances(self):
        g = ring(8)
        dist = g.bfs_distances(0)
        assert dist[4] == 4
        assert dist[1] == 1
        assert g.diameter() == 4
        assert g.eccentricity(3) == 4

    def test_distance_symmetry(self):
        g = ring(7)
        for u in g.nodes():
            for v in g.nodes():
                assert g.distance(u, v) == g.distance(v, u)

    def test_port_to(self):
        g = triangle()
        assert g.port_to(0, 1) == 0
        assert g.port_to(1, 0) == 0
        with pytest.raises(GraphStructureError):
            ring(5).port_to(0, 2)


class TestFollowPortPath:
    def test_valid_path(self):
        g = ring(5)
        # from 0 clockwise two steps: (0,1),(0,1)
        nodes = g.follow_port_path(0, [(0, 1), (0, 1)])
        assert nodes == [0, 1, 2]

    def test_wrong_remote_port_rejected(self):
        g = ring(5)
        with pytest.raises(GraphStructureError):
            g.follow_port_path(0, [(0, 0)])

    def test_nonexistent_port_rejected(self):
        g = ring(5)
        with pytest.raises(PortNumberingError):
            g.follow_port_path(0, [(7, 0)])


class TestEqualityHash:
    def test_equal_graphs(self):
        assert triangle() == triangle()
        assert hash(triangle()) == hash(triangle())

    def test_unequal_ports(self):
        b = PortGraphBuilder(3)
        b.add_edge(0, 1, 1, 0)  # swapped port at node 0
        b.add_edge(1, 1, 2, 0)
        b.add_edge(2, 1, 0, 0)
        assert b.build() != triangle()
