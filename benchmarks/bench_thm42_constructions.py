"""E4.2 — Theorem 4.2's lower-bound machinery (Figures 3-8): the S_0
family, the lock transformation with pruned views, and the merge.

The theorem's full tower of families is astronomically large (see
DESIGN.md); what is machine-checkable — and checked here — is every
structural invariant on the base family and one merge level:

* Claim 4.1: S_0 members have election index 1;
* Claim 4.2: pruned-view replacement preserves B^{l-1} at the central
  node (verified exactly in the tests; here we verify the derived
  property 9 on the merged graph);
* property 9: principal-node views of the merged graph coincide with the
  original members' to the fooling depth — the pair that forces distinct
  advice per family (property 7).
"""

from repro.analysis import format_table
from repro.lowerbounds import MergeParams, S0Params, merge_graphs, s0_graph
from repro.views import election_index, views_of_graph

from benchmarks.conftest import emit


def test_table_thm42(benchmark):
    params = S0Params(alpha=1, c=2)
    members = [s0_graph(params, i) for i in range(3)]
    rows = []
    for i, m in enumerate(members):
        g = m.graph
        rows.append(
            (
                f"S0[{i}]",
                g.n,
                election_index(g),
                g.diameter(),
                g.distance(m.left_principal, m.right_principal),
            )
        )

    merge_params = MergeParams(pruned_depth=3, clique_base=40, chain_len=4)
    q = merge_graphs(members[0], members[1], merge_params)
    rows.append(
        (
            "merge(S0[0],S0[1])",
            q.graph.n,
            election_index(q.graph),
            q.graph.diameter(),
            q.graph.distance(q.left_principal, q.right_principal),
        )
    )
    emit(
        "thm42_constructions",
        "Theorem 4.2 families: S_0 members and one merge (demo parameters; "
        "paper: phi <= B(k,c), principals at diameter distance)",
        format_table(["graph", "n", "phi", "D", "dist(principals)"], rows),
    )

    # property 9 on the merged graph: the fooling views
    left = members[0]
    depth_budget = (
        left.graph.distance(left.left_principal, left.right_lock.central)
        + merge_params.pruned_depth
        - 1
    )
    assert (
        views_of_graph(left.graph, depth_budget)[left.left_principal]
        is views_of_graph(q.graph, depth_budget)[q.left_principal]
    )

    benchmark(
        lambda: merge_graphs(members[0], members[1], merge_params).graph.n
    )


def test_table_thm42_counting(benchmark):
    """The four parts' counting arguments evaluated exactly: k* families
    with election index <= alpha force ~log k* bits; the paper's targets
    are Omega(log alpha), Omega(loglog alpha), Omega(logloglog alpha),
    Omega(log log* alpha)."""
    from repro.lowerbounds import thm42_lower_bound_bits

    alphas = {
        1: (10**3, 10**6, 10**9),
        2: (10**3, 10**6, 10**9),
        3: (10**6, 10**20, 10**160),  # logloglog needs astronomical alpha
        4: (10**3, 10**6, 10**9),
    }
    rows = []
    for part in (1, 2, 3, 4):
        for alpha in alphas[part]:
            d = thm42_lower_bound_bits(alpha, c=2, part=part)
            rows.append(
                (
                    part,
                    f"1e{len(str(alpha)) - 1}",
                    d["k_star"],
                    d["forced_bits"],
                    round(d["comparator"], 2),
                    round(d["ratio"], 3),
                )
            )
    emit(
        "thm42_counting",
        "Theorem 4.2: forced advice bits per part (exact k* counting vs "
        "the paper's Omega comparator)",
        format_table(
            ["part", "alpha", "k*", "forced bits", "comparator", "ratio"], rows
        ),
    )
    # within each part the forced bits are non-decreasing in alpha
    by_part = {}
    for part, _, _, forced, _, _ in rows:
        by_part.setdefault(part, []).append(forced)
    for seq in by_part.values():
        assert seq == sorted(seq)

    benchmark(lambda: thm42_lower_bound_bits(10**6, part=1)["k_star"])
