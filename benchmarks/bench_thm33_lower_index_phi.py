"""E3.3 — Theorem 3.3 lower bound (Figure 2): k-necklaces of election
index phi force Omega(n (log log n)^2 / log n) bits.

Table: family size (x+1)^{k-3}, forced bits, the paper's comparator; plus
machine verification of Claim 3.10 (index exactly phi) and the
Observation (leaf views coincide across codes) on small members.
"""

from repro.analysis import format_table
from repro.lowerbounds import necklace, thm33_lower_bound_bits
from repro.views import election_index, views_of_graph

from benchmarks.conftest import emit


def test_table_thm33(benchmark):
    phi = 3
    rows = []
    for k, x in ((8, 4), (32, 4), (128, 5), (512, 6)):
        d = thm33_lower_bound_bits(k, phi=phi, x=x)
        rows.append(
            (
                d["k"],
                d["x"],
                d["phi"],
                d["n"],
                f"(x+1)^(k-3) ~ 2^{d['advice_bits_forced']}",
                d["advice_bits_forced"],
                round(d["comparator"], 1),
                round(d["ratio"], 3),
            )
        )
    emit(
        "thm33_lower_index_phi",
        "Theorem 3.3: forced advice for election in time phi on N_k "
        "(paper: Omega(n (lglg n)^2 / lg n))",
        format_table(
            ["k", "x", "phi", "n", "family", "forced bits", "comparator", "ratio"],
            rows,
        ),
    )
    ratios = [r[-1] for r in rows]
    assert min(ratios) > 0.05

    benchmark(lambda: election_index(necklace(5, phi)))


def test_claim310_and_observation(benchmark):
    def check():
        phi = 3
        g1, l1 = necklace(5, phi, code=[0, 1, 3, 0], with_layout=True)
        g2, l2 = necklace(5, phi, code=[0, 2, 0, 0], with_layout=True)
        assert election_index(g1) == phi
        assert election_index(g2) == phi
        # leaves coincide across codes at depth phi (the Observation) ...
        assert (
            views_of_graph(g1, phi)[l1.left_leaf]
            is views_of_graph(g2, phi)[l2.left_leaf]
        )
        # ... and within one graph they collide strictly below phi
        assert (
            views_of_graph(g1, phi - 1)[l1.left_leaf]
            is views_of_graph(g1, phi - 1)[l1.right_leaf]
        )
        return True

    assert benchmark(check)
