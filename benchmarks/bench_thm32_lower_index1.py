"""E3.2 — Theorem 3.2 lower bound (Figure 1): the ring-of-cliques family
G_k has election index 1 and forces Omega(n log log n) bits of advice.

Regenerates the counting argument as a table: for growing k, the family
size (k-1)!, the advice bits any algorithm is forced to use on some
member, and the paper's n log log n comparator.  Also machine-verifies the
structural claims (phi = 1, the Observation's view equality) on small
members.
"""

from repro.analysis import format_table
from repro.lowerbounds import hk_graph, thm32_lower_bound_bits
from repro.lowerbounds.ring_of_cliques import hk_params
from repro.views import election_index, views_of_graph

from benchmarks.conftest import emit


def test_table_thm32(benchmark):
    rows = []
    for k in (8, 16, 64, 256, 1024, 4096):
        d = thm32_lower_bound_bits(k)
        rows.append(
            (
                d["k"],
                d["x"],
                d["n"],
                f"(k-1)! ~ 2^{d['advice_bits_forced']}",
                d["advice_bits_forced"],
                round(d["n_loglog_n"], 1),
                round(d["ratio"], 3),
            )
        )
    emit(
        "thm32_lower_index1",
        "Theorem 3.2: forced advice for election in time 1 on G_k "
        "(paper: Omega(n log log n))",
        format_table(
            ["k", "x", "n", "family", "forced bits", "n lglg n", "ratio"], rows
        ),
    )
    # the ratio forced-bits / (n log log n) must not vanish as k grows
    ratios = [thm32_lower_bound_bits(k)["ratio"] for k in (64, 1024, 4096)]
    assert min(ratios) > 0.05

    # structural verification on a concrete member
    g = hk_graph(8)
    assert election_index(g) == 1

    benchmark(lambda: election_index(hk_graph(12)))


def test_observation_views(benchmark):
    """Claim 3.9's Observation: attachment nodes of the same clique have
    equal depth-1 views across family members — the fooling mechanism."""

    def check():
        k = 6
        g1 = hk_graph(k, clique_indices=[0, 1, 2, 3, 4, 5])
        g2 = hk_graph(k, clique_indices=[0, 3, 2, 5, 4, 1])
        stride = hk_params(k) + 1
        v1 = views_of_graph(g1, 1)
        v2 = views_of_graph(g2, 1)
        # clique 3 sits at slot 3 in g1 and slot 1 in g2
        assert v1[3 * stride] is v2[1 * stride]
        return True

    assert benchmark(check)
