"""E-msg — message complexity of the election algorithms.

The paper bounds time only; here we account for what COM actually ships.
A COM message carries an augmented truncated view, charged at its
hash-consed DAG size (each distinct subview serialized once).  The table
contrasts the three upper-bound algorithms on one graph: Elect stops the
exchange at depth phi, so its information cost is tiny; Generic and
KnownDPhi pay for D extra rounds of ever-deeper views — the *information*
price of using less advice."""

from repro.analysis import format_table
from repro.core import compute_advice
from repro.core.elect import ElectAlgorithm
from repro.core.elections import election_advice, make_election_algorithm
from repro.core.known_d_phi import KnownDPhiAlgorithm, known_d_phi_advice
from repro.lowerbounds import necklace
from repro.sim import run_sync
from repro.sim.trace import Tracer
from repro.views import election_index

from benchmarks.conftest import emit


def _run_traced(g, factory, advice):
    tracer = Tracer()
    result = run_sync(g, factory, advice=advice, tracer=tracer, max_rounds=200)
    return result, tracer


def test_table_message_complexity(benchmark):
    phi = 3
    g = necklace(4, phi)
    d = g.diameter()

    bundle = compute_advice(g)
    rows = []
    for name, factory, advice in (
        ("Elect (time phi)", ElectAlgorithm, bundle.bits),
        (
            "Election1 (time <= D+phi+c)",
            make_election_algorithm(1),
            election_advice(phi, 1),
        ),
        ("KnownDPhi (time D+phi)", KnownDPhiAlgorithm, known_d_phi_advice(d, phi)),
    ):
        result, tracer = _run_traced(g, factory, advice)
        s = tracer.summary()
        rows.append(
            (
                name,
                len(advice),
                result.election_time,
                s["messages"],
                s["cost_dag_nodes"],
                s["max_view_depth"],
            )
        )
    emit(
        "message_complexity",
        f"Message complexity on a necklace (n={g.n}, phi={phi}, D={d}): "
        "advice bits vs information shipped",
        format_table(
            ["algorithm", "advice bits", "rounds", "messages",
             "cost (DAG nodes)", "max view depth"],
            rows,
        ),
    )
    # Elect ships far less information than the long-running algorithms
    elect_cost = rows[0][4]
    assert all(elect_cost < other[4] for other in rows[1:])

    benchmark(lambda: _run_traced(g, ElectAlgorithm, bundle.bits)[0].rounds)
