"""E-msg — message complexity of the election algorithms.

The paper bounds time only; here we account for what COM actually ships.
A COM message carries an augmented truncated view, charged at its
hash-consed DAG size (each distinct subview serialized once).  The table
contrasts the three upper-bound algorithms per graph: Elect stops the
exchange at depth phi, so its information cost is tiny; Generic and
KnownDPhi pay for D extra rounds of ever-deeper views — the *information*
price of using less advice.

The traced triple-run is the engine's ``messages`` task, so the
comparison fans out over a whole necklace corpus (one record per graph,
three algorithm sub-records each) instead of a single hand-picked
instance."""

from repro.analysis import format_table
from repro.core import compute_advice
from repro.core.elect import ElectAlgorithm
from repro.engine import run_experiments
from repro.lowerbounds import necklace
from repro.sim import run_sync
from repro.sim.trace import Tracer

from benchmarks.conftest import emit

ALGO_LABELS = {
    "elect": "Elect (time phi)",
    "election1": "Election1 (time <= D+phi+c)",
    "known_d_phi": "KnownDPhi (time D+phi)",
}


def test_table_message_complexity(benchmark):
    corpus = [
        (f"necklace-{k}-phi{phi}", necklace(k, phi))
        for k, phi in ((4, 2), (4, 3), (6, 3))
    ]
    records = run_experiments(corpus, task="messages", chunk_size=1)
    rows = []
    for rec in records:
        for algo in rec["algorithms"]:
            rows.append(
                (
                    rec["name"],
                    ALGO_LABELS[algo["algorithm"]],
                    algo["advice_bits"],
                    algo["rounds"],
                    algo["messages"],
                    algo["cost_dag_nodes"],
                    algo["max_view_depth"],
                )
            )
    emit(
        "message_complexity",
        "Message complexity across necklaces: advice bits vs information "
        "shipped (DAG-node cost per algorithm)",
        format_table(
            ["graph", "algorithm", "advice bits", "rounds", "messages",
             "cost (DAG nodes)", "max view depth"],
            rows,
        ),
    )
    # Elect ships far less information than the long-running algorithms,
    # on every graph of the corpus
    for rec in records:
        costs = {a["algorithm"]: a["cost_dag_nodes"] for a in rec["algorithms"]}
        assert costs["elect"] < costs["election1"]
        assert costs["elect"] < costs["known_d_phi"]

    g = necklace(4, 3)
    bundle = compute_advice(g)

    def _traced_elect():
        tracer = Tracer()
        return run_sync(
            g, ElectAlgorithm, advice=bundle.bits, tracer=tracer,
            max_rounds=200,
        ).rounds

    benchmark(_traced_elect)
