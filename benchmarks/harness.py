#!/usr/bin/env python
"""Thin wrapper over :mod:`repro.analysis.bench` — the perf harness.

Run named perf scenarios and emit canonical ``BENCH_<scenario>.json``
records (schema ``repro-bench/1``) under ``benchmarks/out/``::

    PYTHONPATH=src python benchmarks/harness.py --quick
    PYTHONPATH=src python benchmarks/harness.py --scenario refinement,sweep
    PYTHONPATH=src python benchmarks/harness.py --check benchmarks/out

Equivalent to the installed ``repro bench`` subcommand.  The recorded
seed-implementation baseline lives in ``benchmarks/baseline_seed.json``;
re-measure it (on a reference checkout) with::

    PYTHONPATH=src python benchmarks/harness.py \
        --record-baseline benchmarks/baseline_seed.json
"""

from __future__ import annotations

import sys

if __name__ == "__main__":
    from repro.analysis.bench import main

    sys.exit(main())
