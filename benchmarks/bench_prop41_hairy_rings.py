"""E4.3 — Proposition 4.1 (Figure 9): constant advice never suffices.

The fooling construction, measured: for the master graph G assembled from
gamma-stretches of c hairy rings, the foci deep inside each stretch carry
views identical (to depth T) to nodes of the original rings — so an
algorithm whose advice only distinguishes c cases commits to a too-short
path at two far-apart foci and elects two different leaders.

The table reports, per component ring H_j: the depth T up to which the
focus is fooled, and the distance between two foci sharing a view —
which exceeds any path length the fooled algorithm can output.
"""

from repro.analysis import format_table
from repro.lowerbounds import gamma_stretch, hairy_ring, prop41_fooling_graph
from repro.views import is_feasible, views_of_graph

from benchmarks.conftest import emit

FAMILIES = [[1, 2, 0, 3, 0], [0, 1, 3, 0, 2], [2, 0, 0, 4, 1]]


def test_table_prop41(benchmark):
    gamma = 8
    g, layout = prop41_fooling_graph(FAMILIES, gamma=gamma, with_layout=True)
    assert is_feasible(g)  # the master graph is itself in the class H

    t = 4  # fooling depth for these component sizes
    g_views = views_of_graph(g, t)
    rows = []
    for j, (sizes, starts) in enumerate(
        zip(FAMILIES, layout.stretch_copy_starts)
    ):
        h = hairy_ring(sizes)
        h_views = views_of_graph(h, t)
        focus_a = starts[gamma // 2 - 1]
        focus_b = starts[gamma // 2 + 1]
        fooled_a = g_views[focus_a] is h_views[0]
        fooled_b = g_views[focus_b] is h_views[0]
        assert fooled_a and fooled_b
        rows.append(
            (
                f"H_{j}",
                h.n,
                t,
                g.distance(focus_a, focus_b),
                "yes" if (fooled_a and fooled_b) else "NO",
            )
        )
    emit(
        "prop41_hairy_rings",
        "Proposition 4.1: fooling foci in the master graph "
        f"(n = {g.n}, gamma = {gamma}; both foci see the original ring)",
        format_table(
            ["component", "|H_j|", "fooling depth T", "dist(foci)", "fooled"],
            rows,
        ),
    )

    benchmark(lambda: views_of_graph(g, t)[0])
