"""E-scale — the Theorem 3.1 pipeline at four-digit n.

The small-n corpus establishes correctness; this bench establishes that
the O(n log n) envelope and the oracle's near-linear running time hold as
n grows by two orders of magnitude, and that the end-to-end simulation
(n nodes exchanging views) stays tractable.  The normalized constant
bits/(n lg n) must be non-increasing with n (convergence toward the
asymptotic constant).

Both sweeps run through :mod:`repro.engine` (the ``advice`` and ``elect``
tasks), so the per-chunk view-cache lifecycle bounds memory even at the
largest instances, and extra workers can be thrown at the corpus with
``run_experiments(..., workers=N)`` without changing a single record."""

from repro.analysis import format_table
from repro.core import run_elect
from repro.engine import run_experiments
from repro.lowerbounds import hk_graph, necklace

from benchmarks.conftest import emit


def test_scale_advice(benchmark):
    corpus = [(f"hk-{k}", hk_graph(k)) for k in (16, 64, 256)] + [
        (f"necklace-{k}-phi{phi}", necklace(k, phi, x=4))
        for k, phi in ((32, 2), (64, 3))
    ]
    records = run_experiments(corpus, task="advice", chunk_size=1)
    rows = [
        (r["name"], r["n"], r["m"], r["advice_bits"],
         round(r["bits_per_n_bitlength"], 2))
        for r in records
    ]
    emit(
        "scale_advice",
        "Scale: ComputeAdvice at four-digit n (envelope constant must not "
        "grow)",
        format_table(["graph", "n", "m", "advice bits", "bits/(n lg n)"], rows),
    )
    ratios = [r["bits_per_n_bitlength"] for r in records[:3]]
    assert ratios == sorted(ratios, reverse=True)

    small = [("hk-64", hk_graph(64))]
    benchmark(
        lambda: run_experiments(small, task="advice")[0]["advice_bits"]
    )


def test_scale_end_to_end(benchmark):
    """Full oracle + n-node simulation + verification at n ≈ 500."""
    g = hk_graph(100)
    records = run_experiments([("hk-100", g)], task="elect", chunk_size=1)
    rec = records[0]
    assert rec["n"] == g.n and rec["election_time"] == rec["phi"]
    emit(
        "scale_end_to_end",
        "Scale: full Elect pipeline",
        format_table(
            ["n", "phi", "advice bits", "time", "messages"],
            [(rec["n"], rec["phi"], rec["advice_bits"], rec["election_time"],
              rec["total_messages"])],
        ),
    )

    small = hk_graph(24)
    benchmark(lambda: run_elect(small).leader)
