"""E-scale — the Theorem 3.1 pipeline at four-digit n.

The small-n corpus establishes correctness; this bench establishes that
the O(n log n) envelope and the oracle's near-linear running time hold as
n grows by two orders of magnitude, and that the end-to-end simulation
(n nodes exchanging views) stays tractable.  The normalized constant
bits/(n lg n) must be non-increasing with n (convergence toward the
asymptotic constant)."""

from repro.analysis import format_table
from repro.core import compute_advice, run_elect
from repro.lowerbounds import hk_graph, necklace

from benchmarks.conftest import emit


def test_scale_advice(benchmark):
    rows = []
    ratios = []
    for k in (16, 64, 256):
        g = hk_graph(k)
        bundle = compute_advice(g)
        ratio = bundle.size_bits / (g.n * max(1, (g.n).bit_length()))
        ratios.append(ratio)
        rows.append((f"hk-{k}", g.n, g.num_edges, bundle.size_bits, round(ratio, 2)))
    for k, phi in ((32, 2), (64, 3)):
        g = necklace(k, phi, x=4)
        bundle = compute_advice(g)
        ratio = bundle.size_bits / (g.n * max(1, (g.n).bit_length()))
        rows.append(
            (f"necklace-{k}-phi{phi}", g.n, g.num_edges, bundle.size_bits,
             round(ratio, 2))
        )
    emit(
        "scale_advice",
        "Scale: ComputeAdvice at four-digit n (envelope constant must not "
        "grow)",
        format_table(["graph", "n", "m", "advice bits", "bits/(n lg n)"], rows),
    )
    assert ratios == sorted(ratios, reverse=True)

    benchmark(lambda: compute_advice(hk_graph(64)).size_bits)


def test_scale_end_to_end(benchmark):
    """Full oracle + n-node simulation + verification at n ≈ 500."""
    g = hk_graph(100)
    rec = run_elect(g)
    assert rec.n == g.n and rec.election_time == rec.phi
    emit(
        "scale_end_to_end",
        "Scale: full Elect pipeline",
        format_table(
            ["n", "phi", "advice bits", "time", "messages"],
            [(rec.n, rec.phi, rec.advice_bits, rec.election_time,
              rec.total_messages)],
        ),
    )

    small = hk_graph(24)
    benchmark(lambda: run_elect(small).leader)
