"""E-scale — the Theorem 3.1 pipeline at four-digit n.

The small-n corpus establishes correctness; this bench establishes that
the O(n log n) envelope and the oracle's near-linear running time hold as
n grows by two orders of magnitude, and that the end-to-end simulation
(n nodes exchanging views) stays tractable.  The normalized constant
bits/(n lg n) must be non-increasing with n (convergence toward the
asymptotic constant).

Both sweeps run through the engine's *streaming* path
(:func:`repro.engine.run_stream`): graphs are generated lazily and
records consumed as they arrive, so the per-chunk view-cache lifecycle
bounds memory even at the largest instances, and extra workers can be
thrown at the corpus without changing a single record.  The registry
sweep at the bottom drives a four-digit-entry corpus family through a
persistent store — the "sweep service" configuration of ``repro sweep
--out``."""

import os

from repro.analysis import format_table
from repro.analysis.sweep import sweep_to_store
from repro.corpus import iter_corpus
from repro.core import run_elect
from repro.engine import EngineConfig, ResultStore, run_stream
from repro.lowerbounds import hk_graph, necklace

from benchmarks.conftest import OUT_DIR, emit


def test_scale_advice(benchmark):
    def corpus_stream():
        # built lazily: at these sizes even holding all five graphs at
        # once is measurable, and the stream path only ever holds a chunk
        for k in (16, 64, 256):
            yield f"hk-{k}", hk_graph(k)
        for k, phi in ((32, 2), (64, 3)):
            yield f"necklace-{k}-phi{phi}", necklace(k, phi, x=4)

    records = list(
        run_stream(corpus_stream(), "advice", EngineConfig(chunk_size=1))
    )
    rows = [
        (r["name"], r["n"], r["m"], r["advice_bits"],
         round(r["bits_per_n_bitlength"], 2))
        for r in records
    ]
    emit(
        "scale_advice",
        "Scale: ComputeAdvice at four-digit n (envelope constant must not "
        "grow)",
        format_table(["graph", "n", "m", "advice bits", "bits/(n lg n)"], rows),
    )
    ratios = [r["bits_per_n_bitlength"] for r in records[:3]]
    assert ratios == sorted(ratios, reverse=True)

    benchmark(
        lambda: next(
            run_stream(iter([("hk-64", hk_graph(64))]), "advice",
                       EngineConfig())
        )["advice_bits"]
    )


def test_scale_end_to_end(benchmark):
    """Full oracle + n-node simulation + verification at n ≈ 500."""
    g = hk_graph(100)
    rec = next(
        run_stream(iter([("hk-100", g)]), "elect", EngineConfig(chunk_size=1))
    )
    assert rec["n"] == g.n and rec["election_time"] == rec["phi"]
    emit(
        "scale_end_to_end",
        "Scale: full Elect pipeline",
        format_table(
            ["n", "phi", "advice bits", "time", "messages"],
            [(rec["n"], rec["phi"], rec["advice_bits"], rec["election_time"],
              rec["total_messages"])],
        ),
    )

    small = hk_graph(24)
    benchmark(lambda: run_elect(small).leader)


def test_scale_streamed_registry_sweep(benchmark):
    """A 1000-entry registry corpus through the resumable store path —
    the configuration a long `repro sweep --out` run uses, at bench scale.
    Peak corpus residency is one chunk; the store ends with one record
    per entry and resuming it is a no-op."""
    spec = "vertex-transitive:1000,seed=11"
    path = os.fspath(OUT_DIR / "scale_streamed_registry.jsonl")
    OUT_DIR.mkdir(exist_ok=True)
    with ResultStore(path) as store:
        ran, skipped = sweep_to_store(
            iter_corpus(spec), "index", store, workers=2
        )
    assert (ran, skipped) == (1000, 0)
    with ResultStore(path, resume=True) as store:
        ran, skipped = sweep_to_store(iter_corpus(spec), "index", store)
    assert (ran, skipped) == (0, 1000)
    emit(
        "scale_streamed_registry",
        "Scale: streamed 1000-graph registry sweep (index task, resumable "
        "store)",
        f"spec = {spec}\nrecords = 1000 (resume is a no-op)\n"
        f"store = {path}",
    )

    benchmark(
        lambda: sum(
            1
            for _ in run_stream(
                iter_corpus("vertex-transitive:50,seed=11"), "index",
                EngineConfig(),
            )
        )
    )
