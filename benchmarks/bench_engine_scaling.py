"""E-engine — simulator throughput: rounds/second and messages/second of
the synchronous LOCAL engine under COM workloads, across topologies.

Not a paper table; this is the substrate-health bench that keeps the
simulator honest as the library grows (the per-round cost must stay
O(m) thanks to view interning)."""

import pytest

from repro.analysis import format_table
from repro.graphs import grid_torus, random_regular, ring
from repro.sim import ViewAccumulator, run_sync

from benchmarks.conftest import emit


class ComRounds:
    def __init__(self, rounds):
        self._rounds = rounds
        self._acc = None

    def setup(self, ctx):
        self._acc = ViewAccumulator(ctx.degree)

    def compose(self, ctx):
        return self._acc.outgoing()

    def deliver(self, ctx, inbox):
        self._acc.absorb(inbox)
        if self._acc.depth == self._rounds and not ctx.has_output:
            ctx.output(())


TOPOLOGIES = {
    "ring-200": lambda: ring(200),
    "torus-10x10": lambda: grid_torus(10, 10),
    "random-regular-100-4": lambda: random_regular(100, 4, seed=3),
}


@pytest.mark.parametrize("name", sorted(TOPOLOGIES))
def test_engine_com_rounds(benchmark, name):
    g = TOPOLOGIES[name]()
    rounds = 10
    result = benchmark(lambda: run_sync(g, lambda: ComRounds(rounds)))
    assert result.rounds == rounds


def test_engine_summary_table(benchmark):
    rows = []
    for name in sorted(TOPOLOGIES):
        g = TOPOLOGIES[name]()
        result = run_sync(g, lambda: ComRounds(10))
        rows.append((name, g.n, g.num_edges, result.rounds, result.total_messages))
    emit(
        "engine_scaling",
        "Engine: COM workload sizes (10 rounds to full output)",
        format_table(["topology", "n", "m", "rounds", "messages"], rows),
    )
    benchmark(lambda: run_sync(ring(60), lambda: ComRounds(5)).rounds)
