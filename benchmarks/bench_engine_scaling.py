"""E-engine — engine throughput, on both engines of the repository:

* simulator throughput: rounds/second and messages/second of the
  synchronous LOCAL engine under COM workloads, across topologies;
* experiment-engine scaling: wall clock of the same Theorem 3.1 sweep at
  1, 2 and 4 worker processes — through the *streaming* entry point
  (``run_stream``), so the bench also covers the bounded-window parallel
  path — with the determinism contract (parallel records byte-identical
  to serial) asserted on every run.

Not a paper table; this is the substrate-health bench that keeps the
simulators honest as the library grows (the per-round cost must stay
O(m) thanks to view interning, and the sweep must scale with cores)."""

import time

import pytest

from repro.analysis import format_table
from repro.analysis.sweep import corpus_with_phi
from repro.engine import (
    EngineConfig,
    available_parallelism,
    records_to_jsonl,
    run_stream,
)
from repro.graphs import grid_torus, random_regular, ring
from repro.sim import ViewAccumulator, run_sync

from benchmarks.conftest import emit


class ComRounds:
    def __init__(self, rounds):
        self._rounds = rounds
        self._acc = None

    def setup(self, ctx):
        self._acc = ViewAccumulator(ctx.degree)

    def compose(self, ctx):
        return self._acc.outgoing()

    def deliver(self, ctx, inbox):
        self._acc.absorb(inbox)
        if self._acc.depth == self._rounds and not ctx.has_output:
            ctx.output(())


TOPOLOGIES = {
    "ring-200": lambda: ring(200),
    "torus-10x10": lambda: grid_torus(10, 10),
    "random-regular-100-4": lambda: random_regular(100, 4, seed=3),
}


@pytest.mark.parametrize("name", sorted(TOPOLOGIES))
def test_engine_com_rounds(benchmark, name):
    g = TOPOLOGIES[name]()
    rounds = 10
    result = benchmark(lambda: run_sync(g, lambda: ComRounds(rounds)))
    assert result.rounds == rounds


def test_engine_summary_table(benchmark):
    rows = []
    for name in sorted(TOPOLOGIES):
        g = TOPOLOGIES[name]()
        result = run_sync(g, lambda: ComRounds(10))
        rows.append((name, g.n, g.num_edges, result.rounds, result.total_messages))
    emit(
        "engine_scaling",
        "Engine: COM workload sizes (10 rounds to full output)",
        format_table(["topology", "n", "m", "rounds", "messages"], rows),
    )
    benchmark(lambda: run_sync(ring(60), lambda: ComRounds(5)).rounds)


# ----------------------------------------------------------------------
# experiment-engine scaling: the parallel sweep
# ----------------------------------------------------------------------
def _large_corpus():
    """The heaviest phi-controlled corpus the bench budget allows: the full
    Theorem 3.1 pipeline takes seconds per entry at these sizes."""
    return (
        corpus_with_phi(1, sizes=(10, 12, 14, 16))
        + corpus_with_phi(2, sizes=(6, 8, 10))
        + corpus_with_phi(3, sizes=(6, 8))
    )


def test_experiment_engine_scaling(benchmark):
    corpus = _large_corpus()
    timings = {}
    baseline = None
    rows = []
    for workers in (1, 2, 4):
        start = time.perf_counter()
        # chunk_size=1 keeps the chunks maximally balanced: the speedup
        # bound is the heaviest single graph, not a lumpy chunk.  The
        # corpus flows through the streaming path, so the timing also
        # covers the bounded in-flight window, not just Pool.map.
        records = list(
            run_stream(
                iter(corpus), "elect",
                EngineConfig(workers=workers, chunk_size=1),
            )
        )
        elapsed = time.perf_counter() - start
        timings[workers] = elapsed
        if baseline is None:
            baseline = records
        else:
            # the determinism contract, asserted at bench scale
            assert records_to_jsonl(records) == records_to_jsonl(baseline)
        rows.append(
            (workers, len(corpus), round(elapsed, 2),
             round(timings[1] / elapsed, 2))
        )
    emit(
        "experiment_engine_scaling",
        f"Experiment engine: streamed Theorem 3.1 sweep wall clock "
        f"({len(corpus)} graphs, {available_parallelism()} CPUs available)",
        format_table(["workers", "graphs", "seconds", "speedup vs serial"], rows),
    )
    if available_parallelism() >= 4:
        assert timings[1] / timings[4] >= 2.0, (
            f"4-worker sweep only {timings[1] / timings[4]:.2f}x faster than "
            f"serial on {available_parallelism()} CPUs"
        )

    small = corpus_with_phi(1, sizes=(6, 8))
    benchmark(
        lambda: sum(
            1
            for _ in run_stream(
                iter(small), "elect", EngineConfig(workers=2)
            )
        )
    )
