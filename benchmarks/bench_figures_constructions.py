"""Figures 1-9 — regenerate every construction figure of the paper as a
built artifact with its claimed structural properties verified, and print
a one-line structural summary per figure.

Fig 1: H_k (ring of cliques)          Fig 6: T(L) (transformed lock)
Fig 2: M_k (necklace)                 Fig 7: merge of H', H''
Fig 3: z-lock                         Fig 8: the merged graph Q annotated
Fig 4: A * B composition              Fig 9: hairy ring / cut / stretch
Fig 5: a graph of S_0
"""

from repro.analysis import format_table
from repro.graphs import PortGraphBuilder, path_graph
from repro.lowerbounds import (
    MergeParams,
    S0Params,
    compose_star,
    cut_of_hairy_ring,
    gamma_stretch,
    hairy_ring,
    hk_graph,
    merge_graphs,
    necklace,
    s0_graph,
    z_lock,
)
from repro.views import election_index, is_feasible

from benchmarks.conftest import emit


def test_figures_gallery(benchmark):
    rows = []

    fig1 = hk_graph(6)
    rows.append(("Fig 1: H_6 ring of cliques", fig1.n, fig1.num_edges,
                 f"phi={election_index(fig1)} (claim: 1)"))
    assert election_index(fig1) == 1

    fig2 = necklace(5, 3)
    rows.append(("Fig 2: 5-necklace (phi=3)", fig2.n, fig2.num_edges,
                 f"phi={election_index(fig2)} (claim: 3)"))
    assert election_index(fig2) == 3

    fig3 = z_lock(6)
    rows.append(("Fig 3: 6-lock", fig3.n, fig3.num_edges,
                 f"max degree {fig3.max_degree()} (claim: z+1=7)"))
    assert fig3.max_degree() == 7

    fig4 = compose_star([z_lock(5), path_graph(4)], [(0, 0)])
    rows.append(("Fig 4: lock * path", fig4.n, fig4.num_edges,
                 "single joining edge"))
    assert fig4.num_edges == z_lock(5).num_edges + path_graph(4).num_edges + 1

    member0 = s0_graph(S0Params(alpha=1, c=2), 0)
    fig5 = member0.graph
    rows.append(("Fig 5: S_0 member", fig5.n, fig5.num_edges,
                 f"phi={election_index(fig5)} (claim: 1)"))

    member1 = s0_graph(S0Params(alpha=1, c=2), 1)
    merged = merge_graphs(
        member0, member1, MergeParams(pruned_depth=3, clique_base=40, chain_len=4)
    )
    rows.append(("Fig 6-8: merge(S0[0], S0[1])", merged.graph.n,
                 merged.graph.num_edges,
                 f"phi={election_index(merged.graph)} level={merged.family_level}"))

    fig9a = hairy_ring([1, 2, 0, 3, 0])
    fig9b = cut_of_hairy_ring([1, 2, 0, 3, 0])
    fig9c = gamma_stretch([1, 2, 0, 3, 0], 2)
    rows.append(("Fig 9a: hairy ring", fig9a.n, fig9a.num_edges,
                 f"feasible={is_feasible(fig9a)} (claim: feasible)"))
    rows.append(("Fig 9b: its cut", fig9b.n, fig9b.num_edges, "capped ends"))
    rows.append(("Fig 9c: its 2-stretch", fig9c.n, fig9c.num_edges, "capped ends"))
    assert is_feasible(fig9a)

    emit(
        "figures_constructions",
        "Figures 1-9 regenerated (structural summaries, claims verified)",
        format_table(["figure", "n", "m", "verified property"], rows),
    )

    benchmark(lambda: necklace(5, 3).n)
