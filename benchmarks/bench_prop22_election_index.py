"""E2.2 — Proposition 2.2: the election index is O(D log(n/D)).

Sweep structured and random graphs, tabulating phi against the bound's
envelope; the ratio must stay bounded (it is typically far below 1 —
the proposition is a worst-case cap, met with near-equality by
path-like graphs)."""

import math

from repro.analysis import format_table
from repro.graphs import (
    cycle_with_leader_gadget,
    lollipop,
    path_graph,
    random_connected_graph,
    random_regular,
)
from repro.lowerbounds import necklace
from repro.views import election_index, is_feasible

from benchmarks.conftest import emit


def _corpus():
    out = [
        ("path-25", path_graph(25)),
        ("pendant-ring-20", cycle_with_leader_gadget(20)),
        ("lollipop-6-10", lollipop(6, 10)),
        ("necklace-k4-phi5", necklace(4, 5)),
        ("necklace-k6-phi3", necklace(6, 3)),
    ]
    for n, extra, seed in ((30, 20, 3), (40, 10, 4), (60, 45, 5)):
        g = random_connected_graph(n, extra_edges=extra, seed=seed)
        if is_feasible(g):
            out.append((f"random-{n}", g))
    g = random_regular(24, 3, seed=8)
    if is_feasible(g):
        out.append(("random-regular-24-3", g))
    return out


def test_table_prop22(benchmark):
    rows = []
    ratios = []
    for name, g in _corpus():
        phi = election_index(g)
        d = g.diameter()
        envelope = d * (math.log2(max(2.0, g.n / d)) + 1)
        ratios.append(phi / envelope)
        rows.append((name, g.n, d, phi, round(envelope, 1), round(phi / envelope, 3)))
    emit(
        "prop22_election_index",
        "Proposition 2.2: phi vs the O(D log(n/D)) envelope",
        format_table(["graph", "n", "D", "phi", "D lg(n/D)", "ratio"], rows),
    )
    assert max(ratios) <= 2.0  # generous constant for the O(.)

    g = random_connected_graph(50, extra_edges=30, seed=9)
    benchmark(lambda: election_index(g) if is_feasible(g) else 0)
