"""Shared helpers for the benchmark harness.

Every bench regenerates one of the paper's tables/figures: it prints the
table (visible with ``pytest benchmarks/ --benchmark-only -s``) and also
writes it to ``benchmarks/out/<name>.txt`` so EXPERIMENTS.md can quote
stable artifacts.

Alongside each ``.txt``, :func:`emit` writes a machine-readable twin
``BENCH_<name>.json`` in the canonical ``repro-bench/1`` schema
(``kind="table"``; see :mod:`repro.analysis.bench`), so the historical
prose benches feed the same JSON trajectory as the timing scenarios of
``repro bench`` — one schema, one validator, one artifact directory.
"""

from __future__ import annotations

import pathlib

OUT_DIR = pathlib.Path(__file__).parent / "out"


def emit(name: str, title: str, body: str) -> None:
    """Print a table and persist it (plus its JSON twin) under
    benchmarks/out/."""
    from repro.analysis.bench import (
        make_table_record,
        validate_bench_record,
        write_json,
    )

    OUT_DIR.mkdir(exist_ok=True)
    text = f"== {title} ==\n{body}\n"
    print("\n" + text)
    (OUT_DIR / f"{name}.txt").write_text(text)
    record = make_table_record(name, title, body)
    validate_bench_record(record)
    write_json(str(OUT_DIR / f"BENCH_{name}.json"), record)
