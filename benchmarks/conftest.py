"""Shared helpers for the benchmark harness.

Every bench regenerates one of the paper's tables/figures: it prints the
table (visible with ``pytest benchmarks/ --benchmark-only -s``) and also
writes it to ``benchmarks/out/<name>.txt`` so EXPERIMENTS.md can quote
stable artifacts.
"""

from __future__ import annotations

import pathlib

OUT_DIR = pathlib.Path(__file__).parent / "out"


def emit(name: str, title: str, body: str) -> None:
    """Print a table and persist it under benchmarks/out/."""
    OUT_DIR.mkdir(exist_ok=True)
    text = f"== {title} ==\n{body}\n"
    print("\n" + text)
    (OUT_DIR / f"{name}.txt").write_text(text)
