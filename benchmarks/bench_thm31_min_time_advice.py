"""E3.1 — Theorem 3.1 upper bound: ComputeAdvice produces O(n log n)-bit
advice and Elect elects in time exactly phi.

Regenerates the theorem's quantitative content as a table: n, phi,
advice bits, bits/(n log n), election time.  The paper proves the envelope;
we measure the constant and confirm the time is exactly phi on every row.
"""

import math

from repro.analysis import format_table
from repro.analysis.sweep import corpus_with_phi, sweep_elect
from repro.core import compute_advice
from repro.lowerbounds import hk_graph

from benchmarks.conftest import emit


def test_table_thm31(benchmark):
    corpus = corpus_with_phi(1, sizes=(4, 6, 8, 12, 16)) + corpus_with_phi(
        2, sizes=(4, 6, 8)
    ) + corpus_with_phi(3, sizes=(4, 6))
    records = sweep_elect(corpus)
    rows = [
        (r.name, r.n, r.phi, r.advice_bits, round(r.bits_per_nlogn, 2), r.election_time)
        for r in records
    ]
    emit(
        "thm31_min_time_advice",
        "Theorem 3.1: advice size for election in minimum time phi "
        "(paper: O(n log n) bits, time exactly phi)",
        format_table(
            ["graph", "n", "phi", "advice bits", "bits/(n lg n)", "time"], rows
        ),
    )
    # the envelope constant must stay bounded as n grows (O(n log n) shape)
    ratios = [r.bits_per_nlogn for r in records]
    assert max(ratios) <= 2 * min(ratios) * 3
    assert all(r.election_time == r.phi for r in records)

    benchmark(lambda: compute_advice(hk_graph(8)))
