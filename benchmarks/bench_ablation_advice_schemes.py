"""E-ablate — design-choice ablation: the trie advice (ComputeAdvice)
against the two baselines the paper discusses.

* full map (the classical knowledge assumption): Theta(m log n) bits;
* naive rank labels (Section 3's strawman): the BFS tree must carry
  Theta(n log n)-bit labels, so the advice grows super-linearly;
* the trie advice: O(n log n) — the paper's contribution.

All three elect in the same minimum time phi; the measured bits per
scheme, across growing ring-of-cliques instances, regenerate the
motivating comparison — through the engine's ``ablation`` task, so the
three-scheme measurement parallelizes over the corpus.  A second ablation
re-runs Elect on the asynchronous engine, confirming the time-stamp
simulation costs nothing in correctness or election time (only messages).
"""

from repro.analysis import format_table
from repro.core import compute_advice
from repro.engine import run_experiments
from repro.lowerbounds import hk_graph

from benchmarks.conftest import emit


def test_table_ablation_schemes(benchmark):
    corpus = [(f"hk-{k}", hk_graph(k)) for k in (5, 8, 12, 16)]
    records = run_experiments(corpus, task="ablation", chunk_size=2)
    rows = [
        (r["name"], r["n"], r["trie_bits"], r["map_bits"],
         r["naive_rank_bits"], round(r["naive_over_trie"], 2))
        for r in records
    ]
    emit(
        "ablation_advice_schemes",
        "Ablation: advice bits per scheme (all elect in time phi = 1)",
        format_table(
            ["graph", "n", "trie (paper)", "full map", "naive rank",
             "naive/trie"],
            rows,
        ),
    )
    # the naive/trie ratio must grow with the instance (the quadratic gap)
    assert records[-1]["naive_over_trie"] > records[0]["naive_over_trie"]

    small = [("hk-8", hk_graph(8))]
    benchmark(lambda: run_experiments(small, task="ablation"))


def test_table_advice_breakdown(benchmark):
    """Where the O(n log n) bits actually go: the component split of the
    advice string.  The paper's Section 3 narrative — E1/E2 (item A1) are
    the subtle part, but the BFS tree A2 with its short labels is the bulk
    — made quantitative."""
    from repro.core.advice import advice_breakdown
    from repro.lowerbounds import necklace

    rows = []
    for name, g in (
        ("hk-8 (phi=1)", hk_graph(8)),
        ("hk-16 (phi=1)", hk_graph(16)),
        ("necklace-5-2", necklace(5, 2)),
        ("necklace-5-4", necklace(5, 4)),
    ):
        b = compute_advice(g)
        d = advice_breakdown(b)
        rows.append(
            (
                name,
                g.n,
                b.phi,
                d["phi"],
                d["E1_trie"],
                d["E2_nested_tries"],
                d["A2_bfs_tree"],
                d["total_with_framing"],
            )
        )
    emit(
        "ablation_advice_breakdown",
        "Advice component split (bits): Concat(bin(phi), A1=(E1,E2), A2)",
        format_table(
            ["graph", "n", "phi", "bin(phi)", "E1", "E2", "A2 tree", "total"],
            rows,
        ),
    )
    # E2 is empty exactly when phi = 1
    assert rows[0][5] == 0 and rows[2][5] > 0

    g = hk_graph(8)
    benchmark(lambda: advice_breakdown(compute_advice(g)))


def test_ablation_sync_vs_async(benchmark):
    from repro.core.elect import ElectAlgorithm
    from repro.core.verify import verify_election
    from repro.sim import run_async, run_sync

    g = hk_graph(6)
    bundle = compute_advice(g)
    sync = run_sync(g, ElectAlgorithm, advice=bundle.bits)
    async_ = run_async(g, ElectAlgorithm, advice=bundle.bits, seed=13)
    assert sync.outputs == async_.outputs
    assert sync.election_time == async_.election_time
    assert verify_election(g, async_.outputs).leader == bundle.root
    emit(
        "ablation_sync_vs_async",
        "Ablation: synchronous vs asynchronous execution of Elect",
        format_table(
            ["engine", "election time", "messages"],
            [
                ("synchronous", sync.election_time, sync.total_messages),
                ("asynchronous (alpha-synchronizer)", async_.election_time, async_.total_messages),
            ],
        ),
    )

    benchmark(lambda: run_async(g, ElectAlgorithm, advice=bundle.bits, seed=13))
