"""T1 — the headline results table (abstract + Theorems 3.1/4.1/4.2):
the minimum advice across the whole time spectrum, measured on one
family.

For a necklace of election index phi, the rows walk the time spectrum:

  time phi         -> ComputeAdvice/Elect     (paper: ~linear in n)
  time D + phi     -> (D, phi) advice         (paper: O(log D + log phi))
  time D + phi + c -> Election1               (paper: Theta(log phi))
  time D + c*phi   -> Election2               (paper: Theta(loglog phi))
  time D + phi^c   -> Election3               (paper: Theta(logloglog phi))
  time D + c^phi   -> Election4               (paper: Theta(log log* phi))

The shape to confirm: the first big jump (linear-in-n down to
logarithmic) happens between phi and D + phi, and afterwards each longer
budget strictly never needs more advice.
"""

from repro.analysis import format_table
from repro.core import run_elect, run_election_milestone, run_known_d_phi
from repro.lowerbounds import necklace

from benchmarks.conftest import emit


def test_headline_table(benchmark):
    phi = 3
    g = necklace(5, phi)
    d = g.diameter()

    rows = []
    elect = run_elect(g)
    rows.append(("phi (minimum)", elect.election_time, elect.advice_bits, "~n lg n"))
    kd = run_known_d_phi(g)
    rows.append((f"D+phi", kd.election_time, kd.advice_bits, "O(lg D + lg phi)"))
    for m, label, envelope in (
        (1, "D+phi+c", "Theta(lg phi)"),
        (2, "D+c*phi", "Theta(lglg phi)"),
        (3, "D+phi^c", "Theta(lglglg phi)"),
        (4, "D+c^phi", "Theta(lg lg* phi)"),
    ):
        rec = run_election_milestone(g, m, c=2)
        rows.append((label, rec.election_time, rec.advice_bits, envelope))
        assert rec.within_budget

    emit(
        "table1_advice_hierarchy",
        f"Headline table: advice vs time on a necklace (n={g.n}, phi={phi}, "
        f"D={d}, c=2)",
        format_table(["time regime", "measured time", "advice bits", "paper"], rows),
    )

    # the first jump is the big one: minimum-time advice is orders larger
    assert elect.advice_bits > 20 * kd.advice_bits
    # beyond D+phi the advice is tiny and non-increasing in budget order
    small = [r[2] for r in rows[2:]]
    assert max(small) <= kd.advice_bits

    benchmark(lambda: run_known_d_phi(g))
