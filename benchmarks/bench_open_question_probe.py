"""Open-question probe (Section 5): advice pressure for times strictly
between phi and D + phi.

The paper: "The intriguing open question ... is how the minimum size of
advice behaves in the range of election time strictly between phi and
D + phi."  We cannot answer it, but we can *measure* the pressure from
the paper's own fooling-pair argument: on an exhaustively enumerated
necklace family, members whose leaves share depth-tau views must receive
pairwise distinct advice.  The table below shows the forced floor
decaying as tau sweeps from phi (everything fooled — maximal advice)
toward D + phi (nothing fooled — the logarithmic regime becomes
possible)."""

from repro.analysis import format_table
from repro.lowerbounds.fooling import fooling_floor_curve, shared_view_nodes
from repro.lowerbounds import necklace
from repro.views import election_index

from benchmarks.conftest import emit


def test_open_question_probe(benchmark):
    k, phi, x = 7, 3, 3
    g = necklace(k, phi, x=x)
    d = g.diameter()
    taus = list(range(phi, min(d + phi, phi + 7) + 1))
    points = fooling_floor_curve(k, phi, taus, x=x, limit=(x + 1) ** (k - 3))
    rows = [
        (
            p.tau,
            p.num_members,
            p.num_leaf_view_classes,
            p.max_class_size,
            p.forced_advice_bits,
        )
        for p in points
    ]
    emit(
        "open_question_probe",
        f"Open question (Sec. 5): fooling floor vs time on N_{k} "
        f"(phi={phi}, D={d}, {points[0].num_members} members enumerated)",
        format_table(
            ["tau", "members", "leaf-view classes", "max fooled class",
             "forced bits"],
            rows,
        ),
    )
    # at tau = phi everything is mutually fooled; pressure decays
    # monotonically and eventually releases completely
    assert points[0].max_class_size == points[0].num_members
    sizes = [p.max_class_size for p in points]
    assert sizes == sorted(sizes, reverse=True)
    assert sizes[-1] < sizes[0]

    benchmark(
        lambda: fooling_floor_curve(4, 2, [2, 3, 4], x=3, limit=16)
    )


def test_cross_graph_fooling_pairs(benchmark):
    """The fooling-pair finder itself: two coded necklaces share exactly
    the node pairs whose neighborhoods avoid the differing diamond."""

    def check():
        g1 = necklace(5, 2, code=[0, 1, 2, 0])
        g2 = necklace(5, 2, code=[0, 3, 2, 0])
        pairs = shared_view_nodes(g1, g2, depth=2)
        assert pairs  # far-from-the-difference nodes are fooled
        deep = shared_view_nodes(g1, g2, depth=8)
        assert len(deep) < len(pairs)  # pressure decays with depth
        return len(pairs), len(deep)

    shallow, deep = benchmark(check)
    emit(
        "cross_graph_fooling",
        "Fooling pairs between two coded necklaces, by view depth",
        format_table(["depth", "fooling pairs"], [(2, shallow), (8, deep)]),
    )
