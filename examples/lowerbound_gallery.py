#!/usr/bin/env python3
"""A guided tour of the paper's lower-bound constructions (Figures 1-9),
with their fooling mechanics demonstrated live.

1. G_k (ring of port-shifted cliques): phi = 1, yet any 1-round election
   needs different advice per member — (k-1)! members force
   Omega(n log log n) bits.
2. k-necklaces: the same idea at election index phi, with codes hidden in
   the diamonds.
3. Hairy rings and gamma-stretches: nodes deep inside a stretch are
   *provably* unable to tell they are not in the original ring — shown
   here by exhibiting two far-apart nodes with identical views.

Run:  python examples/lowerbound_gallery.py
"""

from repro.lowerbounds import (
    advice_bits_required,
    gamma_stretch,
    gk_family_size,
    hairy_ring,
    hk_graph,
    necklace,
    necklace_family_size,
)
from repro.views import election_index, views_of_graph


def tour_ring_of_cliques() -> None:
    k = 6
    g = hk_graph(k)
    print(f"[Fig 1] H_{k}: n={g.n}, phi={election_index(g)} (always 1)")
    members = gk_family_size(k)
    print(f"        family G_{k}: (k-1)! = {members} members; any time-1 "
          f"algorithm is forced to use >= {advice_bits_required(members)} "
          f"bits of advice on some member")


def tour_necklaces() -> None:
    k, phi = 5, 3
    g, layout = necklace(k, phi, with_layout=True)
    print(f"\n[Fig 2] {k}-necklace: n={g.n}, phi={election_index(g)} "
          f"(constructed to be exactly {phi})")
    below = views_of_graph(g, phi - 1)
    print(f"        left/right leaves share B^{phi-1}: "
          f"{below[layout.left_leaf] is below[layout.right_leaf]} "
          "(so no algorithm can finish earlier)")
    members = necklace_family_size(k, 3)
    print(f"        family N_{k}: {members} diamond codes; time-{phi} "
          f"election forces >= {advice_bits_required(members)} bits on some "
          "member")


def tour_hairy_rings() -> None:
    sizes = [1, 2, 0, 3, 0]
    gamma = 8
    h = hairy_ring(sizes)
    s, layout = gamma_stretch(sizes, gamma, with_layout=True)
    print(f"\n[Fig 9] hairy ring: n={h.n}; its {gamma}-stretch: n={s.n}")
    t = 4
    views = views_of_graph(s, t)
    a = layout.copy_starts[3]
    b = layout.copy_starts[5]
    print(f"        two stretch nodes at distance {s.distance(a, b)} share "
          f"B^{t}: {views[a] is views[b]}")
    print("        -> an algorithm with O(1) advice must treat them "
          "identically, but no single short path can serve both: constant "
          "advice can never elect in all feasible graphs (Prop 4.1)")


def main() -> None:
    tour_ring_of_cliques()
    tour_necklaces()
    tour_hairy_rings()


if __name__ == "__main__":
    main()
