#!/usr/bin/env python3
"""Port engineering: the election index as a deployment-time knob.

The paper takes the port numbering as given by the adversary.  A network
operator, however, often *chooses* it — and the choice decides both
whether leader election is possible at all and how fast it can be.

This walkthrough measures, for several topologies, the distribution of
the election index over random port assignments and then searches for a
good one — turning the paper's model parameter into an optimization.

Run:  python examples/port_engineering.py
"""

from repro.analysis import format_table
from repro.graphs import clique, grid_torus, lollipop, ring
from repro.graphs.port_optimizer import optimize_ports, port_sensitivity
from repro.views import election_index, is_feasible


def main() -> None:
    topologies = [
        ("ring-7", ring(7)),
        ("clique-5", clique(5)),
        ("torus-3x3", grid_torus(3, 3)),
        ("lollipop-4-3", lollipop(4, 3)),
    ]

    rows = []
    for name, g in topologies:
        canonical = election_index(g) if is_feasible(g) else None
        hist = port_sensitivity(g, samples=25, seed=7)
        feasible = {k: v for k, v in hist.items() if k is not None}
        best = optimize_ports(g, restarts=25, seed=7)
        rows.append(
            (
                name,
                "infeasible" if canonical is None else canonical,
                hist.get(None, 0),
                min(feasible) if feasible else "-",
                max(feasible) if feasible else "-",
                best.phi if best.feasible else "infeasible",
            )
        )

    print(format_table(
        ["topology", "canonical phi", "infeasible/25", "best sampled phi",
         "worst sampled phi", "optimized phi"],
        rows,
    ))
    print(
        "\nreading: every one of these vertex-transitive topologies is "
        "infeasible only under\nits 'nice' canonical numbering — a random "
        "re-numbering breaks the symmetry and\nmakes them electable, "
        "usually within 1-2 rounds.  (Genuinely unbreakable symmetry\n"
        "needs a topological obstruction, like the two-node graph, where "
        "ports cannot help.)"
    )


if __name__ == "__main__":
    main()
