#!/usr/bin/env python3
"""The paper's headline: how much advice does each election deadline cost?

Sweeps the full time spectrum on necklaces (graphs whose election index
phi we control exactly), printing, for each regime:

    time phi          ComputeAdvice/Elect  ~ n log n bits
    time D + phi      (D, phi) advice      O(log D + log phi) bits
    time D + phi + c  Election1            Theta(log phi) bits
    time D + c*phi    Election2            Theta(loglog phi) bits
    time D + phi^c    Election3            Theta(logloglog phi) bits
    time D + c^phi    Election4            Theta(log log* phi) bits

Every run is an actual LOCAL-model simulation whose outputs are verified.

Run:  python examples/advice_time_tradeoff.py
"""

from repro.analysis import format_table
from repro.core import run_elect, run_election_milestone, run_known_d_phi
from repro.lowerbounds import necklace


def spectrum_rows(k: int, phi: int):
    g = necklace(k, phi)
    d = g.diameter()
    rows = []
    e = run_elect(g)
    rows.append((f"phi = {phi}", e.election_time, e.advice_bits))
    kd = run_known_d_phi(g)
    rows.append((f"D+phi = {d}+{phi}", kd.election_time, kd.advice_bits))
    labels = {1: "D+phi+c", 2: "D+c*phi", 3: "D+phi^c", 4: "D+c^phi"}
    for m in (1, 2, 3, 4):
        rec = run_election_milestone(g, m, c=2)
        rows.append((labels[m], rec.election_time, rec.advice_bits))
    return g, rows


def main() -> None:
    for phi in (2, 3, 4):
        g, rows = spectrum_rows(4, phi)
        print(f"\nnecklace: n={g.n}, phi={phi}, D={g.diameter()}")
        print(format_table(["time regime", "measured rounds", "advice bits"], rows))
    print(
        "\nreading: the big cliff is between time phi (advice ~ n log n) and "
        "time D+phi (advice ~ log n);\nbeyond that, each relaxation of the "
        "deadline shrinks the advice by an exponential."
    )


if __name__ == "__main__":
    main()
