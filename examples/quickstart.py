#!/usr/bin/env python3
"""Quickstart: leader election with advice in an anonymous network.

Builds a small feasible anonymous network, lets the oracle compute the
O(n log n)-bit advice (Theorem 3.1), simulates Algorithm Elect in the
LOCAL model, and verifies that every node output a simple path to a
common leader — in time exactly phi, the graph's election index.

Run:  python examples/quickstart.py
"""

from repro import (
    compute_advice,
    cycle_with_leader_gadget,
    election_index,
    run_elect,
    verify_election,
)
from repro.core.elect import ElectAlgorithm
from repro.sim import run_sync


def main() -> None:
    # An 8-node ring with one pendant node: anonymous, but asymmetric
    # enough that every node's neighborhood eventually looks unique.
    g = cycle_with_leader_gadget(8)
    print(f"network: {g.n} nodes, {g.num_edges} edges, diameter {g.diameter()}")

    phi = election_index(g)
    print(f"election index phi = {phi}  (minimum time any algorithm needs)")

    # --- the oracle side -------------------------------------------------
    bundle = compute_advice(g)
    print(f"oracle advice: {bundle.size_bits} bits "
          f"(phi + trie E1 + nested tries E2 + labeled BFS tree)")

    # --- the distributed side --------------------------------------------
    result = run_sync(g, ElectAlgorithm, advice=bundle.bits)
    outcome = verify_election(g, result.outputs)
    print(f"election completed in {result.election_time} rounds "
          f"(= phi: {result.election_time == phi})")
    print(f"leader: node {outcome.leader}")
    for v in sorted(outcome.paths):
        path = outcome.paths[v]
        print(f"  node {v}: path {' -> '.join(map(str, path))}")

    # --- or just use the one-liner ----------------------------------------
    record = run_elect(g)
    print(f"\nrun_elect: {record}")


if __name__ == "__main__":
    main()
