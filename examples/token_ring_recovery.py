#!/usr/bin/env python3
"""Token-ring recovery: the problem that started leader election.

Le Lann (1977) — the paper's own motivation: in a local-area token ring,
exactly one station (the token owner) may initiate communication.  When
the token is lost, the stations must agree on an initial owner for a
regenerated token.  Stations are anonymous (privacy: they refuse to
reveal serial numbers) but each knows its local port numbering.

A perfectly symmetric ring is hopeless (provably: every node sees the
same views forever).  Real rings are not symmetric: here one station has
a maintenance console attached.  We elect the new token owner three
ways, trading oracle knowledge against time:

1. minimum time phi with the full ComputeAdvice string,
2. time D + phi knowing only (D, phi) — a few dozen bits,
3. time D + phi + c knowing only phi (Election1).

Run:  python examples/token_ring_recovery.py
"""

from repro import (
    InfeasibleGraphError,
    PortGraphBuilder,
    election_index,
    ring,
    run_elect,
    run_election_milestone,
    run_known_d_phi,
)


def build_ring_with_console(stations: int) -> "PortGraph":
    """A token ring of anonymous stations; station 0 carries a console."""
    b = PortGraphBuilder(stations + 1)
    for i in range(stations):
        b.add_edge(i, 0, (i + 1) % stations, 1)  # ring ports 0/1, clockwise
    b.add_edge(0, 2, stations, 0)  # the console
    return b.build()


def main() -> None:
    # First, the impossibility: a bare ring cannot recover at all.
    bare = ring(10)
    try:
        election_index(bare)
    except InfeasibleGraphError as exc:
        print(f"bare ring of 10 stations: {exc}\n")

    g = build_ring_with_console(10)
    phi = election_index(g)
    print(f"ring with console: n={g.n}, D={g.diameter()}, phi={phi}\n")

    fast = run_elect(g)
    print(f"[1] minimum-time recovery: {fast.election_time} rounds, "
          f"{fast.advice_bits} bits of advice -> token owner = node {fast.leader}")

    mid = run_known_d_phi(g)
    print(f"[2] (D, phi)-advice recovery: {mid.election_time} rounds, "
          f"{mid.advice_bits} bits -> token owner = node {mid.leader}")

    slow = run_election_milestone(g, milestone=1, c=2)
    print(f"[3] phi-only recovery (Election1): {slow.election_time} rounds, "
          f"{slow.advice_bits} bits -> token owner = node {slow.leader}")

    print("\nthe tradeoff: {}x more advice buys a {}x faster recovery".format(
        fast.advice_bits // max(1, slow.advice_bits),
        mid.election_time // max(1, fast.election_time),
    ))


if __name__ == "__main__":
    main()
