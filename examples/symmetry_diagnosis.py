#!/usr/bin/env python3
"""Diagnosing symmetry: why can't this network elect a leader?

The Yamashita-Kameda criterion, executable: a network admits deterministic
leader election (with full knowledge) iff all nodes have distinct views.
When it does not, the *view quotient* shows exactly which nodes are
mutually indistinguishable — the residual symmetry no algorithm, however
much advice it gets, can break.

This example walks three networks:
* a torus (fully symmetric: 1 class — hopeless),
* a mirror-symmetric path (2 classes of 2 — still hopeless),
* the same path with one port swap (discrete — electable), and then
  elects on it.

Run:  python examples/symmetry_diagnosis.py
"""

from repro import PortGraphBuilder, run_elect
from repro.graphs import grid_torus
from repro.views import view_quotient
from repro.views.render import render_graph


def mirror_path():
    """A 4-path whose port numbering is mirror-symmetric."""
    b = PortGraphBuilder(4)
    b.add_edge(0, 0, 1, 0)
    b.add_edge(1, 1, 2, 1)
    b.add_edge(2, 0, 3, 0)
    return b.build()


def desymmetrized_path():
    """The same path with the ports at node 2 swapped: symmetry broken."""
    b = PortGraphBuilder(4)
    b.add_edge(0, 0, 1, 0)
    b.add_edge(1, 1, 2, 0)
    b.add_edge(2, 1, 3, 0)
    return b.build()


def diagnose(name, g):
    q = view_quotient(g)
    print(f"\n{name}: n={g.n}, view classes={q.num_classes} "
          f"(stabilized at depth {q.stabilization_depth})")
    if q.is_discrete:
        print("  discrete -> feasible: leader election possible")
        return True
    for i, members in enumerate(q.classes):
        if len(members) > 1:
            print(f"  class {i}: nodes {members} are mutually "
                  "indistinguishable forever")
    print("  -> infeasible: no algorithm (even with unbounded advice) "
          "can break this tie")
    return False


def main() -> None:
    diagnose("3x3 torus", grid_torus(3, 3))
    diagnose("mirror-symmetric path", mirror_path())

    g = desymmetrized_path()
    print("\nthe fix — renumber one node's ports:")
    print(render_graph(g))
    if diagnose("desymmetrized path", g):
        record = run_elect(g)
        print(f"  elected node {record.leader} in {record.election_time} "
              f"round(s) with {record.advice_bits} bits of advice")


if __name__ == "__main__":
    main()
