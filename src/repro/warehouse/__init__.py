"""The results warehouse: one indexed sqlite store under every producer.

Four result formats grew up independently in this repository — engine
:class:`~repro.engine.store.ResultStore` JSONL (sweeps), conformance
stores, the service cache JSONL with its offset index, and the
``BENCH_*.json`` perf records — joined only by ad-hoc full-file scans.
This package puts one content-addressed, indexed sqlite database under
all of them:

* :mod:`repro.warehouse.db` — the :class:`Warehouse` itself: WAL-mode
  sqlite, one ``records`` table (unique on ``(fingerprint, task)`` per
  dataset for content-addressed cache rows, indexed on
  ``(dataset, name, task)`` and ``(name, family, task)``), a ``graphs``
  table joining corpus entry names to their content addresses, and a
  ``runs`` table of provenance rows (env fingerprint, schema version,
  timestamps);
* :mod:`repro.warehouse.store` — :class:`WarehouseStore`, the
  drop-in result-store backend where resume is a key query and record
  groups commit as transactions (SIGKILL-convergent, like the JSONL
  store's torn-tail repair);
* :mod:`repro.warehouse.io` — the JSONL/JSON files demoted to
  import/export formats with byte-identical round-trip, plus
  ``register_corpus_graphs`` for migrating pre-warehouse stores;
* :mod:`repro.warehouse.trend` — the cross-run bench trajectory behind
  ``repro report --trend``.

The record layer (canonical JSON, :mod:`repro.engine.records`) stays the
single wire format: the warehouse stores the exact text and every
byte-identity invariant (resume parity, warm-equals-cold service
answers, golden regressions) holds on this backend too — re-proven in
``tests/test_warehouse.py``.

CLI: ``repro warehouse import|export|trend|info``; ``repro sweep`` /
``repro conformance`` ``--out`` and ``repro serve --cache`` accept a
warehouse path (by extension) directly.
"""

from repro.warehouse.db import (
    SCHEMA_VERSION,
    WAREHOUSE_EXTENSIONS,
    Warehouse,
    is_warehouse_path,
)
from repro.warehouse.io import (
    default_dataset,
    export_bench,
    export_dataset,
    import_file,
    register_corpus_graphs,
    sniff_format,
)
from repro.warehouse.store import WarehouseStore
from repro.warehouse.trend import (
    memory_trend,
    render_trend,
    telemetry_trend,
    trend_table,
)

__all__ = [
    "SCHEMA_VERSION",
    "WAREHOUSE_EXTENSIONS",
    "Warehouse",
    "WarehouseStore",
    "default_dataset",
    "export_bench",
    "export_dataset",
    "import_file",
    "is_warehouse_path",
    "memory_trend",
    "register_corpus_graphs",
    "render_trend",
    "telemetry_trend",
    "sniff_format",
    "trend_table",
]
