"""The cross-run perf trajectory: bench records rendered as one table.

Every ``repro bench --warehouse DB`` invocation (and every imported
``BENCH_*.json``) lands its records under a run row with a label, an
environment fingerprint and a timestamp.  ``trend_table`` pivots those
rows into the table ``repro report --trend`` / ``repro warehouse trend``
print: one row per ``(scenario, case)``, one column per run, each cell
the measured seconds — so "did PR N make the strict path faster" is a
column scan, not archaeology across artifact tarballs.

Runs of different modes (quick vs full) measure different workloads, so
each run column is suffixed with its mode; comparisons are meaningful
within a column's mode.  Table-kind records (the historical prose-bench
twins) carry no timing and are skipped.
"""

from __future__ import annotations

from typing import Any, Dict, List, Tuple

from repro.errors import StoreError
from repro.warehouse.db import Warehouse


def trend_data(
    wh: Warehouse,
) -> Tuple[List[Dict[str, Any]], Dict[Tuple[str, str], Dict[int, float]]]:
    """``(runs, cells)``: the bench-bearing runs in id order, and
    ``(scenario, case) -> {run_id: seconds}``."""
    runs_by_id = {run["id"]: run for run in wh.runs()}
    seen_runs: List[Dict[str, Any]] = []
    cells: Dict[Tuple[str, str], Dict[int, float]] = {}
    for run_id, scenario, record in wh.bench_rows():
        if record.get("kind") != "timing":
            continue
        run = runs_by_id.get(run_id)
        if run is None:  # pragma: no cover - references are enforced
            continue
        if not any(r["id"] == run_id for r in seen_runs):
            run = dict(run)
            run["mode"] = "quick" if record.get("quick") else "full"
            seen_runs.append(run)
        for case in record.get("cases", []):
            seconds = case.get("seconds")
            if isinstance(seconds, (int, float)):
                cells.setdefault((scenario, case["case"]), {})[
                    run_id
                ] = float(seconds)
    return seen_runs, cells


def _run_header(run: Dict[str, Any]) -> str:
    label = run["label"] or f"run{run['id']}"
    return f"{label}/{run.get('mode', '?')}"


def trend_table(wh: Warehouse) -> Tuple[List[str], List[Tuple]]:
    """``(columns, rows)`` for :func:`repro.analysis.tables.format_table`;
    raises :class:`StoreError` when the warehouse holds no timed bench
    records (nothing to chart is an error, not an empty table)."""
    runs, cells = trend_data(wh)
    if not cells:
        raise StoreError(
            "warehouse holds no timed bench records; record some with "
            "`repro bench --warehouse DB` or import BENCH_*.json files"
        )
    columns = ["scenario", "case"] + [_run_header(run) for run in runs]
    rows: List[Tuple] = []
    for (scenario, case), by_run in sorted(cells.items()):
        row = [scenario, case]
        for run in runs:
            seconds = by_run.get(run["id"])
            row.append(f"{seconds:.4f}" if seconds is not None else "-")
        rows.append(tuple(row))
    return columns, rows


def render_trend(wh: Warehouse) -> str:
    """The formatted trend table plus a run legend (one line per run:
    header, timestamp, host fingerprint) — what the CLI prints."""
    from repro.analysis.tables import format_table

    runs, _cells = trend_data(wh)
    columns, rows = trend_table(wh)
    legend = "\n".join(
        f"  {_run_header(run)}: {run['started_at']}  "
        f"(python {run['env'].get('python')}, "
        f"{run['env'].get('machine')}, "
        f"cpu_count={run['env'].get('cpu_count')})"
        for run in runs
    )
    return format_table(columns, rows) + "\n\nruns:\n" + legend
