"""The cross-run perf trajectory: bench records rendered as one table.

Every ``repro bench --warehouse DB`` invocation (and every imported
``BENCH_*.json``) lands its records under a run row with a label, an
environment fingerprint and a timestamp.  ``trend_table`` pivots those
rows into the table ``repro report --trend`` / ``repro warehouse trend``
print: one row per ``(scenario, case)``, one column per run, each cell
the measured seconds — so "did PR N make the strict path faster" is a
column scan, not archaeology across artifact tarballs.

Runs of different modes (quick vs full) measure different workloads, so
each run column is suffixed with its mode; comparisons are meaningful
within a column's mode.  Table-kind records (the historical prose-bench
twins) carry no timing and are skipped.

Runs that stored :mod:`repro.obs` telemetry (``repro profile
--telemetry DB``, or anything calling ``Warehouse.append_telemetry``)
additionally render a latency-histogram section: one row per
``(metric, labels)``, one column per telemetry-bearing run, each cell
``count:p50/p99`` estimated from the stored bucket counts — the
latency distribution across PRs, next to the wall-clock table.
"""

from __future__ import annotations

import json
from typing import Any, Dict, List, Optional, Tuple

from repro.errors import StoreError
from repro.warehouse.db import Warehouse


def trend_data(
    wh: Warehouse,
) -> Tuple[List[Dict[str, Any]], Dict[Tuple[str, str], Dict[int, float]]]:
    """``(runs, cells)``: the bench-bearing runs in id order, and
    ``(scenario, case) -> {run_id: seconds}``."""
    runs_by_id = {run["id"]: run for run in wh.runs()}
    seen_runs: List[Dict[str, Any]] = []
    cells: Dict[Tuple[str, str], Dict[int, float]] = {}
    for run_id, scenario, record in wh.bench_rows():
        if record.get("kind") != "timing":
            continue
        run = runs_by_id.get(run_id)
        if run is None:  # pragma: no cover - references are enforced
            continue
        if not any(r["id"] == run_id for r in seen_runs):
            run = dict(run)
            run["mode"] = "quick" if record.get("quick") else "full"
            seen_runs.append(run)
        for case in record.get("cases", []):
            seconds = case.get("seconds")
            if isinstance(seconds, (int, float)):
                cells.setdefault((scenario, case["case"]), {})[
                    run_id
                ] = float(seconds)
    return seen_runs, cells


def _run_header(run: Dict[str, Any]) -> str:
    label = run["label"] or f"run{run['id']}"
    return f"{label}/{run.get('mode', '?')}"


def trend_table(wh: Warehouse) -> Tuple[List[str], List[Tuple]]:
    """``(columns, rows)`` for :func:`repro.analysis.tables.format_table`;
    raises :class:`StoreError` when the warehouse holds no timed bench
    records (nothing to chart is an error, not an empty table)."""
    runs, cells = trend_data(wh)
    if not cells:
        raise StoreError(
            "warehouse holds no timed bench records; record some with "
            "`repro bench --warehouse DB` or import BENCH_*.json files"
        )
    columns = ["scenario", "case"] + [_run_header(run) for run in runs]
    rows: List[Tuple] = []
    for (scenario, case), by_run in sorted(cells.items()):
        row = [scenario, case]
        for run in runs:
            seconds = by_run.get(run["id"])
            row.append(f"{seconds:.4f}" if seconds is not None else "-")
        rows.append(tuple(row))
    return columns, rows


def memory_trend(
    wh: Warehouse,
) -> Tuple[List[Dict[str, Any]], Dict[Tuple[str, str], Dict[int, int]]]:
    """``(runs, cells)`` of the per-case peak-RSS section: the runs whose
    bench cases carry ``peak_rss_kb`` (``repro bench`` records it since
    the obs PR), and ``(scenario, case) -> {run_id: peak_rss_kb}``.
    Empty for warehouses holding only pre-obs records."""
    runs_by_id = {run["id"]: run for run in wh.runs()}
    seen_runs: List[Dict[str, Any]] = []
    cells: Dict[Tuple[str, str], Dict[int, int]] = {}
    for run_id, scenario, record in wh.bench_rows():
        if record.get("kind") != "timing":
            continue
        run = runs_by_id.get(run_id)
        if run is None:  # pragma: no cover - references are enforced
            continue
        for case in record.get("cases", []):
            rss = case.get("peak_rss_kb")
            if not isinstance(rss, int):
                continue
            if not any(r["id"] == run_id for r in seen_runs):
                seen_runs.append(run)
            cells.setdefault((scenario, case["case"]), {})[run_id] = rss
    return seen_runs, cells


def _bucket_quantile(
    buckets: List[float], bucket_counts: List[int], q: float
) -> Optional[float]:
    """The q-quantile's upper bucket edge (the Prometheus estimate:
    exact enough for a trend cell).  None for an empty histogram or a
    quantile landing in the overflow (+Inf) bucket."""
    total = sum(bucket_counts)
    if total == 0:
        return None
    target = q * total
    cumulative = 0
    for edge, count in zip(buckets, bucket_counts):
        cumulative += count
        if cumulative >= target:
            return float(edge)
    return None  # in the +Inf bucket


def telemetry_trend(
    wh: Warehouse,
) -> Tuple[List[Dict[str, Any]], List[Tuple]]:
    """``(runs, rows)`` of the histogram-telemetry section: the
    telemetry-bearing runs in id order, and one row per ``(metric,
    labels)`` with a ``count:p50/p99`` cell per run.  Empty when no run
    stored histogram telemetry."""
    runs_by_id = {run["id"]: run for run in wh.runs()}
    seen_runs: List[Dict[str, Any]] = []
    cells: Dict[Tuple[str, str], Dict[int, str]] = {}
    for row in wh.telemetry_rows(kind="histogram"):
        run = runs_by_id.get(row["run_id"])
        if run is None:  # pragma: no cover - references are enforced
            continue
        if not any(r["id"] == row["run_id"] for r in seen_runs):
            seen_runs.append(run)
        value = row["value"]
        p50 = _bucket_quantile(
            value["buckets"], value["bucket_counts"], 0.50
        )
        p99 = _bucket_quantile(
            value["buckets"], value["bucket_counts"], 0.99
        )
        labels = json.dumps(row["labels"], sort_keys=True) if row[
            "labels"
        ] else ""
        cells.setdefault((row["name"], labels), {})[row["run_id"]] = (
            f"{value['count']}:"
            f"{p50 if p50 is not None else '>max'}/"
            f"{p99 if p99 is not None else '>max'}"
        )
    rows: List[Tuple] = []
    for (name, labels), by_run in sorted(cells.items()):
        row_out = [name, labels]
        for run in seen_runs:
            row_out.append(by_run.get(run["id"], "-"))
        rows.append(tuple(row_out))
    return seen_runs, rows


def render_trend(wh: Warehouse) -> str:
    """The formatted trend table plus a run legend (one line per run:
    header, timestamp, host fingerprint), and — when any run stored obs
    telemetry — the peak-RSS and latency-histogram sections; what the
    CLI prints.  A warehouse holding only telemetry (``repro profile
    --telemetry`` without any bench runs) renders just those sections."""
    from repro.analysis.tables import format_table

    tel_runs, tel_rows = telemetry_trend(wh)
    try:
        runs, _cells = trend_data(wh)
        columns, rows = trend_table(wh)
    except StoreError:
        if not tel_rows:
            raise
        out = "(no timed bench records)"
    else:
        legend = "\n".join(
            f"  {_run_header(run)}: {run['started_at']}  "
            f"(python {run['env'].get('python')}, "
            f"{run['env'].get('machine')}, "
            f"cpu_count={run['env'].get('cpu_count')})"
            for run in runs
        )
        out = format_table(columns, rows) + "\n\nruns:\n" + legend
    mem_runs, mem_cells = memory_trend(wh)
    if mem_cells:
        mem_columns = ["scenario", "case"] + [
            run["label"] or f"run{run['id']}" for run in mem_runs
        ]
        mem_rows: List[Tuple] = []
        for (scenario, case), by_run in sorted(mem_cells.items()):
            mem_row = [scenario, case]
            for run in mem_runs:
                rss = by_run.get(run["id"])
                mem_row.append(str(rss) if rss is not None else "-")
            mem_rows.append(tuple(mem_row))
        out += "\n\nmemory (peak_rss_kb):\n" + format_table(
            mem_columns, mem_rows
        )
    if tel_rows:
        tel_columns = ["metric", "labels"] + [
            run["label"] or f"run{run['id']}" for run in tel_runs
        ]
        out += (
            "\n\ntelemetry (histogram count:p50/p99, upper bucket "
            "edges):\n" + format_table(tel_columns, tel_rows)
        )
    return out
