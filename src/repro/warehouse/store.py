"""The warehouse backend of the result store: same discipline, indexed.

:class:`WarehouseStore` is interface-compatible with
:class:`repro.engine.store.ResultStore` (``append`` / ``__contains__`` /
``__len__`` / context manager), so :func:`repro.analysis.sweep.
sweep_to_store` and both streaming CLI commands run on either backend
unchanged.  The differences are exactly the ones the warehouse exists
for:

* **resume is a key query** — opening with ``resume=True`` runs one
  ``SELECT name, task`` over the dataset instead of replaying (and
  repairing) a JSONL file;
* **group atomicity is transactional** — sub-records of a multi-record
  task are buffered and committed together with their summary, so a
  SIGKILL leaves only whole groups (sqlite rolls back the open
  transaction on the next connection; the JSONL store's torn-tail
  truncation has no analog to perform);
* **graphs register alongside records** — when the caller supplies the
  corpus graph (:meth:`register_graph`), its content address lands in
  the ``graphs`` table in the same commit as the entry's group, turning
  later service warming into a join query.

Byte-identity under resume carries over: records insert in corpus order,
a kill leaves a committed prefix of whole groups, and a resumed run
appends exactly the missing suffix — so the dataset's JSONL *export*
(:func:`repro.warehouse.io.export_dataset`) is byte-identical to the
export of an uninterrupted run, and to the JSONL file a plain
``ResultStore`` sweep of the same corpus would have written.
"""

from __future__ import annotations

import json
from typing import Callable, Dict, List, Optional, Set, Tuple, Union

from repro.engine.records import Record, record_to_json
from repro.engine.store import StoreKey, record_key
from repro.warehouse.db import Warehouse

#: How a store names the family of an entry: a constant (single-family
#: sweeps), a callable from entry name (multi-family sweeps), or None.
FamilySpec = Union[None, str, Callable[[str], Optional[str]]]


class WarehouseStore:
    """Append-only result store over one warehouse dataset.

    ``warehouse`` may be a path (opened and owned by this store) or an
    existing :class:`~repro.warehouse.db.Warehouse` (shared; not closed
    by :meth:`close`).
    """

    def __init__(
        self,
        warehouse: Union[str, Warehouse],
        dataset: str = "sweep",
        resume: bool = False,
        family: FamilySpec = None,
        run_label: Optional[str] = None,
    ):
        if isinstance(warehouse, Warehouse):
            self.warehouse = warehouse
            self._owns_warehouse = False
        else:
            self.warehouse = Warehouse(warehouse)
            self._owns_warehouse = True
        self.path = self.warehouse.path
        self.dataset = dataset
        self._family = family
        self.done: Set[StoreKey] = set()
        if resume:
            self.done = self.warehouse.result_keys(dataset)
        else:
            self.warehouse.clear_dataset(dataset)
        self._run_id = self.warehouse.begin_run(
            "resume" if resume else "sweep", run_label or dataset
        )
        #: open group: rows not yet terminated by their summary record
        self._pending: List[Tuple[str, str, Optional[str], str]] = []
        self._pending_keys: List[StoreKey] = []
        #: graphs registered for entries whose group is not yet durable
        self._pending_graphs: Dict[str, Tuple[str, str]] = {}

    def _family_of(self, name: str) -> Optional[str]:
        if callable(self._family):
            return self._family(name)
        return self._family

    # ------------------------------------------------------------------
    # the ResultStore interface
    # ------------------------------------------------------------------
    def __contains__(self, key: StoreKey) -> bool:
        return key in self.done

    def __len__(self) -> int:
        return len(self.done)

    def append(self, record: Record) -> None:
        """Buffer one record; commit the whole group (atomically, with
        any registered graphs) when its terminating record arrives."""
        key = record_key(record)
        name = record["name"]
        entry = record.get("entry")
        self._pending.append(
            (name, record["task"], entry, record_to_json(record))
        )
        self._pending_keys.append(key)
        if record.get("entry", name) == name:
            graph_rows = []
            registered = self._pending_graphs.pop(name, None)
            if registered is not None:
                graph_rows.append((name, registered[0], registered[1]))
            self.warehouse.append_group(
                self.dataset,
                self._pending,
                family=self._family_of(name),
                graph_rows=graph_rows,
                run_id=self._run_id,
            )
            self.done.update(self._pending_keys)
            self._pending.clear()
            self._pending_keys.clear()

    def close(self) -> None:
        # an unterminated group is the in-memory analog of the JSONL
        # store's torn tail: it never became durable, and the next
        # resume will re-run its entry in full
        self._pending.clear()
        self._pending_keys.clear()
        self.warehouse.finish_run(self._run_id)
        if self._owns_warehouse:
            self.warehouse.close()

    def __enter__(self) -> "WarehouseStore":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    # ------------------------------------------------------------------
    # the warehouse extras
    # ------------------------------------------------------------------
    def register_graph(self, name: str, graph) -> None:
        """Record ``name``'s content address (fingerprint and canonical
        relabeling), to be committed atomically with the entry's record
        group — the hook :func:`~repro.analysis.sweep.sweep_to_store`
        calls when its store supports it."""
        from repro.graphs.canonical import canonical_form

        form = canonical_form(graph)
        self._pending_graphs[name] = (
            form.fingerprint,
            json.dumps(list(form.to_canonical), separators=(",", ":")),
        )
