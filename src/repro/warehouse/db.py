"""The results warehouse: one indexed sqlite store under everything.

Before this module the repository produced four bespoke result formats —
sweep/conformance :class:`~repro.engine.store.ResultStore` JSONL files,
the service's cache JSONL with its byte-offset index, and the
``BENCH_*.json`` perf records — joined only by ad-hoc full-file scans
(warming the service re-streamed entire corpora to join records by
name).  :class:`Warehouse` replaces the *storage* layer of all four with
a single sqlite database while keeping the canonical-JSON record text of
:mod:`repro.engine.records` as the one wire format: every row stores the
exact line an export writes back, so the JSONL/JSON files are demoted to
import/export formats with byte-identical round-trip.

Schema (``repro-warehouse/1``)
    ``records``
        One row per record line.  ``dataset`` names the logical store
        (one JSONL file maps to one dataset), ``kind`` is the row shape
        (``result`` = engine record, ``cache`` = service cache envelope,
        ``bench`` = a ``repro-bench/1`` record), ``record_json`` is the
        canonical JSON text.  Content addressing: rows carrying a
        ``fingerprint`` (service cache entries) are unique per
        ``(fingerprint, task, dataset)`` and indexed for O(log n)
        lookup; every row is also indexed by ``(dataset, name, task)``
        (the resume key) and ``(name, family, task)`` (cross-dataset
        joins by corpus entry).
    ``graphs``
        The corpus side of the warm join: ``(dataset, name)`` ->
        ``(fingerprint, to_canonical)`` recorded when a warehouse-backed
        sweep (or an explicit corpus registration) has the graph in
        hand.  This is what turns service warming from a corpus
        re-stream into a key-indexed join query.
    ``runs``
        Provenance: schema version, environment fingerprint (the bench
        harness's :func:`~repro.analysis.bench.env_fingerprint`), and
        UTC timestamps per import / sweep / bench invocation.  Bench
        rows reference their run, which is what makes ``repro report
        --trend`` a table instead of archaeology.
    ``meta``
        The warehouse schema version, checked on open.

Atomicity
    WAL journal mode with explicit transactions.  A record *group*
    (multi-record tasks: sub-records then their summary) commits as one
    transaction, so a SIGKILL at any point leaves only whole groups —
    the transactional analog of the JSONL store's torn-tail repair, with
    the repair done by sqlite's rollback journal instead of truncation.
    Resume is then a key query (``SELECT name, task``), never a file
    replay.

Determinism
    Timestamps live only in ``runs``; ``records`` rows are pure
    functions of their inputs, so exports stay byte-identical across
    re-imports and kill/resume cycles.
"""

from __future__ import annotations

import datetime
import json
import os
import sqlite3
from typing import Any, Dict, Iterator, List, Optional, Sequence, Set, Tuple

from repro.errors import StoreError

SCHEMA_VERSION = "repro-warehouse/1"

#: File extensions recognized as warehouse databases (everything else is
#: treated as JSONL by the store/cache factories).
WAREHOUSE_EXTENSIONS = (".sqlite", ".sqlite3", ".db", ".warehouse")

#: Row shapes in the ``records`` table.
RECORD_KINDS = ("result", "cache", "bench")

_SCHEMA = """
CREATE TABLE IF NOT EXISTS meta (
    key   TEXT PRIMARY KEY,
    value TEXT NOT NULL
);
CREATE TABLE IF NOT EXISTS runs (
    id             INTEGER PRIMARY KEY,
    kind           TEXT NOT NULL,
    label          TEXT,
    schema_version TEXT NOT NULL,
    env_json       TEXT NOT NULL,
    started_at     TEXT NOT NULL,
    finished_at    TEXT
);
CREATE TABLE IF NOT EXISTS records (
    id          INTEGER PRIMARY KEY,
    dataset     TEXT NOT NULL,
    kind        TEXT NOT NULL,
    name        TEXT NOT NULL,
    task        TEXT NOT NULL,
    entry       TEXT,
    family      TEXT,
    fingerprint TEXT,
    record_json TEXT NOT NULL,
    run_id      INTEGER REFERENCES runs(id)
);
CREATE INDEX IF NOT EXISTS records_by_key
    ON records(dataset, name, task);
CREATE INDEX IF NOT EXISTS records_by_name_family_task
    ON records(name, family, task);
CREATE UNIQUE INDEX IF NOT EXISTS records_by_fingerprint
    ON records(fingerprint, task, dataset) WHERE fingerprint IS NOT NULL;
CREATE TABLE IF NOT EXISTS graphs (
    dataset      TEXT NOT NULL,
    name         TEXT NOT NULL,
    fingerprint  TEXT NOT NULL,
    to_canonical TEXT NOT NULL,
    PRIMARY KEY (dataset, name)
);
CREATE INDEX IF NOT EXISTS graphs_by_fingerprint ON graphs(fingerprint);
CREATE TABLE IF NOT EXISTS telemetry (
    id          INTEGER PRIMARY KEY,
    run_id      INTEGER REFERENCES runs(id),
    kind        TEXT NOT NULL,
    name        TEXT NOT NULL,
    labels_json TEXT NOT NULL,
    value_json  TEXT NOT NULL
);
CREATE INDEX IF NOT EXISTS telemetry_by_run ON telemetry(run_id, kind, name);
"""


def is_warehouse_path(path: Optional[str]) -> bool:
    """True if ``path`` names a warehouse database (by extension) — the
    dispatch rule of :func:`repro.engine.store.open_result_store` and the
    service cache, documented in DESIGN.md."""
    if not path:
        return False
    return os.path.splitext(path)[1].lower() in WAREHOUSE_EXTENSIONS


def _utcnow() -> str:
    return (
        datetime.datetime.now(datetime.timezone.utc)
        .isoformat(timespec="seconds")
        .replace("+00:00", "Z")
    )


class Warehouse:
    """One open warehouse database.

    Safe for multiple concurrent *processes* (WAL mode plus a generous
    busy timeout serialize writers at the sqlite layer) and for multiple
    threads serialized by the caller (the service core's bookkeeping
    lock); a single :class:`Warehouse` instance performs no internal
    locking of its own.
    """

    def __init__(self, path: str):
        self.path = path
        # isolation_level=None: no implicit transactions — every write
        # below is wrapped in an explicit BEGIN IMMEDIATE ... COMMIT so
        # group atomicity is visible in the code, not in driver defaults
        self._conn = sqlite3.connect(
            path, isolation_level=None, check_same_thread=False
        )
        self._conn.execute("PRAGMA journal_mode=WAL")
        self._conn.execute("PRAGMA synchronous=NORMAL")
        self._conn.execute("PRAGMA busy_timeout=30000")
        self._init_schema()

    def _init_schema(self) -> None:
        # executescript() autocommits (it would end any open explicit
        # transaction), so run it bare — every statement is idempotent
        # CREATE IF NOT EXISTS — and version-stamp with an atomic
        # INSERT OR IGNORE that concurrent initializers race safely
        self._conn.executescript(_SCHEMA)
        self._conn.execute(
            "INSERT OR IGNORE INTO meta(key, value) "
            "VALUES ('schema_version', ?)",
            (SCHEMA_VERSION,),
        )
        row = self._conn.execute(
            "SELECT value FROM meta WHERE key='schema_version'"
        ).fetchone()
        if row[0] != SCHEMA_VERSION:
            raise StoreError(
                f"warehouse '{self.path}' has schema version {row[0]!r}; "
                f"this build reads {SCHEMA_VERSION!r}"
            )

    # ------------------------------------------------------------------
    # runs (provenance)
    # ------------------------------------------------------------------
    def begin_run(self, kind: str, label: Optional[str] = None) -> int:
        """Open a provenance row; returns its id for record attribution."""
        from repro.analysis.bench import env_fingerprint

        cursor = self._conn.execute(
            "INSERT INTO runs(kind, label, schema_version, env_json, "
            "started_at) VALUES (?, ?, ?, ?, ?)",
            (
                kind,
                label,
                SCHEMA_VERSION,
                json.dumps(env_fingerprint(), sort_keys=True,
                           separators=(",", ":")),
                _utcnow(),
            ),
        )
        return int(cursor.lastrowid)

    def finish_run(self, run_id: int) -> None:
        self._conn.execute(
            "UPDATE runs SET finished_at=? WHERE id=?", (_utcnow(), run_id)
        )

    def runs(self) -> List[Dict[str, Any]]:
        rows = self._conn.execute(
            "SELECT id, kind, label, env_json, started_at, finished_at "
            "FROM runs ORDER BY id"
        ).fetchall()
        return [
            {
                "id": r[0],
                "kind": r[1],
                "label": r[2],
                "env": json.loads(r[3]),
                "started_at": r[4],
                "finished_at": r[5],
            }
            for r in rows
        ]

    # ------------------------------------------------------------------
    # result records (the engine-store shape)
    # ------------------------------------------------------------------
    def result_keys(self, dataset: str) -> Set[Tuple[str, str]]:
        """Every durable ``(name, task)`` key of a dataset — the resume
        query that replaces the JSONL full-file replay."""
        rows = self._conn.execute(
            "SELECT name, task FROM records WHERE dataset=? AND kind='result'",
            (dataset,),
        ).fetchall()
        return set(rows)

    def clear_dataset(self, dataset: str) -> None:
        """Drop a dataset's records and graph registrations (the
        warehouse analog of ``ResultStore(path)`` truncating its file)."""
        self._conn.execute("BEGIN IMMEDIATE")
        try:
            self._conn.execute(
                "DELETE FROM records WHERE dataset=?", (dataset,)
            )
            self._conn.execute("DELETE FROM graphs WHERE dataset=?", (dataset,))
            self._conn.execute("COMMIT")
        except BaseException:
            self._conn.execute("ROLLBACK")
            raise

    def append_group(
        self,
        dataset: str,
        rows: Sequence[Tuple[str, str, Optional[str], str]],
        family: Optional[str] = None,
        graph_rows: Sequence[Tuple[str, str, str]] = (),
        run_id: Optional[int] = None,
    ) -> None:
        """Commit one record group atomically.

        ``rows`` are ``(name, task, entry, record_json)`` in append
        order; ``graph_rows`` are ``(name, fingerprint, to_canonical_json)``
        corpus registrations that must land with the group.  A SIGKILL
        anywhere inside rolls the whole group back on the next open —
        the transactional torn-tail repair.
        """
        self._conn.execute("BEGIN IMMEDIATE")
        try:
            self._conn.executemany(
                "INSERT INTO records(dataset, kind, name, task, entry, "
                "family, fingerprint, record_json, run_id) "
                "VALUES (?, 'result', ?, ?, ?, ?, NULL, ?, ?)",
                [
                    (dataset, name, task, entry, family, record_json, run_id)
                    for name, task, entry, record_json in rows
                ],
            )
            if graph_rows:
                self._conn.executemany(
                    "INSERT OR REPLACE INTO graphs(dataset, name, "
                    "fingerprint, to_canonical) VALUES (?, ?, ?, ?)",
                    [(dataset, n, fp, tc) for n, fp, tc in graph_rows],
                )
            self._conn.execute("COMMIT")
        except BaseException:
            self._conn.execute("ROLLBACK")
            raise

    def iter_lines(self, dataset: str) -> Iterator[str]:
        """The dataset's record lines in append order — exactly the
        lines of its JSONL export (without newlines)."""
        cursor = self._conn.execute(
            "SELECT record_json FROM records WHERE dataset=? ORDER BY id",
            (dataset,),
        )
        for (line,) in cursor:
            yield line

    def iter_records(self, dataset: str) -> Iterator[Dict[str, Any]]:
        """The dataset's records, parsed, in append order."""
        for line in self.iter_lines(dataset):
            yield json.loads(line)

    def datasets(self) -> List[Tuple[str, str, int]]:
        """``(dataset, kind, row count)`` for every dataset present."""
        return [
            (r[0], r[1], r[2])
            for r in self._conn.execute(
                "SELECT dataset, kind, COUNT(*) FROM records "
                "GROUP BY dataset, kind ORDER BY dataset"
            )
        ]

    # ------------------------------------------------------------------
    # graph registrations (the corpus side of the warm join)
    # ------------------------------------------------------------------
    def register_graph(
        self,
        dataset: str,
        name: str,
        fingerprint: str,
        to_canonical: Sequence[int],
    ) -> None:
        """Record a corpus entry's content address so its result rows
        become warm-joinable without re-opening the corpus."""
        self._conn.execute("BEGIN IMMEDIATE")
        try:
            self._conn.execute(
                "INSERT OR REPLACE INTO graphs(dataset, name, fingerprint, "
                "to_canonical) VALUES (?, ?, ?, ?)",
                (
                    dataset,
                    name,
                    fingerprint,
                    json.dumps(list(to_canonical), separators=(",", ":")),
                ),
            )
            self._conn.execute("COMMIT")
        except BaseException:
            self._conn.execute("ROLLBACK")
            raise

    def registered_graphs(self, dataset: Optional[str] = None) -> int:
        if dataset is None:
            row = self._conn.execute("SELECT COUNT(*) FROM graphs").fetchone()
        else:
            row = self._conn.execute(
                "SELECT COUNT(*) FROM graphs WHERE dataset=?", (dataset,)
            ).fetchone()
        return int(row[0])

    def warm_join(
        self, tasks: Sequence[str]
    ) -> Iterator[Tuple[str, str, List[int], Dict[str, Any]]]:
        """The warm query: every group-terminating result record whose
        corpus entry has a registered graph, joined on ``(dataset,
        name)`` — yields ``(task, fingerprint, to_canonical, record)``.
        This is the indexed replacement for ``warm_from_stores``'s
        corpus re-stream: no graph is generated, no certificate
        recomputed."""
        placeholders = ",".join("?" for _ in tasks)
        cursor = self._conn.execute(
            f"SELECT r.task, g.fingerprint, g.to_canonical, r.record_json "
            f"FROM records r JOIN graphs g "
            f"ON g.dataset = r.dataset AND g.name = r.name "
            f"WHERE r.kind='result' AND r.task IN ({placeholders}) "
            f"AND (r.entry IS NULL OR r.entry = r.name) "
            f"ORDER BY r.id",
            tuple(tasks),
        )
        for task, fingerprint, to_canonical, record_json in cursor:
            yield (
                task,
                fingerprint,
                json.loads(to_canonical),
                json.loads(record_json),
            )

    # ------------------------------------------------------------------
    # cache entries (the service shape: content-addressed envelopes)
    # ------------------------------------------------------------------
    def put_cache_entry(
        self,
        dataset: str,
        fingerprint: str,
        task: str,
        name: str,
        envelope_json: str,
        run_id: Optional[int] = None,
    ) -> bool:
        """Insert one service cache envelope (idempotently: the
        ``(fingerprint, task, dataset)`` unique index makes re-puts
        no-ops).  Returns True if the row is new."""
        self._conn.execute("BEGIN IMMEDIATE")
        try:
            cursor = self._conn.execute(
                "INSERT OR IGNORE INTO records(dataset, kind, name, task, "
                "entry, family, fingerprint, record_json, run_id) "
                "VALUES (?, 'cache', ?, ?, NULL, NULL, ?, ?, ?)",
                (dataset, name, task, fingerprint, envelope_json, run_id),
            )
            self._conn.execute("COMMIT")
        except BaseException:
            self._conn.execute("ROLLBACK")
            raise
        return cursor.rowcount > 0

    def get_cache_entry(
        self, dataset: str, fingerprint: str, task: str
    ) -> Optional[str]:
        """The envelope line of a content-addressed entry, or None —
        one indexed lookup, the query behind an LRU-eviction re-read."""
        row = self._conn.execute(
            "SELECT record_json FROM records WHERE fingerprint=? AND task=? "
            "AND dataset=?",
            (fingerprint, task, dataset),
        ).fetchone()
        return None if row is None else row[0]

    def recent_cache_entries(self, dataset: str, limit: int) -> List[str]:
        """The envelope lines of the ``limit`` most recently inserted
        cache entries, oldest first — the service's LRU preload on
        reopen (so a restart starts warm without replaying the whole
        tier)."""
        if limit <= 0:
            return []
        rows = self._conn.execute(
            "SELECT record_json FROM records WHERE dataset=? AND "
            "kind='cache' ORDER BY id DESC LIMIT ?",
            (dataset, limit),
        ).fetchall()
        return [row[0] for row in reversed(rows)]

    def cache_size(self, dataset: str) -> int:
        row = self._conn.execute(
            "SELECT COUNT(*) FROM records WHERE dataset=? AND kind='cache'",
            (dataset,),
        ).fetchone()
        return int(row[0])

    # ------------------------------------------------------------------
    # bench records
    # ------------------------------------------------------------------
    def append_bench(
        self,
        record: Dict[str, Any],
        run_id: int,
        dataset: str = "bench",
    ) -> None:
        """Store one ``repro-bench/1`` record under its run."""
        self._conn.execute("BEGIN IMMEDIATE")
        try:
            self._conn.execute(
                "INSERT INTO records(dataset, kind, name, task, entry, "
                "family, fingerprint, record_json, run_id) "
                "VALUES (?, 'bench', ?, 'bench', NULL, NULL, NULL, ?, ?)",
                (
                    dataset,
                    record.get("scenario", "?"),
                    json.dumps(record, sort_keys=True, separators=(",", ":")),
                    run_id,
                ),
            )
            self._conn.execute("COMMIT")
        except BaseException:
            self._conn.execute("ROLLBACK")
            raise

    def bench_rows(self) -> List[Tuple[int, str, Dict[str, Any]]]:
        """``(run_id, scenario, record)`` for every stored bench record,
        in insertion order."""
        rows = self._conn.execute(
            "SELECT run_id, name, record_json FROM records "
            "WHERE kind='bench' ORDER BY id"
        ).fetchall()
        return [(r[0], r[1], json.loads(r[2])) for r in rows]

    # ------------------------------------------------------------------
    # telemetry (the repro.obs shape: metric snapshots + span events)
    # ------------------------------------------------------------------
    def append_telemetry(
        self,
        run_id: int,
        snapshot: Optional[Dict[str, Any]] = None,
        events: Optional[Sequence[Dict[str, Any]]] = None,
    ) -> int:
        """Store an obs registry snapshot and/or a list of span events
        under a run, as one transaction.

        ``snapshot`` is :meth:`repro.obs.Registry.snapshot` output:
        counters / gauges land as one row each (``value_json`` the
        number), histograms as one row carrying count / sum / buckets.
        ``events`` are span event dicts, one ``kind='span'`` row each.
        Returns the number of rows inserted.  ``repro report --trend``
        charts histogram rows across runs; ``repro obs export`` replays
        span rows into a Chrome trace."""
        rows: List[Tuple[str, str, str, str]] = []

        def pack(kind: str, name: str, labels: Any, value: Any) -> None:
            rows.append(
                (
                    kind,
                    name,
                    json.dumps(labels, sort_keys=True, separators=(",", ":")),
                    json.dumps(value, sort_keys=True, separators=(",", ":")),
                )
            )

        if snapshot:
            for c in snapshot.get("counters", []):
                pack("counter", c["name"], c.get("labels", {}), c["value"])
            for g in snapshot.get("gauges", []):
                pack("gauge", g["name"], g.get("labels", {}), g["value"])
            for h in snapshot.get("histograms", []):
                pack(
                    "histogram",
                    h["name"],
                    h.get("labels", {}),
                    {
                        "count": h["count"],
                        "sum": h["sum"],
                        "buckets": h["buckets"],
                        "bucket_counts": h["bucket_counts"],
                    },
                )
        for ev in events or ():
            pack("span", ev.get("name", "?"), {}, ev)
        if not rows:
            return 0
        self._conn.execute("BEGIN IMMEDIATE")
        try:
            self._conn.executemany(
                "INSERT INTO telemetry(run_id, kind, name, labels_json, "
                "value_json) VALUES (?, ?, ?, ?, ?)",
                [(run_id,) + row for row in rows],
            )
            self._conn.execute("COMMIT")
        except BaseException:
            self._conn.execute("ROLLBACK")
            raise
        return len(rows)

    def telemetry_rows(
        self,
        run_id: Optional[int] = None,
        kind: Optional[str] = None,
    ) -> List[Dict[str, Any]]:
        """Telemetry rows in insertion order, optionally filtered by run
        and kind; ``labels`` and ``value`` come back parsed."""
        query = (
            "SELECT run_id, kind, name, labels_json, value_json "
            "FROM telemetry"
        )
        clauses, params = [], []
        if run_id is not None:
            clauses.append("run_id=?")
            params.append(run_id)
        if kind is not None:
            clauses.append("kind=?")
            params.append(kind)
        if clauses:
            query += " WHERE " + " AND ".join(clauses)
        query += " ORDER BY id"
        return [
            {
                "run_id": r[0],
                "kind": r[1],
                "name": r[2],
                "labels": json.loads(r[3]),
                "value": json.loads(r[4]),
            }
            for r in self._conn.execute(query, tuple(params))
        ]

    # ------------------------------------------------------------------
    # health
    # ------------------------------------------------------------------
    def integrity_check(self) -> str:
        """sqlite's own corruption check; 'ok' on a healthy file."""
        return str(self._conn.execute("PRAGMA integrity_check").fetchone()[0])

    def close(self) -> None:
        if self._conn is not None:
            self._conn.close()
            self._conn = None

    def __enter__(self) -> "Warehouse":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()
