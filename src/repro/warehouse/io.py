"""Import/export: the JSONL/JSON files as wire formats of the warehouse.

The warehouse stores every record as the exact canonical-JSON text the
legacy files carry, so the demotion of those files to import/export
formats is lossless by construction:

* a **result store** (``repro sweep --out FILE``) imports line-by-line
  into one dataset, group-atomically, and exports back byte-identical;
* a **service cache** file imports its content-addressed envelopes under
  the same ``(fingerprint, task)`` uniqueness the live cache enforces;
* a **BENCH_<scenario>.json** record imports under a run row and exports
  back through the same :func:`repro.analysis.bench.write_json`
  serializer, hence byte-identical as well.

Format sniffing reads the first line: a JSONL line that parses as a
cache envelope / engine record selects ``cache`` / ``store``; a file
whose first line is not a JSON document but which parses as a whole is a
``bench`` record.  ``import_file`` accepts an explicit format when a
file is ambiguous.

``register_corpus_graphs`` is the migration path for stores swept before
the warehouse existed: it re-streams a corpus **once**, records each
entry's content address in the ``graphs`` table, and from then on every
service warm-up is a join query instead of another re-stream.
"""

from __future__ import annotations

import json
import os
from typing import Dict, Iterable, List, Optional, Tuple

from repro.engine.records import Record
from repro.engine.store import record_key
from repro.errors import StoreError
from repro.warehouse.db import Warehouse

IMPORT_FORMATS = ("store", "cache", "bench")


def default_dataset(path: str) -> str:
    """A dataset name from a file path: the basename without extension."""
    return os.path.splitext(os.path.basename(path))[0]


def sniff_format(path: str) -> str:
    """Guess an import file's format from its first line (see module
    docstring); raise :class:`StoreError` when nothing matches."""
    with open(path, "r", encoding="utf-8") as fh:
        first = next((line for line in fh if line.strip()), None)
    if first is None:
        raise StoreError(f"'{path}' is empty; nothing to import")
    try:
        doc = json.loads(first)
    except ValueError:
        doc = None
    if isinstance(doc, dict):
        if {"fingerprint", "task", "record"} <= doc.keys():
            return "cache"
        if {"name", "task"} <= doc.keys():
            return "store"
    # not line-oriented: try the whole file (a BENCH record is one
    # indented JSON document)
    with open(path, "r", encoding="utf-8") as fh:
        try:
            doc = json.load(fh)
        except ValueError:
            raise StoreError(
                f"'{path}' is neither a result store, a cache file nor a "
                f"bench record; pass an explicit format"
            ) from None
    if isinstance(doc, dict) and str(doc.get("schema", "")).startswith(
        "repro-bench/"
    ):
        return "bench"
    raise StoreError(
        f"'{path}' is neither a result store, a cache file nor a bench "
        f"record; pass an explicit format"
    )


# ----------------------------------------------------------------------
# imports
# ----------------------------------------------------------------------
def _import_store(wh: Warehouse, path: str, dataset: str, run_id: int) -> int:
    """One result-store JSONL file -> one dataset, group by group."""
    group: List[Tuple[str, str, Optional[str], str]] = []
    imported = 0
    with open(path, "r", encoding="utf-8") as fh:
        for lineno, line in enumerate(fh, start=1):
            if not line.strip():
                continue
            try:
                record: Record = json.loads(line)
                key = record_key(record)
            except (ValueError, StoreError) as exc:
                raise StoreError(
                    f"{path}:{lineno}: not an engine record ({exc}); "
                    f"imports require intact stores — resume the sweep to "
                    f"repair a torn tail first"
                ) from None
            name = record["name"]
            group.append(
                (name, key[1], record.get("entry"), line.rstrip("\n"))
            )
            if record.get("entry", name) == name:
                wh.append_group(dataset, group, run_id=run_id)
                imported += len(group)
                group.clear()
    if group:
        raise StoreError(
            f"'{path}' ends in an unterminated record group "
            f"({len(group)} sub-records with no summary); resume the sweep "
            f"to complete it before importing"
        )
    return imported


def _import_cache(wh: Warehouse, path: str, dataset: str, run_id: int) -> int:
    from repro.service.cache import ResultCache

    imported = 0
    with open(path, "r", encoding="utf-8") as fh:
        for lineno, line in enumerate(fh, start=1):
            if not line.strip():
                continue
            try:
                entry = json.loads(line)
                (fingerprint, task), record = ResultCache._entry_key(entry)
            except Exception as exc:
                raise StoreError(
                    f"{path}:{lineno}: not a cache entry ({exc})"
                ) from None
            if wh.put_cache_entry(
                dataset,
                fingerprint,
                task,
                str(record.get("name", fingerprint)),
                line.rstrip("\n"),
                run_id=run_id,
            ):
                imported += 1
    return imported


def _import_bench(wh: Warehouse, path: str, dataset: str, run_id: int) -> int:
    from repro.analysis.bench import validate_bench_record

    with open(path, "r", encoding="utf-8") as fh:
        try:
            record = json.load(fh)
        except ValueError as exc:
            raise StoreError(
                f"'{path}' is not a bench record (one JSON document): {exc}"
            ) from None
    validate_bench_record(record)
    wh.append_bench(record, run_id, dataset=dataset)
    return 1


def import_file(
    wh: Warehouse,
    path: str,
    fmt: Optional[str] = None,
    dataset: Optional[str] = None,
    label: Optional[str] = None,
    run_id: Optional[int] = None,
) -> Tuple[str, str, int]:
    """Import one file; returns ``(format, dataset, rows imported)``.

    ``run_id`` lets a caller group several files (e.g. one ``repro
    bench`` invocation's BENCH records) under a single provenance row;
    by default each file gets its own ``import`` run.
    """
    if not os.path.exists(path):
        raise StoreError(f"no such import file: '{path}'")
    fmt = fmt or sniff_format(path)
    if fmt not in IMPORT_FORMATS:
        raise StoreError(
            f"unknown import format '{fmt}'; expected one of "
            f"{', '.join(IMPORT_FORMATS)}"
        )
    dataset = dataset or ("bench" if fmt == "bench" else default_dataset(path))
    own_run = run_id is None
    if own_run:
        run_id = wh.begin_run("import", label or path)
    imported = {
        "store": _import_store,
        "cache": _import_cache,
        "bench": _import_bench,
    }[fmt](wh, path, dataset, run_id)
    if own_run:
        wh.finish_run(run_id)
    return fmt, dataset, imported


# ----------------------------------------------------------------------
# exports
# ----------------------------------------------------------------------
def export_dataset(wh: Warehouse, dataset: str, path: str) -> int:
    """Write a result/cache dataset back to its JSONL wire format.

    The written bytes equal the file the live JSONL backend would have
    produced — and, for an imported dataset, the imported file itself
    (the round-trip gate CI enforces on the golden stores).
    """
    kinds = {kind for ds, kind, _count in wh.datasets() if ds == dataset}
    if not kinds:
        raise StoreError(f"warehouse has no dataset '{dataset}'")
    if "bench" in kinds:
        raise StoreError(
            f"dataset '{dataset}' holds bench records; use export_bench "
            f"(BENCH_*.json is not a JSONL format)"
        )
    lines = 0
    with open(path, "w", encoding="utf-8", newline="") as fh:
        for line in wh.iter_lines(dataset):
            fh.write(line + "\n")
            lines += 1
    return lines


def export_bench(
    wh: Warehouse, out_dir: str, run_id: Optional[int] = None
) -> List[str]:
    """Write BENCH_<scenario>.json files for one bench run (default: the
    latest run holding bench records), via the harness's own serializer
    — byte-identical to what ``repro bench`` wrote when it recorded."""
    from repro.analysis.bench import write_json

    rows = wh.bench_rows()
    if not rows:
        raise StoreError("warehouse holds no bench records")
    if run_id is None:
        run_id = rows[-1][0]
    selected = [(s, r) for rid, s, r in rows if rid == run_id]
    if not selected:
        raise StoreError(f"no bench records under run {run_id}")
    os.makedirs(out_dir, exist_ok=True)
    written = []
    for scenario, record in selected:
        out_path = os.path.join(out_dir, f"BENCH_{scenario}.json")
        write_json(out_path, record)
        written.append(out_path)
    return written


# ----------------------------------------------------------------------
# corpus registration (migrating pre-warehouse stores)
# ----------------------------------------------------------------------
def register_corpus_graphs(
    wh: Warehouse,
    dataset: str,
    corpus: Iterable[Tuple[str, object]],
    names: Optional[Iterable[str]] = None,
) -> int:
    """Stream a corpus once, recording content addresses for the
    dataset's entry names; stops as soon as every wanted name is seen.
    Returns the number of graphs registered."""
    from repro.graphs.canonical import canonical_form

    if names is None:
        wanted = {
            row[0]
            for row in wh._conn.execute(
                "SELECT DISTINCT name FROM records WHERE dataset=? "
                "AND kind='result'",
                (dataset,),
            )
        }
    else:
        wanted = set(names)
    registered = 0
    for name, graph in corpus:
        if name not in wanted:
            continue
        form = canonical_form(graph)
        wh.register_graph(dataset, name, form.fingerprint, form.to_canonical)
        wanted.discard(name)
        registered += 1
        if not wanted:
            break
    return registered
