"""Binary coding substrate.

The oracle's advice is a *single binary string*; its size in bits is the
quantity every theorem bounds.  This package implements, with exact
decoders, every codec the paper uses:

* :class:`Bits` — an immutable bitstring with O(1) length accounting;
* ``Concat`` / ``Decode`` — the digit-doubling concatenation of
  Section 3 (each bit doubled, components separated by ``01``);
* integer codes ``bin(x)``;
* the labeled-rooted-tree code for the BFS tree A2 (Proposition 3.1);
* the trie code for E1 and the tries inside E2 (Proposition 3.2);
* the nested-list code for E2 (Proposition 3.4).
"""

from repro.coding.bitstring import Bits
from repro.coding.concat import concat_bits, decode_concat
from repro.coding.integers import decode_uint, encode_uint
from repro.coding.trees import LabeledRootedTree, decode_tree, encode_tree
from repro.coding.tries import Trie, decode_trie, encode_trie, trie_leaf, trie_node
from repro.coding.nested import decode_e2, encode_e2

__all__ = [
    "Bits",
    "concat_bits",
    "decode_concat",
    "encode_uint",
    "decode_uint",
    "LabeledRootedTree",
    "encode_tree",
    "decode_tree",
    "Trie",
    "trie_leaf",
    "trie_node",
    "encode_trie",
    "decode_trie",
    "encode_e2",
    "decode_e2",
]
