"""The nested-list code for advice item E2 (Proposition 3.4).

E2 is a list of couples ``(i, L(i))`` for ``i = 2..phi``, where each
``L(i)`` is a list of couples ``(j, T_j)`` with ``j`` an integer label and
``T_j`` a trie discriminating the depth-``i`` views of the nodes whose
depth-``(i-1)`` label is ``j``.

Following the paper's ``bin(L)`` definition::

    bin(L)    = Concat(bin(a_1), bin(L_1), ..., bin(a_k), bin(L_k))
    bin(L_i)  = Concat(bin(b_1), bin(T_1), ..., bin(b_m), bin(T_m))

with integer and trie codes from the sibling modules.  An empty list codes
to the empty string (it is always wrapped by an outer Concat, so framing is
preserved).
"""

from __future__ import annotations

from typing import Dict, List, Tuple

from repro.coding.bitstring import Bits
from repro.coding.concat import concat_bits, decode_concat
from repro.coding.integers import decode_uint, encode_uint
from repro.coding.tries import Trie, decode_trie, encode_trie
from repro.errors import CodingError

# E2 in structured form: ordered list of (depth, [(label, trie), ...]).
E2Type = List[Tuple[int, List[Tuple[int, Trie]]]]


def _encode_inner(inner: List[Tuple[int, Trie]]) -> Bits:
    parts: List[Bits] = []
    for label, trie in inner:
        parts.append(encode_uint(label))
        parts.append(encode_trie(trie))
    return concat_bits(parts)


def _decode_inner(bits: Bits) -> List[Tuple[int, Trie]]:
    parts = decode_concat(bits)
    if len(parts) % 2 != 0:
        raise CodingError("inner E2 list must alternate label/trie codes")
    result: List[Tuple[int, Trie]] = []
    for k in range(0, len(parts), 2):
        label = decode_uint(parts[k])
        trie = decode_trie(parts[k + 1])
        result.append((label, trie))
    return result


def encode_e2(e2: E2Type) -> Bits:
    """``bin(E2)`` for the nested list E2."""
    parts: List[Bits] = []
    for depth, inner in e2:
        parts.append(encode_uint(depth))
        parts.append(_encode_inner(inner))
    return concat_bits(parts)


def decode_e2(bits: Bits) -> E2Type:
    """Inverse of :func:`encode_e2`."""
    parts = decode_concat(bits)
    if len(parts) % 2 != 0:
        raise CodingError("E2 code must alternate depth/inner-list codes")
    result: E2Type = []
    for k in range(0, len(parts), 2):
        depth = decode_uint(parts[k])
        inner = _decode_inner(parts[k + 1])
        result.append((depth, inner))
    return result


def e2_as_maps(e2: E2Type) -> Dict[int, Dict[int, Trie]]:
    """Convenience: E2 as {depth: {label: trie}} for O(1) lookups by
    ``RetrieveLabel``.  Duplicate depths or labels are a corruption."""
    out: Dict[int, Dict[int, Trie]] = {}
    for depth, inner in e2:
        if depth in out:
            raise CodingError(f"duplicate depth {depth} in E2")
        layer: Dict[int, Trie] = {}
        for label, trie in inner:
            if label in layer:
                raise CodingError(f"duplicate label {label} at depth {depth} in E2")
            layer[label] = trie
        out[depth] = layer
    return out
