"""Tries: the query trees at the heart of advice item A1.

A trie is a rooted binary tree.  Internal nodes carry a *query*, coded as a
pair of non-negative integers ``(a, b)``; leaves carry the label ``(0)``
(paper convention) and correspond to discriminated objects.  The left child
is the "no" branch, the right child the "yes" branch.

Query semantics (interpreted by ``LocalLabel``, Algorithm 2):

* depth-1 mode (list ``X`` empty):
  ``(0, t)`` — "is ``len(bin(B))``  < t?";
  ``(1, j)`` — "is the j-th bit of ``bin(B)`` equal to 1?";
* deeper mode (``X`` nonempty):
  ``(i, y)`` — "is the (i+1)-th term of ``X`` equal to ``y``?"
  (LocalLabel goes *left* when the term differs from ``y``).

The binary code mirrors the labeled-tree code: a structure walk plus the
queries in preorder.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Tuple

from repro.coding.bitstring import Bits
from repro.coding.concat import concat_bits, decode_concat
from repro.coding.integers import decode_uint, encode_uint
from repro.errors import CodingError


@dataclass(frozen=True)
class Trie:
    """A trie node.  ``query is None`` iff this is a leaf."""

    query: Optional[Tuple[int, int]]
    left: Optional["Trie"] = None
    right: Optional["Trie"] = None

    def __post_init__(self):
        if self.query is None:
            if self.left is not None or self.right is not None:
                raise CodingError("a trie leaf cannot have children")
        else:
            if self.left is None or self.right is None:
                raise CodingError("a trie internal node must have two children")
            a, b = self.query
            if a < 0 or b < 0:
                raise CodingError(f"trie query must be non-negative, got {self.query}")

    # ------------------------------------------------------------------
    @property
    def is_leaf(self) -> bool:
        return self.query is None

    def num_leaves(self) -> int:
        """Number of leaves (objects discriminated by this trie)."""
        if self.is_leaf:
            return 1
        return self.left.num_leaves() + self.right.num_leaves()

    def size(self) -> int:
        """Total number of nodes; always ``2 * num_leaves() - 1``."""
        if self.is_leaf:
            return 1
        return 1 + self.left.size() + self.right.size()

    def depth(self) -> int:
        if self.is_leaf:
            return 0
        return 1 + max(self.left.depth(), self.right.depth())

    def queries(self) -> List[Tuple[int, int]]:
        """All internal-node queries, preorder."""
        if self.is_leaf:
            return []
        return [self.query] + self.left.queries() + self.right.queries()


def trie_leaf() -> Trie:
    """A single-leaf trie (the paper's "single node labeled (0)")."""
    return Trie(None)


def trie_node(query: Tuple[int, int], left: Trie, right: Trie) -> Trie:
    """An internal trie node with a query and two subtries."""
    return Trie(query, left, right)


# ----------------------------------------------------------------------
# codec: preorder with explicit leaf/internal markers
# ----------------------------------------------------------------------
def encode_trie(trie: Trie) -> Bits:
    """Binary code of a trie: ``Concat`` of preorder node records, each
    ``Concat(bin(0))`` for a leaf or ``Concat(bin(1), bin(a), bin(b))`` for
    an internal node with query ``(a, b)``."""
    records: List[Bits] = []

    def dfs(node: Trie) -> None:
        if node.is_leaf:
            records.append(concat_bits([encode_uint(0)]))
        else:
            a, b = node.query
            records.append(
                concat_bits([encode_uint(1), encode_uint(a), encode_uint(b)])
            )
            dfs(node.left)
            dfs(node.right)

    dfs(trie)
    return concat_bits(records)


def decode_trie(bits: Bits) -> Trie:
    """Inverse of :func:`encode_trie`."""
    records = decode_concat(bits)
    if not records:
        raise CodingError("empty trie code")
    pos = 0

    def parse() -> Trie:
        nonlocal pos
        if pos >= len(records):
            raise CodingError("trie code ended prematurely")
        fields = decode_concat(records[pos])
        pos += 1
        if not fields:
            raise CodingError("empty trie node record")
        kind = decode_uint(fields[0])
        if kind == 0:
            if len(fields) != 1:
                raise CodingError("leaf record must have no payload")
            return trie_leaf()
        if kind == 1:
            if len(fields) != 3:
                raise CodingError("internal record must carry a (a, b) query")
            a = decode_uint(fields[1])
            b = decode_uint(fields[2])
            left = parse()
            right = parse()
            return trie_node((a, b), left, right)
        raise CodingError(f"unknown trie record kind {kind}")

    result = parse()
    if pos != len(records):
        raise CodingError(f"{len(records) - pos} trailing records in trie code")
    return result
