"""Binary codes of non-negative integers: the paper's ``bin(x)``.

``bin(x)`` is the plain binary representation without leading zeros;
``bin(0) = "0"``.  The code is *not* self-delimiting — the paper (and we)
always wrap integer codes in ``Concat``, which supplies the framing.
"""

from __future__ import annotations

from repro.coding.bitstring import Bits
from repro.errors import CodingError


def encode_uint(x: int) -> Bits:
    """``bin(x)`` for x >= 0."""
    if x < 0:
        raise CodingError(f"encode_uint requires a non-negative integer, got {x}")
    return Bits(format(x, "b"))


def decode_uint(bits: Bits) -> int:
    """Inverse of :func:`encode_uint`.

    Rejects the empty string and (except for "0" itself) leading zeros, so
    the code is canonical: ``decode_uint(encode_uint(x)) == x`` and
    ``encode_uint(decode_uint(b)) == b`` for every accepted ``b``.
    """
    s = bits.as_str()
    if s == "":
        raise CodingError("cannot decode an empty bitstring as an integer")
    if len(s) > 1 and s[0] == "0":
        raise CodingError(f"non-canonical integer code with leading zero: {s!r}")
    return int(s, 2)
