"""Labeled rooted trees with port numbers, and their binary code.

This is the carrier of advice item A2: the canonical BFS tree of the graph,
whose nodes are labeled by the ``RetrieveLabel`` integers and whose edges
carry the *graph's* port numbers at both endpoints.

Code layout (a decodable variant of the paper's (S1, S2) DFS-walk code,
same O(n log n) length class — see DESIGN.md "Substitutions"):

    bin(T) = Concat(walk, labels)
    walk   = Concat(step_1, ..., step_{2(n-1)})
    step   = Concat(bin(0), bin(p), bin(q))   for a descent through ports
             (p at parent, q at child), or
             Concat(bin(1))                    for an ascent
    labels = Concat(bin(l_1), ..., bin(l_n))   in DFS preorder

where the DFS visits children in increasing order of the parent-side port.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Optional, Tuple

from repro.coding.bitstring import Bits
from repro.coding.concat import concat_bits, decode_concat
from repro.coding.integers import decode_uint, encode_uint
from repro.errors import CodingError


@dataclass
class LabeledRootedTree:
    """A rooted tree node: an integer label plus children reached through
    port pairs ``(port_at_parent, port_at_child)``."""

    label: int
    children: List[Tuple[int, int, "LabeledRootedTree"]] = field(default_factory=list)

    # ------------------------------------------------------------------
    def add_child(
        self, port_parent: int, port_child: int, child: "LabeledRootedTree"
    ) -> None:
        self.children.append((port_parent, port_child, child))

    def size(self) -> int:
        """Number of nodes in the subtree."""
        return 1 + sum(c.size() for _, _, c in self.children)

    def iter_nodes(self) -> Iterator["LabeledRootedTree"]:
        """DFS preorder over subtree nodes (children in port order)."""
        yield self
        for _, _, child in sorted(self.children, key=lambda t: t[0]):
            yield from child.iter_nodes()

    def labels(self) -> List[int]:
        """All labels in DFS preorder."""
        return [node.label for node in self.iter_nodes()]

    # ------------------------------------------------------------------
    def find_label(self, label: int) -> Optional["LabeledRootedTree"]:
        """The unique node carrying ``label``, or None."""
        for node in self.iter_nodes():
            if node.label == label:
                return node
        return None

    def path_to_root_ports(self, label: int) -> List[Tuple[int, int]]:
        """Port pairs of the path *from the node labeled ``label`` up to the
        root*, in the paper's output format ``[(p1, q1), ...]``: the i-th
        edge is traversed from the current node through its local port
        ``p_i``, arriving through port ``q_i`` at the other end.

        Raises :class:`CodingError` if the label is absent.
        """

        def walk(node: "LabeledRootedTree") -> Optional[List[Tuple[int, int]]]:
            if node.label == label:
                return []
            for port_parent, port_child, child in node.children:
                rest = walk(child)
                if rest is not None:
                    # the upward step out of `child` uses the child's port
                    # first, then the parent's port
                    rest.append((port_child, port_parent))
                    return rest
            return None

        result = walk(self)
        if result is None:
            raise CodingError(f"label {label} not present in tree")
        return result

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, LabeledRootedTree):
            return NotImplemented
        if self.label != other.label:
            return False
        mine = sorted(self.children, key=lambda t: t[0])
        theirs = sorted(other.children, key=lambda t: t[0])
        return mine == theirs

    __hash__ = None  # type: ignore[assignment]  # mutable


# ----------------------------------------------------------------------
# codec
# ----------------------------------------------------------------------
def encode_tree(tree: LabeledRootedTree) -> Bits:
    """Binary code of a labeled rooted tree (see module docstring)."""
    steps: List[Bits] = []
    labels: List[Bits] = []

    def dfs(node: LabeledRootedTree) -> None:
        labels.append(encode_uint(node.label))
        for port_parent, port_child, child in sorted(
            node.children, key=lambda t: t[0]
        ):
            steps.append(
                concat_bits(
                    [encode_uint(0), encode_uint(port_parent), encode_uint(port_child)]
                )
            )
            dfs(child)
            steps.append(concat_bits([encode_uint(1)]))

    dfs(tree)
    return concat_bits([concat_bits(steps), concat_bits(labels)])


def decode_tree(bits: Bits) -> LabeledRootedTree:
    """Inverse of :func:`encode_tree`."""
    try:
        walk_bits, labels_bits = decode_concat(bits)
    except ValueError:
        raise CodingError("tree code must have exactly two parts (walk, labels)")
    steps = decode_concat(walk_bits) if len(walk_bits) else []
    label_codes = decode_concat(labels_bits)
    if not label_codes:
        raise CodingError("tree code has no labels")
    labels = [decode_uint(lc) for lc in label_codes]

    label_iter = iter(labels)
    root = LabeledRootedTree(next(label_iter))
    stack = [root]
    for step in steps:
        fields = decode_concat(step)
        if not fields:
            raise CodingError("empty walk step in tree code")
        kind = decode_uint(fields[0])
        if kind == 0:
            if len(fields) != 3:
                raise CodingError("descent step must carry two port numbers")
            port_parent = decode_uint(fields[1])
            port_child = decode_uint(fields[2])
            try:
                child = LabeledRootedTree(next(label_iter))
            except StopIteration:
                raise CodingError("tree code ran out of labels during walk")
            stack[-1].add_child(port_parent, port_child, child)
            stack.append(child)
        elif kind == 1:
            if len(stack) <= 1:
                raise CodingError("ascent step at the root")
            stack.pop()
        else:
            raise CodingError(f"unknown walk step kind {kind}")
    if len(stack) != 1:
        raise CodingError("tree walk did not return to the root")
    remaining = sum(1 for _ in label_iter)
    if remaining:
        raise CodingError(f"{remaining} unused labels in tree code")
    return root
