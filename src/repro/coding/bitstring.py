"""An immutable bitstring.

Backed by a Python ``str`` of ``'0'``/``'1'`` characters: advice strings in
the experiments are at most a few megabits, for which the constant factors
of ``str`` (interned, hashable, O(1) length, cheap slicing) beat a packed
representation, and the representation is trivially debuggable.  The class
exists so that "number of bits of advice" is a first-class, type-checked
quantity rather than an ad-hoc ``len`` of who-knows-what.
"""

from __future__ import annotations

from typing import Iterable, Iterator, Union

from repro.errors import CodingError

BitsLike = Union["Bits", str, Iterable[int]]


class Bits:
    """Immutable sequence of bits."""

    __slots__ = ("_s",)

    def __init__(self, value: BitsLike = ""):
        if isinstance(value, Bits):
            self._s = value._s
        elif isinstance(value, str):
            # str.strip('01') is a C-speed scan: anything left over is an
            # invalid character (this constructor is the wire codec's
            # hottest validation)
            if value.strip("01"):
                raise CodingError(
                    f"bitstring literal may contain only '0'/'1', got {value!r}"
                )
            self._s = value
        else:
            chars = []
            for b in value:
                if b not in (0, 1):
                    raise CodingError(f"bit values must be 0 or 1, got {b!r}")
                chars.append("1" if b else "0")
            self._s = "".join(chars)

    # ------------------------------------------------------------------
    @classmethod
    def _unsafe(cls, s: str) -> "Bits":
        """Wrap a string known to be all '0'/'1' without re-validating —
        for internal codec paths whose output is valid by construction."""
        b = object.__new__(cls)
        b._s = s
        return b

    @classmethod
    def from_str(cls, s: str) -> "Bits":
        """Construct from a '0'/'1' string."""
        return cls(s)

    @classmethod
    def join(cls, parts: Iterable["Bits"]) -> "Bits":
        """Concatenate many bitstrings efficiently."""
        return cls._unsafe(
            "".join(p._s if isinstance(p, Bits) else Bits(p)._s for p in parts)
        )

    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return len(self._s)

    def __getitem__(self, index) -> Union[int, "Bits"]:
        if isinstance(index, slice):
            return Bits._unsafe(self._s[index])
        return 1 if self._s[index] == "1" else 0

    def __iter__(self) -> Iterator[int]:
        return (1 if c == "1" else 0 for c in self._s)

    def __add__(self, other: BitsLike) -> "Bits":
        other_b = other if isinstance(other, Bits) else Bits(other)
        return Bits._unsafe(self._s + other_b._s)

    def __eq__(self, other: object) -> bool:
        if isinstance(other, Bits):
            return self._s == other._s
        if isinstance(other, str):
            return self._s == other
        return NotImplemented

    def __lt__(self, other: "Bits") -> bool:
        """Lexicographic order on bitstrings ('0' < '1', prefix first)."""
        if not isinstance(other, Bits):
            return NotImplemented
        return self._s < other._s

    def __le__(self, other: "Bits") -> bool:
        if not isinstance(other, Bits):
            return NotImplemented
        return self._s <= other._s

    def __hash__(self) -> int:
        return hash(("Bits", self._s))

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        shown = self._s if len(self._s) <= 48 else self._s[:45] + "..."
        return f"Bits('{shown}', len={len(self._s)})"

    # ------------------------------------------------------------------
    def as_str(self) -> str:
        """The raw '0'/'1' string."""
        return self._s

    def bit(self, j: int) -> int:
        """The j-th bit, **1-indexed** as in the paper's trie queries."""
        if not (1 <= j <= len(self._s)):
            raise CodingError(
                f"bit index {j} out of range for bitstring of length {len(self._s)}"
            )
        return 1 if self._s[j - 1] == "1" else 0
