"""The paper's ``Concat``/``Decode`` codec (Section 3).

``Concat(A_1, ..., A_k)`` doubles each digit of each component and inserts
``01`` between consecutive components; e.g. ``Concat((01), (00)) =
0011010000``.  Doubling makes the separator ``01`` (which never occurs at an
even offset inside a doubled component) unambiguous, at a 2x + O(k) cost —
the "constant factor" the paper notes.

Corner case: the empty *sequence* and the sequence holding one empty
component both encode to the empty string.  We decode the empty string as
the empty sequence; every caller in this library wraps components in an
outer ``Concat``, where empty components are delimited by separators and
therefore round-trip exactly.
"""

from __future__ import annotations

from typing import List, Sequence

from repro.coding.bitstring import Bits
from repro.errors import CodingError

_SEPARATOR = "01"


def concat_bits(components: Sequence[Bits]) -> Bits:
    """Encode a sequence of bitstrings into one bitstring."""
    doubled = []
    for comp in components:
        if not isinstance(comp, Bits):
            raise CodingError(
                f"concat_bits components must be Bits, got {type(comp).__name__}"
            )
        # two C-speed passes double every digit (replace never overlaps:
        # the first pass only creates '0's from '0's, the second only
        # touches '1's)
        doubled.append(comp.as_str().replace("0", "00").replace("1", "11"))
    return Bits._unsafe(_SEPARATOR.join(doubled))


def decode_concat(encoded: Bits) -> List[Bits]:
    """Decode the output of :func:`concat_bits`.

    Raises :class:`CodingError` on any malformed input (odd trailing bit,
    ``10`` pair, etc.), so corrupted advice is detected rather than
    silently misread.
    """
    s = encoded.as_str()
    if s == "":
        return []
    if len(s) % 2:
        raise CodingError(
            f"dangling bit at offset {len(s) - 1}: doubled encoding must have "
            "even pair structure"
        )
    # Pair i is (evens[i], odds[i]).  Equal halves mean every pair is a
    # doubled digit; mismatch pairs are separators ('01') or corruption
    # ('10').  The XOR of the halves as base-2 integers locates every
    # mismatch at C speed, so decoding costs O(n) plus one Python step
    # per *component*, not per pair.
    evens, odds = s[0::2], s[1::2]
    x = int(evens, 2) ^ int(odds, 2)
    if x == 0:
        return [Bits._unsafe(evens)]
    npairs = len(evens)
    cuts: List[int] = []
    while x:
        low = x & -x
        cuts.append(npairs - low.bit_length())
        x ^= low
    cuts.reverse()  # ascending pair index
    for p in cuts:
        if evens[p] == "1":
            raise CodingError(
                f"invalid pair '10' at offset {2 * p} in doubled encoding"
            )
    components: List[str] = []
    start = 0
    for p in cuts:
        components.append(evens[start:p])
        start = p + 1
    components.append(evens[start:])
    return [Bits._unsafe(c) for c in components]
