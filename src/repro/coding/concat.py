"""The paper's ``Concat``/``Decode`` codec (Section 3).

``Concat(A_1, ..., A_k)`` doubles each digit of each component and inserts
``01`` between consecutive components; e.g. ``Concat((01), (00)) =
0011010000``.  Doubling makes the separator ``01`` (which never occurs at an
even offset inside a doubled component) unambiguous, at a 2x + O(k) cost —
the "constant factor" the paper notes.

Corner case: the empty *sequence* and the sequence holding one empty
component both encode to the empty string.  We decode the empty string as
the empty sequence; every caller in this library wraps components in an
outer ``Concat``, where empty components are delimited by separators and
therefore round-trip exactly.
"""

from __future__ import annotations

from typing import List, Sequence

from repro.coding.bitstring import Bits
from repro.errors import CodingError

_SEPARATOR = "01"


def concat_bits(components: Sequence[Bits]) -> Bits:
    """Encode a sequence of bitstrings into one bitstring."""
    doubled = []
    for comp in components:
        if not isinstance(comp, Bits):
            raise CodingError(
                f"concat_bits components must be Bits, got {type(comp).__name__}"
            )
        doubled.append("".join(c + c for c in comp.as_str()))
    return Bits(_SEPARATOR.join(doubled))


def decode_concat(encoded: Bits) -> List[Bits]:
    """Decode the output of :func:`concat_bits`.

    Raises :class:`CodingError` on any malformed input (odd trailing bit,
    ``10`` pair, etc.), so corrupted advice is detected rather than
    silently misread.
    """
    s = encoded.as_str()
    if s == "":
        return []
    components: List[str] = []
    current: List[str] = []
    i = 0
    n = len(s)
    while i < n:
        if i + 1 >= n:
            raise CodingError(
                f"dangling bit at offset {i}: doubled encoding must have even "
                "pair structure"
            )
        pair = s[i : i + 2]
        if pair == "00":
            current.append("0")
        elif pair == "11":
            current.append("1")
        elif pair == _SEPARATOR:
            components.append("".join(current))
            current = []
        else:  # "10"
            raise CodingError(f"invalid pair '10' at offset {i} in doubled encoding")
        i += 2
    components.append("".join(current))
    return [Bits(c) for c in components]
