"""Pruned views PV_G(u, {p_1..p_t}, l) — Theorem 4.2's building block.

Unlike the truncated view, the pruned view has no repeated port numbers at
any node (the root omits the excluded ports; every other node omits the
port leading back to its parent), so it is itself a legal port-numbered
tree and can be spliced into graphs under construction.  The merge
operation of Theorem 4.2 replaces a subgraph hanging off an articulation
node by the pruned view of that node; Claim 4.2 (machine-verified in the
tests) says this preserves the augmented truncated view of the node to
depth l-1.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, FrozenSet, List, Sequence, Tuple

from repro.errors import GraphStructureError
from repro.graphs.port_graph import PortGraph, PortGraphBuilder


@dataclass
class PrunedViewResult:
    """Outcome of materializing a pruned view into a builder.

    Attributes
    ----------
    root:
        Builder node standing for ``u`` (carries ``u``'s non-excluded ports).
    leaves:
        Builder nodes at exactly depth ``l``, in the deterministic DFS order
        (by port at each branching), each with its single parent port — the
        attachment points for the cliques of the T(L) transformation.
    leaf_parent_ports:
        For each leaf, the port number it uses toward its parent (the leaf's
        only assigned port so far).
    source_of:
        Map from builder node to the original graph node it replicates.
    """

    root: int
    leaves: List[int]
    leaf_parent_ports: List[int]
    source_of: Dict[int, int]


def materialize_pruned_view(
    builder: PortGraphBuilder,
    g: PortGraph,
    u: int,
    excluded_ports: Sequence[int],
    depth: int,
    root: Optional[int] = None,
) -> PrunedViewResult:
    """Write PV_g(u, excluded_ports, depth) into ``builder`` as fresh nodes.

    The root replicates ``u``'s ports *except* the excluded ones (keeping
    the original port numbers, so the caller can re-attach other structure
    on the excluded ports).  Interior nodes replicate the full port
    numbering of the graph node they copy; depth-``depth`` leaves carry only
    their parent port.

    If ``root`` is given, the pruned view is grafted onto that *existing*
    builder node instead of a fresh one (the merge operation's "identify u
    with the root of this pruned view"); the non-excluded port numbers must
    still be free there.
    """
    if depth < 1:
        raise GraphStructureError(f"pruned view depth must be >= 1, got {depth}")
    excluded: FrozenSet[int] = frozenset(excluded_ports)
    for p in excluded:
        if not (0 <= p < g.degree(u)):
            raise GraphStructureError(
                f"excluded port {p} does not exist at node {u} (degree {g.degree(u)})"
            )
    if len(excluded) >= g.degree(u):
        raise GraphStructureError(
            "pruned view requires at least one non-excluded port at the root"
        )

    if root is None:
        root = builder.add_node()
    source_of: Dict[int, int] = {root: u}
    leaves: List[int] = []
    leaf_parent_ports: List[int] = []

    # frontier entries: (builder_node, graph_node, port_back_to_parent or None)
    frontier: List[Tuple[int, int, int]] = []
    for p in range(g.degree(u)):
        if p in excluded:
            continue
        v, q = g.neighbor(u, p)
        child = builder.add_node()
        source_of[child] = v
        builder.add_edge(root, p, child, q)
        frontier.append((child, v, q))

    for level in range(2, depth + 1):
        next_frontier: List[Tuple[int, int, int]] = []
        for (bnode, gnode, back_port) in frontier:
            if g.degree(gnode) == 1:
                # Property 3 of Theorem 4.2 (all node degrees >= 2) is what
                # guarantees every branch extends to full depth (Claim 4.3);
                # a degree-1 interior node would leave a dangling stub with a
                # possibly non-contiguous port, so we reject it loudly.
                raise GraphStructureError(
                    f"graph node {gnode} has degree 1 at pruned-view level "
                    f"{level - 1}; pruned views require minimum degree 2 "
                    "below the root (Theorem 4.2, property 3)"
                )
            for p in range(g.degree(gnode)):
                if p == back_port:
                    continue
                v, q = g.neighbor(gnode, p)
                child = builder.add_node()
                source_of[child] = v
                builder.add_edge(bnode, p, child, q)
                next_frontier.append((child, v, q))
        frontier = next_frontier

    for (bnode, _gnode, back_port) in frontier:
        leaves.append(bnode)
        leaf_parent_ports.append(back_port)

    return PrunedViewResult(
        root=root,
        leaves=leaves,
        leaf_parent_ports=leaf_parent_ports,
        source_of=source_of,
    )
