"""Election index and feasibility (Proposition 2.1 and the Yamashita-Kameda
criterion).

The election index phi(G) of a feasible graph is the smallest l such that
the augmented truncated views at depth l of all nodes are distinct
(Proposition 2.1).  A graph is *feasible* iff such an l exists, iff the
infinite views of all nodes are distinct.

Algorithm: compute view levels (the degree/port refinement).  The induced
node partition refines monotonically with depth; as soon as two consecutive
levels induce the same partition, no further level refines it (the level-l+1
class of a node is a function of its degree and its neighbors' level-l
classes).  So:

* if the partition becomes discrete (n classes) at level l, phi = l;
* if it stabilizes before becoming discrete, the graph is infeasible.

The refinement itself runs on the array fast path of
:mod:`repro.views.refinement` — class IDs only, no :class:`View`
allocation — since phi and feasibility consume nothing but the induced
partitions.  Total cost O(phi * m) with no interning overhead;
:func:`view_classes` still materializes real views for callers that need
them.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from repro.errors import InfeasibleGraphError
from repro.graphs.port_graph import PortGraph
from repro.views.refinement import _RefinementEngine
from repro.views.view import View


def _partition_signature(level: List[View]) -> Tuple[int, ...]:
    """Class id per node, classes numbered by first occurrence."""
    class_of: Dict[View, int] = {}
    sig = []
    for v in level:
        if v not in class_of:
            class_of[v] = len(class_of)
        sig.append(class_of[v])
    return tuple(sig)


def view_partition_trace(
    g: PortGraph, max_depth: Optional[int] = None
) -> List[Tuple[int, int]]:
    """``[(depth, num_classes), ...]`` until the partition stabilizes or
    becomes discrete (whichever first), capped at ``max_depth`` levels.

    On stabilization the trace ends with the first *repeating* level
    (same class count as its predecessor), mirroring how the historical
    signature-comparison loop detected the fixed point."""
    engine = _RefinementEngine(g)
    trace: List[Tuple[int, int]] = [(0, engine.num_classes)]
    depth = 0
    if engine.discrete:
        return trace
    while max_depth is None or depth < max_depth:
        changed = engine.step()
        depth += 1
        trace.append((depth, engine.num_classes))
        if not changed or engine.discrete:
            break
    return trace


def election_index(g: PortGraph) -> int:
    """phi(G): minimum depth at which all augmented truncated views are
    distinct.  Raises :class:`InfeasibleGraphError` for infeasible graphs."""
    engine = _RefinementEngine(g)
    while not engine.discrete:
        if not engine.step():
            raise InfeasibleGraphError(
                f"graph is infeasible: the view partition stabilizes at depth "
                f"{engine.depth} with {engine.num_classes} < n = {g.n} classes"
            )
    return engine.depth


def is_feasible(g: PortGraph) -> bool:
    """Whether deterministic leader election is possible in ``g`` given the
    map (all infinite views distinct)."""
    try:
        election_index(g)
        return True
    except InfeasibleGraphError:
        return False


def view_classes(g: PortGraph, depth: int) -> Dict[View, List[int]]:
    """Group nodes by their depth-``depth`` view: {view: [nodes...]}."""
    from repro.views.view import views_of_graph

    groups: Dict[View, List[int]] = {}
    for node, view in enumerate(views_of_graph(g, depth)):
        groups.setdefault(view, []).append(node)
    return groups
