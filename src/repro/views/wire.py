"""Wire format for views: succinct binary serialization of view DAGs.

The LOCAL model allows arbitrary messages, and our COM implementation
ships interned ``View`` objects — which is faithful information-wise but
leans on shared process memory.  This module closes the loop: views can
be serialized to actual bitstrings and decoded back *into the intern
table*, so a fully byte-honest execution (``repro.sim.strict``) produces
the same objects and therefore bit-identical behaviour.

Encoding: the DAG's distinct subviews in a canonical bottom-up order
(children before parents); each record is either a depth-0 view
``(deg,)`` or ``(deg, (q_i, ref_i)_i)`` with back-references into the
record list.  Size is Theta(sum over records of (1 + deg) * log) — the
succinct-view cost that :mod:`repro.sim.trace` charges.
"""

from __future__ import annotations

from typing import Dict, List

from repro.coding.bitstring import Bits
from repro.coding.concat import concat_bits, decode_concat
from repro.coding.integers import decode_uint, encode_uint
from repro.errors import CodingError
from repro.views.view import View


def encode_view_wire(view: View) -> Bits:
    """Serialize a view's DAG; inverse of :func:`decode_view_wire`."""
    order: List[View] = []
    index: Dict[View, int] = {}

    def visit(v: View) -> None:
        if v in index:
            return
        for _, child in v.children:
            visit(child)
        index[v] = len(order)
        order.append(v)

    visit(view)
    records: List[Bits] = []
    for v in order:
        fields = [encode_uint(v.degree)]
        for q, child in v.children:
            fields.append(encode_uint(q))
            fields.append(encode_uint(index[child]))
        records.append(concat_bits(fields))
    return concat_bits(records)


def decode_view_wire(bits: Bits) -> View:
    """Decode a wire-format view back into the (global) intern table:
    decoding a view equal to a locally computed one yields the *same*
    object."""
    records = decode_concat(bits)
    if not records:
        raise CodingError("empty view wire format")
    decoded: List[View] = []
    for record in records:
        fields = decode_concat(record)
        if not fields:
            raise CodingError("empty view record")
        degree = decode_uint(fields[0])
        rest = fields[1:]
        if len(rest) % 2 != 0:
            raise CodingError("view record must alternate port/ref fields")
        if rest and len(rest) // 2 != degree:
            raise CodingError(
                f"view record of degree {degree} carries {len(rest) // 2} children"
            )
        children = []
        for i in range(0, len(rest), 2):
            q = decode_uint(rest[i])
            ref = decode_uint(rest[i + 1])
            if ref >= len(decoded):
                raise CodingError(
                    f"forward reference {ref} in view record {len(decoded)}"
                )
            children.append((q, decoded[ref]))
        decoded.append(View.make(degree, tuple(children)))
    return decoded[-1]
