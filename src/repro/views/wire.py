"""Wire format for views: succinct binary serialization of view DAGs.

The LOCAL model allows arbitrary messages, and our COM implementation
ships interned ``View`` objects — which is faithful information-wise but
leans on shared process memory.  This module closes the loop: views can
be serialized to actual bitstrings and decoded back *into the intern
table*, so a fully byte-honest execution (``repro.sim.strict``) produces
the same objects and therefore bit-identical behaviour.

Encoding: the DAG's distinct subviews in a canonical bottom-up order
(children before parents); each record is either a depth-0 view
``(deg,)`` or ``(deg, (q_i, ref_i)_i)`` with back-references into the
record list.  Size is Theta(sum over records of (1 + deg) * log) — the
succinct-view cost that :mod:`repro.sim.trace` charges.

The codec is memoized (the strict-wire fast path): views are globally
interned and immutable and the encoder is deterministic, so
``encode_view_wire`` caches on view identity and ``decode_view_wire`` on
the exact wire string — a hit returns the byte-identical objects the
uncached path produces, which is what keeps strict-mode records (and
``WireWrapped.bits_sent``) unchanged.  First encodings are built
*level-incrementally*: in COM traffic a depth-l+1 view's children are
exactly the depth-l views that crossed the wire one round earlier, and
their cached sub-encodings splice into the parent's record list instead
of re-walking the full DAG per message.  The unmemoized single-walk
encoder survives as :func:`_encode_view_wire_uncached`, the executable
specification the fast path is differentially tested against.  All three
caches are dropped by :func:`repro.views.clear_view_caches`.
"""

from __future__ import annotations

from typing import Dict, List, Tuple

from repro.coding.bitstring import Bits
from repro.coding.concat import concat_bits, decode_concat
from repro.coding.integers import decode_uint, encode_uint
from repro.errors import CodingError
from repro.views.view import View

# ----------------------------------------------------------------------
# codec caches (all dropped together with the intern table: an id cannot
# be recycled while the intern table strongly holds its view, and the
# decode cache's values are interned views, stale after any clear)
# ----------------------------------------------------------------------
#: id(view) -> its full wire encoding.
_ENCODE_CACHE: Dict[int, Bits] = {}
#: wire '0'/'1' string -> the decoded (interned) view.
_DECODE_CACHE: Dict[str, View] = {}
#: id(view) -> (DAG order, doubled record strings): the sub-encoding the
#: level-incremental builder reuses when the view recurs as a child.
_SUBENC_CACHE: Dict[int, Tuple[Tuple[View, ...], Tuple[str, ...]]] = {}

#: concat_bits' component separator; record strings are stored already
#: digit-doubled so the outer concat is a plain join.
_SEPARATOR = "01"


def _clear_wire_caches() -> None:
    """Drop the codec caches (called by ``clear_view_caches``)."""
    _ENCODE_CACHE.clear()
    _DECODE_CACHE.clear()
    _SUBENC_CACHE.clear()


def _record_str(v: View, index: Dict[View, int]) -> str:
    """The raw (undoubled) record of ``v`` with child references resolved
    through ``index`` — exactly the per-record bytes of the seed path."""
    fields = [encode_uint(v.degree)]
    for q, child in v.children:
        fields.append(encode_uint(q))
        fields.append(encode_uint(index[child]))
    return concat_bits(fields).as_str()


def _double(s: str) -> str:
    # concat_bits' digit doubling (replace never overlaps: the first
    # pass only creates '0's from '0's, the second only touches '1's)
    return s.replace("0", "00").replace("1", "11")


def encode_view_wire(view: View) -> Bits:
    """Serialize a view's DAG; inverse of :func:`decode_view_wire`.

    Memoized and level-incremental — see the module docstring.  The
    result is byte-identical to :func:`_encode_view_wire_uncached`.
    """
    wire = _ENCODE_CACHE.get(id(view))
    if wire is not None:
        return wire

    order: List[View] = []
    drecords: List[str] = []
    index: Dict[View, int] = {}

    def emit(v: View) -> None:
        # v's children are all indexed (postorder), so its record bytes
        # are final; v itself takes the next free reference
        drecords.append(_double(_record_str(v, index)))
        index[v] = len(order)
        order.append(v)

    def absorb(u: View) -> None:
        """Append the not-yet-indexed part of ``u``'s DAG in the order
        the seed path's memoized postorder DFS would visit it."""
        if u in index:
            return
        stack = [u]
        while stack:
            v = stack[-1]
            if v in index:
                stack.pop()
                continue
            sub = _SUBENC_CACHE.get(id(v))
            if sub is not None:
                sorder, sdrecords = sub
                if not index:
                    # fresh build: the cached index space coincides with
                    # ours, so the record bytes splice in verbatim
                    for i, w in enumerate(sorder):
                        index[w] = i
                    order.extend(sorder)
                    drecords.extend(sdrecords)
                else:
                    # the cached order restricted to unseen views is the
                    # DFS completion order of exactly those views (a
                    # pruned subview has all descendants indexed before
                    # it), so only the references need remapping
                    for w in sorder:
                        if w not in index:
                            emit(w)
                stack.pop()
                continue
            pending = [c for _, c in v.children if c not in index]
            if pending:
                pending.reverse()  # leftmost child completes first
                stack.extend(pending)
                continue
            emit(v)
            stack.pop()

    for _, child in view.children:
        absorb(child)
    emit(view)

    wire = Bits._unsafe(_SEPARATOR.join(drecords))
    _SUBENC_CACHE[id(view)] = (tuple(order), tuple(drecords))
    _ENCODE_CACHE[id(view)] = wire
    # the canonical encoding decodes to this very object (decoding
    # re-interns), so the receiving side's first lookup is already a hit
    _DECODE_CACHE[wire.as_str()] = view
    return wire


def _encode_view_wire_uncached(view: View) -> Bits:
    """The seed encoder: one full bottom-up DAG walk per call, no caches.

    Kept as the executable specification the memoized fast path is
    differentially tested against, and as the in-run reference the
    strict bench's ``speedup_vs_seed`` is measured on.  The walk is an
    explicit stack: view depth approaches the interpreter recursion
    limit on path/ring families where stabilization depth is Theta(n).
    """
    order: List[View] = []
    index: Dict[View, int] = {}
    stack = [view]
    while stack:
        v = stack[-1]
        if v in index:
            stack.pop()
            continue
        pending = [c for _, c in v.children if c not in index]
        if pending:
            pending.reverse()
            stack.extend(pending)
            continue
        index[v] = len(order)
        order.append(v)
        stack.pop()
    records: List[Bits] = []
    for v in order:
        fields = [encode_uint(v.degree)]
        for q, child in v.children:
            fields.append(encode_uint(q))
            fields.append(encode_uint(index[child]))
        records.append(concat_bits(fields))
    return concat_bits(records)


def decode_view_wire(bits: Bits) -> View:
    """Decode a wire-format view back into the (global) intern table:
    decoding a view equal to a locally computed one yields the *same*
    object.

    Memoized on the exact wire string, so each distinct bitstring is
    parsed once per cache lifetime no matter how many nodes receive it.
    """
    s = bits.as_str()
    view = _DECODE_CACHE.get(s)
    if view is not None:
        return view
    view = _decode_view_wire_uncached(bits)
    _DECODE_CACHE[s] = view
    return view


def _decode_view_wire_uncached(bits: Bits) -> View:
    """The seed decoder: parse every record (fast-path twin of
    :func:`decode_view_wire`; same errors, same interned result)."""
    records = decode_concat(bits)
    if not records:
        raise CodingError("empty view wire format")
    decoded: List[View] = []
    for record in records:
        fields = decode_concat(record)
        if not fields:
            raise CodingError("empty view record")
        degree = decode_uint(fields[0])
        rest = fields[1:]
        if len(rest) % 2 != 0:
            raise CodingError("view record must alternate port/ref fields")
        if rest and len(rest) // 2 != degree:
            raise CodingError(
                f"view record of degree {degree} carries {len(rest) // 2} children"
            )
        children = []
        for i in range(0, len(rest), 2):
            q = decode_uint(rest[i])
            ref = decode_uint(rest[i + 1])
            if ref >= len(decoded):
                raise CodingError(
                    f"forward reference {ref} in view record {len(decoded)}"
                )
            children.append((q, decoded[ref]))
        decoded.append(View.make(degree, tuple(children)))
    return decoded[-1]
