"""Array-based view refinement: the hot path of phi and the quotient.

:func:`view_levels` materializes one interned :class:`~repro.views.view.View`
per node per depth, which is the right representation when the views
themselves are needed (COM, tries, fooling pairs).  But
:func:`~repro.views.election_index.election_index` and
:func:`~repro.views.quotient.view_quotient` only consume the *partition*
each level induces — the class ID of every node — so allocating and
interning view objects there is pure overhead, and it grows the global
intern table that :func:`~repro.views.view.clear_view_caches` must later
drop.

This module runs the identical degree/port refinement on the flat CSR
arrays of :mod:`repro.graphs.csr`, with two structural accelerations over
the naive per-level recomputation:

Static key folding
    The level-(l+1) key of a node is
    ``(degree, ((q_0, class_l(u_0)), ..., (q_{d-1}, class_l(u_{d-1}))))``.
    Degree and the remote ports never change across levels, so they are
    renumbered **once** into the CSR's dense ``port_keys``; the per-level
    key shrinks to ``(port_key, class_l(u_0), ..., class_l(u_{d-1}))`` —
    equal as a partition key because ``port_key`` is injective in
    ``(degree, remote ports)``.

Class splitting
    Refinement only ever *splits* classes (the depth-(l+1) view determines
    the depth-l view), so a singleton class can never change again.  The
    engine keeps a worklist of non-singleton classes and recomputes keys
    only for their members — on feasible graphs the worklist collapses
    within a few levels and the tail levels are nearly free.  Internally
    classes carry stable (non-dense) ids so untouched nodes keep theirs;
    the dense first-occurrence numbering the callers see is produced per
    level from those ids in one O(n) pass.

Classes are numbered by first occurrence in node order, which makes every
yielded signature *equal as a tuple* to the one induced by the interned
views of :func:`~repro.views.view.view_levels` (an induction mirroring
the one in ``views/view.py``).  The parity is locked in by
``tests/test_views_refinement.py`` and the property tests of
``tests/test_flat_kernels.py``.

Cost: O(phi * m) worst case (symmetric graphs whose classes never shrink),
much less in practice, and zero View allocations; no global state, so
nothing for :func:`clear_view_caches` to track.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterator, List, Optional, Tuple

from repro.graphs.csr import csr_of
from repro.graphs.port_graph import PortGraph

Signature = Tuple[int, ...]


class _RefinementEngine:
    """The class-splitting refinement over one graph's CSR arrays.

    State after construction is level 0 (nodes grouped by degree); each
    successful :meth:`step` advances one level.  ``depth`` is the current
    level, ``num_classes`` its class count; :meth:`dense_signature`
    materializes the level's first-occurrence class IDs.
    """

    __slots__ = (
        "n",
        "depth",
        "num_classes",
        "_sig",
        "_pending",
        "_next_id",
        "_nbrs",
        "_pk",
        "_include_pk",
    )

    def __init__(self, g: PortGraph):
        csr = csr_of(g)
        n = self.n = csr.n
        self._nbrs = csr.neighbor_tuples
        self._pk = csr.port_keys
        # level 0: group by degree, classes numbered by first occurrence
        buckets: Dict[int, List[int]] = {}
        for v, d in enumerate(csr.degrees):
            buckets.setdefault(d, []).append(v)
        sig = [0] * n
        next_id = 0
        pending: List[List[int]] = []
        for members in buckets.values():
            for v in members:
                sig[v] = next_id
            if len(members) > 1:
                pending.append(members)
            next_id += 1
        self._sig = sig
        self._next_id = next_id
        self._pending = pending
        self.num_classes = len(buckets)
        self.depth = 0
        # degree and remote ports participate in the key only until the
        # first completed level: afterwards every surviving class is
        # port_key-uniform (its members survived a key that included it)
        self._include_pk = True

    @property
    def discrete(self) -> bool:
        return self.num_classes == self.n

    def step(self) -> bool:
        """Advance one refinement level.  Returns False — with no state
        change — iff the partition is already stable (or discrete): the
        next level would merely repeat the current one."""
        if not self._pending:
            return False
        sigget = self._sig.__getitem__
        nbrs = self._nbrs
        pk = self._pk
        updates: List[List[int]] = []
        new_pending: List[List[int]] = []
        num = self.num_classes
        include_pk = self._include_pk
        for members in self._pending:
            buckets = {}
            grab = buckets.setdefault
            # members of one class share a degree (level 0 groups by it);
            # degree-1 classes — every leaf of a tree — key on a single
            # int instead of allocating a tuple per member
            if len(nbrs[members[0]]) == 1:
                if include_pk:
                    for v in members:
                        grab((pk[v], sigget(nbrs[v][0])), []).append(v)
                else:
                    for v in members:
                        grab(sigget(nbrs[v][0]), []).append(v)
            elif include_pk:
                for v in members:
                    grab(
                        (pk[v],) + tuple(map(sigget, nbrs[v])), []
                    ).append(v)
            else:
                for v in members:
                    grab(tuple(map(sigget, nbrs[v])), []).append(v)
            if len(buckets) == 1:
                new_pending.append(members)
                continue
            num += len(buckets) - 1
            for bucket in buckets.values():
                updates.append(bucket)
                if len(bucket) > 1:
                    new_pending.append(bucket)
        self._include_pk = False
        if not updates:
            return False
        sig = self._sig
        next_id = self._next_id
        for bucket in updates:
            for v in bucket:
                sig[v] = next_id
            next_id += 1
        self._next_id = next_id
        self._pending = new_pending
        self.num_classes = num
        self.depth += 1
        return True

    def dense_signature(self) -> Signature:
        """First-occurrence dense class IDs at the current level — the
        tuple contract shared with the view-based numbering."""
        class_of: Dict[int, int] = {}
        grab = class_of.setdefault
        return tuple(grab(c, len(class_of)) for c in self._sig)


def refinement_levels(
    g: PortGraph, max_depth: Optional[int] = None
) -> Iterator[Signature]:
    """Yield, for depth l = 0, 1, 2, ..., the class-ID signature of the
    depth-l view partition — tuple-equal to numbering the views of
    :func:`~repro.views.view.view_levels` by first occurrence.

    Stops after ``max_depth`` levels if given, otherwise iterates forever
    (callers break on their own condition, e.g. stabilization); once the
    partition is stable every further level repeats the same signature."""
    engine = _RefinementEngine(g)
    sig = engine.dense_signature()
    depth = 0
    yield sig
    while max_depth is None or depth < max_depth:
        if engine.step():
            sig = engine.dense_signature()
        depth += 1
        yield sig


@dataclass(frozen=True)
class StablePartition:
    """The refinement run to its fixed point (or to discreteness).

    Attributes
    ----------
    signature:
        Class ID per node at the final level, first-occurrence numbered.
    depth:
        The level at which the refinement stabilized: the first depth
        whose partition is discrete (= phi for feasible graphs), or —
        for infeasible graphs — the last depth that still refined its
        predecessor.  Level ``depth + 1`` would induce the identical
        partition; the first *repeating* level is never reported.
    num_classes:
        Number of distinct classes at ``depth``.
    discrete:
        True iff every node is alone in its class (the graph is feasible).
    """

    signature: Signature
    depth: int
    num_classes: int

    @property
    def discrete(self) -> bool:
        return self.num_classes == len(self.signature)


def stable_partition(g: PortGraph) -> StablePartition:
    """Run the refinement until the partition is discrete or stabilizes,
    whichever comes first; see :class:`StablePartition` for the stop depth
    convention."""
    engine = _RefinementEngine(g)
    while not engine.discrete and engine.step():
        pass
    return StablePartition(
        signature=engine.dense_signature(),
        depth=engine.depth,
        num_classes=engine.num_classes,
    )
