"""Array-based view refinement: the hot path of phi and the quotient.

:func:`view_levels` materializes one interned :class:`~repro.views.view.View`
per node per depth, which is the right representation when the views
themselves are needed (COM, tries, fooling pairs).  But
:func:`~repro.views.election_index.election_index` and
:func:`~repro.views.quotient.view_quotient` only consume the *partition*
each level induces — the class ID of every node — so allocating and
interning view objects there is pure overhead, and it grows the global
intern table that :func:`~repro.views.view.clear_view_caches` must later
drop.

This module runs the identical degree/port refinement on plain integer
arrays.  Level 0 groups nodes by degree; level l+1 groups them by
``(degree, ((q_0, class_l(u_0)), ..., (q_{d-1}, class_l(u_{d-1}))))`` —
exactly the key of ``View.make`` with child views replaced by their class
IDs.  Classes are numbered by first occurrence in node order, which makes
every signature *equal as a tuple* to the one induced by the interned
views (an induction mirroring the one in ``views/view.py``).  The parity
is locked in by ``tests/test_views_refinement.py``.

Cost: O(phi * m) key material and zero View allocations; no global state,
so nothing for :func:`clear_view_caches` to track.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterator, List, Optional, Tuple

from repro.graphs.port_graph import PortGraph

Signature = Tuple[int, ...]


def _renumber(keys: List) -> Signature:
    """Class ID per node, classes numbered by first occurrence."""
    class_of: Dict = {}
    sig: List[int] = []
    for key in keys:
        idx = class_of.get(key)
        if idx is None:
            idx = len(class_of)
            class_of[key] = idx
        sig.append(idx)
    return tuple(sig)


def refinement_levels(
    g: PortGraph, max_depth: Optional[int] = None
) -> Iterator[Signature]:
    """Yield, for depth l = 0, 1, 2, ..., the class-ID signature of the
    depth-l view partition — tuple-equal to numbering the views of
    :func:`~repro.views.view.view_levels` by first occurrence.

    Stops after ``max_depth`` levels if given, otherwise iterates forever
    (callers break on their own condition, e.g. stabilization)."""
    sig = _renumber([g.degree(v) for v in g.nodes()])
    depth = 0
    yield sig
    while max_depth is None or depth < max_depth:
        keys = [
            (g.degree(v), tuple((q, sig[u]) for (u, q) in g.ports(v)))
            for v in g.nodes()
        ]
        sig = _renumber(keys)
        depth += 1
        yield sig


@dataclass(frozen=True)
class StablePartition:
    """The refinement run to its fixed point (or to discreteness).

    Attributes
    ----------
    signature:
        Class ID per node at the final level, first-occurrence numbered.
    depth:
        The level at which the refinement stabilized: the first depth
        whose partition is discrete (= phi for feasible graphs), or —
        for infeasible graphs — the last depth that still refined its
        predecessor.  Level ``depth + 1`` would induce the identical
        partition; the first *repeating* level is never reported.
    num_classes:
        Number of distinct classes at ``depth``.
    discrete:
        True iff every node is alone in its class (the graph is feasible).
    """

    signature: Signature
    depth: int
    num_classes: int

    @property
    def discrete(self) -> bool:
        return self.num_classes == len(self.signature)


def stable_partition(g: PortGraph) -> StablePartition:
    """Run the refinement until the partition is discrete or stabilizes,
    whichever comes first; see :class:`StablePartition` for the stop depth
    convention."""
    prev: Optional[Signature] = None
    depth = 0
    sig: Signature = ()
    for depth, sig in enumerate(refinement_levels(g)):
        if _num_classes(sig) == g.n:
            break
        if sig == prev:
            # level `depth` merely repeats level `depth - 1`: the
            # partition stabilized one level earlier
            depth -= 1
            break
        prev = sig
    return StablePartition(
        signature=sig, depth=depth, num_classes=_num_classes(sig)
    )


def _num_classes(sig: Signature) -> int:
    # first-occurrence numbering: IDs are dense, so max + 1 counts classes
    return max(sig) + 1 if sig else 0
