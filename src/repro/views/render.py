"""Human-readable renderings of views and port graphs.

Debugging anonymous-network algorithms is an exercise in staring at
views; these helpers make that bearable:

* :func:`render_view` — indented ASCII tree of an augmented truncated
  view (ports annotated, shared subviews marked);
* :func:`render_graph` — adjacency listing with port pairs;
* :func:`graph_to_dot` — Graphviz DOT with both port numbers on every
  edge (taillabel/headlabel), for external rendering.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from repro.graphs.port_graph import PortGraph
from repro.views.view import View


def render_view(
    view: View, max_depth: Optional[int] = None, _indent: str = "", _port: str = ""
) -> str:
    """Indented ASCII rendering of a view.

    Each line shows ``(local_port->remote_port) deg=<degree>``; depth is
    capped at ``max_depth`` (default: full view).  Because deep views are
    exponential as trees, always cap when rendering depth > ~4.
    """
    lines: List[str] = []

    def walk(v: View, indent: str, edge: str, budget: Optional[int]) -> None:
        lines.append(f"{indent}{edge}deg={v.degree}")
        if budget is not None and budget <= 0:
            if v.children:
                lines.append(f"{indent}  ...")
            return
        for p, (q, child) in enumerate(v.children):
            walk(
                child,
                indent + "  ",
                f"({p}->{q}) ",
                None if budget is None else budget - 1,
            )

    walk(view, _indent, _port, max_depth)
    return "\n".join(lines)


def render_graph(g: PortGraph) -> str:
    """Adjacency listing: one line per node with ``port->neighbor(back)``."""
    lines = [f"PortGraph: n={g.n}, m={g.num_edges}"]
    for v in g.nodes():
        entries = ", ".join(
            f"{p}->{u}({q})" for p, (u, q) in enumerate(g.ports(v))
        )
        lines.append(f"  {v} [deg {g.degree(v)}]: {entries}")
    return "\n".join(lines)


def graph_to_dot(g: PortGraph, name: str = "G") -> str:
    """Graphviz DOT with port numbers as tail/head labels."""
    lines = [f"graph {name} {{", "  node [shape=circle];"]
    for (u, p, v, q) in g.edges():
        lines.append(f'  {u} -- {v} [taillabel="{p}", headlabel="{q}"];')
    lines.append("}")
    return "\n".join(lines)
