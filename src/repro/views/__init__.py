"""Views of nodes in anonymous port-numbered graphs.

The *augmented truncated view* B^l(v) (Yamashita-Kameda, as used throughout
the paper) is the depth-l unfolding of the graph from v: a port-labeled tree
whose leaves additionally carry their degrees in the graph.  Two nodes are
indistinguishable to any deterministic algorithm after l rounds iff their
augmented truncated views at depth l coincide.

Implementation: views are *hash-consed* — structurally equal views are the
same Python object, graph-wide and even across graphs.  This turns view
equality into pointer identity and makes the level-by-level computation the
classical degree/port refinement, with total cost O(depth * m).

Key entry points:

* :func:`views_of_graph` / :func:`view_levels` — B^l for all nodes;
* :func:`refinement_levels` / :func:`stable_partition` — the same
  refinement on plain class-ID arrays (no View allocation): the fast path
  behind :func:`election_index` and :func:`view_quotient`;
* :func:`election_index` / :func:`is_feasible` — the paper's phi(G);
* :func:`view_compare` / :func:`view_sort_key` — the fixed canonical total
  order standing in for "lexicographic order of bin(B)" (see DESIGN.md);
* :func:`encode_b1` — the faithful ``bin(B^1(v))`` encoding of
  Proposition 3.3 (used by the depth-1 tries);
* :func:`materialize_pruned_view` — the pruned views PV_G(u, P, l) of
  Theorem 4.2.
"""

from repro.views.view import (
    View,
    clear_view_caches,
    explicit_view_tree,
    truncate_view,
    view_levels,
    view_nested_tuple,
    views_of_graph,
)
from repro.views.order import sort_views, view_compare, view_min, view_sort_key
from repro.views.encoding import encode_b1
from repro.views.election_index import (
    election_index,
    is_feasible,
    view_classes,
    view_partition_trace,
)
from repro.views.pruned import materialize_pruned_view
from repro.views.quotient import ViewQuotient, view_quotient
from repro.views.refinement import (
    StablePartition,
    refinement_levels,
    stable_partition,
)
from repro.views.wire import decode_view_wire, encode_view_wire

__all__ = [
    "View",
    "views_of_graph",
    "view_levels",
    "truncate_view",
    "explicit_view_tree",
    "view_nested_tuple",
    "clear_view_caches",
    "view_compare",
    "view_sort_key",
    "view_min",
    "sort_views",
    "encode_b1",
    "election_index",
    "is_feasible",
    "view_classes",
    "view_partition_trace",
    "materialize_pruned_view",
    "ViewQuotient",
    "view_quotient",
    "StablePartition",
    "refinement_levels",
    "stable_partition",
    "encode_view_wire",
    "decode_view_wire",
]
