"""Hash-consed augmented truncated views.

A :class:`View` of depth 0 is ``(degree, ())`` — just the degree, exactly
the paper's B^0 ("leaves labeled by their degrees" collapses to the degree
of the node itself at depth 0).  A view of depth l+1 is
``(degree, ((q_0, child_0), ..., (q_{d-1}, child_{d-1})))`` where the tuple
is indexed by the local port, ``q_i`` is the remote port of that edge, and
``child_i`` is the neighbor's view of depth l.  This is precisely the
inductive definition of V^{l+1} in Section 1 plus the leaf-degree
augmentation: a straightforward induction (unit-tested against the explicit
tree expansion in :func:`explicit_view_tree`) shows that two nodes have
equal B^l iff their depth-l View objects are identical.

Interning is global (a strong table; call :func:`clear_view_caches` to
release memory between experiment batches).  Global interning is a feature:
the lower-bound proofs compare views *across different graphs* (fooling
pairs), which here is again pointer equality.
"""

from __future__ import annotations

from typing import Dict, Iterator, List, Optional, Tuple

from repro.graphs.port_graph import PortGraph

_INTERN: Dict[tuple, "View"] = {}
_TRUNCATE_CACHE: Dict[Tuple[int, int], "View"] = {}
#: depth -> every interned view of that depth, in interning order.  The
#: registry feeds the dense per-depth rank tables of
#: :mod:`repro.views.order`: ranking level l needs all views of level
#: l - 1, and a child is always interned before its parent, so walking
#: depths upward over this registry is complete by construction.
_BY_DEPTH: Dict[int, List["View"]] = {}


class View:
    """An interned augmented truncated view.  Do not construct directly;
    use :meth:`View.make`."""

    __slots__ = ("degree", "children", "depth")

    degree: int
    children: Tuple[Tuple[int, "View"], ...]
    depth: int

    def __new__(cls, *args, **kwargs):
        raise TypeError("View instances must be created through View.make")

    @staticmethod
    def make(degree: int, children: Tuple[Tuple[int, "View"], ...]) -> "View":
        """Intern-constructor.

        ``children`` must be empty (depth-0 view) or have exactly ``degree``
        entries, one per local port in order, each ``(remote_port, child)``
        with all children at equal depth.
        """
        key = (degree, children)
        found = _INTERN.get(key)
        if found is not None:
            return found
        if children:
            if len(children) != degree:
                raise ValueError(
                    f"view of degree {degree} must have {degree} children, "
                    f"got {len(children)}"
                )
            child_depth = children[0][1].depth
            for _, child in children:
                if child.depth != child_depth:
                    raise ValueError("all children of a view must share a depth")
            depth = child_depth + 1
        else:
            depth = 0
        self = object.__new__(View)
        object.__setattr__(self, "degree", degree)
        object.__setattr__(self, "children", children)
        object.__setattr__(self, "depth", depth)
        _INTERN[key] = self
        registry = _BY_DEPTH.get(depth)
        if registry is None:
            registry = _BY_DEPTH[depth] = []
        registry.append(self)
        return self

    def __setattr__(self, name, value):  # views are immutable
        raise AttributeError("View objects are immutable")

    # identity semantics: interning makes structural equality == identity
    def __eq__(self, other):
        return self is other

    def __hash__(self):
        return id(self)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"View(depth={self.depth}, degree={self.degree})"

    # ------------------------------------------------------------------
    def child(self, port: int) -> "View":
        """Depth-(l-1) view of the neighbor through local ``port``."""
        return self.children[port][1]

    def remote_port(self, port: int) -> int:
        """Port number at the far end of the edge through local ``port``."""
        return self.children[port][0]

    def tree_size(self) -> int:
        """Number of nodes of the *expanded* view tree (the count can be
        exponential in depth; the computation is one pass over the
        hash-consed DAG with an explicit stack, so it is safe on views
        whose depth exceeds the interpreter recursion limit)."""
        sizes: Dict["View", int] = {}
        stack = [self]
        while stack:
            v = stack[-1]
            if v in sizes:
                stack.pop()
                continue
            pending = [c for _, c in v.children if c not in sizes]
            if pending:
                stack.extend(pending)
                continue
            sizes[v] = 1 + sum(sizes[c] for _, c in v.children)
            stack.pop()
        return sizes[self]


# ----------------------------------------------------------------------
# computing views of a graph
# ----------------------------------------------------------------------
def view_levels(
    g: PortGraph, max_depth: Optional[int] = None
) -> Iterator[List[View]]:
    """Yield, for depth l = 0, 1, 2, ..., the list ``[B^l(v) for v in
    g.nodes()]``.  Stops after ``max_depth`` levels if given, otherwise
    iterates forever (callers break on their own condition, e.g. partition
    stabilization).

    Runs on the graph's flat CSR arrays (:func:`repro.graphs.csr.csr_of`):
    per node and level, the children tuple is one C-level ``zip`` over the
    static remote-port tuple and the gathered neighbor views."""
    from repro.graphs.csr import csr_of

    csr = csr_of(g)
    degrees = csr.degrees
    nbrs = csr.neighbor_tuples
    rports = csr.remote_port_tuples
    make = View.make
    current: List[View] = [make(d, ()) for d in degrees]
    depth = 0
    yield current
    while max_depth is None or depth < max_depth:
        gather = current.__getitem__
        current = [
            make(degrees[v], tuple(zip(rports[v], map(gather, nbrs[v]))))
            for v in range(csr.n)
        ]
        depth += 1
        yield current


def views_of_graph(g: PortGraph, depth: int) -> List[View]:
    """``[B^depth(v) for v in g.nodes()]``."""
    if depth < 0:
        raise ValueError(f"view depth must be >= 0, got {depth}")
    for d, level in enumerate(view_levels(g, max_depth=depth)):
        if d == depth:
            return level
    raise AssertionError("unreachable")


# ----------------------------------------------------------------------
# truncation
# ----------------------------------------------------------------------
def truncate_view(view: View, depth: int) -> View:
    """B^l(v) -> B^depth(v): the truncation of a view to a smaller depth.

    O(distinct subviews) with global memoization; raises ``ValueError``
    if ``depth > view.depth`` (a view cannot be extended, only cut).
    """
    if depth > view.depth:
        raise ValueError(
            f"cannot truncate a depth-{view.depth} view to larger depth {depth}"
        )
    if depth == view.depth:
        return view
    key = (id(view), depth)
    found = _TRUNCATE_CACHE.get(key)
    if found is not None:
        return found
    if depth == 0:
        result = View.make(view.degree, ())
    else:
        children = tuple(
            (q, truncate_view(child, depth - 1)) for q, child in view.children
        )
        result = View.make(view.degree, children)
    _TRUNCATE_CACHE[key] = result
    return result


# ----------------------------------------------------------------------
# explicit expansion (cross-validation & small-case debugging)
# ----------------------------------------------------------------------
def explicit_view_tree(g: PortGraph, v: int, depth: int) -> tuple:
    """Directly-recursive (non-interned) construction of B^depth(v) as a
    nested tuple ``(degree, ((remote_port, subtree), ...))``.

    Exponential in depth — this exists to cross-validate the interned
    construction in tests and must only be used on small instances.
    """
    if depth == 0:
        return (g.degree(v), ())
    children = tuple(
        (q, explicit_view_tree(g, u, depth - 1)) for (u, q) in g.ports(v)
    )
    return (g.degree(v), children)


def view_nested_tuple(view: View) -> tuple:
    """Expand an interned view into the nested-tuple form of
    :func:`explicit_view_tree` (exponential; small views only)."""
    return (
        view.degree,
        tuple((q, view_nested_tuple(child)) for q, child in view.children),
    )


# ----------------------------------------------------------------------
def clear_view_caches() -> None:
    """Drop the global intern and truncation tables, the per-depth view
    registry, the order rank tables, the wire-codec caches and every live
    strict-mode message plane (all of which key on view identity or hold
    interned views).  Existing View objects remain valid but newly built
    structurally-equal views will be fresh objects — so never mix views
    from before and after a clear."""
    from repro.sim import strict as _strict
    from repro.sim import trace as _trace
    from repro.views import encoding as _encoding
    from repro.views import order as _order
    from repro.views import wire as _wire

    _INTERN.clear()
    _TRUNCATE_CACHE.clear()
    _BY_DEPTH.clear()
    _order._clear_rank_tables()
    _encoding._B1_CACHE.clear()
    # the tracer's DAG-size cache keys on id(view); once the intern table
    # is dropped those ids can be recycled by fresh views, and a stale
    # entry would silently misprice a different view's transmission cost
    _trace._DAG_SIZE_CACHE.clear()
    # same identity argument for the wire codec's encode/sub-encoding
    # caches, and the decode cache and message planes hold interned views
    # that must never leak into a run started after the clear
    _wire._clear_wire_caches()
    _strict._clear_message_planes()


def intern_table_size() -> int:
    """Number of distinct views currently interned (diagnostics)."""
    return len(_INTERN)
