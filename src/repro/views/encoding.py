"""Faithful binary encoding of depth-1 augmented views (Proposition 3.3).

``B^1(v)`` for a node of degree k is represented, as in the paper, by the
list ``((0, a_0, b_0), ..., (k-1, a_{k-1}, b_{k-1}))`` where ``a_j`` is the
remote port of the edge through local port ``j`` and ``b_j`` is the degree
of that neighbor.  Its code is the nested ``Concat`` of the integer codes.

The depth-1 tries of advice item A1 ask queries *about this bitstring*
("is its length < t?", "is bit j equal to 1?"), so oracle and nodes must
produce byte-identical encodings — both call :func:`encode_b1`.
"""

from __future__ import annotations

from typing import Dict

from repro.coding.bitstring import Bits
from repro.coding.concat import concat_bits
from repro.coding.integers import encode_uint
from repro.views.view import View

_B1_CACHE: Dict[int, Bits] = {}


def encode_b1(view: View) -> Bits:
    """``bin(B^1(v))`` for a depth-1 view."""
    if view.depth != 1:
        raise ValueError(
            f"encode_b1 encodes depth-1 views only, got depth {view.depth}"
        )
    cached = _B1_CACHE.get(id(view))
    if cached is not None:
        return cached
    triples = []
    for j, (remote_port, child) in enumerate(view.children):
        triples.append(
            concat_bits(
                [encode_uint(j), encode_uint(remote_port), encode_uint(child.degree)]
            )
        )
    result = concat_bits(triples)
    _B1_CACHE[id(view)] = result
    return result
