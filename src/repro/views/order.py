"""The canonical total order on views.

The paper orders augmented truncated views by the lexicographic order of
their binary encodings ``bin(B)``.  Expanding ``bin(B^d)`` is exponential
in d, so (as recorded in DESIGN.md) we use the equivalent device: a fixed,
recursively defined total order on interned views, computable in O(1)
amortized per comparison via memoization.  Every proof in the paper uses
only that the order is total, fixed, and computable identically by the
oracle and by every node — properties this order has.

Order definition (lexicographic on the canonical flattening):
``v < w`` iff ``(v.depth, v.degree, children)`` precedes
``(w.depth, w.degree, children)`` where children are compared pairwise in
port order, each as ``(remote_port, child_view)`` with the child compared
recursively.  Views of unequal depth never mix in algorithm-relevant
comparisons; depth participates only to make the order total.
"""

from __future__ import annotations

import functools
from typing import Dict, Iterable, List, Tuple

from repro.views.view import View

_COMPARE_CACHE: Dict[Tuple[int, int], int] = {}


def view_compare(a: View, b: View) -> int:
    """Three-way comparison: -1, 0, +1 for a < b, a == b, a > b."""
    if a is b:
        return 0
    key = (id(a), id(b))
    found = _COMPARE_CACHE.get(key)
    if found is not None:
        return found
    if a.depth != b.depth:
        result = -1 if a.depth < b.depth else 1
    elif a.degree != b.degree:
        result = -1 if a.degree < b.degree else 1
    else:
        result = 0
        for (qa, ca), (qb, cb) in zip(a.children, b.children):
            if qa != qb:
                result = -1 if qa < qb else 1
                break
            sub = view_compare(ca, cb)
            if sub != 0:
                result = sub
                break
        # equal-length children with all components equal would mean the
        # interned objects are identical, handled by `a is b` above
        if result == 0:
            raise AssertionError(
                "distinct interned views compared equal: interning is broken"
            )
    _COMPARE_CACHE[key] = result
    _COMPARE_CACHE[(id(b), id(a))] = -result
    return result


view_sort_key = functools.cmp_to_key(view_compare)
"""Key function for ``sorted``/``min``/``max`` over views."""


def view_min(views: Iterable[View]) -> View:
    """The canonically smallest view (the paper's "lexicographically
    smallest augmented truncated view")."""
    it = iter(views)
    try:
        best = next(it)
    except StopIteration:
        raise ValueError("view_min of an empty collection")
    for v in it:
        if view_compare(v, best) < 0:
            best = v
    return best


def sort_views(views: Iterable[View]) -> List[View]:
    """Views sorted ascending in the canonical order."""
    return sorted(views, key=view_sort_key)
