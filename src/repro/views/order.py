"""The canonical total order on views, as O(1) dense ranks.

The paper orders augmented truncated views by the lexicographic order of
their binary encodings ``bin(B)``.  Expanding ``bin(B^d)`` is exponential
in d, so (as recorded in DESIGN.md) we use the equivalent device: a fixed,
recursively defined total order on interned views.  Every proof in the
paper uses only that the order is total, fixed, and computable identically
by the oracle and by every node — properties this order has.

Order definition (lexicographic on the canonical flattening):
``v < w`` iff ``(v.depth, v.degree, children)`` precedes
``(w.depth, w.degree, children)`` where children are compared pairwise in
port order, each as ``(remote_port, child_view)`` with the child compared
recursively.  Views of unequal depth never mix in algorithm-relevant
comparisons; depth participates only to make the order total.

Implementation: **dense canonical ranks per depth** instead of memoized
recursion.  Every interned view is registered per depth by ``View.make``
(:mod:`repro.views.view`); on first use after new views of a depth appear,
all views of that depth are sorted by ``(degree, ((q, rank(child)), ...))``
— children represented by their depth-(l-1) ranks, made valid first — and
assigned ranks ``0..N-1``.  Comparisons and sort keys are then integer
lookups.  This is sound because

* a child is always interned (and hence registered) before its parent, so
  ranking level l-1 before level l covers every child;
* re-ranking a depth after insertions preserves the *relative* order of
  previously ranked views (the sort key is order-isomorphic under any
  order-preserving renumbering of child ranks), so ranks of deeper views
  computed earlier remain order-correct without cascading rebuilds;
* the sort key is injective across distinct interned views of one depth
  (equal keys would imply an identical intern key), so ranks are total.

The induction bottoms out at depth 0, ordered by degree.  Parity with the
recursive definition (kept below as :func:`_view_compare_recursive`, the
executable specification) is pinned by ``tests/test_flat_kernels.py``.

The rank tables key on view identity and are dropped by
:func:`repro.views.view.clear_view_caches` alongside the intern table —
never mix views from before and after a clear.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Tuple

from repro.views import view as _view_mod
from repro.views.view import View

#: interned view -> dense rank within its depth (0-based).
_RANK: Dict[View, int] = {}
#: depth -> how many registered views of that depth the last ranking saw.
_RANKED_COUNT: Dict[int, int] = {}


def _ensure_ranked(depth: int) -> None:
    """(Re)build the rank table for ``depth`` if views were interned since
    the last build; ranks for the children's depth are made valid first."""
    registry = _view_mod._BY_DEPTH.get(depth)
    if registry is None or _RANKED_COUNT.get(depth) == len(registry):
        return
    if depth > 0:
        _ensure_ranked(depth - 1)
        rank = _RANK
        ordered = sorted(
            registry,
            key=lambda v: (
                v.degree,
                tuple((q, rank[c]) for q, c in v.children),
            ),
        )
    else:
        ordered = sorted(registry, key=lambda v: v.degree)
    for i, v in enumerate(ordered):
        _RANK[v] = i
    _RANKED_COUNT[depth] = len(registry)


def _clear_rank_tables() -> None:
    """Called by :func:`repro.views.view.clear_view_caches`."""
    _RANK.clear()
    _RANKED_COUNT.clear()


def view_compare(a: View, b: View) -> int:
    """Three-way comparison: -1, 0, +1 for a < b, a == b, a > b."""
    if a is b:
        return 0
    if a.depth != b.depth:
        return -1 if a.depth < b.depth else 1
    _ensure_ranked(a.depth)
    ra = _RANK[a]
    rb = _RANK[b]
    if ra == rb:
        raise AssertionError(
            "distinct interned views share a rank: interning is broken"
        )
    return -1 if ra < rb else 1


def view_sort_key(v: View) -> Tuple[int, int]:
    """Key function for ``sorted``/``min``/``max`` over views: the
    ``(depth, rank)`` pair realizing the canonical order in O(1).

    A returned key is only comparable against keys computed while the
    intern table holds the same views of that depth: interning a new view
    re-ranks its depth and shifts existing rank integers.  Compute all
    keys of one comparison batch after all interning (``sorted`` does
    this naturally — it materializes first, then keys)."""
    _ensure_ranked(v.depth)
    return (v.depth, _RANK[v])


def view_min(views: Iterable[View]) -> View:
    """The canonically smallest view (the paper's "lexicographically
    smallest augmented truncated view")."""
    # materialize before keying: a generator may intern views as it is
    # consumed, and a re-rank mid-``min`` would invalidate the cached
    # best key (see view_sort_key)
    views = list(views)
    try:
        return min(views, key=view_sort_key)
    except ValueError:
        raise ValueError("view_min of an empty collection") from None


def sort_views(views: Iterable[View]) -> List[View]:
    """Views sorted ascending in the canonical order."""
    # ``sorted`` materializes the iterable before computing any key, so
    # view-creating iterables are safe here without an explicit list()
    return sorted(views, key=view_sort_key)


# ----------------------------------------------------------------------
# the executable specification (reference implementation for tests)
# ----------------------------------------------------------------------
def _view_compare_recursive(a: View, b: View) -> int:
    """The order's recursive definition, computed directly (no ranks, no
    memoization).  Kept as the specification the rank tables are tested
    against; not for production use."""
    if a is b:
        return 0
    if a.depth != b.depth:
        return -1 if a.depth < b.depth else 1
    if a.degree != b.degree:
        return -1 if a.degree < b.degree else 1
    for (qa, ca), (qb, cb) in zip(a.children, b.children):
        if qa != qb:
            return -1 if qa < qb else 1
        sub = _view_compare_recursive(ca, cb)
        if sub != 0:
            return sub
    # equal-length children with all components equal would mean the
    # interned objects are identical, handled by `a is b` above
    raise AssertionError(
        "distinct interned views compared equal: interning is broken"
    )
