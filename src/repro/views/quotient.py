"""The view quotient: what symmetry remains in an infeasible graph.

Yamashita-Kameda: two nodes have the same infinite view iff they fall in
the same class of the stabilized degree/port refinement.  The *quotient*
collapses each class to one vertex, keeping the port structure: it is the
minimum base of the graph's universal cover, and the graph is feasible
iff its quotient is the graph itself (all classes singletons).

Useful both as a diagnostic ("why can't this network elect?") and as a
compression: every anonymous algorithm behaves identically on a graph and
on any of its lifts, so experiments on symmetric topologies only need the
quotient.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Tuple

from repro.graphs.port_graph import PortGraph
from repro.views.refinement import stable_partition


@dataclass
class ViewQuotient:
    """The stabilized view partition with its port structure.

    Attributes
    ----------
    class_of:
        For each node, its class index (0-based, by first occurrence).
    classes:
        For each class, the sorted list of member nodes.
    transitions:
        For each class c and local port p (ports are well-defined per
        class: members share degree), the pair
        ``(remote_port, target_class)``.
    stabilization_depth:
        The depth at which the refinement stabilized — the stabilized
        level itself (:attr:`StablePartition.depth`), never the first
        level that merely repeats it.
    """

    class_of: List[int]
    classes: List[List[int]]
    transitions: List[List[Tuple[int, int]]]
    stabilization_depth: int

    @property
    def num_classes(self) -> int:
        return len(self.classes)

    @property
    def is_discrete(self) -> bool:
        """True iff every class is a singleton — i.e. the graph is feasible."""
        return all(len(c) == 1 for c in self.classes)

    def lift_multiplicity(self) -> List[int]:
        """Size of each class — how many indistinguishable copies of each
        quotient vertex the graph contains."""
        return [len(c) for c in self.classes]


def view_quotient(g: PortGraph) -> ViewQuotient:
    """Compute the stabilized view partition and its quotient structure.

    Runs on the array refinement fast path (:mod:`repro.views.refinement`):
    the quotient needs only class IDs, never view trees."""
    stable = stable_partition(g)
    class_of = list(stable.signature)
    classes: List[List[int]] = [[] for _ in range(stable.num_classes)]
    for v, idx in enumerate(class_of):
        classes[idx].append(v)

    transitions: List[List[Tuple[int, int]]] = []
    for members in classes:
        rep = members[0]
        row: List[Tuple[int, int]] = []
        for p in range(g.degree(rep)):
            u, q = g.neighbor(rep, p)
            row.append((q, class_of[u]))
        transitions.append(row)
    # well-definedness: every member must induce the same transition row
    for idx, members in enumerate(classes):
        for v in members[1:]:
            row = [
                (q, class_of[u])
                for p in range(g.degree(v))
                for (u, q) in [g.neighbor(v, p)]
            ]
            if row != transitions[idx]:
                raise AssertionError(
                    "stabilized partition is not equitable: refinement bug"
                )
    return ViewQuotient(
        class_of=class_of,
        classes=classes,
        transitions=transitions,
        stabilization_depth=stable.depth,
    )
