"""The machine-readable perf harness: named scenarios, canonical records.

The ROADMAP's north star is "as fast as the hardware allows", but prose
``.txt`` tables cannot anchor a trajectory: nothing downstream can diff
them, gate on them, or compute a speedup from them.  This module defines

* a registry of named **perf scenarios** (``refinement``, ``sweep``,
  ``strict``, ``conformance``) — each runs a fixed, seeded workload
  through the library's hot paths and times it (min over repeats);
* the canonical ``BENCH_<scenario>.json`` record schema (version
  ``repro-bench/1``) with an environment fingerprint and, when a recorded
  baseline is available, a per-case **speedup** against it;
* the **baseline** file format (``repro-bench-baseline/1``): timings of a
  reference implementation recorded *by this same harness*, which is what
  makes a speedup claim reproducible — same scenarios, same cases, same
  measurement discipline (``benchmarks/baseline_seed.json`` holds the
  pre-CSR seed implementation's numbers);
* ``validate_bench_record`` — the schema gate CI runs on every emitted
  record (``repro bench --check``), so a malformed record fails the build
  instead of silently dropping out of the trajectory.

Entry points: the ``repro bench`` CLI subcommand and the thin
``benchmarks/harness.py`` wrapper.  ``benchmarks/conftest.py`` writes a
``kind="table"`` twin of every historical prose bench through the same
schema, so old and new artifacts feed one trajectory.

Scenario cases are deterministic (fixed generator seeds, fixed corpus
family prefixes), so a baseline and a candidate measure the *identical*
workload; timings are wall-clock ``perf_counter`` minima, with the view
caches cleared before every repeat that touches them.
"""

from __future__ import annotations

import gc
import json
import os
import platform
import sys
import time
from typing import Any, Callable, Dict, List, Optional, Tuple

from repro.errors import ReproError

BENCH_SCHEMA = "repro-bench/1"
BASELINE_SCHEMA = "repro-bench-baseline/1"

#: A case is one timed (or tabulated) unit inside a scenario record.
Case = Dict[str, Any]

#: ``fn(quick) -> [case, ...]``; registered under the scenario name.
ScenarioFn = Callable[[bool], List[Case]]

SCENARIOS: Dict[str, ScenarioFn] = {}


def register_scenario(name: str) -> Callable[[ScenarioFn], ScenarioFn]:
    """Decorator: register a perf scenario under ``name``."""

    def deco(fn: ScenarioFn) -> ScenarioFn:
        if name in SCENARIOS:
            raise ValueError(f"scenario '{name}' is already registered")
        SCENARIOS[name] = fn
        return fn

    return deco


def env_fingerprint() -> Dict[str, Any]:
    """Where a record was measured: enough to judge comparability."""
    return {
        "python": platform.python_version(),
        "implementation": platform.python_implementation(),
        "platform": platform.platform(),
        "machine": platform.machine(),
        "cpu_count": os.cpu_count(),
    }


def _gc_totals() -> Tuple[int, int]:
    """Cumulative ``(collections, collected)`` across all GC generations."""
    stats = gc.get_stats()
    return (
        sum(s.get("collections", 0) for s in stats),
        sum(s.get("collected", 0) for s in stats),
    )


def _peak_rss_kb() -> Optional[int]:
    """The process's high-water resident set in KB (None off POSIX)."""
    try:
        import resource
    except ImportError:  # pragma: no cover - non-POSIX platform
        return None
    rss = resource.getrusage(resource.RUSAGE_SELF).ru_maxrss
    # ru_maxrss is kilobytes on Linux, bytes on macOS
    return int(rss // 1024) if sys.platform == "darwin" else int(rss)


def _time_case(
    fn: Callable[[], Any], repeats: int, clear_caches: bool = False
) -> Tuple[float, int, Dict[str, Any]]:
    """Min wall-clock over ``repeats`` runs of ``fn``, plus the resource
    counters around the loop: ``peak_rss_kb`` is the process-lifetime
    high-water mark sampled after the case (monotone across a scenario,
    so the first case whose cell jumps is the one that grew the heap),
    and the ``gc_*`` deltas are the collector work the timed loop
    triggered."""
    gc_collections0, gc_collected0 = _gc_totals()
    best = float("inf")
    for _ in range(repeats):
        if clear_caches:
            from repro.views import clear_view_caches

            clear_view_caches()
        t0 = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - t0)
    gc_collections1, gc_collected1 = _gc_totals()
    resources = {
        "peak_rss_kb": _peak_rss_kb(),
        "gc_collections": gc_collections1 - gc_collections0,
        "gc_collected": gc_collected1 - gc_collected0,
    }
    return best, repeats, resources


# ----------------------------------------------------------------------
# scenarios
# ----------------------------------------------------------------------
@register_scenario("refinement")
def _scenario_refinement(quick: bool) -> List[Case]:
    """``stable_partition`` on corpus-shaped graphs: the partition-
    refinement hot loop, at four-digit n and (full mode) up to ~50k."""
    from repro.graphs.generators import grid_torus, random_regular, random_tree
    from repro.views.refinement import stable_partition

    if quick:
        specs = [
            ("random-tree-n300", lambda: random_tree(300, seed=1)),
            ("random-regular-n200-d4", lambda: random_regular(200, 4, seed=1)),
            ("torus-10x11", lambda: grid_torus(10, 11)),
        ]
        repeats = 2
    else:
        specs = [
            ("random-tree-n2000", lambda: random_tree(2000, seed=1)),
            ("random-tree-n5000", lambda: random_tree(5000, seed=2)),
            ("random-tree-n9000", lambda: random_tree(9000, seed=3)),
            ("random-regular-n2000-d4", lambda: random_regular(2000, 4, seed=1)),
            ("torus-44x45", lambda: grid_torus(44, 45)),
            ("random-tree-n50000", lambda: random_tree(50000, seed=1)),
        ]
        repeats = 3
    cases: List[Case] = []
    for case_name, build in specs:
        g = build()
        seconds, reps, resources = _time_case(
            lambda: stable_partition(g), repeats
        )
        cases.append(
            {
                "case": case_name,
                "seconds": seconds,
                "repeats": reps,
                "n": g.n,
                **resources,
            }
        )
    return cases


@register_scenario("sweep")
def _scenario_sweep(quick: bool) -> List[Case]:
    """End-to-end ``repro sweep`` of a corpus family through the streaming
    engine: lazy generation -> task -> records, exactly the CLI path."""
    from repro.corpus import get_family
    from repro.engine import EngineConfig, run_stream
    from repro.views.refinement import stable_partition

    if quick:
        index_params = dict(count=6, seed=0, min_n=20, max_n=60)
        elect_params = dict(count=3, seed=0, min_n=10, max_n=30)
        repeats = 1
    else:
        index_params = dict(count=30, seed=0, min_n=400, max_n=1200)
        elect_params = dict(count=10, seed=0, min_n=40, max_n=120)
        repeats = 2

    def run_family(task: str, params: Dict[str, int], feasible_only: bool):
        def one_pass() -> None:
            stream = get_family("random-trees").generate(
                params["count"] * (3 if feasible_only else 1),
                seed=params["seed"],
                min_n=params["min_n"],
                max_n=params["max_n"],
            )
            if feasible_only:
                # deterministic prefix of feasible entries: the elect task
                # rejects infeasible graphs, and "mixed" families may
                # contain them
                def feasible(entries):
                    taken = 0
                    for name, g in entries:
                        if stable_partition(g).discrete:
                            yield name, g
                            taken += 1
                            if taken == params["count"]:
                                return

                stream = feasible(stream)
            records = list(run_stream(stream, task, EngineConfig(workers=1)))
            if not records:
                raise ReproError(f"sweep scenario produced no records ({task})")

        return one_pass

    cases: List[Case] = []
    for case_name, task, params, feasible_only in (
        ("random-trees-index", "index", index_params, False),
        ("random-trees-elect", "elect", elect_params, True),
    ):
        seconds, reps, resources = _time_case(
            run_family(task, params, feasible_only), repeats, clear_caches=True
        )
        cases.append(
            {
                "case": case_name,
                "seconds": seconds,
                "repeats": reps,
                "count": params["count"],
                **resources,
            }
        )
    return cases


@register_scenario("strict")
def _scenario_strict(quick: bool) -> List[Case]:
    """Strict-wire election: every message serialized to bits and decoded
    back — the byte-honest engine plus the coding layer, broken down per
    graph family (trees, caterpillars, lollipops) so a coding-layer
    regression shows *where* it bites.

    Each case is classified ``bound="wire"`` (serialization dominates the
    profile: dense lollipop views recur across many ports and rounds) or
    ``bound="compute"`` (advice decode / trie queries dominate; the codec
    caches cannot help much).  The pre-optimization codec survives as
    ``seed_wire_wrapped``, so every case first asserts the fast path
    byte-identical to it on the full run (outputs, rounds, per-round
    message counts, per-node ``bits_sent``) and then times both on the
    identical workload; the ratio is emitted as ``speedup_vs_seed``, the
    number the CI gate reads (>= 3x on wire-bound cases), alongside the
    shared message plane's dedup hit counters."""
    from repro.core.advice import compute_advice
    from repro.core.elect import ElectAlgorithm
    from repro.graphs.generators import caterpillar, lollipop, random_tree
    from repro.sim import run_sync
    from repro.sim.strict import MessagePlane, seed_wire_wrapped, wire_wrapped
    from repro.views import clear_view_caches

    # parameters chosen so every graph is feasible (asserted below)
    if quick:
        specs = [
            (
                "elect-wire-tree-n24",
                "random-trees",
                "compute",
                lambda: random_tree(24, seed=2),
            ),
            (
                "elect-wire-caterpillar-s8",
                "caterpillars",
                "compute",
                lambda: caterpillar(8, (1, 3, 0, 2, 4, 0, 1, 2)),
            ),
            (
                "elect-wire-lollipop-k8t12",
                "lollipops",
                "wire",
                lambda: lollipop(8, 12),
            ),
        ]
    else:
        specs = [
            (
                "elect-wire-tree-n60",
                "random-trees",
                "compute",
                lambda: random_tree(60, seed=2),
            ),
            (
                "elect-wire-tree-n90",
                "random-trees",
                "compute",
                lambda: random_tree(90, seed=4),
            ),
            (
                "elect-wire-caterpillar-s16",
                "caterpillars",
                "compute",
                lambda: caterpillar(
                    16, (1, 3, 0, 2, 4, 0, 1, 2, 5, 0, 3, 1, 2, 0, 4, 1)
                ),
            ),
            (
                "elect-wire-lollipop-k8t20",
                "lollipops",
                "wire",
                lambda: lollipop(8, 20),
            ),
        ]
    repeats = 2 if quick else 3
    cases: List[Case] = []
    for case_name, family, bound, build in specs:
        g = build()
        bundle = compute_advice(g)  # raises if infeasible: bad spec

        def run_capture(make_factory):
            """One full run capturing per-node wrappers for bits_sent."""
            instances: List[Any] = []

            def factory():
                a = make_factory()
                instances.append(a)
                return a

            result = run_sync(g, factory, advice=bundle.bits)
            if len(result.outputs) != g.n:
                raise ReproError("strict scenario lost node outputs")
            bits = [a.bits_sent for a in instances]
            return result, bits

        # parity first: a fast number from a wrong byte stream is
        # worthless, so refuse to time a path that diverges from the
        # seed codec anywhere in the run
        clear_view_caches()
        plane = MessagePlane()
        fast, fast_bits = run_capture(wire_wrapped(ElectAlgorithm, plane))
        stats = plane.stats()
        clear_view_caches()
        seed, seed_bits = run_capture(seed_wire_wrapped(ElectAlgorithm))
        if (
            fast.outputs != seed.outputs
            or fast.output_round != seed.output_round
            or fast.rounds != seed.rounds
            or fast.per_round_messages != seed.per_round_messages
            or fast_bits != seed_bits
        ):
            raise ReproError(
                f"strict scenario: cached and seed codecs disagree on "
                f"{case_name} — refusing to time a broken path"
            )

        def run() -> None:
            result = run_sync(
                g, wire_wrapped(ElectAlgorithm), advice=bundle.bits
            )
            if len(result.outputs) != g.n:
                raise ReproError("strict scenario lost node outputs")

        def run_seed() -> None:
            result = run_sync(
                g, seed_wire_wrapped(ElectAlgorithm), advice=bundle.bits
            )
            if len(result.outputs) != g.n:
                raise ReproError("strict scenario lost node outputs")

        seconds, reps, resources = _time_case(run, repeats, clear_caches=True)
        seed_seconds, _, _ = _time_case(run_seed, repeats, clear_caches=True)
        case: Case = {
            "case": case_name,
            "seconds": seconds,
            "repeats": reps,
            "n": g.n,
            "family": family,
            "bound": bound,
            "seed_seconds": seed_seconds,
            "speedup_vs_seed": (
                seed_seconds / seconds if seconds > 0 else None
            ),
            **resources,
        }
        case.update(stats)
        cases.append(case)
    return cases


@register_scenario("elect-orbit")
def _scenario_elect_orbit(quick: bool) -> List[Case]:
    """The orbit-collapsed engine against the per-node engine on the
    symmetric families where the collapse pays: each case runs the
    uniform-advice depth-T view probe (the COM core every election
    algorithm starts with) once per behavior class instead of once per
    node.  ``seconds`` times the collapsed path end to end — partition
    *plus* engine, nothing precomputed — and the per-node engine is
    timed in-run on the identical workload; the ratio is emitted as
    ``speedup_vs_pernode``, the number the CI gate reads (>= 3x on the
    ``vertex-transitive`` cases).  The two runs are also compared for
    equality first: a fast number from a wrong path is worthless."""
    from repro.core.orbit_elect import behavior_classes, run_view_probe
    from repro.graphs.generators import (
        cycle_with_leader_gadget,
        grid_torus,
        hypercube,
        lift,
        ring,
    )
    from repro.views import clear_view_caches

    if quick:
        specs = [
            ("probe-ring-n256", "vertex-transitive", lambda: ring(256), 8),
            ("probe-torus-10x11", "vertex-transitive", lambda: grid_torus(10, 11), 8),
            ("probe-hypercube-d6", "vertex-transitive", lambda: hypercube(6), 6),
            (
                "probe-lift-r12x3",
                "lifts",
                lambda: lift(cycle_with_leader_gadget(12), 3, seed=5),
                8,
            ),
        ]
        repeats = 2
    else:
        specs = [
            ("probe-ring-n1024", "vertex-transitive", lambda: ring(1024), 10),
            ("probe-torus-24x25", "vertex-transitive", lambda: grid_torus(24, 25), 10),
            ("probe-hypercube-d8", "vertex-transitive", lambda: hypercube(8), 8),
            (
                "probe-lift-r40x3",
                "lifts",
                lambda: lift(cycle_with_leader_gadget(40), 3, seed=5),
                10,
            ),
        ]
        repeats = 3
    cases: List[Case] = []
    for case_name, family, build, depth in specs:
        g = build()
        part = behavior_classes(g)
        clear_view_caches()
        if run_view_probe(g, depth) != run_view_probe(g, depth, collapsed=False):
            raise ReproError(
                f"elect-orbit scenario: collapsed and per-node probes "
                f"disagree on {case_name} — refusing to time a broken path"
            )
        seconds, reps, resources = _time_case(
            lambda: run_view_probe(g, depth), repeats, clear_caches=True
        )
        pernode_seconds, _, _ = _time_case(
            lambda: run_view_probe(g, depth, collapsed=False),
            repeats,
            clear_caches=True,
        )
        cases.append(
            {
                "case": case_name,
                "seconds": seconds,
                "repeats": reps,
                "n": g.n,
                "family": family,
                "depth": depth,
                "orbits": part.num_orbits,
                "pernode_seconds": pernode_seconds,
                "speedup_vs_pernode": (
                    pernode_seconds / seconds if seconds > 0 else None
                ),
                **resources,
            }
        )
    return cases


@register_scenario("conformance")
def _scenario_conformance(quick: bool) -> List[Case]:
    """Differential-oracle cells: every algorithm x sim model x schedule
    on a small corpus prefix — the conformance engine's unit of work."""
    from repro.conformance.oracle import ConformanceConfig, conformance_entry
    from repro.corpus import get_family

    per_family = 1 if quick else 3
    repeats = 1 if quick else 2
    config = ConformanceConfig(schedules=2, seed=0)
    cases: List[Case] = []
    for family in ("tori", "random-trees"):
        entries = list(get_family(family).generate(per_family, seed=0))

        def run(entries=entries) -> None:
            for name, g in entries:
                records = conformance_entry(name, g, config)
                if not records:
                    raise ReproError("conformance scenario produced no records")

        seconds, reps, resources = _time_case(run, repeats, clear_caches=True)
        cases.append(
            {
                "case": f"{family}-x{per_family}",
                "seconds": seconds,
                "repeats": reps,
                "entries": per_family,
                **resources,
            }
        )
    return cases


@register_scenario("service")
def _scenario_service(quick: bool) -> List[Case]:
    """The query service on a repeated-query mix: corpus-family graphs,
    each queried several times under fresh node relabelings — the
    workload the canonical-form cache exists for.  Cold runs disable the
    cache (capacity 0: every query computes); warm runs pre-answer one
    representative per isomorphism class and then serve the whole mix
    from the cache.  Warm cases carry ``speedup_vs_cold`` against the
    same mode's cold case — the number the acceptance gate reads."""
    import random

    from repro.corpus import get_family
    from repro.graphs.canonical import relabel_nodes
    from repro.service.api import ServiceCore
    from repro.service.cache import ResultCache
    from repro.views.refinement import stable_partition

    if quick:
        per_family, relabelings, repeats = 3, 3, 1
        families = (
            ("random-trees", dict(min_n=16, max_n=40)),
            ("caterpillars", dict(min_spine=4, max_spine=8)),
        )
    else:
        per_family, relabelings, repeats = 6, 5, 2
        families = (
            ("random-trees", dict(min_n=30, max_n=80)),
            ("caterpillars", dict(min_spine=8, max_spine=16)),
        )

    # the mix: feasible graphs (elect is the paper's full pipeline and
    # the service's heaviest task) from two tree-shaped families
    bases = []
    for family, params in families:
        taken = 0
        for name, g in get_family(family).generate(
            per_family * 4, seed=0, **params
        ):
            if stable_partition(g).discrete:
                bases.append(g)
                taken += 1
                if taken == per_family:
                    break
    rng = random.Random(7)
    queries = []
    for _ in range(relabelings):
        for g in bases:
            perm = list(range(g.n))
            rng.shuffle(perm)
            queries.append(relabel_nodes(g, perm))

    def fresh_payloads() -> None:
        # a real client ships a fresh payload per request: drop the
        # derived caches so every timed query pays its canonicalization
        for g in queries:
            g._csr_cache = None
            g._canon_cache = None

    def run_single(core: ServiceCore) -> None:
        fresh_payloads()
        for g in queries:
            core.query("elect", g)

    def run_batch(core: ServiceCore) -> None:
        fresh_payloads()
        core.batch([("elect", g) for g in queries])

    def cold_core() -> ServiceCore:
        return ServiceCore(ResultCache(capacity=0))

    def warm_core() -> ServiceCore:
        core = ServiceCore(ResultCache())
        for g in bases:
            core.query("elect", g)
        return core

    cases: List[Case] = []
    cold_seconds: Dict[str, float] = {}
    for mode, run in (("single", run_single), ("batch", run_batch)):
        for temp, make_core in (("cold", cold_core), ("warm", warm_core)):
            core = make_core()  # built once: cold never caches, warm is
            # pre-populated, so repeats measure a steady state either way
            seconds, reps, resources = _time_case(
                lambda: run(core), repeats, clear_caches=True
            )
            case: Case = {
                "case": f"{temp}-{mode}",
                "seconds": seconds,
                "repeats": reps,
                "queries": len(queries),
                **resources,
            }
            if temp == "cold":
                cold_seconds[mode] = seconds
            elif seconds > 0:
                case["speedup_vs_cold"] = cold_seconds[mode] / seconds
            cases.append(case)
    return cases


@register_scenario("service-load")
def _scenario_service_load(quick: bool) -> List[Case]:
    """The service under concurrent clients: distinct feasible graphs,
    each queried once, driven by 1/8/64 client threads against the
    in-process core (every cold compute serialized on the compute lock)
    and the fingerprint-sharded core (one worker process per shard).
    Cold cases measure compute throughput, warm cases the lookup path.
    Each case carries wall-clock ``seconds``, ``qps`` and per-query
    ``p50_ms``/``p99_ms``; sharded cold cases carry
    ``speedup_vs_inproc`` against the in-process case at the same
    concurrency — the number the CI gate reads (the sharded speedup only
    materializes on a multi-core box; a 1-CPU container measures ~1x).

    Before any timing, both compute modes answer the full query set
    sequentially and the response payloads are compared byte for byte —
    the harness refuses to time a broken path."""
    import threading

    from repro.corpus import get_family
    from repro.engine.engine import available_parallelism
    from repro.service.api import ServiceCore
    from repro.service.cache import ResultCache
    from repro.views.refinement import stable_partition

    if quick:
        num_graphs, repeats = 16, 1
        concurrencies: Tuple[int, ...] = (1, 8)
        params = dict(min_n=14, max_n=28)
    else:
        num_graphs, repeats = 64, 2
        concurrencies = (1, 8, 64)
        params = dict(min_n=30, max_n=60)
    shards = max(2, min(4, available_parallelism()))

    graphs = []
    for _name, g in get_family("random-trees").generate(
        num_graphs * 4, seed=11, **params
    ):
        if stable_partition(g).discrete:  # feasible: elect completes
            graphs.append(g)
            if len(graphs) == num_graphs:
                break

    def fresh_payloads() -> None:
        # a real client ships a fresh payload per request: drop the
        # derived caches so every timed query pays its canonicalization
        for g in graphs:
            g._csr_cache = None
            g._canon_cache = None

    def run_clients(core: ServiceCore, clients: int) -> Tuple[float, List[float]]:
        """One sweep: every graph queried once, the work pre-partitioned
        round-robin across ``clients`` threads (a shared-iterator pop is
        not thread-safe; the partition is deterministic and balanced).
        Returns (wall seconds, per-query latencies)."""
        latencies = [0.0] * len(graphs)
        failures: List[BaseException] = []

        def client(start: int) -> None:
            try:
                for i in range(start, len(graphs), clients):
                    q0 = time.perf_counter()
                    core.query("elect", graphs[i])
                    latencies[i] = time.perf_counter() - q0
            except ReproError as exc:  # pragma: no cover - fails the case
                failures.append(exc)

        threads = [
            threading.Thread(target=client, args=(i,), daemon=True)
            for i in range(clients)
        ]
        t0 = time.perf_counter()
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        wall = time.perf_counter() - t0
        if failures:  # pragma: no cover - deterministic feasible corpus
            raise failures[0]
        return wall, latencies

    def percentile_ms(latencies: List[float], q: float) -> float:
        ordered = sorted(latencies)
        index = min(len(ordered) - 1, max(0, round(q * (len(ordered) - 1))))
        return 1000.0 * ordered[index]

    def payload_bytes(core: ServiceCore) -> List[str]:
        fresh_payloads()
        return [
            json.dumps(core.query("elect", g).payload(), sort_keys=True)
            for g in graphs
        ]

    inproc_cold = ServiceCore(ResultCache(capacity=0))
    shard_cold = ServiceCore(ResultCache(capacity=0), shards=shards)
    cores = [inproc_cold, shard_cold]
    try:
        # refuse to time a broken path: the sharded answers must be
        # byte-identical to the in-process ones before any clock starts
        if payload_bytes(inproc_cold) != payload_bytes(shard_cold):
            raise ReproError(
                "service-load: sharded responses are not byte-identical "
                "to the in-process path; refusing to time a broken path"
            )

        def warm_core(n_shards: int) -> ServiceCore:
            core = ServiceCore(ResultCache(), shards=n_shards)
            cores.append(core)
            for g in graphs:
                core.query("elect", g)
            return core

        modes = (
            ("inproc", 0, inproc_cold, warm_core(0)),
            ("shard", shards, shard_cold, warm_core(shards)),
        )
        cases: List[Case] = []
        inproc_seconds: Dict[Tuple[str, int], float] = {}
        for temp_index, temp in enumerate(("cold", "warm")):
            for mode, n_shards, cold, warm in modes:
                core = (cold, warm)[temp_index]
                for clients in concurrencies:
                    gc_collections0, gc_collected0 = _gc_totals()
                    best: Optional[Tuple[float, List[float]]] = None
                    for _ in range(repeats):
                        fresh_payloads()
                        result = run_clients(core, clients)
                        if best is None or result[0] < best[0]:
                            best = result
                    assert best is not None
                    gc_collections1, gc_collected1 = _gc_totals()
                    wall, latencies = best
                    case: Case = {
                        "case": f"{temp}-{mode}-c{clients}",
                        "seconds": wall,
                        "repeats": repeats,
                        "clients": clients,
                        "queries": len(graphs),
                        "shards": n_shards,
                        "qps": len(graphs) / wall if wall > 0 else 0.0,
                        "p50_ms": percentile_ms(latencies, 0.50),
                        "p99_ms": percentile_ms(latencies, 0.99),
                        "peak_rss_kb": _peak_rss_kb(),
                        "gc_collections": gc_collections1 - gc_collections0,
                        "gc_collected": gc_collected1 - gc_collected0,
                    }
                    if mode == "inproc":
                        inproc_seconds[(temp, clients)] = wall
                    elif wall > 0:
                        case["speedup_vs_inproc"] = (
                            inproc_seconds[(temp, clients)] / wall
                        )
                    cases.append(case)
        return cases
    finally:
        for core in cores:
            core.close()


@register_scenario("warehouse")
def _scenario_warehouse(quick: bool) -> List[Case]:
    """Service warm-up from past sweep output: the legacy corpus
    re-stream (``warm_from_stores`` regenerates every graph and
    recomputes its canonical certificate) against the warehouse join
    (``warm_from_warehouse``: one indexed query over the content
    addresses a warehouse-backed sweep stored as it ran).  The sweep
    itself is untimed setup; both paths are checked to produce an
    identical cache before either is timed, and the join case carries
    ``speedup_vs_restream`` — the number the acceptance gate reads."""
    import shutil
    import tempfile

    from repro.analysis.sweep import sweep_to_store
    from repro.corpus import get_family
    from repro.engine import open_result_store
    from repro.service.cache import (
        ResultCache,
        warm_from_stores,
        warm_from_warehouse,
    )
    from repro.warehouse import Warehouse, export_dataset

    count = 150 if quick else 1000
    repeats = 2 if quick else 3
    params = dict(min_n=10, max_n=24)

    def corpus():
        return get_family("random-trees").generate(count, seed=0, **params)

    tmp = tempfile.mkdtemp(prefix="repro-bench-warehouse-")
    try:
        wh_path = os.path.join(tmp, "results.sqlite")
        store_path = os.path.join(tmp, "sweep.jsonl")
        with open_result_store(wh_path, dataset="sweep") as store:
            sweep_to_store(corpus(), "index", store)
        with Warehouse(wh_path) as wh:
            export_dataset(wh, "sweep", store_path)

        def restream() -> ResultCache:
            cache = ResultCache(capacity=count)
            warmed, _skipped = warm_from_stores(
                cache, [store_path], corpus()
            )
            if warmed != count:
                raise ReproError(
                    f"warehouse scenario: re-stream warmed {warmed}/{count}"
                )
            return cache

        def join() -> ResultCache:
            cache = ResultCache(capacity=count)
            warmed = warm_from_warehouse(cache, wh_path)
            if warmed != count:
                raise ReproError(
                    f"warehouse scenario: join warmed {warmed}/{count}"
                )
            return cache

        # a fast number from a wrong path is worthless: both warmers
        # must fill an identical cache before either is timed
        if restream()._entries != join()._entries:
            raise ReproError(
                "warehouse scenario: join-warmed cache differs from "
                "re-stream-warmed cache — refusing to time a broken path"
            )

        restream_seconds, reps, restream_res = _time_case(restream, repeats)
        join_seconds, _, join_res = _time_case(join, repeats)
        return [
            {
                "case": f"warm-restream-n{count}",
                "seconds": restream_seconds,
                "repeats": reps,
                "entries": count,
                **restream_res,
            },
            {
                "case": f"warm-warehouse-n{count}",
                "seconds": join_seconds,
                "repeats": reps,
                "entries": count,
                "restream_seconds": restream_seconds,
                "speedup_vs_restream": (
                    restream_seconds / join_seconds
                    if join_seconds > 0
                    else None
                ),
                **join_res,
            },
        ]
    finally:
        shutil.rmtree(tmp, ignore_errors=True)


# ----------------------------------------------------------------------
# records, baselines, validation
# ----------------------------------------------------------------------
def make_bench_record(
    scenario: str,
    cases: List[Case],
    quick: bool,
    baseline: Optional[Dict[str, Any]] = None,
    baseline_path: Optional[str] = None,
) -> Dict[str, Any]:
    """Assemble the canonical ``BENCH_<scenario>.json`` record, attaching
    per-case speedups when the baseline covers (mode, scenario, case)."""
    mode = "quick" if quick else "full"
    base_cases: Dict[str, float] = {}
    if baseline is not None:
        base_cases = baseline.get("modes", {}).get(mode, {}).get(scenario, {})
    out_cases: List[Case] = []
    for case in cases:
        case = dict(case)
        base = base_cases.get(case["case"])
        case["baseline_seconds"] = base
        case["speedup"] = (
            base / case["seconds"]
            if base is not None and case["seconds"] > 0
            else None
        )
        out_cases.append(case)
    return {
        "schema": BENCH_SCHEMA,
        "kind": "timing",
        "scenario": scenario,
        "quick": quick,
        "env": env_fingerprint(),
        "baseline": (
            {"path": baseline_path, "env": baseline.get("env")}
            if baseline is not None
            else None
        ),
        "cases": out_cases,
    }


def make_table_record(scenario: str, title: str, body: str) -> Dict[str, Any]:
    """The ``kind="table"`` twin for historical prose benches: same schema
    envelope, one case carrying the table text."""
    return {
        "schema": BENCH_SCHEMA,
        "kind": "table",
        "scenario": scenario,
        "quick": False,
        "env": env_fingerprint(),
        "baseline": None,
        "cases": [{"case": scenario, "title": title, "text": body}],
    }


def validate_bench_record(record: Any) -> None:
    """Raise :class:`ReproError` unless ``record`` is a well-formed
    ``repro-bench/1`` record (the CI schema gate)."""

    def fail(msg: str) -> None:
        raise ReproError(f"malformed bench record: {msg}")

    if not isinstance(record, dict):
        fail(f"expected an object, got {type(record).__name__}")
    if record.get("schema") != BENCH_SCHEMA:
        fail(f"schema must be '{BENCH_SCHEMA}', got {record.get('schema')!r}")
    kind = record.get("kind")
    if kind not in ("timing", "table"):
        fail(f"kind must be 'timing' or 'table', got {kind!r}")
    scenario = record.get("scenario")
    if not isinstance(scenario, str) or not scenario:
        fail("scenario must be a non-empty string")
    if not isinstance(record.get("quick"), bool):
        fail("quick must be a boolean")
    env = record.get("env")
    if not isinstance(env, dict) or not env.get("python") or not env.get("platform"):
        fail("env must carry at least python and platform")
    baseline = record.get("baseline")
    if baseline is not None and not isinstance(baseline, dict):
        fail("baseline must be null or an object")
    cases = record.get("cases")
    if not isinstance(cases, list) or not cases:
        fail("cases must be a non-empty list")
    for i, case in enumerate(cases):
        if not isinstance(case, dict) or not isinstance(case.get("case"), str):
            fail(f"cases[{i}] must be an object with a string 'case'")
        if kind == "timing":
            seconds = case.get("seconds")
            if not isinstance(seconds, (int, float)) or seconds < 0:
                fail(f"cases[{i}].seconds must be a non-negative number")
            repeats = case.get("repeats")
            if not isinstance(repeats, int) or repeats < 1:
                fail(f"cases[{i}].repeats must be a positive integer")
            for key in ("baseline_seconds", "speedup"):
                value = case.get(key)
                if value is not None and not isinstance(value, (int, float)):
                    fail(f"cases[{i}].{key} must be null or a number")
        else:
            if not isinstance(case.get("text"), str):
                fail(f"cases[{i}].text must be a string (kind=table)")


def bench_table(record: Dict[str, Any]) -> Tuple[List[str], List[Tuple]]:
    """``(columns, rows)`` for :func:`repro.analysis.format_table`."""
    columns = ["case", "seconds", "baseline_s", "speedup"]
    rows = []
    for case in record["cases"]:
        if record["kind"] == "table":
            rows.append((case["case"], "-", "-", "-"))
            continue
        base = case.get("baseline_seconds")
        speedup = case.get("speedup")
        rows.append(
            (
                case["case"],
                f"{case['seconds']:.4f}",
                f"{base:.4f}" if base is not None else "-",
                f"{speedup:.2f}x" if speedup is not None else "-",
            )
        )
    return columns, rows


# ----------------------------------------------------------------------
# file I/O
# ----------------------------------------------------------------------
def write_json(path: str, payload: Dict[str, Any]) -> None:
    with open(path, "w", encoding="utf-8") as fh:
        json.dump(payload, fh, indent=2, sort_keys=True)
        fh.write("\n")


def load_baseline(path: str) -> Dict[str, Any]:
    with open(path, "r", encoding="utf-8") as fh:
        baseline = json.load(fh)
    if baseline.get("schema") != BASELINE_SCHEMA:
        raise ReproError(
            f"{path}: schema must be '{BASELINE_SCHEMA}', "
            f"got {baseline.get('schema')!r}"
        )
    return baseline


def update_baseline(
    path: str, mode: str, results: Dict[str, List[Case]]
) -> Dict[str, Any]:
    """Merge freshly measured scenario timings into the baseline file
    (creating it if absent); only the given mode is touched.

    A baseline's timings are only comparable within one environment, so
    merging into a file recorded on a different environment is refused —
    re-record every mode into a fresh file instead."""
    current_env = env_fingerprint()
    if os.path.exists(path):
        baseline = load_baseline(path)
        recorded_env = baseline.get("env")
        if recorded_env and recorded_env != current_env:
            raise ReproError(
                f"{path}: existing baseline was recorded on a different "
                f"environment ({recorded_env}); partial re-recording would "
                "mislabel its timings — record all modes into a fresh file"
            )
    else:
        baseline = {"schema": BASELINE_SCHEMA, "modes": {}}
    per_mode = baseline.setdefault("modes", {}).setdefault(mode, {})
    for scenario, cases in results.items():
        per_mode[scenario] = {c["case"]: c["seconds"] for c in cases}
    baseline["env"] = current_env
    write_json(path, baseline)
    return baseline


def _check_known_scenarios(scenarios: List[str]) -> None:
    unknown = [s for s in scenarios if s not in SCENARIOS]
    if unknown:
        raise ReproError(
            f"unknown scenario(s) {', '.join(unknown)}; "
            f"available: {', '.join(sorted(SCENARIOS))}"
        )


def run_bench(
    scenarios: List[str],
    quick: bool,
    out_dir: str,
    baseline_path: Optional[str],
    progress: Callable[[str], None] = lambda _msg: None,
    warehouse_path: Optional[str] = None,
    label: Optional[str] = None,
) -> List[str]:
    """Run the named scenarios, write one validated ``BENCH_*.json`` per
    scenario under ``out_dir``, and return the written paths.

    With ``warehouse_path``, the records are additionally stored in the
    results warehouse under one ``bench`` provenance run (labeled
    ``label``) — the rows ``repro report --trend`` renders as a
    cross-run perf trajectory.  The BENCH files stay the wire format:
    ``repro warehouse export --bench`` writes them back byte-identical.
    """
    _check_known_scenarios(scenarios)
    baseline = None
    if baseline_path and os.path.exists(baseline_path):
        baseline = load_baseline(baseline_path)
    os.makedirs(out_dir, exist_ok=True)
    written: List[str] = []
    records: List[Dict[str, Any]] = []
    for scenario in scenarios:
        progress(f"scenario {scenario} ({'quick' if quick else 'full'}) ...")
        cases = SCENARIOS[scenario](quick)
        record = make_bench_record(
            scenario, cases, quick, baseline=baseline, baseline_path=baseline_path
        )
        validate_bench_record(record)
        path = os.path.join(out_dir, f"BENCH_{scenario}.json")
        write_json(path, record)
        written.append(path)
        records.append(record)
    if warehouse_path is not None:
        from repro.warehouse import Warehouse

        with Warehouse(warehouse_path) as wh:
            run_id = wh.begin_run("bench", label)
            for record in records:
                wh.append_bench(record, run_id)
            wh.finish_run(run_id)
        progress(
            f"{len(records)} record(s) stored in {warehouse_path} "
            f"(run {run_id})"
        )
    return written


def check_bench_dir(out_dir: str) -> List[str]:
    """Validate every ``BENCH_*.json`` under ``out_dir``; raise
    :class:`ReproError` on a malformed record or if none exist."""
    if not os.path.isdir(out_dir):
        raise ReproError(f"bench output directory '{out_dir}' does not exist")
    paths = sorted(
        os.path.join(out_dir, name)
        for name in os.listdir(out_dir)
        if name.startswith("BENCH_") and name.endswith(".json")
    )
    if not paths:
        raise ReproError(f"no BENCH_*.json records under '{out_dir}'")
    for path in paths:
        try:
            with open(path, "r", encoding="utf-8") as fh:
                record = json.load(fh)
        except json.JSONDecodeError as exc:
            raise ReproError(f"{path}: not valid JSON ({exc})") from None
        try:
            validate_bench_record(record)
        except ReproError as exc:
            raise ReproError(f"{path}: {exc}") from None
    return paths


def run_from_args(args) -> int:
    """Execute a parsed ``repro bench`` invocation (flags defined on the
    CLI subparser in :mod:`repro.cli`)."""
    if args.check is not None:
        paths = check_bench_dir(args.check)
        print(f"{len(paths)} bench record(s) valid under {args.check}")
        return 0

    names = (
        [s.strip() for s in args.scenario.split(",") if s.strip()]
        if args.scenario
        else sorted(SCENARIOS)
    )
    if args.record_baseline is not None:
        _check_known_scenarios(names)
        mode = "quick" if args.quick else "full"
        results = {}
        for scenario in names:
            print(f"baseline: scenario {scenario} ({mode}) ...", flush=True)
            results[scenario] = SCENARIOS[scenario](args.quick)
        update_baseline(args.record_baseline, mode, results)
        print(f"baseline ({mode}) written to {args.record_baseline}")
        return 0

    from repro.analysis.tables import format_table

    written = run_bench(
        names,
        args.quick,
        args.out_dir,
        args.baseline,
        progress=lambda msg: print(msg, flush=True),
        warehouse_path=getattr(args, "warehouse", None),
        label=getattr(args, "label", None),
    )
    for path in written:
        with open(path, "r", encoding="utf-8") as fh:
            record = json.load(fh)
        columns, rows = bench_table(record)
        print(f"\n== {record['scenario']} ==")
        print(format_table(columns, rows))
    print(f"\n{len(written)} record(s) written to {args.out_dir}")
    return 0


def main(argv: Optional[List[str]] = None) -> int:
    """The ``benchmarks/harness.py`` standalone entry point: exactly the
    ``repro bench`` subcommand (one flag definition, in the CLI)."""
    from repro.cli import main as cli_main

    return cli_main(["bench"] + list(sys.argv[1:] if argv is None else argv))


if __name__ == "__main__":  # pragma: no cover - exercised via harness.py
    sys.exit(main())
