"""Aggregation and reporting for conformance sweeps.

A conformance store interleaves per-algorithm sub-records and per-entry
summaries (:mod:`repro.conformance.oracle`); this module folds a record
stream into the two tables the CLI prints — one row per corpus family
(entries, feasibility split, cells, disagreements) and one row per
algorithm (runs, cells, round/advice aggregates) — plus the overall
verdict the exit code reflects.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, Iterable, List, Tuple

from repro.engine.records import Record


def _family_of(entry_name: str) -> str:
    """Corpus family of an entry name (``<family>-s<seed>-...`` per the
    registry naming contract; anything else aggregates under itself)."""
    head, sep, _ = entry_name.partition("-s")
    return head if sep else entry_name


@dataclass
class ConformanceSummary:
    """Totals of one conformance sweep."""

    entries: int = 0
    feasible: int = 0
    cells: int = 0
    disagreements: int = 0
    disagreement_entries: List[str] = field(default_factory=list)
    by_family: Dict[str, Dict[str, int]] = field(default_factory=dict)
    by_algorithm: Dict[str, Dict[str, Any]] = field(default_factory=dict)

    @property
    def clean(self) -> bool:
        return self.disagreements == 0


def summarize_conformance(records: Iterable[Record]) -> ConformanceSummary:
    """Fold a conformance record stream (sub-records and summaries, any
    task parameterization) into a :class:`ConformanceSummary`."""
    out = ConformanceSummary()
    for record in records:
        entry = record.get("entry")
        name = record.get("name")
        if entry is None or name is None:
            continue  # not a conformance record
        if entry == name:
            # per-entry summary
            out.entries += 1
            fam = out.by_family.setdefault(
                _family_of(name),
                {"entries": 0, "feasible": 0, "cells": 0, "disagreements": 0},
            )
            fam["entries"] += 1
            if record.get("feasible"):
                out.feasible += 1
                fam["feasible"] += 1
            out.cells += record.get("cells", 0)
            fam["cells"] += record.get("cells", 0)
            total = record.get(
                "total_disagreements", len(record.get("disagreements", []))
            )
            fam["disagreements"] += total
            out.disagreements += total
            if total:
                out.disagreement_entries.append(name)
        else:
            # per-algorithm sub-record
            algo = out.by_algorithm.setdefault(
                record.get("algorithm", "?"),
                {
                    "runs": 0,
                    "cells": 0,
                    "disagreements": 0,
                    # None = never observed (e.g. every run failed) —
                    # distinct from a genuine 0-round election
                    "max_time": None,
                    "max_advice_bits": None,
                },
            )
            algo["runs"] += 1
            algo["cells"] += record.get("cells", 0)
            algo["disagreements"] += len(record.get("disagreements", []))
            time = record.get("election_time")
            if isinstance(time, int):
                algo["max_time"] = max(algo["max_time"] or 0, time)
            bits = record.get("advice_bits")
            if isinstance(bits, int):
                algo["max_advice_bits"] = max(algo["max_advice_bits"] or 0, bits)
    return out


def family_table(summary: ConformanceSummary) -> Tuple[List[str], List[Tuple]]:
    """(columns, rows) of the per-family table, family-sorted."""
    columns = ["family", "entries", "feasible", "cells", "disagreements"]
    rows = [
        (
            fam,
            stats["entries"],
            stats["feasible"],
            stats["cells"],
            stats["disagreements"],
        )
        for fam, stats in sorted(summary.by_family.items())
    ]
    return columns, rows


def algorithm_table(summary: ConformanceSummary) -> Tuple[List[str], List[Tuple]]:
    """(columns, rows) of the per-algorithm table, name-sorted."""
    columns = [
        "algorithm",
        "runs",
        "cells",
        "disagreements",
        "max time",
        "max advice bits",
    ]
    rows = [
        (
            algo,
            stats["runs"],
            stats["cells"],
            stats["disagreements"],
            stats["max_time"] if stats["max_time"] is not None else "-",
            stats["max_advice_bits"]
            if stats["max_advice_bits"] is not None
            else "-",
        )
        for algo, stats in sorted(summary.by_algorithm.items())
    ]
    return columns, rows
