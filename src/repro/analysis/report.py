"""One-shot experiment report: every headline measurement as markdown.

``generate_report()`` re-runs the core experiment set at small scale
(seconds, not minutes) and renders a self-contained markdown document —
the programmatic counterpart of the benchmark harness, usable from the
CLI (``python -m repro report``) or from notebooks.
"""

from __future__ import annotations

from typing import List

from repro.analysis.sweep import corpus_with_phi, sweep_elect
from repro.analysis.tables import format_markdown_table
from repro.core import run_elect, run_election_milestone, run_known_d_phi
from repro.lowerbounds import (
    necklace,
    thm32_lower_bound_bits,
    thm33_lower_bound_bits,
    thm42_lower_bound_bits,
)
from repro.lowerbounds.fooling import fooling_floor_curve


def _section_thm31() -> str:
    corpus = corpus_with_phi(1, sizes=(4, 8, 12)) + corpus_with_phi(2, sizes=(4, 6))
    records = sweep_elect(corpus)
    table = format_markdown_table(
        ["graph", "n", "phi", "advice bits", "bits/(n lg n)", "time"],
        [
            (r.name, r.n, r.phi, r.advice_bits, round(r.bits_per_nlogn, 2), r.election_time)
            for r in records
        ],
    )
    return (
        "## Theorem 3.1 — minimum-time election\n\n"
        "ComputeAdvice emits O(n log n) bits; Elect elects in time exactly "
        "phi (asserted per row).\n\n" + table
    )


def _section_spectrum() -> str:
    phi = 3
    g = necklace(4, phi)
    rows = []
    e = run_elect(g)
    rows.append(("phi", e.election_time, e.advice_bits))
    kd = run_known_d_phi(g)
    rows.append(("D+phi", kd.election_time, kd.advice_bits))
    for m, label in ((1, "D+phi+c"), (2, "D+c*phi"), (3, "D+phi^c"), (4, "D+c^phi")):
        rec = run_election_milestone(g, m, c=2)
        rows.append((label, rec.election_time, rec.advice_bits))
    table = format_markdown_table(
        ["time regime", "measured rounds", "advice bits"], rows
    )
    return (
        f"## Headline spectrum (necklace, n={g.n}, phi={phi}, "
        f"D={g.diameter()})\n\n" + table
    )


def _section_lower_bounds() -> str:
    rows32 = [
        (d["k"], d["n"], d["advice_bits_forced"], round(d["ratio"], 3))
        for d in (thm32_lower_bound_bits(k) for k in (8, 64, 1024))
    ]
    rows33 = [
        (d["k"], d["n"], d["advice_bits_forced"], round(d["ratio"], 3))
        for d in (thm33_lower_bound_bits(k, phi=3, x=4) for k in (8, 64, 512))
    ]
    rows42 = [
        (d["part"], d["alpha"], d["k_star"], d["forced_bits"])
        for d in (
            thm42_lower_bound_bits(10**6, part=p) for p in (1, 2, 4)
        )
    ]
    return (
        "## Lower bounds (counting, exact)\n\n"
        "Theorem 3.2 (time 1, Omega(n lglg n)):\n\n"
        + format_markdown_table(["k", "n", "forced bits", "ratio"], rows32)
        + "\n\nTheorem 3.3 (time phi, Omega(n (lglg n)^2/lg n)):\n\n"
        + format_markdown_table(["k", "n", "forced bits", "ratio"], rows33)
        + "\n\nTheorem 4.2 (large time; alpha = 10^6):\n\n"
        + format_markdown_table(["part", "alpha", "k*", "forced bits"], rows42)
    )


def _section_open_question() -> str:
    points = fooling_floor_curve(5, 2, taus=[2, 3, 4, 5, 6], x=3)
    table = format_markdown_table(
        ["tau", "max fooled class", "forced bits"],
        [(p.tau, p.max_class_size, p.forced_advice_bits) for p in points],
    )
    return (
        "## Open question probe (Section 5)\n\n"
        "Fooling pressure for phi < tau < D + phi on the enumerated "
        "necklace family:\n\n" + table
    )


def generate_report() -> str:
    """Run the small-scale experiment set; return the markdown report."""
    sections: List[str] = [
        "# repro experiment report",
        "Reproduction of Dieudonné & Pelc, *Impact of Knowledge on "
        "Election Time in Anonymous Networks* (SPAA 2017). "
        "Full-scale artifacts: `pytest benchmarks/ --benchmark-only`.",
        _section_thm31(),
        _section_spectrum(),
        _section_lower_bounds(),
        _section_open_question(),
    ]
    return "\n\n".join(sections) + "\n"
