"""Measurement and reporting helpers shared by the benches and examples."""

from repro.analysis.tables import format_markdown_table, format_table
from repro.analysis.bench import (
    BENCH_SCHEMA,
    SCENARIOS,
    bench_table,
    env_fingerprint,
    make_bench_record,
    make_table_record,
    validate_bench_record,
)
from repro.analysis.conformance import (
    ConformanceSummary,
    algorithm_table,
    family_table,
    summarize_conformance,
)
from repro.analysis.sweep import (
    SweepRecord,
    corpus_default,
    corpus_with_phi,
    fit_ratio,
    sweep_elect,
)

__all__ = [
    "format_table",
    "format_markdown_table",
    "BENCH_SCHEMA",
    "SCENARIOS",
    "bench_table",
    "env_fingerprint",
    "make_bench_record",
    "make_table_record",
    "validate_bench_record",
    "ConformanceSummary",
    "summarize_conformance",
    "family_table",
    "algorithm_table",
    "SweepRecord",
    "corpus_default",
    "corpus_with_phi",
    "sweep_elect",
    "fit_ratio",
]
