"""Experiment sweeps: graph corpora with controlled parameters and the
end-to-end measurement loop used by the benches.

``corpus_default`` assembles a mixed bag of feasible graphs;
``corpus_with_phi`` produces graphs of a *prescribed* election index
(necklaces for phi >= 2, ring-of-cliques members for phi = 1 — the paper's
own constructions double as the cleanest phi-controlled workload
generators).  ``sweep_elect`` runs the full Theorem 3.1 pipeline over a
corpus — through :mod:`repro.engine`, optionally across worker processes —
and reports advice size against the n log n envelope.

For corpora too large to hold (the families of :mod:`repro.corpus`),
``sweep_to_store`` is the resumable streaming loop behind
``repro sweep --out/--resume``: it filters out entries whose records are
already persisted, streams the rest through the engine, and appends each
record to the store as it arrives.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, List, Optional, Sequence, Tuple

from repro.engine import EngineConfig, ResultStore, run_experiments, run_stream
from repro.graphs.generators import (
    cycle_with_leader_gadget,
    lollipop,
    random_connected_graph,
)
from repro.graphs.port_graph import PortGraph
from repro.lowerbounds.necklaces import necklace
from repro.lowerbounds.ring_of_cliques import hk_graph
from repro.views.election_index import is_feasible


@dataclass
class SweepRecord:
    """One corpus point of a Theorem 3.1 sweep."""

    name: str
    n: int
    phi: int
    advice_bits: int
    election_time: int
    bits_per_nlogn: float


def corpus_default(max_n: int = 60) -> List[Tuple[str, PortGraph]]:
    """A mixed feasible corpus: pendant rings, lollipops, random graphs."""
    corpus: List[Tuple[str, PortGraph]] = []
    for n in (5, 8, 12, 17):
        if n + 1 <= max_n:
            corpus.append((f"pendant-ring-{n}", cycle_with_leader_gadget(n)))
    for size, tail in ((4, 3), (5, 6)):
        if size + tail <= max_n:
            corpus.append((f"lollipop-{size}-{tail}", lollipop(size, tail)))
    for n, extra, seed in ((10, 5, 1), (20, 12, 2), (35, 20, 3), (50, 35, 4)):
        if n <= max_n:
            g = random_connected_graph(n, extra_edges=extra, seed=seed)
            if is_feasible(g):
                corpus.append((f"random-{n}", g))
    return corpus


def corpus_with_phi(
    phi: int, sizes: Sequence[int] = (4, 6, 8)
) -> List[Tuple[str, PortGraph]]:
    """Graphs of prescribed election index: H_k members for phi = 1,
    necklaces for phi >= 2 (``sizes`` are the k parameters)."""
    out: List[Tuple[str, PortGraph]] = []
    if phi == 1:
        for k in sizes:
            out.append((f"ring-of-cliques-k{k}", hk_graph(k)))
    else:
        for k in sizes:
            out.append((f"necklace-k{k}-phi{phi}", necklace(k, phi)))
    return out


def sweep_elect(
    corpus: Sequence[Tuple[str, PortGraph]],
    workers: int = 1,
    chunk_size: Optional[int] = None,
) -> List[SweepRecord]:
    """Run the Theorem 3.1 pipeline over a corpus.

    Delegates to the experiment engine: with ``workers > 1`` the corpus is
    fanned out to worker processes, with results guaranteed
    record-for-record identical to the serial run (the engine's
    determinism contract).  ``chunk_size`` bounds the per-process view
    intern table; ``None`` picks a load-balanced default.
    """
    records = run_experiments(
        corpus, task="elect", workers=workers, chunk_size=chunk_size
    )
    return [
        SweepRecord(
            name=r["name"],
            n=r["n"],
            phi=r["phi"],
            advice_bits=r["advice_bits"],
            election_time=r["election_time"],
            bits_per_nlogn=r["bits_per_nlogn"],
        )
        for r in records
    ]


def sweep_to_store(
    corpus_iter: Iterable[Tuple[str, PortGraph]],
    task: str,
    store: ResultStore,
    workers: int = 1,
    chunk_size: Optional[int] = None,
) -> Tuple[int, int]:
    """Stream ``task`` over a lazy corpus into a persistent store.

    Entries whose ``(name, task)`` key is already in ``store`` are
    skipped *before* their graph is ever sent to a worker, so resuming an
    interrupted sweep re-pays only the corpus generator, not the tasks.
    For multi-record tasks this key belongs to the entry's *summary*
    record, which the store only registers once the whole group is on
    disk — a kill mid-entry re-runs that entry in full (the store
    truncates its partial group on resume).  Records are appended (and
    flushed) in corpus order as they arrive, preserving the store's
    prefix invariant; with a deterministic corpus iterator the resumed
    file is byte-identical to an uninterrupted run.

    Warehouse-backed stores additionally get each entry's content
    address (``store.register_graph``): the fingerprint and canonical
    relabeling land in the warehouse's ``graphs`` table atomically with
    the entry's record group, so service warming later joins on an index
    instead of re-streaming this corpus.

    Returns ``(ran, skipped)``: records appended and entries skipped.
    """
    skipped = 0
    register_graph = getattr(store, "register_graph", None)

    def not_yet_recorded():
        nonlocal skipped
        for name, graph in corpus_iter:
            if (name, task) in store:
                skipped += 1
            else:
                if register_graph is not None:
                    register_graph(name, graph)
                yield name, graph

    config = EngineConfig(workers=workers, chunk_size=chunk_size)
    ran = 0
    for record in run_stream(not_yet_recorded(), task, config):
        store.append(record)
        ran += 1
    return ran, skipped


def fit_ratio(xs: Sequence[float], ys: Sequence[float]) -> Tuple[float, float]:
    """Least-squares fit of ``y = a * x``; returns (a, max relative
    deviation).  Used to check that measured advice sizes track the
    paper's envelopes (an O(.) claim passes if the ratio stays bounded)."""
    if len(xs) != len(ys) or not xs:
        raise ValueError("fit_ratio needs equal-length non-empty series")
    num = sum(x * y for x, y in zip(xs, ys))
    den = sum(x * x for x in xs)
    a = num / den if den else 0.0
    max_dev = max(
        abs(y - a * x) / (a * x) if a * x else 0.0 for x, y in zip(xs, ys)
    )
    return a, max_dev
