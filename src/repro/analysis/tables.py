"""Plain-text and markdown table rendering for bench output.

The benches print the paper's tables/series shapes; these helpers keep
the formatting consistent and dependency-free.
"""

from __future__ import annotations

from typing import Any, List, Sequence


def _stringify(value: Any) -> str:
    if isinstance(value, float):
        return f"{value:.4g}"
    return str(value)


def format_table(headers: Sequence[str], rows: Sequence[Sequence[Any]]) -> str:
    """Fixed-width table with a header rule."""
    cells = [[_stringify(v) for v in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in cells:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))
    lines = [
        "  ".join(h.ljust(widths[i]) for i, h in enumerate(headers)),
        "  ".join("-" * widths[i] for i in range(len(headers))),
    ]
    for row in cells:
        lines.append("  ".join(cell.ljust(widths[i]) for i, cell in enumerate(row)))
    return "\n".join(lines)


def format_markdown_table(
    headers: Sequence[str], rows: Sequence[Sequence[Any]]
) -> str:
    """GitHub-flavoured markdown table (for EXPERIMENTS.md snippets)."""
    lines = [
        "| " + " | ".join(headers) + " |",
        "|" + "|".join("---" for _ in headers) + "|",
    ]
    for row in rows:
        lines.append("| " + " | ".join(_stringify(v) for v in row) + " |")
    return "\n".join(lines)
