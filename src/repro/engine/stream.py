"""The streaming engine entry point: sweeps over corpora of unknown size.

:func:`run_stream` is the iterator twin of
:func:`~repro.engine.engine.run_experiments`: it consumes a lazy
``(name, graph)`` stream chunk-by-chunk and yields records in corpus
order, never holding the corpus (or the result set) in memory.  It keeps
both engine contracts:

Determinism
    Chunking a stream is a pure function of ``chunk_size`` and the
    arrival order; chunks run through the identical
    :func:`~repro.engine.engine._run_chunk` runner, and results are
    yielded in submission order (the serial path trivially, the parallel
    path by draining a FIFO of ``apply_async`` handles).  So
    ``run_stream`` output equals ``run_experiments`` output on the same
    corpus, record for record, at every worker count.  Multi-record
    tasks (e.g. ``conformance``) yield their whole record group in
    order, contiguously, under the entry's corpus position.

Bounded memory
    The serial path holds exactly one encoded chunk at a time.  The
    parallel path holds at most ``STREAM_WINDOW_PER_WORKER`` chunks per
    worker in flight (submitted but not yet drained) — the backpressure
    that plain ``Pool.imap`` lacks: ``imap``'s task-feeder thread drains
    the *whole* input iterable into its internal queue, which is exactly
    the materialization this module exists to avoid.  Each finished chunk
    still triggers ``clear_view_caches()`` in its process, so the view
    intern table stays bounded by one chunk's working set.
"""

from __future__ import annotations

import itertools
import multiprocessing
from collections import deque
from typing import Iterable, Iterator, Optional, Tuple

from repro.engine.engine import EngineConfig, _ChunkPayload, _run_chunk
from repro.engine.records import Record
from repro.engine.tasks import get_task
from repro.graphs.port_graph import PortGraph
from repro.graphs.serialization import to_json
from repro.obs import core as obs

#: Streaming default chunk size: large enough to amortize per-chunk graph
#: decode and cache teardown, small enough that one chunk bounds memory.
DEFAULT_STREAM_CHUNK_SIZE = 8

#: Chunks in flight per worker on the parallel path (submitted, not yet
#: yielded).  2 keeps every worker busy while one chunk drains.
STREAM_WINDOW_PER_WORKER = 2


def _encode_chunks(
    corpus_iter: Iterable[Tuple[str, PortGraph]],
    task: str,
    chunk_size: int,
    clear_caches: bool,
    encode: bool = True,
) -> Iterator[_ChunkPayload]:
    """Lazily cut the stream into position-tagged payloads (the same shape
    :func:`chunk_corpus` produces for sequences).  ``encode=False`` passes
    graph objects through instead of canonical JSON — the serial fast
    path, which crosses no process boundary."""
    it = iter(corpus_iter)
    pos = 0
    while True:
        block = list(itertools.islice(it, chunk_size))
        if not block:
            return
        chunk = [
            (pos + offset, name, to_json(g) if encode else g)
            for offset, (name, g) in enumerate(block)
        ]
        pos += len(block)
        # the parallel path (encode=True) carries the submitting span's
        # context across the pool; serial chunks record in-process
        yield (task, chunk, clear_caches, obs.export_context() if encode else None)


def run_stream(
    corpus_iter: Iterable[Tuple[str, PortGraph]],
    task: str = "elect",
    config: Optional[EngineConfig] = None,
) -> Iterator[Record]:
    """Run ``task`` over a lazy corpus stream; yield records in corpus
    order without ever materializing the corpus.

    Identical records to :func:`run_experiments` on the same entries (the
    determinism contract); memory is bounded by one chunk on the serial
    path and by the in-flight window on the parallel path (module
    docstring).  Unknown tasks fail before the stream is touched.
    """
    if config is None:
        config = EngineConfig()
    get_task(task)  # fail fast, before consuming the iterator or forking
    chunk_size = (
        config.chunk_size
        if config.chunk_size is not None
        else DEFAULT_STREAM_CHUNK_SIZE
    )
    payloads = _encode_chunks(
        corpus_iter,
        task,
        chunk_size,
        config.clear_caches,
        encode=config.workers > 1,
    )

    if config.workers == 1:
        for payload in payloads:
            for _, record in _run_chunk(payload)[0]:
                yield record
        return

    ctx = multiprocessing.get_context(
        "fork" if "fork" in multiprocessing.get_all_start_methods() else None
    )
    window = config.workers * STREAM_WINDOW_PER_WORKER

    def _drain(handle) -> Iterator[Record]:
        pairs, events = handle.get()
        obs.ingest(events)
        for _, record in pairs:
            yield record

    with ctx.Pool(processes=config.workers) as pool:
        pending: deque = deque()
        for payload in payloads:
            pending.append(pool.apply_async(_run_chunk, (payload,)))
            if len(pending) >= window:
                yield from _drain(pending.popleft())
        while pending:
            yield from _drain(pending.popleft())
