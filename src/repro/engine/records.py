"""The engine's result records: plain JSON-stable dicts.

Worker processes cannot ship :class:`~repro.views.view.View` objects or
other interned structures back to the parent (interning is process-local
and views are deliberately unpicklable), so every task returns a *record*:
a flat dict of JSON scalars.  Records are the engine's only output format;
``analysis/sweep.py`` lifts them back into :class:`SweepRecord` and the
benches feed them straight to ``analysis/tables.py``.

Common keys (every record):

``task``
    The task name (see :mod:`repro.engine.tasks`).
``name``
    The corpus entry's name.
``n``
    Number of nodes of the graph.

Serialization is canonical — ``sort_keys`` and compact separators — so
"parallel equals serial" can be asserted byte-for-byte on the JSON text,
not just on Python equality.
"""

from __future__ import annotations

import json
from typing import Any, Dict, List, Sequence, Tuple

Record = Dict[str, Any]


def record_to_json(record: Record) -> str:
    """Canonical one-line JSON of a single record."""
    return json.dumps(record, sort_keys=True, separators=(",", ":"))


def records_to_jsonl(records: Sequence[Record]) -> str:
    """Canonical JSON-lines text: one record per line, stable ordering."""
    return "".join(record_to_json(r) + "\n" for r in records)


def records_from_jsonl(text: str) -> List[Record]:
    """Inverse of :func:`records_to_jsonl`."""
    return [json.loads(line) for line in text.splitlines() if line.strip()]


def records_table(
    records: Sequence[Record], columns: Sequence[str]
) -> List[Tuple[Any, ...]]:
    """Project records onto ``columns`` as rows for
    :func:`repro.analysis.tables.format_table` (missing keys render as
    ``-``)."""
    return [tuple(r.get(c, "-") for c in columns) for r in records]
