"""The engine's task registry: named, picklable-by-reference experiments.

A *task* maps one corpus entry ``(name, graph)`` to one JSON record (see
:mod:`repro.engine.records`) — or, for *multi-record* tasks, to a **group**
of records whose last member is the group's summary (its ``name`` equals
the corpus entry name; sub-records carry an ``entry`` field naming their
parent and a unique ``name`` extending it).  The group shape is what lets
the result store resume mid-sweep without splitting a group
(:mod:`repro.engine.store`).

Tasks are registered under a string name so a worker process only ever
receives the name over the pipe and resolves the callable from its own
copy of this module — functions stay picklable by reference under both
fork and spawn start methods.  *Parameterized* tasks extend this:
``register_task_factory`` registers a builder, and a task name of the
form ``base:key=int,key=int`` is resolved by calling the builder with
those keyword arguments **in the worker**, so closures never cross the
pipe either.

Tasks must be pure functions of the graph: no global RNG, no dependence
on interning state beyond the current process.  This is what makes
parallel runs record-for-record identical to serial runs.
"""

from __future__ import annotations

import math
from typing import Callable, Dict, List, Optional, Union

from repro.engine.records import Record
from repro.errors import EngineError
from repro.graphs.port_graph import PortGraph

#: A task returns one record, or a record group (summary last).
TaskFn = Callable[[str, PortGraph], Union[Record, List[Record]]]

#: ``factory(task_name, **params) -> TaskFn``; ``task_name`` is the full
#: parameterized name, which produced records must carry in their
#: ``task`` field so store keys match the sweep's task string.
TaskFactory = Callable[..., TaskFn]

TASKS: Dict[str, TaskFn] = {}
TASK_FACTORIES: Dict[str, TaskFactory] = {}


def register_task(name: str) -> Callable[[TaskFn], TaskFn]:
    """Decorator: register a task function under ``name``."""

    def deco(fn: TaskFn) -> TaskFn:
        if name in TASKS or name in TASK_FACTORIES:
            raise ValueError(f"task '{name}' is already registered")
        TASKS[name] = fn
        return fn

    return deco


def register_task_factory(name: str) -> Callable[[TaskFactory], TaskFactory]:
    """Decorator: register a parameterized-task builder under ``name``."""

    def deco(factory: TaskFactory) -> TaskFactory:
        if name in TASKS or name in TASK_FACTORIES:
            raise ValueError(f"task '{name}' is already registered")
        TASK_FACTORIES[name] = factory
        return factory

    return deco


def _parse_task_params(name: str, argtext: str) -> Dict[str, int]:
    params: Dict[str, int] = {}
    for token in argtext.split(","):
        token = token.strip()
        if not token:
            continue
        key, eq, value = token.partition("=")
        if not eq:
            raise EngineError(
                f"task '{name}': parameter '{token}' must be key=int"
            )
        try:
            params[key.strip()] = int(value)
        except ValueError:
            raise EngineError(
                f"task '{name}': parameter value '{value}' is not an integer"
            ) from None
    return params


def get_task(name: str) -> TaskFn:
    """Resolve a task name — plain (``elect``) or parameterized
    (``conformance:schedules=5,seed=1``); raise with the known names."""
    base, colon, argtext = name.partition(":")
    if base in TASKS:
        if colon:
            raise EngineError(
                f"task '{base}' takes no parameters; got '{name}'"
            )
        return TASKS[base]
    if base in TASK_FACTORIES:
        params = _parse_task_params(name, argtext) if colon else {}
        try:
            return TASK_FACTORIES[base](name, **params)
        except TypeError as exc:
            raise EngineError(
                f"task '{name}': bad parameters ({exc})"
            ) from None
    known = sorted(TASKS) + [f"{n}[:k=v,...]" for n in sorted(TASK_FACTORIES)]
    raise EngineError(
        f"unknown engine task '{name}'; known: {', '.join(known)}"
    ) from None


def _nlogn_envelope(n: int) -> float:
    return n * max(1.0, math.log2(n))


#: Safety margin on the derived round bound of :func:`messages_task`.  The
#: three traced algorithms terminate within D + phi + 1 rounds (Elect at
#: phi, KnownDPhi at D + phi, Election1 at D + P_1 + 1 = D + phi + 1 by
#: Lemma 4.1), so any slack >= 1 suffices; 4 leaves headroom without
#: masking a runaway simulation.
MESSAGES_ROUND_SLACK = 4


# ----------------------------------------------------------------------
# the built-in tasks
# ----------------------------------------------------------------------
def _elect_record(task: str, name: str, g: PortGraph, rec) -> Record:
    """The shared ``elect`` record shape, from an
    :class:`repro.core.elect.ElectRunRecord` — one schema for the
    per-node and the orbit-collapsed pipelines, so their records can be
    compared (and served) byte for byte."""
    return {
        "task": task,
        "name": name,
        "n": g.n,
        "phi": rec.phi,
        "advice_bits": rec.advice_bits,
        "election_time": rec.election_time,
        "leader": rec.leader,
        "total_messages": rec.total_messages,
        "bits_per_nlogn": rec.advice_bits / _nlogn_envelope(g.n),
    }


@register_task("elect")
def elect_task(name: str, g: PortGraph) -> Record:
    """Full Theorem 3.1 pipeline: ComputeAdvice -> simulate Elect ->
    verify.  The record superset of :class:`repro.analysis.sweep.SweepRecord`."""
    from repro.core.elect import run_elect

    return _elect_record("elect", name, g, run_elect(g))


@register_task("elect-orbit")
def elect_orbit_task(name: str, g: PortGraph) -> Record:
    """The elect pipeline through the orbit-collapsed engine
    (:mod:`repro.core.orbit_elect`): identical fields plus the collapse
    accounting (``num_orbits``, ``max_orbit_size``).  Every field shared
    with ``elect`` must be equal — the conformance oracle's
    collapsed-vs-full rule checks exactly that."""
    from repro.core.orbit_elect import node_orbits, run_elect_orbit
    from repro.views.refinement import stable_partition

    stable = stable_partition(g)
    orbits = node_orbits(g, stable)
    rec = run_elect_orbit(g, orbits=orbits)
    record = _elect_record("elect-orbit", name, g, rec)
    record["num_orbits"] = orbits.num_orbits
    record["max_orbit_size"] = orbits.max_orbit_size
    return record


def elect_record_via_orbits(name: str, g: PortGraph) -> Record:
    """The exact ``elect`` task record, computed through the collapsed
    engine — the service's fast path (:mod:`repro.service.api`).  Same
    ``task`` field and byte-identical canonical JSON as
    :func:`elect_task` on the same graph."""
    from repro.core.orbit_elect import run_elect_orbit

    return _elect_record("elect", name, g, run_elect_orbit(g))


@register_task("advice")
def advice_task(name: str, g: PortGraph) -> Record:
    """Oracle only: ComputeAdvice size accounting (no simulation)."""
    from repro.core.advice import compute_advice

    bundle = compute_advice(g)
    return {
        "task": "advice",
        "name": name,
        "n": g.n,
        "m": g.num_edges,
        "phi": bundle.phi,
        "advice_bits": bundle.size_bits,
        "bits_per_nlogn": bundle.size_bits / _nlogn_envelope(g.n),
        "bits_per_n_bitlength": bundle.size_bits / (g.n * max(1, g.n.bit_length())),
    }


@register_task("index")
def index_task(name: str, g: PortGraph) -> Record:
    """Feasibility and election index (array fast path, no simulation)."""
    from repro.views.refinement import stable_partition

    stable = stable_partition(g)
    return {
        "task": "index",
        "name": name,
        "n": g.n,
        "m": g.num_edges,
        "feasible": stable.discrete,
        "phi": stable.depth if stable.discrete else None,
        "num_classes": stable.num_classes,
        "stabilization_depth": stable.depth,
    }


@register_task("quotient")
def quotient_task(name: str, g: PortGraph) -> Record:
    """The view quotient as a record: how much symmetry remains (class
    count, stabilization depth, class-size profile).  All fields are
    label invariants, which is what lets the query service cache and the
    store warmer treat quotient answers as labeling-independent."""
    from repro.views.quotient import view_quotient

    q = view_quotient(g)
    return {
        "task": "quotient",
        "name": name,
        "n": g.n,
        "m": g.num_edges,
        "feasible": q.is_discrete,
        "num_classes": q.num_classes,
        "stabilization_depth": q.stabilization_depth,
        "class_sizes": sorted((len(c) for c in q.classes), reverse=True),
    }


@register_task("messages")
def messages_task(name: str, g: PortGraph) -> Record:
    """Traced message complexity of the three upper-bound algorithms on one
    graph: Elect (time phi), Election1 (time <= D+phi+c), KnownDPhi (time
    D+phi).  Each algorithm contributes a sub-record under ``algorithms``."""
    from repro.core.advice import compute_advice
    from repro.core.elect import ElectAlgorithm
    from repro.core.elections import election_advice, make_election_algorithm
    from repro.core.known_d_phi import KnownDPhiAlgorithm, known_d_phi_advice
    from repro.errors import SimulationError
    from repro.sim import run_sync
    from repro.sim.trace import Tracer

    bundle = compute_advice(g)
    d = g.diameter()
    # the slowest traced algorithm needs D + phi + 1 rounds, so this bound
    # scales with the graph instead of silently capping large instances
    max_rounds = d + bundle.phi + MESSAGES_ROUND_SLACK
    algorithms = []
    for algo_name, factory, advice in (
        ("elect", ElectAlgorithm, bundle.bits),
        ("election1", make_election_algorithm(1), election_advice(bundle.phi, 1)),
        ("known_d_phi", KnownDPhiAlgorithm, known_d_phi_advice(d, bundle.phi)),
    ):
        tracer = Tracer()
        try:
            result = run_sync(
                g, factory, advice=advice, tracer=tracer, max_rounds=max_rounds
            )
        except SimulationError as exc:
            raise EngineError(
                f"messages task: algorithm '{algo_name}' on corpus entry "
                f"'{name}' (n={g.n}) did not terminate within the derived "
                f"bound D + phi + slack = {d} + {bundle.phi} + "
                f"{MESSAGES_ROUND_SLACK} rounds; refusing to record a "
                f"truncated trace"
            ) from exc
        summary = tracer.summary()
        algorithms.append(
            {
                "algorithm": algo_name,
                "advice_bits": len(advice),
                "rounds": result.election_time,
                "messages": summary["messages"],
                "cost_dag_nodes": summary["cost_dag_nodes"],
                "max_view_depth": summary["max_view_depth"],
            }
        )
    return {
        "task": "messages",
        "name": name,
        "n": g.n,
        "phi": bundle.phi,
        "diameter": d,
        "algorithms": algorithms,
    }


@register_task("ablation")
def ablation_task(name: str, g: PortGraph) -> Record:
    """Advice bits per scheme: the paper's trie advice against the full-map
    and naive-rank baselines (all electing in minimum time phi)."""
    from repro.baselines import run_map_based, run_naive_rank
    from repro.core.advice import compute_advice

    bundle = compute_advice(g)
    map_bits = run_map_based(g).advice_bits
    naive_bits = run_naive_rank(g).advice_bits
    return {
        "task": "ablation",
        "name": name,
        "n": g.n,
        "phi": bundle.phi,
        "trie_bits": bundle.size_bits,
        "map_bits": map_bits,
        "naive_rank_bits": naive_bits,
        "naive_over_trie": naive_bits / bundle.size_bits,
    }


@register_task_factory("conformance")
def conformance_task_factory(
    task_name: str, schedules: Optional[int] = None, seed: int = 0
) -> TaskFn:
    """The multi-record differential oracle (see :mod:`repro.conformance`):
    one sub-record per applicable election algorithm (every simulation
    model and adversarial schedule cross-checked), then the per-entry
    summary.  ``conformance:schedules=K,seed=S`` picks the schedule
    roster; defaults match :func:`repro.conformance.conformance_task_name`.
    """
    from repro.conformance.oracle import (
        DEFAULT_SCHEDULES,
        ConformanceConfig,
        conformance_entry,
    )
    from repro.sim.schedulers import make_schedules

    if schedules is None:
        schedules = DEFAULT_SCHEDULES
    make_schedules(schedules, seed)  # fail fast, before any stream is opened
    config = ConformanceConfig(schedules=schedules, seed=seed)

    def run_conformance(name: str, g: PortGraph) -> List[Record]:
        records = conformance_entry(name, g, config)
        # records key the store by the sweep's task string, which may
        # spell the same parameters differently (e.g. reordered keys)
        for record in records:
            record["task"] = task_name
        return records

    return run_conformance
