"""The parallel experiment engine.

Every sweep and bench in this repository is embarrassingly parallel over
its corpus — each ``(name, graph)`` entry is measured independently — but
the measurement loop was historically serial and grew the global view
intern table without bound.  This package provides the shared engine:

* :func:`run_experiments` — fan a corpus out to worker processes in
  deterministic chunks; results are record-for-record identical to a
  serial run (see :mod:`repro.engine.engine` for the contract);
* :func:`run_stream` — the iterator twin for corpora of unknown size:
  consumes a lazy ``(name, graph)`` stream chunk-by-chunk with bounded
  memory, yielding the identical records (:mod:`repro.engine.stream`);
* :mod:`repro.engine.store` — the append-only canonical-JSONL result
  store behind ``repro sweep --out/--resume``: records keyed by
  ``(name, task)``, interrupted sweeps resume to a byte-identical file;
* :mod:`repro.engine.tasks` — the registry of named experiments (``elect``,
  ``advice``, ``index``, ``messages``, ``ablation``, and the multi-record,
  parameterized ``conformance``); workers receive task *names*, never
  closures — parameterized names (``conformance:schedules=5``) are
  re-resolved inside each worker;
* :mod:`repro.engine.records` — the JSON record schema and canonical
  serialization (documented in ``benchmarks/README.md``).

Consumers: ``repro.analysis.sweep.sweep_elect(..., workers=N)``, the
``repro sweep`` CLI command, and the heavy benches under ``benchmarks/``.
"""

from repro.engine.engine import (
    EngineConfig,
    EngineError,
    available_parallelism,
    chunk_corpus,
    default_chunk_size,
    run,
    run_experiments,
)
from repro.engine.records import (
    Record,
    record_to_json,
    records_from_jsonl,
    records_table,
    records_to_jsonl,
)
from repro.engine.store import (
    ResultStore,
    StoreError,
    load_records,
    open_result_store,
    record_key,
)
from repro.engine.stream import (
    DEFAULT_STREAM_CHUNK_SIZE,
    STREAM_WINDOW_PER_WORKER,
    run_stream,
)
from repro.engine.tasks import (
    TASKS,
    TASK_FACTORIES,
    get_task,
    register_task,
    register_task_factory,
)

__all__ = [
    "DEFAULT_STREAM_CHUNK_SIZE",
    "STREAM_WINDOW_PER_WORKER",
    "ResultStore",
    "StoreError",
    "load_records",
    "open_result_store",
    "record_key",
    "run_stream",
    "EngineConfig",
    "EngineError",
    "available_parallelism",
    "chunk_corpus",
    "default_chunk_size",
    "run",
    "run_experiments",
    "Record",
    "record_to_json",
    "records_to_jsonl",
    "records_from_jsonl",
    "records_table",
    "TASKS",
    "TASK_FACTORIES",
    "get_task",
    "register_task",
    "register_task_factory",
]
