"""The batched multi-process experiment engine.

``run_experiments`` fans a corpus ``[(name, graph), ...]`` out to worker
processes in deterministic chunks and returns one JSON record per corpus
entry, in corpus order, *record-for-record identical* to a serial run.
The guarantees, and how they are met:

Determinism
    Tasks are pure functions of the graph (no global RNG), chunking is a
    pure function of ``(len(corpus), chunk_size)``, every item carries its
    corpus position, and the aggregator re-sorts by position.  Worker
    scheduling therefore cannot reorder or alter results, and
    ``workers=4`` output is byte-identical (under the canonical JSON of
    :mod:`repro.engine.records`) to ``workers=1`` output.

Bounded view caches
    The view intern table (:mod:`repro.views.view`) is process-local and
    grows monotonically.  Workers — and the serial path, which runs the
    exact same chunk runner — call
    :func:`~repro.views.view.clear_view_caches` after every chunk, so the
    table is bounded by the largest chunk instead of the whole sweep.
    Records are plain dicts, so no view from a cleared table ever escapes
    a chunk.

Transport
    Graphs cross the process boundary as their canonical JSON
    (:func:`repro.graphs.serialization.to_json`), which round-trips
    exactly, including port numbers; tasks cross as registry names
    (:mod:`repro.engine.tasks`).  Nothing unpicklable is ever shipped.
    The serial path crosses no boundary, so it skips the JSON round-trip
    and hands the graph object to the chunk runner directly — sound
    because the round-trip is exact (``from_json(to_json(g)) == g``
    structurally), so tasks, being pure in the graph, cannot tell.

The start method prefers ``fork`` (cheap on Linux) and falls back to the
platform default elsewhere.
"""

from __future__ import annotations

import math
import multiprocessing
import os
from dataclasses import dataclass
from typing import Any, Dict, List, Optional, Sequence, Tuple

from repro.engine.records import Record
from repro.engine.tasks import get_task
from repro.errors import EngineError
from repro.graphs.port_graph import PortGraph
from repro.graphs.serialization import from_json, to_json
from repro.obs import core as obs

# (corpus position, name, canonical graph JSON — or the graph itself on
# the serial path, which crosses no process boundary)
_ChunkItem = Tuple[int, str, object]
# (task name, chunk, clear_caches flag, obs span context or None —
# the parent's trace position, riding the task envelope so worker spans
# stitch under the submitting span)
_ChunkPayload = Tuple[str, List[_ChunkItem], bool, Optional[Dict[str, str]]]


@dataclass(frozen=True)
class EngineConfig:
    """Knobs of one engine run.

    ``workers``
        Number of worker processes; ``1`` (the default) runs in-process
        through the identical chunk runner.
    ``chunk_size``
        Corpus entries per chunk — the view-cache lifetime and the unit of
        work stealing.  ``None`` picks :func:`default_chunk_size`.
    ``clear_caches``
        Call ``clear_view_caches()`` after each chunk (on by default;
        disable only for single-shot micro-benchmarks that want warm
        caches).
    """

    workers: int = 1
    chunk_size: Optional[int] = None
    clear_caches: bool = True

    def __post_init__(self):
        if self.workers < 1:
            raise EngineError(f"workers must be >= 1, got {self.workers}")
        if self.chunk_size is not None and self.chunk_size < 1:
            raise EngineError(
                f"chunk_size must be >= 1, got {self.chunk_size}"
            )


def default_chunk_size(num_items: int, workers: int) -> int:
    """Four chunks per worker: large enough to amortize the per-chunk graph
    decode and cache rebuild, small enough to balance load and bound the
    intern table."""
    if workers <= 1:
        return max(1, min(8, num_items))
    return max(1, math.ceil(num_items / (4 * workers)))


def chunk_corpus(
    corpus: Sequence[Tuple[str, PortGraph]],
    chunk_size: int,
    encode: bool = True,
) -> List[List[_ChunkItem]]:
    """Deterministically split a corpus into position-tagged chunks of at
    most ``chunk_size`` entries, in corpus order.  ``encode=True`` ships
    graphs as canonical JSON (required to cross a process boundary);
    ``encode=False`` passes the graph objects through — the serial fast
    path, identical records because the round-trip is exact."""
    items: List[_ChunkItem] = [
        (pos, name, to_json(g) if encode else g)
        for pos, (name, g) in enumerate(corpus)
    ]
    return [
        items[start : start + chunk_size]
        for start in range(0, len(items), chunk_size)
    ]


def _run_chunk(
    payload: _ChunkPayload,
) -> Tuple[List[Tuple[int, Record]], List[Dict[str, Any]]]:
    """Process one chunk (runs in a worker, or inline when serial): decode
    each graph, apply the task, and drop the process-local view caches so
    the intern table stays bounded by the chunk.

    A multi-record task returns a *list* (its record group, summary
    last); the group is flattened in order under the entry's corpus
    position, so downstream sorting — which is stable — keeps groups
    contiguous and internally ordered.

    Returns ``(pairs, obs_events)``: when the payload carries a span
    context the worker's trace events ship back with the records for the
    parent to :func:`repro.obs.ingest` (empty on the serial path, where
    spans land in the live buffer directly)."""
    task_name, chunk, clear_caches, obs_ctx = payload
    task = get_task(task_name)
    out: List[Tuple[int, Record]] = []
    with obs.collect_remote(obs_ctx) as collected:
        with obs.span("engine.chunk", task=task_name, items=len(chunk)):
            try:
                for pos, name, graph_or_json in chunk:
                    try:
                        encoded = isinstance(graph_or_json, str)
                        graph = (
                            from_json(graph_or_json)
                            if encoded
                            else graph_or_json
                        )
                        result = task(name, graph)
                        if isinstance(result, list):
                            out.extend((pos, record) for record in result)
                        else:
                            out.append((pos, result))
                        if not encoded and clear_caches:
                            # serial fast path: the caller's graph object
                            # outlives the chunk, so drop the derived CSR
                            # arrays and the canonical form with the other
                            # caches — memory stays bounded by the chunk,
                            # not the corpus (decoded graphs die with the
                            # chunk)
                            graph._csr_cache = None
                            graph._canon_cache = None
                    except EngineError:
                        raise  # already carries context (pickles: str args)
                    except Exception as exc:
                        # wrap before crossing the process boundary:
                        # arbitrary exceptions may not unpickle in the
                        # parent (custom __init__ signatures), and a bare
                        # traceback would not say which corpus entry died
                        raise EngineError(
                            f"task '{task_name}' failed on corpus entry "
                            f"'{name}' (position {pos}): "
                            f"{type(exc).__name__}: {exc}"
                        ) from exc
            finally:
                if clear_caches:
                    from repro.views.view import clear_view_caches

                    clear_view_caches()
    return out, collected.events


def run_experiments(
    corpus: Sequence[Tuple[str, PortGraph]],
    task: str = "elect",
    workers: int = 1,
    chunk_size: Optional[int] = None,
    clear_caches: bool = True,
) -> List[Record]:
    """Run ``task`` over every corpus entry; return records in corpus order.

    The convenience wrapper over :class:`EngineConfig` + :func:`run`."""
    return run(
        corpus,
        task,
        EngineConfig(
            workers=workers, chunk_size=chunk_size, clear_caches=clear_caches
        ),
    )


def run(
    corpus: Sequence[Tuple[str, PortGraph]],
    task: str,
    config: EngineConfig,
) -> List[Record]:
    """Run ``task`` over ``corpus`` under ``config``; see the module
    docstring for the determinism and cache-lifecycle contract."""
    get_task(task)  # fail fast on unknown tasks, before any forking
    if not corpus:
        return []
    chunk_size = (
        config.chunk_size
        if config.chunk_size is not None
        else default_chunk_size(len(corpus), config.workers)
    )
    num_chunks = math.ceil(len(corpus) / chunk_size)
    serial = config.workers == 1 or num_chunks == 1
    chunks = chunk_corpus(corpus, chunk_size, encode=not serial)
    # serial chunks run in-process, where spans land in the live buffer;
    # parallel chunks carry the submitting span's context in the payload
    # and ship their events back with the records
    span_ctx = None if serial else obs.export_context()
    payloads: List[_ChunkPayload] = [
        (task, chunk, config.clear_caches, span_ctx) for chunk in chunks
    ]

    if serial:
        chunk_results = [_run_chunk(p)[0] for p in payloads]
    else:
        ctx = multiprocessing.get_context(
            "fork" if "fork" in multiprocessing.get_all_start_methods() else None
        )
        procs = min(config.workers, len(chunks))
        with ctx.Pool(processes=procs) as pool:
            replies = pool.map(_run_chunk, payloads)
        chunk_results = []
        for pairs, events in replies:
            chunk_results.append(pairs)
            obs.ingest(events)

    tagged = [pair for chunk in chunk_results for pair in chunk]
    tagged.sort(key=lambda pair: pair[0])
    return [record for _, record in tagged]


def available_parallelism() -> int:
    """Usable CPU count (for benches that scale assertions to hardware);
    respects CPU affinity masks, which os.cpu_count() ignores."""
    try:
        return len(os.sched_getaffinity(0)) or 1
    except AttributeError:  # platforms without sched_getaffinity
        return os.cpu_count() or 1
