"""The persistent result store: append-only canonical JSONL, resumable.

A store file holds one engine record per line in the canonical JSON of
:mod:`repro.engine.records` (sorted keys, compact separators), appended
in corpus order and flushed per record.  Records are keyed by
``(name, task)`` — corpus entry names are unique within a stream by the
registry's naming contract — which gives the resume semantics:

* ``ResultStore(path)`` starts a fresh file (truncating any old one);
* ``ResultStore(path, resume=True)`` loads the keys already on disk so a
  sweep can skip them (:func:`repro.analysis.sweep.sweep_to_store` is
  the filter-and-append loop), then appends the rest.

Record groups
    Multi-record tasks (:mod:`repro.engine.tasks`) append several
    records per corpus entry: sub-records carrying an ``entry`` field,
    then a summary whose ``name`` equals the entry name.  A record
    *terminates a group* iff it has no ``entry`` field or its ``entry``
    equals its ``name`` — so for single-record tasks every record is its
    own group and nothing changes.

Byte-identity under resume
    A sweep appends records in deterministic corpus order, so an
    interrupted run leaves a *prefix* of the uninterrupted file (plus at
    most one torn line from a kill mid-write, and at most one trailing
    *unterminated group* from a kill mid-entry).  Resume repairs both by
    truncating to the last group-terminating record; the resumed run
    skips exactly the surviving keys and appends the remaining records
    in the same order — the merged file is byte-identical to an
    uninterrupted run.  Asserted in ``tests/test_engine_store.py`` and
    in CI's kill/resume smoke jobs.

Corruption beyond the torn tail (an unparsable line *followed by* more
lines) is never repaired silently: it raises :class:`StoreError`, since
dropping interior records would violate the prefix invariant.

Backends
    The JSONL file is one of two backends.  :func:`open_result_store`
    dispatches on the path: a warehouse extension selects the indexed
    sqlite backend (:mod:`repro.warehouse.store`), where resume is a key
    query and group atomicity is transactional; the JSONL format remains
    the import/export wire format either way (``repro warehouse
    import|export`` round-trips it byte-identically).
"""

from __future__ import annotations

import json
import os
from typing import Iterator, Set, Tuple

from repro.engine.records import Record, record_to_json
from repro.errors import StoreError

#: A record's identity in a store: (corpus entry name, task name).
StoreKey = Tuple[str, str]


def record_key(record: Record) -> StoreKey:
    """The ``(name, task)`` key of one engine record."""
    try:
        return (record["name"], record["task"])
    except (KeyError, TypeError) as exc:
        raise StoreError(
            f"not an engine record (every record carries 'name' and "
            f"'task'): {record!r} ({exc})"
        ) from None


class ResultStore:
    """Append-only JSONL store with resume bookkeeping.

    Use as a context manager; ``append`` writes one canonical line and
    flushes, so a killed process loses at most the line being written
    (which the next resume truncates away).
    """

    def __init__(self, path: str, resume: bool = False):
        self.path = path
        self.done: Set[StoreKey] = set()
        if resume:
            self._load_and_repair()
            self._fh = open(path, "a", encoding="utf-8")
        else:
            self._fh = open(path, "w", encoding="utf-8")

    def _load_and_repair(self) -> None:
        """Read existing keys; truncate a torn final line (kill mid-write)
        and a trailing unterminated record group (kill mid-entry).

        Streams the file one line at a time — resume repair is O(longest
        line) in memory, never O(file), because stores can be far larger
        than memory (that is why they exist)."""
        if not os.path.exists(self.path):
            return
        valid_end = 0  # after the last parsable newline-terminated line
        group_end = 0  # after the last group-terminating record
        pending: list = []  # keys of the (possibly unterminated) open group
        with open(self.path, "rb") as fh:
            lineno = 0
            for line in fh:
                lineno += 1
                if not line.endswith(b"\n"):
                    break  # torn tail: no terminator, nothing follows
                try:
                    record = json.loads(line.decode("utf-8"))
                    key = record_key(record)
                except (UnicodeDecodeError, ValueError, StoreError):
                    # invalid JSON, or valid JSON that is not an engine
                    # record: repairable only as the final line
                    if any(rest.strip() for rest in fh):
                        raise StoreError(
                            f"store file '{self.path}' is corrupt at line "
                            f"{lineno}: an unparsable record is followed by "
                            f"further records (only a torn final line is "
                            f"repairable)"
                        ) from None
                    break  # torn tail that happens to contain a newline
                pending.append(key)
                valid_end += len(line)
                if record.get("entry", record["name"]) == record["name"]:
                    # group terminator: the whole group is durable
                    self.done.update(pending)
                    pending.clear()
                    group_end = valid_end
        # anything past group_end is a torn line from a kill mid-write or
        # the sub-records of a group whose summary never made it — either
        # way a suffix the resumed sweep will regenerate in full
        if group_end != os.path.getsize(self.path):
            with open(self.path, "r+b") as fh:
                fh.truncate(group_end)

    def __contains__(self, key: StoreKey) -> bool:
        return key in self.done

    def __len__(self) -> int:
        return len(self.done)

    def append(self, record: Record) -> None:
        """Write one record as a canonical JSON line and flush."""
        self._fh.write(record_to_json(record) + "\n")
        self._fh.flush()
        self.done.add(record_key(record))

    def close(self) -> None:
        self._fh.close()

    def __enter__(self) -> "ResultStore":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()


def load_records(path: str) -> Iterator[Record]:
    """Read a store back lazily, one record at a time — stores can be
    far larger than memory (that is why they exist).  Accepts either
    backend: a JSONL file, or a warehouse database (any dataset's result
    records, in append order)."""
    from repro.warehouse.db import is_warehouse_path

    if is_warehouse_path(path):
        from repro.warehouse.db import Warehouse

        with Warehouse(path) as wh:
            for dataset, kind, _count in wh.datasets():
                if kind == "result":
                    yield from wh.iter_records(dataset)
        return
    with open(path, "r", encoding="utf-8") as fh:
        for line in fh:
            if line.strip():
                yield json.loads(line)


def open_result_store(
    path: str,
    resume: bool = False,
    dataset: str = "sweep",
    family=None,
):
    """Open the right result-store backend for ``path``.

    A warehouse extension (``.sqlite``/``.sqlite3``/``.db``/
    ``.warehouse``) selects :class:`repro.warehouse.store.WarehouseStore`
    (resume = a key query, groups = transactions, and corpus graphs
    registered for join-warming); anything else is the classic JSONL
    :class:`ResultStore`, which remains the import/export wire format.
    ``dataset`` and ``family`` only apply to the warehouse backend.
    """
    from repro.warehouse.db import is_warehouse_path

    if is_warehouse_path(path):
        from repro.warehouse.store import WarehouseStore

        return WarehouseStore(path, dataset=dataset, resume=resume,
                              family=family)
    return ResultStore(path, resume=resume)
