"""The stdlib HTTP front-end of the query service.

A :class:`ThreadingHTTPServer` wrapping one shared
:class:`~repro.service.api.ServiceCore`.  Endpoints:

``POST /v1/<task>`` (``elect`` | ``index`` | ``advice`` | ``quotient``)
    Body: the canonical graph dict (``{"n": ..., "edges": [...]}``), or
    an envelope carrying it under ``"graph"`` (the ``corpus emit`` line
    shape).  Response: the query payload — fingerprint, cache hit flag,
    the canonical-coordinates record, and the submitted graph's
    ``to_canonical`` relabeling.

``POST /v1/batch``
    Body: ``{"requests": [{"task": ..., "graph": ...}, ...]}``.  Hits
    come from the cache; the deduplicated misses fan out through the
    engine's streaming path.  Response: ``{"results": [...]}`` in
    request order.

``GET /healthz``
    Liveness: status, uptime, cache tier sizes, and — in sharded mode —
    per-shard health rows (alive flag, respawn count, timestamp and
    cause of the last worker death).

``GET /metrics``
    The hit/miss/error/latency counters of
    :meth:`~repro.service.api.ServiceCore.metrics`, as JSON by default.
    Content negotiation: an ``Accept`` header naming ``text/plain`` or
    ``openmetrics`` (what a Prometheus scraper sends), or the query
    string ``?format=prometheus``, returns the same counters plus the
    :mod:`repro.obs` registry in Prometheus text exposition format
    0.0.4.

Error mapping: malformed requests (bad JSON, bad graph, unknown task or
route) return 400/404; a task failure on a valid graph (e.g. ``elect``
on an infeasible network) returns 422 with the error class and detail.
All bodies, including errors, are JSON.

No third-party dependency: ``http.server`` is in the stdlib.  Request
threads overlap freely on parsing, fingerprinting and cache hits; task
*computations* serialize on the core's compute lock (the view caches
are process-global — see :mod:`repro.service.api`) unless the core runs
sharded (``ServiceCore(shards=N)`` / ``repro serve --shards N``), where
cold computes fan out across fingerprint-routed worker processes and
only per-shard traffic serializes.
"""

from __future__ import annotations

import json
import signal
import threading
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Any, Optional, Tuple

from repro.errors import ReproError, ServiceError
from repro.service.api import ServiceCore, parse_graph_payload

#: Cap request bodies (a million-node graph dict is ~tens of MB; anything
#: beyond this is a client error, not a workload).
MAX_BODY_BYTES = 256 * 1024 * 1024


class ServiceHTTPServer(ThreadingHTTPServer):
    """The threaded server; carries the shared core for its handlers."""

    daemon_threads = True

    def __init__(self, address: Tuple[str, int], core: ServiceCore):
        super().__init__(address, _Handler)
        self.core = core


class _Handler(BaseHTTPRequestHandler):
    server_version = "repro-service/1"
    protocol_version = "HTTP/1.1"

    @property
    def core(self) -> ServiceCore:
        return self.server.core  # type: ignore[attr-defined]

    def log_message(self, format: str, *args: Any) -> None:
        """Silence per-request stderr chatter; metrics carry the counts."""

    # ------------------------------------------------------------------
    def _send_json(self, status: int, payload: Any) -> None:
        body = json.dumps(payload, sort_keys=True, separators=(",", ":")).encode(
            "utf-8"
        )
        self.send_response(status)
        self.send_header("Content-Type", "application/json")
        self.send_header("Content-Length", str(len(body)))
        if self.close_connection:
            # announce an error-path close (e.g. an unconsumed body) so
            # keep-alive clients do not try to reuse the connection
            self.send_header("Connection", "close")
        self.end_headers()
        self.wfile.write(body)

    def _send_error_json(self, status: int, exc: Exception) -> None:
        self._send_json(
            status, {"error": type(exc).__name__, "detail": str(exc)}
        )

    def _read_json_body(self) -> Any:
        encodings = (self.headers.get("Transfer-Encoding") or "").lower()
        if "chunked" in encodings:
            # without this check a chunked request (no Content-Length)
            # would fall into the empty-body branch below and get a
            # misleading "body must be a JSON document"; name the actual
            # problem, with the 411 status the HTTP spec assigns to it.
            # The chunked body is unread, so the connection must close.
            self.close_connection = True
            exc = ServiceError(
                "chunked transfer encoding is not supported: send the "
                "body with an explicit Content-Length"
            )
            exc.http_status = 411  # Length Required
            raise exc
        try:
            length = int(self.headers.get("Content-Length") or 0)
        except ValueError:
            self.close_connection = True  # undeclared body length: the
            # connection cannot be resynchronized, drop it after the 400
            raise ServiceError(
                "Content-Length header must be an integer"
            ) from None
        if length <= 0 or length > MAX_BODY_BYTES:
            # rejecting without consuming the declared body would leave
            # its bytes in the socket and desynchronize keep-alive; the
            # body is unread (or unbounded), so close after replying
            self.close_connection = True
            if length <= 0:
                raise ServiceError("request body must be a JSON document")
            raise ServiceError(
                f"request body of {length} bytes exceeds the "
                f"{MAX_BODY_BYTES}-byte limit"
            )
        raw = self.rfile.read(length)
        try:
            return json.loads(raw.decode("utf-8"))
        except (UnicodeDecodeError, ValueError) as exc:
            raise ServiceError(f"request body is not valid JSON: {exc}") from None

    def _send_text(self, status: int, body: str, content_type: str) -> None:
        data = body.encode("utf-8")
        self.send_response(status)
        self.send_header("Content-Type", content_type)
        self.send_header("Content-Length", str(len(data)))
        self.end_headers()
        self.wfile.write(data)

    def _wants_prometheus(self, path_query: str) -> bool:
        """Content negotiation for ``GET /metrics``: a Prometheus
        scraper's Accept header (``text/plain`` / OpenMetrics), or an
        explicit ``?format=prometheus``, selects the text exposition;
        everything else keeps the JSON body."""
        if "format=prometheus" in path_query:
            return True
        accept = (self.headers.get("Accept") or "").lower()
        return "text/plain" in accept or "openmetrics" in accept

    # ------------------------------------------------------------------
    def do_GET(self) -> None:  # noqa: N802 - http.server naming
        path, _, query = self.path.partition("?")
        if path == "/healthz":
            metrics = self.core.metrics()
            pool = getattr(self.core, "_pool", None)
            self._send_json(
                200,
                {
                    "status": "ok",
                    "uptime_s": metrics["uptime_s"],
                    "tasks": list(self.core.tasks),
                    "cache": metrics["cache"],
                    "shards": self.core.shards,
                    "shards_alive": pool.alive() if pool is not None else [],
                    "shard_health": (
                        pool.health() if pool is not None else []
                    ),
                },
            )
        elif path == "/metrics":
            if self._wants_prometheus(query):
                from repro.obs import render_prometheus, take_snapshot

                metrics = self.core.metrics()
                flat = {
                    key: float(value)
                    for key, value in metrics.items()
                    if isinstance(value, (int, float))
                }
                self._send_text(
                    200,
                    render_prometheus(take_snapshot(), extra_counters=flat),
                    "text/plain; version=0.0.4; charset=utf-8",
                )
            else:
                self._send_json(200, self.core.metrics())
        else:
            self._send_json(
                404, {"error": "NotFound", "detail": f"no route {self.path}"}
            )

    def do_POST(self) -> None:  # noqa: N802 - http.server naming
        try:
            body = self._read_json_body()
        except ServiceError as exc:
            # a body-framing error may carry its own status (411 for
            # chunked encoding); anything else is a plain 400
            self._send_error_json(getattr(exc, "http_status", 400), exc)
            return
        if self.path == "/v1/batch":
            self._handle_batch(body)
            return
        if not self.path.startswith("/v1/"):
            self._send_json(
                404, {"error": "NotFound", "detail": f"no route {self.path}"}
            )
            return
        task = self.path[len("/v1/") :]
        if task not in self.core.tasks:
            self._send_json(
                404,
                {
                    "error": "NotFound",
                    "detail": f"no task route '/v1/{task}'; served tasks: "
                    f"{', '.join(self.core.tasks)}",
                },
            )
            return
        try:
            graph = parse_graph_payload(body)
        except ServiceError as exc:
            self._send_error_json(400, exc)
            return
        try:
            result = self.core.query(task, graph)
        except ReproError as exc:
            # a well-formed request the computation rejects, e.g. elect
            # on an infeasible graph
            self._send_error_json(422, exc)
            return
        self._send_json(200, result.payload())

    def _handle_batch(self, body: Any) -> None:
        try:
            if not isinstance(body, dict) or not isinstance(
                body.get("requests"), list
            ):
                raise ServiceError(
                    'batch body must be {"requests": [{"task": ..., '
                    '"graph": ...}, ...]}'
                )
            requests = []
            for i, item in enumerate(body["requests"]):
                if not isinstance(item, dict) or "task" not in item:
                    raise ServiceError(
                        f"batch request [{i}] must be an object with "
                        f"'task' and 'graph'"
                    )
                requests.append(
                    (item["task"], parse_graph_payload(item.get("graph")))
                )
        except ServiceError as exc:
            self._send_error_json(400, exc)
            return
        try:
            results = self.core.batch(requests)
        except ServiceError as exc:
            self._send_error_json(400, exc)
            return
        except ReproError as exc:
            self._send_error_json(422, exc)
            return
        self._send_json(200, {"results": [r.payload() for r in results]})


# ----------------------------------------------------------------------
def make_server(
    core: ServiceCore, host: str = "127.0.0.1", port: int = 0
) -> ServiceHTTPServer:
    """Bind (port 0 picks a free one — the tests' path) and return the
    server; the caller drives ``serve_forever``/``shutdown``."""
    return ServiceHTTPServer((host, port), core)


def serve_until_shutdown(
    server: ServiceHTTPServer,
    install_signal_handlers: bool = False,
    ready: Optional[threading.Event] = None,
) -> None:
    """Run the accept loop until ``server.shutdown()`` (another thread)
    or, with ``install_signal_handlers``, SIGTERM/SIGINT.  On exit the
    socket is closed and the core's cache flushed shut — the clean
    shutdown that makes the persisted JSONL complete.

    Signal handlers can only be installed from the main thread; off it
    the flag is ignored (the tests run the CLI loop in a worker thread
    and stop it through ``shutdown()``).  Installed handlers are
    restored on exit — an embedding process (or a test harness) keeps
    its own SIGTERM/SIGINT behavior after the server stops."""
    previous_handlers = None
    if (
        install_signal_handlers
        and threading.current_thread() is threading.main_thread()
    ):
        # shutdown() blocks until the loop exits, so it must not run on
        # the loop's own thread: trampoline through a one-shot thread
        def _stop(signum, frame):  # pragma: no cover - signal path
            threading.Thread(target=server.shutdown, daemon=True).start()

        previous_handlers = (
            signal.getsignal(signal.SIGTERM),
            signal.getsignal(signal.SIGINT),
        )
        signal.signal(signal.SIGTERM, _stop)
        signal.signal(signal.SIGINT, _stop)
    if ready is not None:
        ready.set()
    try:
        server.serve_forever()
    finally:
        if previous_handlers is not None:
            signal.signal(signal.SIGTERM, previous_handlers[0])
            signal.signal(signal.SIGINT, previous_handlers[1])
        server.server_close()
        server.core.close()
