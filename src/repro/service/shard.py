"""Fingerprint-sharded compute workers for the query service.

:class:`~repro.service.api.ServiceCore` serializes every cold compute on
one ``_compute_lock`` because the view machinery's caches
(:mod:`repro.views.view`) are process-global and not thread-safe.  Warm
hits scale across server threads; cold computes do not — one GIL-bound
process runs them one at a time.  This module removes that ceiling by
construction instead of by finer locking:

* :func:`shard_of` routes a query to ``int(fingerprint[:16], 16) %
  num_shards``.  The fingerprint is a sha256 hex digest of the graph's
  canonical certificate, so the route is a pure function of the
  isomorphism class: the same graph lands on the same shard across
  requests, restarts and machines.  (Python's builtin ``hash()`` on
  strings is salted per process and would break exactly that.)
* :class:`ShardPool` forks one long-lived worker process per shard.
  Each worker owns its *own* view-cache universe, so the global-cache
  coherence problem the compute lock solves disappears between shards —
  the serialization survives only inside each worker, which is what a
  per-shard pipe round-trip already gives.  Workers receive the
  canonical certificate (a JSON string — the graph's wire form), run the
  engine task on the decoded canonical graph, clear their view caches,
  and ship the record dict back.

The result cache is *not* sharded: the parent keeps the single
:class:`~repro.service.cache.ResultCache` (LRU + the PR 7 warehouse /
JSONL durable tier) and looks it up before dispatching, so every shard
reads through the one shared warm tier and every computed record lands
back in it.  Workers are pure compute: no cache, no sockets, no state
that outlives a request.

Failure mapping: a task error inside a worker travels back as ``(error,
class-name, detail)`` and is rebuilt from :mod:`repro.errors` by name,
so ``elect`` on an infeasible graph raises
:class:`~repro.errors.InfeasibleGraphError` in the parent exactly as the
in-process path does (and the HTTP layer still maps it to 422).  A
*dead* worker (killed, crashed) is respawned on the spot and the
in-flight query fails with a retryable :class:`ServiceError` — one
query, not the service, pays for the crash.
"""

from __future__ import annotations

import multiprocessing
import threading
import time
from typing import Any, Dict, List, Optional, Tuple

from repro.engine.records import Record
from repro.errors import ReproError, ServiceError
from repro.obs import core as obs

#: Hex digits of the fingerprint the route is computed from.  64 bits of
#: a sha256 digest — uniform over shards for any realistic pool size.
_ROUTE_HEX_DIGITS = 16


def shard_of(fingerprint: str, num_shards: int) -> int:
    """The shard a fingerprint routes to: ``int(fp[:16], 16) % N``.

    Deterministic across processes and restarts (no per-process hash
    salt), uniform because the fingerprint is a sha256 digest."""
    if num_shards < 1:
        raise ServiceError(f"num_shards must be >= 1, got {num_shards}")
    try:
        bucket = int(fingerprint[:_ROUTE_HEX_DIGITS], 16)
    except (ValueError, TypeError):
        raise ServiceError(
            f"not a hex fingerprint: {fingerprint!r}"
        ) from None
    return bucket % num_shards


def _shard_worker_main(conn, orbit_collapse: bool) -> None:
    """The worker loop: recv ``("compute", task, fingerprint,
    certificate, obs_ctx)``, run the task on the canonical graph, reply
    ``("ok", record, events)`` or ``("error", class-name, detail,
    events)``; ``("stop",)`` or a closed pipe ends the loop.  Mirrors
    ``ServiceCore._compute`` exactly — same canonical name, same
    orbit-collapsed ``elect`` fast path, same
    clear-view-caches-per-query lifetime — which is what makes the
    sharded records byte-identical to the in-process ones.

    ``obs_ctx`` is the parent's span context (or None when obs is off):
    the worker brackets the compute in :class:`repro.obs.collect_remote`
    and ships the captured span events back in the reply, so the
    parent's trace stitches the shard's compute phases under the query
    span."""
    from repro.engine.tasks import elect_record_via_orbits, get_task
    from repro.graphs.serialization import from_json
    from repro.service.cache import canonical_query_name
    from repro.views.view import clear_view_caches

    while True:
        try:
            message = conn.recv()
        except (EOFError, OSError):  # parent went away
            break
        if message[0] == "stop":
            break
        _op, task, fingerprint, certificate, obs_ctx = message
        with obs.collect_remote(obs_ctx) as collected:
            try:
                graph = from_json(certificate)
                name = canonical_query_name(fingerprint)
                with obs.span(
                    "shard.compute", task=task, fingerprint=fingerprint[:16]
                ):
                    try:
                        if task == "elect" and orbit_collapse:
                            record = elect_record_via_orbits(name, graph)
                        else:
                            record = get_task(task)(name, graph)
                    finally:
                        clear_view_caches()
                if isinstance(record, list):
                    raise ServiceError(
                        f"task '{task}' is multi-record and cannot be served"
                    )
                result: Tuple[Any, ...] = ("ok", record)
            except Exception as exc:  # ship the class name for rebuilding
                result = ("error", type(exc).__name__, str(exc))
        reply = result + (collected.events,)
        try:
            conn.send(reply)
        except (BrokenPipeError, OSError):  # pragma: no cover - parent died
            break
    conn.close()


def _rebuild_error(exc_name: str, detail: str, shard: int) -> ReproError:
    """The parent-side half of failure mapping: a :mod:`repro.errors`
    class by its shipped name, or a :class:`ServiceError` wrapper for
    anything foreign (a worker bug must not masquerade as a domain
    error)."""
    import repro.errors as errors_module

    cls = getattr(errors_module, exc_name, None)
    if isinstance(cls, type) and issubclass(cls, ReproError):
        return cls(detail)
    return ServiceError(
        f"shard {shard} compute failed: {exc_name}: {detail}"
    )


class ShardPool:
    """A pool of ``num_shards`` forked worker processes, one pipe each.

    ``compute()`` routes by :func:`shard_of`, takes the shard's lock (so
    at most one in-flight request per worker — the worker-side analogue
    of the compute lock), and does a synchronous send/recv round-trip.
    Requests for *different* shards proceed in parallel from different
    server threads — that is the whole point.

    Workers are daemonic: an abandoned pool cannot outlive the parent.
    ``close()`` is still the polite path (stop message, join, terminate
    stragglers) and is what ``ServiceCore.close()`` calls.
    """

    def __init__(self, num_shards: int, orbit_collapse: bool = True):
        if num_shards < 1:
            raise ServiceError(
                f"num_shards must be >= 1, got {num_shards}"
            )
        self.num_shards = num_shards
        self.orbit_collapse = orbit_collapse
        # fork keeps the loaded modules (and nothing else: workers hold
        # no locks and open no sockets before serving) — same choice as
        # the engine's process pool
        self._ctx = multiprocessing.get_context(
            "fork"
            if "fork" in multiprocessing.get_all_start_methods()
            else None
        )
        self._locks = [threading.Lock() for _ in range(num_shards)]
        self._workers: List[Tuple[Any, Any]] = [
            self._spawn() for _ in range(num_shards)
        ]
        # respawn history: ShardPool buries and replaces dead workers,
        # but /healthz needs to say it happened — counts survive the
        # respawn, each with the wall-clock time and cause of the last
        # death (unix epoch seconds, the JSON-friendly choice)
        self.restarts: List[int] = [0] * num_shards
        self.last_errors: List[Optional[Dict[str, Any]]] = [
            None
        ] * num_shards
        self._closed = False

    def _spawn(self) -> Tuple[Any, Any]:
        parent_conn, child_conn = self._ctx.Pipe()
        proc = self._ctx.Process(
            target=_shard_worker_main,
            args=(child_conn, self.orbit_collapse),
            daemon=True,
        )
        proc.start()
        child_conn.close()  # the worker holds the only child end now
        return proc, parent_conn

    def shard_of(self, fingerprint: str) -> int:
        return shard_of(fingerprint, self.num_shards)

    def alive(self) -> List[bool]:
        """Per-shard liveness, for ``/healthz``."""
        return [proc.is_alive() for proc, _conn in self._workers]

    def health(self) -> List[Dict[str, Any]]:
        """Per-shard health rows for ``/healthz``: liveness plus the
        respawn history (`restarts`, and the timestamp + cause of the
        most recent worker death, or None if it never died)."""
        return [
            {
                "shard": i,
                "alive": proc.is_alive(),
                "restarts": self.restarts[i],
                "last_error": self.last_errors[i],
            }
            for i, (proc, _conn) in enumerate(self._workers)
        ]

    def compute(self, task: str, fingerprint: str, certificate: str) -> Record:
        """Round-trip one compute through the fingerprint's shard.

        Raises the rebuilt task error on a compute failure, or a
        retryable :class:`ServiceError` (after respawning the worker) if
        the worker died mid-request."""
        if self._closed:
            raise ServiceError("shard pool is closed")
        shard = self.shard_of(fingerprint)
        with self._locks[shard]:
            proc, conn = self._workers[shard]
            try:
                conn.send(
                    (
                        "compute",
                        task,
                        fingerprint,
                        certificate,
                        obs.export_context(),
                    )
                )
                reply = conn.recv()
            except (EOFError, BrokenPipeError, OSError):
                # the worker died under us: bury it, respawn the shard,
                # fail only this query
                conn.close()
                if proc.is_alive():  # pragma: no cover - defensive
                    proc.terminate()
                proc.join(timeout=5)
                self._workers[shard] = self._spawn()
                detail = (
                    f"worker died while computing '{task}' "
                    f"on {fingerprint[:16]}"
                )
                self.restarts[shard] += 1
                self.last_errors[shard] = {
                    "time": time.time(),
                    "error": detail,
                }
                obs.inc("shard_restarts", shard=shard)
                raise ServiceError(
                    f"shard {shard} {detail}; worker restarted, retry the "
                    f"query"
                ) from None
        obs.ingest(reply[-1])
        if reply[0] == "ok":
            return reply[1]
        _status, exc_name, detail, _events = reply
        raise _rebuild_error(exc_name, detail, shard)

    def close(self) -> None:
        if self._closed:
            return
        self._closed = True
        for (proc, conn), lock in zip(self._workers, self._locks):
            with lock:
                try:
                    conn.send(("stop",))
                except (BrokenPipeError, OSError):  # pragma: no cover
                    pass
                conn.close()
        for proc, _conn in self._workers:
            proc.join(timeout=5)
            if proc.is_alive():  # pragma: no cover - stuck worker
                proc.terminate()
                proc.join(timeout=5)

    def __enter__(self) -> "ShardPool":
        return self

    def __exit__(self, *exc_info: Any) -> None:
        self.close()
