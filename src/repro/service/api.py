"""The transport-free service core: validate -> fingerprint -> cache ->
compute -> record.

:class:`ServiceCore` is the whole behavior of the query service with no
HTTP in sight — the unit the tests drive directly and the thin stdlib
server (:mod:`repro.service.server`) wraps.  One instance is shared by
all server threads.  Two locks partition the shared state:

* the *bookkeeping* lock guards the cache and the metrics counters —
  lookups and counter bumps from any thread interleave safely;
* the *compute* lock serializes task execution.  The view machinery's
  process-global caches (:mod:`repro.views.view`: the intern table, the
  per-depth rank registries) are not thread-safe, and the engine's
  bounded-memory discipline *clears* them after each unit of work — a
  clear racing another thread's half-built views would corrupt identity
  interning.  So every computation, and the ``clear_view_caches()``
  that follows it (the service's unit of cache lifetime is one query,
  mirroring the engine's one chunk; this is also what keeps a
  long-running server's view tables from growing per distinct query
  graph), runs under one lock.  Fingerprinting, cache hits and metrics
  stay concurrent — the hot path of a warm service never blocks on a
  compute.

Canonical coordinates
    Every computation runs on the *canonical* graph
    (:func:`repro.graphs.canonical.canonical_graph`) under the
    fingerprint-derived name, never on the submitted labeling.  So the
    cached record — and the answer — is byte-identical no matter which
    member of the isomorphism class a client submits, and byte-identical
    to the offline engine record for the canonical graph.  The response
    carries ``to_canonical`` (the submitted graph's relabeling) so a
    client can translate node ids in the answer (e.g. ``elect``'s
    leader) back into its own labeling.

Batching
    :meth:`ServiceCore.batch` answers a request list by serving hits
    from the cache, deduplicating the misses by ``(fingerprint, task)``,
    and fanning each task's residual graphs through the engine's
    streaming path (:func:`repro.engine.run_stream`) in chunks — the
    same execution discipline as a ``repro sweep``.  In sharded mode the
    unique misses fan out across the shard pool instead, grouped by
    route.

Sharding
    ``ServiceCore(shards=N)`` with ``N >= 1`` dispatches cold computes
    to a :class:`~repro.service.shard.ShardPool` of worker processes
    routed by fingerprint — each worker owns its own view-cache
    universe, so computes on different shards run truly in parallel
    while the parent keeps the one shared result cache (LRU + warehouse
    / JSONL warm tier).  ``shards=0`` (the default) keeps today's
    in-process compute path byte-identical.

In-flight deduplication
    Concurrent cold queries for the same ``(fingerprint, task)`` would
    each pay a full compute (N threads, N identical records — the
    thundering herd sharding would multiply).  The query path registers
    a per-key in-flight entry: the first caller (the *leader*) computes;
    every concurrent caller joining before the record lands waits on the
    leader and gets the byte-identical record, counted as an
    ``inflight_hits`` hit tier.  A leader failure propagates the same
    error to every waiter.
"""

from __future__ import annotations

import json
import sys
import threading
import time
from dataclasses import dataclass
from typing import (
    Any,
    Callable,
    Dict,
    Iterable,
    List,
    Optional,
    Sequence,
    Tuple,
)

from repro.engine import EngineConfig, run_stream
from repro.engine.records import Record
from repro.engine.tasks import get_task
from repro.errors import ReproError, ServiceError
from repro.graphs.canonical import CanonicalForm, canonical_form
from repro.graphs.port_graph import PortGraph
from repro.obs import core as obs
from repro.service.cache import CacheKey, ResultCache, canonical_query_name
from repro.service.shard import ShardPool

#: The tasks the service exposes (one ``POST /v1/<task>`` route each).
#: All are single-record engine tasks, so one query maps to one record.
SERVICE_TASKS = ("advice", "elect", "index", "quotient")


class _Inflight:
    """One in-progress compute other callers can wait on: the leader
    resolves it with the record (or the error) after the cache insert,
    so a late joiner either finds this entry or finds the cache entry —
    never a gap that would elect a second leader."""

    __slots__ = ("event", "record", "error")

    def __init__(self) -> None:
        self.event = threading.Event()
        self.record: Optional[Record] = None
        self.error: Optional[BaseException] = None

    def wait(self) -> Record:
        self.event.wait()
        if self.error is not None:
            raise self.error
        assert self.record is not None
        return self.record


@dataclass(frozen=True)
class QueryResult:
    """One answered query.

    ``record`` is in canonical coordinates (see the module docstring);
    ``to_canonical`` maps the *submitted* graph's node ``u`` to node
    ``to_canonical[u]`` of the canonical graph the record refers to.
    """

    task: str
    fingerprint: str
    cached: bool
    record: Record
    to_canonical: Tuple[int, ...]

    def payload(self) -> Dict[str, Any]:
        """The JSON body the HTTP layer returns."""
        return {
            "task": self.task,
            "fingerprint": self.fingerprint,
            "cached": self.cached,
            "name": canonical_query_name(self.fingerprint),
            "to_canonical": list(self.to_canonical),
            "record": self.record,
        }


def parse_graph_payload(payload: Any) -> PortGraph:
    """A request's graph: either the canonical dict form itself or an
    envelope with a ``graph`` field (the shape ``repro corpus emit``
    writes; :func:`repro.graphs.serialization.from_payload` is the
    single shape authority).  Raises :class:`ServiceError` on anything
    else."""
    from repro.graphs.serialization import from_payload

    try:
        return from_payload(payload)
    except ReproError as exc:
        raise ServiceError(f"invalid graph payload: {exc}") from exc


class ServiceCore:
    """The election-query service behind any transport.

    ``tasks`` restricts the queryable engine tasks (default
    :data:`SERVICE_TASKS`); ``batch_chunk_size``/``batch_workers``
    configure the ``run_stream`` fan-out of :meth:`batch`.
    ``orbit_collapse`` (default on) routes cold ``elect`` queries
    through the orbit-collapsed engine (:mod:`repro.core.orbit_elect`);
    the resulting record is byte-identical to the per-node engine
    record, so cache contents are independent of the flag.
    ``shards=N`` (N >= 1) dispatches cold computes to a fingerprint-
    routed pool of worker processes (:mod:`repro.service.shard`);
    ``shards=0`` keeps the in-process compute path.  Records and
    responses are byte-identical either way.
    """

    def __init__(
        self,
        cache: Optional[ResultCache] = None,
        tasks: Sequence[str] = SERVICE_TASKS,
        batch_chunk_size: Optional[int] = None,
        batch_workers: int = 1,
        orbit_collapse: bool = True,
        shards: int = 0,
        slow_query_threshold_s: Optional[float] = None,
        slow_query_sink: Optional[Callable[[str], None]] = None,
    ):
        for task in tasks:
            get_task(task)  # fail fast on unknown engine tasks
        if shards < 0:
            raise ServiceError(f"shards must be >= 0, got {shards}")
        if slow_query_threshold_s is not None and slow_query_threshold_s < 0:
            raise ServiceError(
                "slow_query_threshold_s must be >= 0, got "
                f"{slow_query_threshold_s}"
            )
        self.cache = cache if cache is not None else ResultCache()
        self.tasks = tuple(tasks)
        self.orbit_collapse = orbit_collapse
        self.batch_chunk_size = batch_chunk_size
        self.batch_workers = batch_workers
        self.shards = shards
        # structured slow-query log: queries at or over the threshold
        # emit one JSON line (task, fingerprint, tier, phase timings) to
        # the sink — stderr by default, injectable for tests.  None
        # disables the log entirely.
        self.slow_query_threshold_s = slow_query_threshold_s
        self._slow_query_sink = slow_query_sink
        self._lock = threading.Lock()  # cache + metrics bookkeeping
        self._compute_lock = threading.Lock()  # the global view caches
        self._inflight: Dict[CacheKey, _Inflight] = {}
        # fork the pool before any serving: workers inherit loaded
        # modules only — no server socket, no held locks
        self._pool: Optional[ShardPool] = (
            ShardPool(shards, orbit_collapse=orbit_collapse)
            if shards > 0
            else None
        )
        self._started = time.monotonic()
        self._stats: Dict[str, Dict[str, float]] = {}

    # ------------------------------------------------------------------
    # metrics
    # ------------------------------------------------------------------
    def _task_stats(self, task: str) -> Dict[str, float]:
        # hits = memory_hits + warehouse_hits + file_hits +
        # inflight_hits (which tier answered: a cache tier, or a
        # concurrent compute the caller joined); misses are cold
        # computes this caller led
        return self._stats.setdefault(
            task,
            {
                "hits": 0,
                "memory_hits": 0,
                "warehouse_hits": 0,
                "file_hits": 0,
                "inflight_hits": 0,
                "misses": 0,
                "errors": 0,
                "latency_s": 0.0,
            },
        )

    def _count(
        self,
        task: str,
        outcome: str,
        latency_s: float = 0.0,
        tier: Optional[str] = None,
    ) -> None:
        with self._lock:
            stats = self._task_stats(task)
            stats[outcome] += 1
            if tier is not None:
                stats[f"{tier}_hits"] += 1
            stats["latency_s"] += latency_s
        # one histogram observation per answered query (no-op when obs
        # is disabled): the latency distribution /metrics and the
        # warehouse telemetry table chart across PRs
        obs.observe(
            "service_query_latency_s", latency_s, task=task, outcome=outcome
        )

    def _log_slow_query(
        self,
        task: str,
        fingerprint: str,
        tier: Optional[str],
        latency_s: float,
        phases: Dict[str, float],
    ) -> None:
        """Emit one JSON line for a query at or over the threshold."""
        threshold = self.slow_query_threshold_s
        if threshold is None or latency_s < threshold:
            return
        line = json.dumps(
            {
                "slow_query": True,
                "task": task,
                "fingerprint": fingerprint,
                "tier": tier if tier is not None else "compute",
                "latency_s": round(latency_s, 6),
                "threshold_s": threshold,
                "phases": {k: round(v, 6) for k, v in phases.items()},
                "time": time.time(),
            },
            sort_keys=True,
        )
        sink = self._slow_query_sink
        if sink is not None:
            sink(line)
        else:
            print(line, file=sys.stderr, flush=True)
        obs.inc("service_slow_queries", task=task)

    def metrics(self) -> Dict[str, Any]:
        """Hit/miss/error/latency counters, total and per task, plus the
        cache tier sizes — the ``GET /metrics`` body.  ``hits`` split by
        answering tier: ``memory_hits`` (the LRU), ``warehouse_hits``
        (one indexed row read), ``file_hits`` (one JSONL offset read),
        ``inflight_hits`` (joined a concurrent compute of the same key);
        ``misses`` are cold computes."""
        with self._lock:
            tasks = {name: dict(stats) for name, stats in self._stats.items()}
            cache = {
                "memory_entries": len(self.cache),
                "capacity": self.cache.capacity,
                "persisted_entries": self.cache.persisted,
                "path": self.cache.path,
            }
        counter_keys = (
            "hits", "memory_hits", "warehouse_hits", "file_hits",
            "inflight_hits", "misses", "errors",
        )
        totals = {
            key: sum(stats[key] for stats in tasks.values())
            for key in counter_keys + ("latency_s",)
        }
        out: Dict[str, Any] = {"uptime_s": time.monotonic() - self._started}
        out.update({key: int(totals[key]) for key in counter_keys})
        out["latency_s"] = totals["latency_s"]
        out["tasks"] = tasks
        out["cache"] = cache
        out["shards"] = self.shards
        return out

    # ------------------------------------------------------------------
    # the query path
    # ------------------------------------------------------------------
    def _check_task(self, task: str) -> None:
        if task not in self.tasks:
            raise ServiceError(
                f"unknown service task '{task}'; served tasks: "
                f"{', '.join(self.tasks)}"
            )

    def _lookup(self, key: CacheKey) -> Tuple[Optional[Record], Optional[str]]:
        with self._lock:
            return self.cache.lookup(key)

    def _insert(self, key: CacheKey, record: Record) -> None:
        with self._lock:
            self.cache.put(key, record)

    def _compute(self, task: str, form: CanonicalForm) -> Record:
        """Run the engine task on the canonical graph under the
        canonical name (so records are labeling-independent).  Runs
        under the compute lock, and drops the process-global view caches
        afterwards — one query is the service's view-cache lifetime,
        exactly as one chunk is the engine's."""
        from repro.graphs.serialization import from_json
        from repro.views.view import clear_view_caches

        graph = from_json(form.certificate.decode("ascii"))
        with self._compute_lock:
            try:
                if task == "elect" and self.orbit_collapse:
                    # the orbit-collapsed fast path: one simulated node
                    # per orbit, record byte-identical to the engine's
                    # per-node `elect` record (the conformance oracle's
                    # collapsed-vs-full rule is the standing proof)
                    from repro.engine.tasks import elect_record_via_orbits

                    result = elect_record_via_orbits(
                        canonical_query_name(form.fingerprint), graph
                    )
                else:
                    result = get_task(task)(
                        canonical_query_name(form.fingerprint), graph
                    )
            finally:
                clear_view_caches()
        if isinstance(result, list):  # pragma: no cover - guarded by tasks
            raise ServiceError(
                f"task '{task}' is multi-record and cannot be served"
            )
        return result

    def _compute_record(self, task: str, form: CanonicalForm) -> Record:
        """One cold compute: through the fingerprint's shard worker in
        sharded mode, in-process under the compute lock otherwise."""
        if self._pool is not None:
            return self._pool.compute(
                task, form.fingerprint, form.certificate.decode("ascii")
            )
        return self._compute(task, form)

    # ------------------------------------------------------------------
    # in-flight deduplication
    # ------------------------------------------------------------------
    def _join_inflight(self, key: CacheKey) -> Tuple[_Inflight, bool]:
        """Register for the key's in-progress compute: ``(entry, True)``
        makes the caller the leader (it must compute and resolve),
        ``(entry, False)`` a follower (it waits)."""
        with self._lock:
            flight = self._inflight.get(key)
            if flight is not None:
                return flight, False
            flight = _Inflight()
            self._inflight[key] = flight
            return flight, True

    def _finish_inflight(
        self,
        key: CacheKey,
        flight: _Inflight,
        record: Optional[Record] = None,
        error: Optional[BaseException] = None,
    ) -> None:
        """Leader-side resolution.  Deregister *after* the cache insert
        (the caller's responsibility) and *before* waking the waiters:
        any thread arriving in between finds the cache entry, so no
        second leader is ever elected for a computed record."""
        with self._lock:
            self._inflight.pop(key, None)
        flight.record = record
        flight.error = error
        flight.event.set()

    def query(self, task: str, graph: PortGraph) -> QueryResult:
        """Answer one request: fingerprint, cache lookup, compute on
        miss, record.  Concurrent cold queries for the same key compute
        once — the leader runs the task, followers wait and are counted
        as ``inflight`` hits (their record is in the cache by the time
        they return, hence ``cached=True``).  Task failures (e.g.
        ``elect`` on an infeasible graph) count as errors — for the
        leader and every follower — and re-raise for the transport to
        map."""
        self._check_task(task)
        with obs.span("service.query", task=task) as qsp:
            t0 = time.perf_counter()
            with obs.span("service.fingerprint"):
                form = canonical_form(graph)
            t_fp = time.perf_counter()
            key = (form.fingerprint, task)
            with obs.span("service.cache_lookup"):
                record, tier = self._lookup(key)
            t_lookup = time.perf_counter()
            phases = {
                "fingerprint_s": t_fp - t0,
                "lookup_s": t_lookup - t_fp,
            }
            if qsp.recording:
                qsp.set("fingerprint", form.fingerprint[:16])
            if record is not None:
                latency_s = time.perf_counter() - t0
                self._count(task, "hits", latency_s, tier=tier)
                if qsp.recording:
                    qsp.set("tier", tier)
                self._log_slow_query(
                    task, form.fingerprint, tier, latency_s, phases
                )
                return QueryResult(
                    task=task,
                    fingerprint=form.fingerprint,
                    cached=True,
                    record=record,
                    to_canonical=form.to_canonical,
                )
            flight, leader = self._join_inflight(key)
            if not leader:
                try:
                    with obs.span("service.inflight_wait"):
                        record = flight.wait()
                except ReproError:
                    self._count(task, "errors", time.perf_counter() - t0)
                    raise
                latency_s = time.perf_counter() - t0
                phases["wait_s"] = latency_s - phases["fingerprint_s"] - (
                    phases["lookup_s"]
                )
                self._count(task, "hits", latency_s, tier="inflight")
                if qsp.recording:
                    qsp.set("tier", "inflight")
                self._log_slow_query(
                    task, form.fingerprint, "inflight", latency_s, phases
                )
                return QueryResult(
                    task=task,
                    fingerprint=form.fingerprint,
                    cached=True,
                    record=record,
                    to_canonical=form.to_canonical,
                )
            try:
                t_compute = time.perf_counter()
                with obs.span("service.compute", task=task):
                    record = self._compute_record(task, form)
                phases["compute_s"] = time.perf_counter() - t_compute
            except BaseException as exc:
                # resolve the flight whatever happened — a leader that
                # left waiters hanging would deadlock them.  Domain
                # errors travel as themselves; anything else
                # (KeyboardInterrupt, a bug) fails the waiters with a
                # wrapper and re-raises here.
                if isinstance(exc, ReproError):
                    self._count(task, "errors", time.perf_counter() - t0)
                    self._finish_inflight(key, flight, error=exc)
                else:
                    self._finish_inflight(
                        key,
                        flight,
                        error=ServiceError(
                            f"concurrent compute of '{task}' failed: "
                            f"{type(exc).__name__}: {exc}"
                        ),
                    )
                raise
            self._insert(key, record)
            self._finish_inflight(key, flight, record=record)
            latency_s = time.perf_counter() - t0
            self._count(task, "misses", latency_s)
            if qsp.recording:
                qsp.set("tier", "compute")
            self._log_slow_query(
                task, form.fingerprint, None, latency_s, phases
            )
            return QueryResult(
                task=task,
                fingerprint=form.fingerprint,
                cached=False,
                record=record,
                to_canonical=form.to_canonical,
            )

    # ------------------------------------------------------------------
    # the batch path
    # ------------------------------------------------------------------
    def _batch_compute_inprocess(
        self,
        to_compute: Dict[str, Dict[str, CanonicalForm]],
        key_of_name: Dict[Tuple[str, str], CacheKey],
        computed: Dict[CacheKey, Record],
        arrival_s: Dict[CacheKey, float],
        t0: float,
    ) -> None:
        """The N=0 compute phase: each task's residual graphs through
        ``run_stream`` under the compute lock (the serial path computes
        — and clears the global view caches — on this request thread;
        the parallel path computes in worker processes, but the coarse
        lock stays correct either way)."""
        from repro.graphs.serialization import from_json

        config = EngineConfig(
            workers=self.batch_workers, chunk_size=self.batch_chunk_size
        )
        with self._compute_lock:
            for task, forms in to_compute.items():
                graphs = (
                    (name, from_json(form.certificate.decode("ascii")))
                    for name, form in forms.items()
                )
                for record in run_stream(graphs, task, config):
                    key = key_of_name[(task, record["name"])]
                    computed[key] = record
                    arrival_s[key] = time.perf_counter() - t0
                    self._insert(key, record)

    def _batch_compute_sharded(
        self,
        to_compute: Dict[str, Dict[str, CanonicalForm]],
        key_of_name: Dict[Tuple[str, str], CacheKey],
        computed: Dict[CacheKey, Record],
        arrival_s: Dict[CacheKey, float],
        t0: float,
    ) -> None:
        """The sharded compute phase: the unique misses grouped by
        route, one draining thread per involved shard (each worker
        serves one request at a time, so per-shard threads saturate the
        pool without queue contention).  A task failure on any shard
        fails the batch, exactly as the in-process path does — already-
        landed records are still cached and counted."""
        assert self._pool is not None
        by_shard: Dict[int, List[Tuple[str, CanonicalForm]]] = {}
        for task, forms in to_compute.items():
            for form in forms.values():
                shard = self._pool.shard_of(form.fingerprint)
                by_shard.setdefault(shard, []).append((task, form))
        errors: List[ReproError] = []
        done_lock = threading.Lock()

        def drain(jobs: List[Tuple[str, CanonicalForm]]) -> None:
            for task, form in jobs:
                key = (form.fingerprint, task)
                try:
                    record = self._pool.compute(
                        task,
                        form.fingerprint,
                        form.certificate.decode("ascii"),
                    )
                except ReproError as exc:
                    with done_lock:
                        errors.append(exc)
                    return
                except Exception as exc:  # a bug must fail the batch,
                    # not die silently with the drain thread
                    with done_lock:
                        errors.append(
                            ServiceError(
                                f"shard batch compute failed: "
                                f"{type(exc).__name__}: {exc}"
                            )
                        )
                    return
                now_s = time.perf_counter() - t0
                with done_lock:
                    computed[key] = record
                    arrival_s[key] = now_s
                self._insert(key, record)

        threads = [
            threading.Thread(target=drain, args=(jobs,), daemon=True)
            for jobs in by_shard.values()
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        if errors:
            raise errors[0]

    def batch(
        self, requests: Iterable[Tuple[str, PortGraph]]
    ) -> List[QueryResult]:
        """Answer a request list: hits from the cache, the deduplicated
        misses through ``run_stream`` in chunks (or across the shard
        pool in sharded mode), answers in request order.  A task failure
        inside the fan-out fails the whole batch (the engine's error
        carries the failing canonical name).

        Metrics are per item and honest: a hit is charged its own
        lookup latency; the first occurrence of a cold key is the miss,
        charged the time until its record landed; further occurrences
        of the same cold key are ``inflight`` hits (they rode the one
        compute), charged the same landing time.  On a failed batch,
        items whose record never landed count as errors with the time
        to failure.  The unique cold keys are also registered in the
        in-flight table, so concurrent single queries join the batch's
        computes instead of recomputing."""
        t0 = time.perf_counter()
        # item: (task, form, key, hit, tier, first, lookup_s)
        items: List[
            Tuple[
                str,
                CanonicalForm,
                CacheKey,
                Optional[Record],
                Optional[str],
                bool,
                float,
            ]
        ] = []
        to_compute: Dict[str, Dict[str, CanonicalForm]] = {}
        key_of_name: Dict[Tuple[str, str], CacheKey] = {}
        for task, graph in requests:
            self._check_task(task)
            item_t0 = time.perf_counter()
            form = canonical_form(graph)
            key = (form.fingerprint, task)
            hit, tier = self._lookup(key)
            lookup_s = time.perf_counter() - item_t0
            first = False
            if hit is None:
                name = canonical_query_name(form.fingerprint)
                if name not in to_compute.setdefault(task, {}):
                    to_compute[task][name] = form
                    key_of_name[(task, name)] = key
                    first = True
            items.append((task, form, key, hit, tier, first, lookup_s))

        # register the unique cold keys so concurrent queries dedup
        # against this batch; only keys we lead get resolved by us (a
        # key some other request is already computing stays theirs — we
        # compute our own copy, a benign duplicate, rather than block
        # the whole batch on a foreign flight)
        flights: Dict[CacheKey, _Inflight] = {}
        for key in key_of_name.values():
            flight, leader = self._join_inflight(key)
            if leader:
                flights[key] = flight

        computed: Dict[CacheKey, Record] = {}
        arrival_s: Dict[CacheKey, float] = {}
        try:
            if self._pool is not None:
                self._batch_compute_sharded(
                    to_compute, key_of_name, computed, arrival_s, t0
                )
            else:
                self._batch_compute_inprocess(
                    to_compute, key_of_name, computed, arrival_s, t0
                )
        except BaseException as exc:
            fail_s = time.perf_counter() - t0
            for key, flight in flights.items():
                if key in computed:
                    self._finish_inflight(key, flight, record=computed[key])
                else:
                    self._finish_inflight(
                        key,
                        flight,
                        error=exc
                        if isinstance(exc, ReproError)
                        else ServiceError(
                            f"concurrent batch compute failed: "
                            f"{type(exc).__name__}: {exc}"
                        ),
                    )
            if not isinstance(exc, ReproError):
                raise
            # the whole batch fails (the transport returns one error for
            # every request), but the counters must still account for
            # every item — with its real latency: hits stay hits,
            # records that did land (and got cached) are the miss (first
            # occurrence) or an inflight hit (duplicates), everything
            # else is an error charged the time to failure
            for task, _form, key, hit, tier, first, lookup_s in items:
                if hit is not None:
                    self._count(task, "hits", lookup_s, tier=tier)
                elif key in computed:
                    if first:
                        self._count(task, "misses", arrival_s[key])
                    else:
                        self._count(
                            task, "hits", arrival_s[key], tier="inflight"
                        )
                else:
                    self._count(task, "errors", fail_s)
            raise
        for key, flight in flights.items():
            self._finish_inflight(key, flight, record=computed[key])

        results: List[QueryResult] = []
        for task, form, key, hit, tier, first, lookup_s in items:
            cached = hit is not None
            record = hit if cached else computed[key]
            if cached:
                self._count(task, "hits", lookup_s, tier=tier)
            elif first:
                self._count(task, "misses", arrival_s[key])
            else:
                # a duplicate of a cold key: it rode the first
                # occurrence's compute — an in-flight hit, though the
                # response keeps ``cached=False`` (this batch did
                # compute it; the flag describes the answer's origin)
                self._count(task, "hits", arrival_s[key], tier="inflight")
            results.append(
                QueryResult(
                    task=task,
                    fingerprint=form.fingerprint,
                    cached=cached,
                    record=record,
                    to_canonical=form.to_canonical,
                )
            )
        return results

    def close(self) -> None:
        if self._pool is not None:
            self._pool.close()
        self.cache.close()
