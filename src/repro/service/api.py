"""The transport-free service core: validate -> fingerprint -> cache ->
compute -> record.

:class:`ServiceCore` is the whole behavior of the query service with no
HTTP in sight — the unit the tests drive directly and the thin stdlib
server (:mod:`repro.service.server`) wraps.  One instance is shared by
all server threads.  Two locks partition the shared state:

* the *bookkeeping* lock guards the cache and the metrics counters —
  lookups and counter bumps from any thread interleave safely;
* the *compute* lock serializes task execution.  The view machinery's
  process-global caches (:mod:`repro.views.view`: the intern table, the
  per-depth rank registries) are not thread-safe, and the engine's
  bounded-memory discipline *clears* them after each unit of work — a
  clear racing another thread's half-built views would corrupt identity
  interning.  So every computation, and the ``clear_view_caches()``
  that follows it (the service's unit of cache lifetime is one query,
  mirroring the engine's one chunk; this is also what keeps a
  long-running server's view tables from growing per distinct query
  graph), runs under one lock.  Fingerprinting, cache hits and metrics
  stay concurrent — the hot path of a warm service never blocks on a
  compute.

Canonical coordinates
    Every computation runs on the *canonical* graph
    (:func:`repro.graphs.canonical.canonical_graph`) under the
    fingerprint-derived name, never on the submitted labeling.  So the
    cached record — and the answer — is byte-identical no matter which
    member of the isomorphism class a client submits, and byte-identical
    to the offline engine record for the canonical graph.  The response
    carries ``to_canonical`` (the submitted graph's relabeling) so a
    client can translate node ids in the answer (e.g. ``elect``'s
    leader) back into its own labeling.

Batching
    :meth:`ServiceCore.batch` answers a request list by serving hits
    from the cache, deduplicating the misses by ``(fingerprint, task)``,
    and fanning each task's residual graphs through the engine's
    streaming path (:func:`repro.engine.run_stream`) in chunks — the
    same execution discipline as a ``repro sweep``.
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass
from typing import Any, Dict, Iterable, List, Optional, Sequence, Tuple

from repro.engine import EngineConfig, run_stream
from repro.engine.records import Record
from repro.engine.tasks import get_task
from repro.errors import ReproError, ServiceError
from repro.graphs.canonical import CanonicalForm, canonical_form
from repro.graphs.port_graph import PortGraph
from repro.service.cache import CacheKey, ResultCache, canonical_query_name

#: The tasks the service exposes (one ``POST /v1/<task>`` route each).
#: All are single-record engine tasks, so one query maps to one record.
SERVICE_TASKS = ("advice", "elect", "index", "quotient")


@dataclass(frozen=True)
class QueryResult:
    """One answered query.

    ``record`` is in canonical coordinates (see the module docstring);
    ``to_canonical`` maps the *submitted* graph's node ``u`` to node
    ``to_canonical[u]`` of the canonical graph the record refers to.
    """

    task: str
    fingerprint: str
    cached: bool
    record: Record
    to_canonical: Tuple[int, ...]

    def payload(self) -> Dict[str, Any]:
        """The JSON body the HTTP layer returns."""
        return {
            "task": self.task,
            "fingerprint": self.fingerprint,
            "cached": self.cached,
            "name": canonical_query_name(self.fingerprint),
            "to_canonical": list(self.to_canonical),
            "record": self.record,
        }


def parse_graph_payload(payload: Any) -> PortGraph:
    """A request's graph: either the canonical dict form itself or an
    envelope with a ``graph`` field (the shape ``repro corpus emit``
    writes; :func:`repro.graphs.serialization.from_payload` is the
    single shape authority).  Raises :class:`ServiceError` on anything
    else."""
    from repro.graphs.serialization import from_payload

    try:
        return from_payload(payload)
    except ReproError as exc:
        raise ServiceError(f"invalid graph payload: {exc}") from exc


class ServiceCore:
    """The election-query service behind any transport.

    ``tasks`` restricts the queryable engine tasks (default
    :data:`SERVICE_TASKS`); ``batch_chunk_size``/``batch_workers``
    configure the ``run_stream`` fan-out of :meth:`batch`.
    ``orbit_collapse`` (default on) routes cold ``elect`` queries
    through the orbit-collapsed engine (:mod:`repro.core.orbit_elect`);
    the resulting record is byte-identical to the per-node engine
    record, so cache contents are independent of the flag.
    """

    def __init__(
        self,
        cache: Optional[ResultCache] = None,
        tasks: Sequence[str] = SERVICE_TASKS,
        batch_chunk_size: Optional[int] = None,
        batch_workers: int = 1,
        orbit_collapse: bool = True,
    ):
        for task in tasks:
            get_task(task)  # fail fast on unknown engine tasks
        self.cache = cache if cache is not None else ResultCache()
        self.tasks = tuple(tasks)
        self.orbit_collapse = orbit_collapse
        self.batch_chunk_size = batch_chunk_size
        self.batch_workers = batch_workers
        self._lock = threading.Lock()  # cache + metrics bookkeeping
        self._compute_lock = threading.Lock()  # the global view caches
        self._started = time.monotonic()
        self._stats: Dict[str, Dict[str, float]] = {}

    # ------------------------------------------------------------------
    # metrics
    # ------------------------------------------------------------------
    def _task_stats(self, task: str) -> Dict[str, float]:
        # hits = memory_hits + warehouse_hits + file_hits (which cache
        # tier answered); misses are cold computes
        return self._stats.setdefault(
            task,
            {
                "hits": 0,
                "memory_hits": 0,
                "warehouse_hits": 0,
                "file_hits": 0,
                "misses": 0,
                "errors": 0,
                "latency_s": 0.0,
            },
        )

    def _count(
        self,
        task: str,
        outcome: str,
        latency_s: float = 0.0,
        tier: Optional[str] = None,
    ) -> None:
        with self._lock:
            stats = self._task_stats(task)
            stats[outcome] += 1
            if tier is not None:
                stats[f"{tier}_hits"] += 1
            stats["latency_s"] += latency_s

    def metrics(self) -> Dict[str, Any]:
        """Hit/miss/error/latency counters, total and per task, plus the
        cache tier sizes — the ``GET /metrics`` body.  ``hits`` split by
        answering tier: ``memory_hits`` (the LRU), ``warehouse_hits``
        (one indexed row read), ``file_hits`` (one JSONL offset read);
        ``misses`` are cold computes."""
        with self._lock:
            tasks = {name: dict(stats) for name, stats in self._stats.items()}
            cache = {
                "memory_entries": len(self.cache),
                "capacity": self.cache.capacity,
                "persisted_entries": self.cache.persisted,
                "path": self.cache.path,
            }
        counter_keys = (
            "hits", "memory_hits", "warehouse_hits", "file_hits",
            "misses", "errors",
        )
        totals = {
            key: sum(stats[key] for stats in tasks.values())
            for key in counter_keys + ("latency_s",)
        }
        out: Dict[str, Any] = {"uptime_s": time.monotonic() - self._started}
        out.update({key: int(totals[key]) for key in counter_keys})
        out["latency_s"] = totals["latency_s"]
        out["tasks"] = tasks
        out["cache"] = cache
        return out

    # ------------------------------------------------------------------
    # the query path
    # ------------------------------------------------------------------
    def _check_task(self, task: str) -> None:
        if task not in self.tasks:
            raise ServiceError(
                f"unknown service task '{task}'; served tasks: "
                f"{', '.join(self.tasks)}"
            )

    def _lookup(self, key: CacheKey) -> Tuple[Optional[Record], Optional[str]]:
        with self._lock:
            return self.cache.lookup(key)

    def _insert(self, key: CacheKey, record: Record) -> None:
        with self._lock:
            self.cache.put(key, record)

    def _compute(self, task: str, form: CanonicalForm) -> Record:
        """Run the engine task on the canonical graph under the
        canonical name (so records are labeling-independent).  Runs
        under the compute lock, and drops the process-global view caches
        afterwards — one query is the service's view-cache lifetime,
        exactly as one chunk is the engine's."""
        from repro.graphs.serialization import from_json
        from repro.views.view import clear_view_caches

        graph = from_json(form.certificate.decode("ascii"))
        with self._compute_lock:
            try:
                if task == "elect" and self.orbit_collapse:
                    # the orbit-collapsed fast path: one simulated node
                    # per orbit, record byte-identical to the engine's
                    # per-node `elect` record (the conformance oracle's
                    # collapsed-vs-full rule is the standing proof)
                    from repro.engine.tasks import elect_record_via_orbits

                    result = elect_record_via_orbits(
                        canonical_query_name(form.fingerprint), graph
                    )
                else:
                    result = get_task(task)(
                        canonical_query_name(form.fingerprint), graph
                    )
            finally:
                clear_view_caches()
        if isinstance(result, list):  # pragma: no cover - guarded by tasks
            raise ServiceError(
                f"task '{task}' is multi-record and cannot be served"
            )
        return result

    def query(self, task: str, graph: PortGraph) -> QueryResult:
        """Answer one request: fingerprint, cache lookup, compute on
        miss, record.  Task failures (e.g. ``elect`` on an infeasible
        graph) count as errors and re-raise for the transport to map."""
        self._check_task(task)
        t0 = time.perf_counter()
        form = canonical_form(graph)
        key = (form.fingerprint, task)
        record, tier = self._lookup(key)
        cached = record is not None
        if not cached:
            try:
                record = self._compute(task, form)
            except ReproError:
                self._count(task, "errors", time.perf_counter() - t0)
                raise
            self._insert(key, record)
        self._count(
            task,
            "hits" if cached else "misses",
            time.perf_counter() - t0,
            tier=tier,
        )
        return QueryResult(
            task=task,
            fingerprint=form.fingerprint,
            cached=cached,
            record=record,
            to_canonical=form.to_canonical,
        )

    # ------------------------------------------------------------------
    # the batch path
    # ------------------------------------------------------------------
    def batch(
        self, requests: Iterable[Tuple[str, PortGraph]]
    ) -> List[QueryResult]:
        """Answer a request list: hits from the cache, the deduplicated
        misses through ``run_stream`` in chunks, answers in request
        order.  A task failure inside the fan-out fails the whole batch
        (the engine's error carries the failing canonical name)."""
        t0 = time.perf_counter()
        items: List[
            Tuple[str, CanonicalForm, CacheKey, Optional[Record], Optional[str]]
        ] = []
        to_compute: Dict[str, Dict[str, PortGraph]] = {}  # task -> name->graph
        key_of_name: Dict[Tuple[str, str], CacheKey] = {}
        for task, graph in requests:
            self._check_task(task)
            form = canonical_form(graph)
            key = (form.fingerprint, task)
            hit, tier = self._lookup(key)
            items.append((task, form, key, hit, tier))
            if hit is None:
                name = canonical_query_name(form.fingerprint)
                if name not in to_compute.setdefault(task, {}):
                    from repro.graphs.serialization import from_json

                    to_compute[task][name] = from_json(
                        form.certificate.decode("ascii")
                    )
                    key_of_name[(task, name)] = key

        config = EngineConfig(
            workers=self.batch_workers, chunk_size=self.batch_chunk_size
        )
        computed: Dict[CacheKey, Record] = {}
        try:
            # under the compute lock: the serial path of run_stream
            # computes — and clears the global view caches — on this
            # request thread (the parallel path computes in worker
            # processes, but the coarse lock stays correct either way)
            with self._compute_lock:
                for task, graphs in to_compute.items():
                    for record in run_stream(
                        iter(graphs.items()), task, config
                    ):
                        key = key_of_name[(task, record["name"])]
                        computed[key] = record
                        self._insert(key, record)
        except ReproError:
            # the whole batch fails (the transport returns one error for
            # every request), but the counters must still account for
            # every item: hits stay hits, records that did get computed
            # (and cached) are misses, everything else is an error
            for task, _form, key, hit, tier in items:
                if hit is not None:
                    self._count(task, "hits", tier=tier)
                elif key in computed:
                    self._count(task, "misses")
                else:
                    self._count(task, "errors")
            raise

        results: List[QueryResult] = []
        latency_each = (time.perf_counter() - t0) / max(1, len(items))
        for task, form, key, hit, tier in items:
            cached = hit is not None
            record = hit if cached else computed[key]
            self._count(
                task, "hits" if cached else "misses", latency_each, tier=tier
            )
            results.append(
                QueryResult(
                    task=task,
                    fingerprint=form.fingerprint,
                    cached=cached,
                    record=record,
                    to_canonical=form.to_canonical,
                )
            )
        return results

    def close(self) -> None:
        self.cache.close()
