"""The online election-query service.

Every pipeline before this package was batch-oriented: sweeps, benches
and the conformance oracle recompute election/index answers from scratch
per run, even on graphs already solved up to port-preserving isomorphism
— exactly the equivalence the anonymous-network model cares about.  This
package is the online front-end that amortizes those computations across
clients and across past batch work:

* :mod:`repro.service.cache` — the content-addressed result cache:
  ``(fingerprint, task)`` keys over a bounded in-memory LRU plus a
  durable tier — an append-only JSONL file (torn-tail repair on reopen)
  or a :mod:`repro.warehouse` database (indexed rows, shared with the
  batch pipelines).  :func:`~repro.service.cache.warm_from_stores`
  joins existing sweep / conformance result stores against their corpus
  streams so past batch output pre-populates the service;
  :func:`~repro.service.cache.warm_from_warehouse` does the same from a
  warehouse with one join query, no corpus re-stream;
* :mod:`repro.service.api` — :class:`~repro.service.api.ServiceCore`,
  the transport-free pipeline (validate -> fingerprint -> cache lookup
  -> compute through the engine task registry -> record), answering in
  canonical coordinates so isomorphic queries get byte-identical
  answers, plus the ``run_stream``-chunked batch path;
* :mod:`repro.service.server` — the stdlib ``ThreadingHTTPServer`` JSON
  API (``POST /v1/elect|index|advice|quotient``, ``POST /v1/batch``,
  ``GET /healthz``, ``GET /metrics``);
* :mod:`repro.service.shard` — the fingerprint-sharded compute pool:
  ``ServiceCore(shards=N)`` routes each cold compute to
  ``int(fingerprint[:16], 16) % N``, one forked worker process per
  shard, each with its own view-cache universe, while the parent keeps
  the one shared result cache (the warehouse as the warm tier).  Warm
  hits and cold computes both scale across cores; in-flight per-key
  deduplication stops thundering-herd recomputes either way.

The fingerprint underneath is :func:`repro.graphs.canonical.
graph_fingerprint`: sha256 of a certificate equal exactly for
port-isomorphic graphs.  CLI entry points: ``repro serve`` and
``repro query``.
"""

from repro.service.api import SERVICE_TASKS, QueryResult, ServiceCore
from repro.service.cache import (
    SERVICE_CACHE_DATASET,
    WARMABLE_TASKS,
    ResultCache,
    canonical_query_name,
    warm_from_stores,
    warm_from_warehouse,
)
from repro.service.server import (
    ServiceHTTPServer,
    make_server,
    serve_until_shutdown,
)
from repro.service.shard import ShardPool, shard_of

__all__ = [
    "SERVICE_CACHE_DATASET",
    "SERVICE_TASKS",
    "WARMABLE_TASKS",
    "QueryResult",
    "ServiceCore",
    "ResultCache",
    "canonical_query_name",
    "warm_from_stores",
    "warm_from_warehouse",
    "ServiceHTTPServer",
    "make_server",
    "serve_until_shutdown",
    "ShardPool",
    "shard_of",
]
