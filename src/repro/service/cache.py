"""The service's result cache: content-addressed, two-tiered, warmable.

Keys
    ``(fingerprint, task)`` — the sha256 of the graph's canonical
    certificate (:func:`repro.graphs.canonical.graph_fingerprint`) and
    the engine task name.  Content addressing is what deduplicates
    isomorphic queries: every node relabeling of a graph maps to the same
    key, so one computation serves the whole isomorphism class.

Tiers
    A bounded in-memory LRU (the hot tier the request path touches) over
    an optional durable tier.  The durable tier has two backends,
    selected by the path's extension:

    * a **warehouse database** (``.sqlite``/``.db``/...; see
      :mod:`repro.warehouse`): entries are rows of the shared ``records``
      table, unique and indexed on ``(fingerprint, task)``, so an LRU
      eviction re-reads one indexed row — and the same warehouse is the
      *shared warm tier*: sweeps writing to it make their results
      join-warmable without any corpus re-stream
      (:func:`warm_from_warehouse`);
    * an **append-only JSONL file** (anything else), kept as the
      import/export wire format.  It reuses the
      :mod:`repro.engine.store` discipline: one canonical JSON line per
      entry, flushed per append, and on reopen a *torn final line* (a
      kill mid-write) is repaired by truncation while corruption
      followed by further lines raises :class:`ServiceError` — interior
      entries are never dropped silently.  The file is never evicted
      from, and the load replays it streaming (O(line) memory) while
      recording a ``key -> byte offset`` index.

    Either way, a lookup that misses the LRU falls back to the durable
    tier and promotes the entry, so a restart with ``--cache`` serves
    **every** previously computed answer no matter how small the memory
    tier — an LRU eviction only ever costs one indexed read, never a
    recompute.  :meth:`ResultCache.lookup` reports which tier answered,
    which is what the service's ``/metrics`` memory-hit /
    warehouse-hit / cold-compute counters are built on.

Warming
    :func:`warm_from_stores` joins existing sweep/conformance
    :class:`~repro.engine.store.ResultStore` files (keyed by corpus entry
    *name*) against corpus streams that supply the graphs for those
    names, fingerprints each graph, and inserts the records under their
    content address — so past batch work pre-populates the service.
    :func:`warm_from_warehouse` is the indexed successor: when sweeps
    ran on the warehouse backend their graphs' content addresses are
    already stored, so warming is one join query — no corpus re-stream,
    no certificate recomputation.
    Stored records were computed on the corpus labeling; the service
    computes on the *canonical* labeling, so warming canonicalizes each
    record: the ``name`` becomes the canonical query name and, for
    ``elect``, the ``leader`` is translated through the canonical
    relabeling (every other warmable field is a label invariant, since
    the algorithms are anonymous).  A warmed entry is therefore
    byte-identical to what a cold service computation would produce —
    asserted in ``tests/test_service_cache.py``.
"""

from __future__ import annotations

import json
import os
from collections import OrderedDict
from typing import Any, Dict, Iterable, Optional, Sequence, Tuple

from repro.engine.records import Record, record_to_json
from repro.engine.store import load_records
from repro.errors import ServiceError
from repro.graphs.canonical import canonical_form
from repro.graphs.port_graph import PortGraph

#: A cache entry's identity: (canonical fingerprint, engine task name).
CacheKey = Tuple[str, str]

#: Tasks a ResultStore record can be warmed from: single-record tasks
#: whose fields are label invariants — except ``elect``'s leader, which
#: the warmer translates through the canonical relabeling.
WARMABLE_TASKS = ("advice", "elect", "index", "quotient")

DEFAULT_CAPACITY = 4096

#: The warehouse dataset service cache entries live in.  Imports of
#: legacy cache JSONL files must target this dataset for the service to
#: see them (``repro warehouse import --dataset service-cache``).
SERVICE_CACHE_DATASET = "service-cache"


def canonical_query_name(fingerprint: str) -> str:
    """The ``name`` field of service-computed records: derived from the
    content address, never from the submitted labeling, so answers for
    isomorphic queries are byte-identical."""
    return f"graph:{fingerprint[:16]}"


class ResultCache:
    """Bounded LRU over an optional durable tier (warehouse or JSONL).

    ``capacity`` bounds the *memory* tier only (0 disables it — every
    lookup misses, which is what the cold benches use); the durable tier
    keeps every entry ever inserted.  A warehouse-extension ``path``
    selects the indexed sqlite backend (entries in ``dataset``), any
    other path the append-only JSONL file.  Use as a context manager, or
    ``close()`` explicitly when persistent.
    """

    def __init__(
        self,
        path: Optional[str] = None,
        capacity: int = DEFAULT_CAPACITY,
        dataset: str = SERVICE_CACHE_DATASET,
    ):
        if capacity < 0:
            raise ServiceError(f"capacity must be >= 0, got {capacity}")
        self.path = path
        self.capacity = capacity
        self.dataset = dataset
        self._entries: "OrderedDict[CacheKey, Record]" = OrderedDict()
        #: JSONL durable tier index: key -> byte offset of its line
        self._offsets: Dict[CacheKey, int] = {}
        self._fh = None
        self._read_fh = None
        self._append_end = 0  # byte offset of the next appended line
        self._warehouse = None
        self._run_id = None
        self._closed_persisted = None
        if path is None:
            return
        # deferred import: repro.warehouse's io module imports this one
        from repro.warehouse.db import Warehouse, is_warehouse_path

        if is_warehouse_path(path):
            self._warehouse = Warehouse(path)
            self._run_id = self._warehouse.begin_run("service", dataset)
            for line in self._warehouse.recent_cache_entries(
                dataset, capacity
            ):
                key, record = self._entry_key(json.loads(line))
                self._remember(key, record)
        else:
            self._load_and_repair(path)
            # newline="" disables os.linesep translation: the offset
            # index counts "\n" as one byte, so the bytes on disk must
            # match what len(line.encode()) accounted for on any OS
            self._fh = open(path, "a", encoding="utf-8", newline="")
            self._read_fh = open(path, "rb")
            self._append_end = os.path.getsize(path)

    # ------------------------------------------------------------------
    # persistence tier
    # ------------------------------------------------------------------
    def _load_and_repair(self, path: str) -> None:
        """Replay the JSONL file streaming — one line in memory at a
        time — into the LRU (oldest first, so eviction keeps the most
        recent entries) and the offset index; truncate a torn final
        line (a kill mid-write)."""
        if not os.path.exists(path):
            return
        valid_end = 0
        with open(path, "rb") as fh:
            lineno = 0
            for line in fh:
                lineno += 1
                if not line.endswith(b"\n"):
                    break  # torn tail: no terminator, nothing follows
                try:
                    entry = json.loads(line.decode("utf-8"))
                    key, record = self._entry_key(entry)
                except (UnicodeDecodeError, ValueError, ServiceError):
                    # repairable only if nothing but blank space follows
                    if any(rest.strip() for rest in fh):
                        raise ServiceError(
                            f"cache file '{path}' is corrupt at line "
                            f"{lineno}: an unparsable entry is followed by "
                            f"further entries (only a torn final line is "
                            f"repairable)"
                        ) from None
                    break
                self._offsets[key] = valid_end
                valid_end += len(line)
                self._remember(key, record)
        if valid_end != os.path.getsize(path):
            with open(path, "r+b") as fh:
                fh.truncate(valid_end)

    def _read_persisted(self, key: CacheKey) -> Record:
        """Re-read one entry's line from its recorded byte offset (the
        disk-tier fallback behind an LRU eviction)."""
        self._fh.flush()
        self._read_fh.seek(self._offsets[key])
        _key, record = self._entry_key(
            json.loads(self._read_fh.readline().decode("utf-8"))
        )
        return record

    @staticmethod
    def _entry_key(entry: Any) -> Tuple[CacheKey, Record]:
        try:
            fingerprint = entry["fingerprint"]
            task = entry["task"]
            record = entry["record"]
        except (KeyError, TypeError) as exc:
            raise ServiceError(
                f"not a cache entry (every entry carries 'fingerprint', "
                f"'task' and 'record'): {entry!r} ({exc})"
            ) from None
        if not (
            isinstance(fingerprint, str)
            and isinstance(task, str)
            and isinstance(record, dict)
        ):
            raise ServiceError(f"malformed cache entry: {entry!r}")
        return (fingerprint, task), record

    # ------------------------------------------------------------------
    # the LRU tier
    # ------------------------------------------------------------------
    def _remember(self, key: CacheKey, record: Record) -> None:
        if self.capacity == 0:
            return
        self._entries[key] = record
        self._entries.move_to_end(key)
        while len(self._entries) > self.capacity:
            self._entries.popitem(last=False)

    def lookup(self, key: CacheKey) -> Tuple[Optional[Record], Optional[str]]:
        """The cached record and the tier that answered: ``"memory"``,
        ``"warehouse"`` (one indexed row read), ``"file"`` (one
        line-sized read at the JSONL offset index), or ``(None, None)``.
        A memory hit refreshes LRU recency; a durable-tier hit promotes
        the entry back into the LRU — an eviction never costs a
        recompute.  The tier is what the service's ``/metrics``
        memory-hit / warehouse-hit counters report."""
        record = self._entries.get(key)
        if record is not None:
            self._entries.move_to_end(key)
            return record, "memory"
        if self._warehouse is not None:
            line = self._warehouse.get_cache_entry(self.dataset, *key)
            if line is not None:
                _key, record = self._entry_key(json.loads(line))
                self._remember(key, record)
                return record, "warehouse"
        elif self._read_fh is not None and key in self._offsets:
            record = self._read_persisted(key)
            self._remember(key, record)
            return record, "file"
        return None, None

    def get(self, key: CacheKey) -> Optional[Record]:
        """The cached record from any tier, or None (see :meth:`lookup`)."""
        return self.lookup(key)[0]

    def put(self, key: CacheKey, record: Record) -> None:
        """Insert (idempotently): the memory tier refreshes; the durable
        tier gains one canonical envelope per *new* key — an appended,
        flushed JSONL line, or a committed warehouse row (the
        ``(fingerprint, task)`` unique index makes re-puts no-ops)."""
        self._remember(key, record)
        fingerprint, task = key
        if self._warehouse is not None:
            self._warehouse.put_cache_entry(
                self.dataset,
                fingerprint,
                task,
                str(record.get("name", canonical_query_name(fingerprint))),
                record_to_json(
                    {"fingerprint": fingerprint, "task": task,
                     "record": record}
                ),
                run_id=self._run_id,
            )
        elif self._fh is not None and key not in self._offsets:
            line = record_to_json(
                {"fingerprint": fingerprint, "task": task, "record": record}
            ) + "\n"
            offset = self._append_end
            self._fh.write(line)
            self._fh.flush()
            self._append_end = offset + len(line.encode("utf-8"))
            self._offsets[key] = offset

    def __contains__(self, key: CacheKey) -> bool:
        if key in self._entries or key in self._offsets:
            return True
        return (
            self._warehouse is not None
            and self._warehouse.get_cache_entry(self.dataset, *key)
            is not None
        )

    def __len__(self) -> int:
        """Entries resident in the memory tier."""
        return len(self._entries)

    @property
    def persisted(self) -> int:
        """Entries in the durable tier (0 when memory-only)."""
        if self._warehouse is not None:
            return self._warehouse.cache_size(self.dataset)
        if self._closed_persisted is not None:
            return self._closed_persisted
        return len(self._offsets)

    def close(self) -> None:
        if self._fh is not None:
            self._fh.close()
            self._fh = None
        if self._read_fh is not None:
            self._read_fh.close()
            self._read_fh = None
        if self._warehouse is not None:
            # keep the count readable after close ("N entries persisted"
            # is printed on service shutdown, after the cache is closed)
            self._closed_persisted = self._warehouse.cache_size(
                self.dataset
            )
            self._warehouse.finish_run(self._run_id)
            self._warehouse.close()
            self._warehouse = None

    def __enter__(self) -> "ResultCache":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()


# ----------------------------------------------------------------------
# warming from batch stores
# ----------------------------------------------------------------------
def canonicalize_record(
    record: Record, task: str, to_canonical: Sequence[int], fingerprint: str
) -> Record:
    """Rewrite a store record into the exact record a service compute on
    the canonical graph would produce: canonical ``name``, and the one
    label-dependent field (``elect``'s leader) mapped through
    ``to_canonical`` — the store graph's canonical relabeling, whether
    freshly computed (:func:`warm_from_stores`) or read back from the
    warehouse's ``graphs`` table (:func:`warm_from_warehouse`)."""
    out = dict(record)
    out["name"] = canonical_query_name(fingerprint)
    if task == "elect" and isinstance(out.get("leader"), int):
        out["leader"] = to_canonical[out["leader"]]
    return out


def warm_from_stores(
    cache: ResultCache,
    store_paths: Sequence[str],
    corpus: Iterable[Tuple[str, PortGraph]],
    tasks: Sequence[str] = WARMABLE_TASKS,
) -> Tuple[int, int]:
    """Pre-populate ``cache`` from batch result stores.

    ``corpus`` supplies the ``(name, graph)`` entries the stores were
    swept over (a corpus family stream, or a ``corpus emit`` file); only
    names that appear in some store are fingerprinted, so re-opening a
    large family to warm a small store stays cheap.

    Returns ``(warmed, skipped)``: entries inserted, and store records
    skipped (non-warmable task, sub-record of a group, or no graph with
    that name in ``corpus``).
    """
    wanted = set(tasks)
    by_name: Dict[str, Dict[str, Record]] = {}
    skipped = 0
    for path in store_paths:
        for record in load_records(path):
            task = record.get("task")
            name = record.get("name")
            if (
                task not in wanted
                or not isinstance(name, str)
                or record.get("entry", name) != name
            ):
                skipped += 1
                continue
            by_name.setdefault(name, {})[task] = record
    warmed = 0
    for name, graph in corpus:
        records = by_name.pop(name, None)
        if not records:
            continue
        form = canonical_form(graph)
        for task, record in records.items():
            cache.put(
                (form.fingerprint, task),
                canonicalize_record(
                    record, task, form.to_canonical, form.fingerprint
                ),
            )
            warmed += 1
        if not by_name:
            break  # every store record matched; stop paying the stream
    skipped += sum(len(records) for records in by_name.values())
    return warmed, skipped


def warm_from_warehouse(
    cache: ResultCache,
    warehouse,
    tasks: Sequence[str] = WARMABLE_TASKS,
) -> int:
    """Pre-populate ``cache`` from a warehouse's result datasets: one
    join query over the ``records`` and ``graphs`` tables
    (:meth:`~repro.warehouse.db.Warehouse.warm_join`) instead of
    :func:`warm_from_stores`'s corpus re-stream — no graph is generated
    and no canonical certificate recomputed, because warehouse-backed
    sweeps stored each entry's content address as they ran.

    ``warehouse`` is an open :class:`~repro.warehouse.db.Warehouse` or a
    path to one; it may be the same database backing ``cache`` (the
    shared warm tier) or a different one.  Returns the number of entries
    inserted.  Entries whose corpus graph was never registered are
    simply absent from the join — register them once with
    :func:`repro.warehouse.io.register_corpus_graphs`.
    """
    from repro.warehouse.db import Warehouse

    owned = not isinstance(warehouse, Warehouse)
    wh = Warehouse(warehouse) if owned else warehouse
    try:
        warmed = 0
        for task, fingerprint, to_canonical, record in wh.warm_join(tasks):
            cache.put(
                (fingerprint, task),
                canonicalize_record(record, task, to_canonical, fingerprint),
            )
            warmed += 1
        return warmed
    finally:
        if owned:
            wh.close()
