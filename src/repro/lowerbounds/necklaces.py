"""Theorem 3.3's lower-bound family: k-necklaces (Figure 2).

A necklace strings together, left to right:

* a chain a_0 .. a_{phi-2} (the *left leaf* a_0 has degree 1),
* joints w_1 .. w_k, each carrying an *emerald* — a distinct clique from
  F(x) identified with the joint at its node r,
* between consecutive joints, a *diamond* D_i — a clique of size x whose
  every node is attached by *rays* to both w_i and w_{i+1},
* a right chain b_0 .. b_{phi-2} (the *right leaf* b_0 has degree 1).

Port layout (exactly the paper's):

* diamond-internal ports: a fixed circulant numbering in {0..x-2};
* at a diamond node, the ray to w_i carries port x-1, the ray to w_{i+1}
  carries port x (before the code shift);
* at joint w_i, emerald ports are 0..x-1; ray ports toward D_{i-1}/D_i
  come from {x..2x-1} and {2x..3x-1}, which of the two depending on the
  parity of i (w_1 and w_k use {x..2x-1} toward their single diamond and
  port 2x for the chain);
* chain ports: each a_i/b_i has port 0 pointing away from the leaf and
  port 1 pointing toward it.

A family member is selected by a *code*: a shift c_i in {0..x} per diamond
D_i, applied to every port of every node of D_i modulo x+1.  The end
diamonds are pinned to shift 0 (this is how the left/right-leaf views
coincide across the family — the paper's "c_1 = c_k = 0" with its count
(x+1)^{k-3}, i.e. free coordinates c_2..c_{k-2}).

Claim 3.10: every k-necklace has election index exactly phi (for phi >= 2,
k large enough for distinct emeralds; verified computationally in the
tests and benches).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

from repro.errors import GraphStructureError
from repro.graphs.port_graph import PortGraph, PortGraphBuilder
from repro.lowerbounds.cliques import add_clique_family_member, clique_family_size


@dataclass
class NecklaceLayout:
    """Node ids of the distinguished parts of a built necklace."""

    joints: List[int]
    diamonds: List[List[int]]
    left_chain: List[int]  # a_0 .. a_{phi-2}
    right_chain: List[int]  # b_0 .. b_{phi-2}

    @property
    def left_leaf(self) -> int:
        return self.left_chain[0]

    @property
    def right_leaf(self) -> int:
        return self.right_chain[0]


def necklace_family_size(k: int, x: int) -> int:
    """(x+1)^(k-3): free code coordinates c_2..c_{k-2} (paper's count)."""
    if k < 4:
        raise GraphStructureError(f"necklace family needs k >= 4, got {k}")
    return (x + 1) ** (k - 3)


def necklace_node_count(k: int, x: int, phi: int) -> int:
    """n = 2(phi-1) + k(x+1) + (k-1)x."""
    return 2 * (phi - 1) + k * (x + 1) + (k - 1) * x


def necklace(
    k: int,
    phi: int,
    code: Optional[Sequence[int]] = None,
    x: Optional[int] = None,
    with_layout: bool = False,
):
    """Build the k-necklace with election index ``phi`` and diamond-shift
    ``code`` (one entry per diamond D_1..D_{k-1}; end diamonds must be 0;
    defaults to the all-zero code, i.e. the graph M_k).

    Returns the :class:`PortGraph`, or ``(graph, layout)`` if
    ``with_layout``.
    """
    if k < 2:
        raise GraphStructureError(f"necklace requires k >= 2 joints, got {k}")
    if phi < 2:
        raise GraphStructureError(
            f"necklaces model election index phi >= 2, got {phi} "
            "(Theorem 3.3 is the phi > 1 case; Theorem 3.2 covers phi = 1)"
        )
    if x is None:
        x = 2
        while clique_family_size(x) < k:
            x += 1
    if clique_family_size(x) < k:
        raise GraphStructureError(
            f"need k={k} distinct emeralds but |F({x})| = {clique_family_size(x)}"
        )
    num_diamonds = k - 1
    if code is None:
        code = [0] * num_diamonds
    code = list(code)
    if len(code) != num_diamonds:
        raise GraphStructureError(
            f"code must have one entry per diamond ({num_diamonds}), got {len(code)}"
        )
    if any(not (0 <= c <= x) for c in code):
        raise GraphStructureError(f"code entries must lie in 0..{x}")
    if code[0] != 0 or code[-1] != 0:
        raise GraphStructureError(
            "end diamonds must have shift 0 (the family pins them so the "
            "leaf views coincide across members)"
        )

    b = PortGraphBuilder()
    joints = [b.add_node() for _ in range(k)]

    # emeralds: distinct F(x) cliques, using ports 0..x-1 at each joint
    for i, w in enumerate(joints):
        add_clique_family_member(b, x, i, w)

    # diamonds with rays
    diamonds: List[List[int]] = []
    for i in range(num_diamonds):  # D_{i+1} between w_{i+1} and w_{i+2}
        shift = code[i]
        nodes = b.add_nodes(x)
        diamonds.append(nodes)

        def dport(p: int) -> int:
            return (p + shift) % (x + 1)

        # internal circulant ports in {0..x-2} (before shift)
        for a in range(x):
            for c in range(a + 1, x):
                pa = (c - a) % x - 1
                pc = (a - c) % x - 1
                b.add_edge(nodes[a], dport(pa), nodes[c], dport(pc))
        # rays; joint-side ports by parity (1-based joint index)
        left_joint, right_joint = joints[i], joints[i + 1]
        left_index, right_index = i + 1, i + 2
        left_base = _ray_base(left_index, is_right_diamond=True, x=x, k=k)
        right_base = _ray_base(right_index, is_right_diamond=False, x=x, k=k)
        for j, d in enumerate(nodes):
            b.add_edge(left_joint, left_base + j, d, dport(x - 1))
            b.add_edge(right_joint, right_base + j, d, dport(x))

    # chains
    left_chain = _add_chain(b, phi, joints[0], x)
    right_chain = _add_chain(b, phi, joints[-1], x)

    g = b.build()
    layout = NecklaceLayout(
        joints=joints,
        diamonds=diamonds,
        left_chain=left_chain,
        right_chain=right_chain,
    )
    return (g, layout) if with_layout else g


def _ray_base(joint_index: int, is_right_diamond: bool, x: int, k: int) -> int:
    """First port number at joint ``joint_index`` (1-based) for its rays
    toward the diamond on its right (``is_right_diamond``) or left.

    w_1 and w_k have a single diamond, served from {x..2x-1}.  An internal
    even joint serves its left diamond from {x..2x-1} and its right from
    {2x..3x-1}; an odd internal joint swaps the two ranges.
    """
    if joint_index == 1 or joint_index == k:
        return x
    if joint_index % 2 == 0:
        return 2 * x if is_right_diamond else x
    return x if is_right_diamond else 2 * x


def _add_chain(b: PortGraphBuilder, phi: int, joint: int, x: int) -> List[int]:
    """The chain c_0..c_{phi-2} hanging off a terminal joint; the joint-side
    port is 2x, the chain's internal ports follow the paper (0 away from
    the leaf, 1 toward it).  Returns [c_0, ..., c_{phi-2}]."""
    nodes = b.add_nodes(phi - 1)
    if phi == 2:
        # single chain node: its only port, 0, leads to the joint
        b.add_edge(nodes[0], 0, joint, 2 * x)
        return nodes
    # c_{phi-2} attaches to the joint through its port 0
    b.add_edge(nodes[-1], 0, joint, 2 * x)
    # internal edges: at c_i, port 0 toward c_{i+1}, port 1 toward c_{i-1};
    # the leaf c_0 has only port 0 (toward c_1); c_{phi-2} uses port 1
    # toward c_{phi-3}
    for i in range(phi - 2):
        port_low = 0  # at c_i toward c_{i+1}
        port_high = 1  # at c_{i+1} toward c_i
        b.add_edge(nodes[i], port_low, nodes[i + 1], port_high)
    return nodes
