"""Fooling-pair diagnostics, and a probe into the paper's open question.

The engine of every lower bound in the paper is a *fooling pair*: nodes
v1 in G1 and v2 in G2 with B^tau(v1) = B^tau(v2), so that under equal
advice they must output the same port sequence — which cannot be a
correct path to a leader in both graphs.  Thanks to cross-graph view
interning, finding fooling pairs is a dictionary join.

The paper's Section 5 leaves open the advice complexity for times strictly
between phi and D + phi.  :func:`fooling_floor_curve` measures, on an
exhaustively enumerated necklace family, how the fooling pressure decays
through that window: for each time tau, members whose two leaves carry the
same depth-tau views are mutually fooled (the Claim 3.11 argument), so any
correct time-tau algorithm needs distinct advice within each such class —
forcing at least ceil(log2(max class size + 1)) - 1 bits.  This is a
*floor from one argument pattern*, not a tight bound; it is the executable
end of the open question.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from typing import Dict, List, Sequence, Tuple

from repro.graphs.port_graph import PortGraph
from repro.lowerbounds.counting import advice_bits_required
from repro.lowerbounds.necklaces import necklace
from repro.views.view import View, views_of_graph


def shared_view_nodes(
    g1: PortGraph, g2: PortGraph, depth: int
) -> List[Tuple[int, int]]:
    """All pairs (v1, v2) with B^depth(v1 in g1) == B^depth(v2 in g2).

    Cross-graph fooling pairs; O(n1 + n2) plus view computation.
    """
    views1 = views_of_graph(g1, depth)
    views2 = views_of_graph(g2, depth)
    by_view: Dict[View, List[int]] = {}
    for v, view in enumerate(views2):
        by_view.setdefault(view, []).append(v)
    pairs: List[Tuple[int, int]] = []
    for u, view in enumerate(views1):
        for v in by_view.get(view, ()):
            pairs.append((u, v))
    return pairs


@dataclass
class FoolingFloorPoint:
    """One point of the open-question probe curve."""

    tau: int
    num_members: int
    num_leaf_view_classes: int
    max_class_size: int
    forced_advice_bits: int


def enumerate_necklace_family(
    k: int, phi: int, x: int = 3, limit: int = 64
) -> List[Tuple[PortGraph, "NecklaceLayout"]]:
    """All (or the first ``limit``) members of the necklace family N_k:
    every diamond code with pinned end diamonds."""
    free = k - 3  # free coordinates c_2..c_{k-2}
    members = []
    for combo in itertools.product(range(x + 1), repeat=max(0, free)):
        code = [0, *combo, 0]
        g, layout = necklace(k, phi, code=code, x=x, with_layout=True)
        members.append((g, layout))
        if len(members) >= limit:
            break
    return members


def fooling_floor_curve(
    k: int, phi: int, taus: Sequence[int], x: int = 3, limit: int = 64
) -> List[FoolingFloorPoint]:
    """The open-question probe: forced-advice floor vs time tau on N_k.

    For each tau, group members by the pair (B^tau(left leaf),
    B^tau(right leaf)); members sharing a group are mutually fooled at
    time tau, so they need pairwise distinct advice.
    """
    members = enumerate_necklace_family(k, phi, x=x, limit=limit)
    points: List[FoolingFloorPoint] = []
    for tau in taus:
        classes: Dict[Tuple[View, View], int] = {}
        for g, layout in members:
            views = views_of_graph(g, tau)
            key = (views[layout.left_leaf], views[layout.right_leaf])
            classes[key] = classes.get(key, 0) + 1
        max_class = max(classes.values())
        points.append(
            FoolingFloorPoint(
                tau=tau,
                num_members=len(members),
                num_leaf_view_classes=len(classes),
                max_class_size=max_class,
                forced_advice_bits=advice_bits_required(max_class),
            )
        )
    return points
