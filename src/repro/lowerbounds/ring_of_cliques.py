"""Theorem 3.2's lower-bound family: the ring-of-cliques H_k and the
family G_k (Figure 1).

H_k: a ring w_1..w_k (ports x at the clockwise edge and x+1 at the
counter-clockwise edge of every ring node) with an isomorphic copy of the
t-th clique of F(x) attached at w_t (identifying w_t with the clique's
node r).  G_k keeps the clique at w_1 fixed and permutes the cliques at
w_2..w_k — (k-1)! graphs, all of election index 1 (Claim 3.8), pairwise
requiring different advice for election in time 1 (Claim 3.9), whence the
Ω(n log log n) bound.

The paper sets x = ceil(2 log k / log log k) for k >= 2^16 so that
k <= (x-1)^x; for small experimental k we take the smallest x with
k <= (x-1)^x (same constraint, same shape).
"""

from __future__ import annotations

import math
from typing import List, Optional, Sequence, Tuple

from repro.errors import GraphStructureError
from repro.graphs.port_graph import PortGraph, PortGraphBuilder
from repro.lowerbounds.cliques import add_clique_family_member, clique_family_size


def hk_params(k: int) -> int:
    """The clique parameter x for a given ring size k: the paper's formula
    when it satisfies the constraint, otherwise the smallest valid x."""
    if k < 3:
        raise GraphStructureError(f"H_k requires ring size k >= 3, got {k}")
    if k >= 2**16:
        x = math.ceil(2 * math.log2(k) / math.log2(math.log2(k)))
        if k <= clique_family_size(x):
            return x
    x = 2
    while clique_family_size(x) < k:
        x += 1
    return x


def hk_graph(
    k: int, x: Optional[int] = None, clique_indices: Optional[Sequence[int]] = None
) -> PortGraph:
    """The graph H_k (Figure 1), or — with ``clique_indices`` — a member of
    the family G_k.

    ``clique_indices[t]`` is the F(x)-index of the clique attached at ring
    node ``w_{t+1}``; defaults to (0, 1, ..., k-1), i.e. H_k itself.  Ring
    node w_{t+1} is graph node ``t * (x + 1)``; its clique fills the next
    x node ids.
    """
    if x is None:
        x = hk_params(k)
    if clique_family_size(x) < k:
        raise GraphStructureError(
            f"need k={k} distinct cliques but |F({x})| = {clique_family_size(x)}"
        )
    if clique_indices is None:
        clique_indices = list(range(k))
    if len(clique_indices) != k:
        raise GraphStructureError(
            f"clique_indices must have length k={k}, got {len(clique_indices)}"
        )
    if len(set(clique_indices)) != k:
        raise GraphStructureError("clique_indices must be distinct")

    b = PortGraphBuilder()
    ring_nodes: List[int] = []
    for t in range(k):
        w = b.add_node()
        ring_nodes.append(w)
        add_clique_family_member(b, x, clique_indices[t], w)
    # ring edges: port x clockwise, x+1 counter-clockwise
    for t in range(k):
        b.add_edge(ring_nodes[t], x, ring_nodes[(t + 1) % k], x + 1)
    return b.build()


def gk_graph(k: int, permutation: Sequence[int], x: Optional[int] = None) -> PortGraph:
    """A member of G_k: ``permutation`` is a permutation of (1..k-1) giving
    the order of the cliques at w_2..w_k (the clique at w_1 stays 0)."""
    if sorted(permutation) != list(range(1, k)):
        raise GraphStructureError(
            "permutation must be a permutation of 1..k-1 (clique 0 stays at w_1)"
        )
    return hk_graph(k, x=x, clique_indices=[0, *permutation])


def gk_family_size(k: int) -> int:
    """|G_k| = (k-1)!."""
    return math.factorial(k - 1)


def gk_node_count(k: int, x: Optional[int] = None) -> int:
    """n_k = k * (x + 1)."""
    if x is None:
        x = hk_params(k)
    return k * (x + 1)
