"""Counting arithmetic: from family sizes to advice lower bounds.

The lower-bound proofs all end the same way: a family of M graphs is
exhibited in which any correct algorithm must give *distinct* advice to
distinct members (Claims 3.9, 3.11, property 7).  Distinct binary strings
for M graphs force some string of length >= ceil(log2(M + 1)) - 1, because
there are only 2^{L+1} - 1 strings of length <= L.

These helpers compute the exact bound for each construction, plus the
paper's asymptotic comparators, so the benches can print
"measured floor vs paper's Ω(...)" tables.
"""

from __future__ import annotations

import math
from typing import Optional

from repro.lowerbounds.necklaces import necklace_family_size, necklace_node_count
from repro.lowerbounds.ring_of_cliques import gk_family_size, gk_node_count, hk_params


def advice_bits_required(num_graphs: int) -> int:
    """Minimum worst-case advice length (bits) for ``num_graphs`` graphs
    that must all receive distinct advice: the smallest L such that
    2^{L+1} - 1 >= num_graphs."""
    if num_graphs < 1:
        raise ValueError("need at least one graph")
    length = 0
    while 2 ** (length + 1) - 1 < num_graphs:
        length += 1
    return length


def thm32_lower_bound_bits(k: int, x: Optional[int] = None) -> dict:
    """Theorem 3.2 numbers for ring size k: family size (k-1)!, node count,
    the forced advice bits, and the paper's Ω(n log log n) comparator."""
    if x is None:
        x = hk_params(k)
    n = gk_node_count(k, x)
    count = gk_family_size(k)
    bits = advice_bits_required(count)
    comparator = n * math.log2(max(2.0, math.log2(n)))
    return {
        "k": k,
        "x": x,
        "n": n,
        "family_size": count,
        "advice_bits_forced": bits,
        "n_loglog_n": comparator,
        "ratio": bits / comparator,
    }


def thm33_lower_bound_bits(k: int, phi: int, x: int) -> dict:
    """Theorem 3.3 numbers for a k-necklace with parameter x: family size
    (x+1)^{k-3}, node count, forced advice bits, and the paper's
    Ω(n (log log n)^2 / log n) comparator."""
    n = necklace_node_count(k, x, phi)
    count = necklace_family_size(k, x)
    bits = advice_bits_required(count)
    loglog = math.log2(max(2.0, math.log2(n)))
    comparator = n * loglog**2 / math.log2(n)
    return {
        "k": k,
        "x": x,
        "phi": phi,
        "n": n,
        "family_size": count,
        "advice_bits_forced": bits,
        "comparator": comparator,
        "ratio": bits / comparator,
    }


def thm42_k_star(alpha: int, c: int, part: int) -> int:
    """The k* of Theorem 4.2's proof: the largest k with B(k, c) <= alpha
    (the number of families, hence of forced distinct advice strings)."""
    from repro.lowerbounds.families_t import index_b

    if alpha < 1:
        raise ValueError("alpha must be >= 1")
    k = 0
    while True:
        try:
            nxt = index_b(k + 1, c, part)
        except OverflowError:
            return k
        if nxt > alpha:
            return k
        k += 1


def thm42_lower_bound_bits(alpha: int, c: int = 2, part: int = 1) -> dict:
    """Theorem 4.2 counting for one part: k* families force
    ceil(log2(k*+1)) - 1 bits; the paper's comparator is R(alpha) =
    alpha, log alpha, loglog alpha, log* alpha for parts 1..4."""
    import math

    from repro.util.mathfn import log_star

    k_star = thm42_k_star(alpha, c, part)
    forced = advice_bits_required(max(1, k_star))
    if part == 1:
        comparator = math.log2(max(2, alpha))
    elif part == 2:
        comparator = math.log2(max(2.0, math.log2(max(2, alpha))))
    elif part == 3:
        comparator = math.log2(
            max(2.0, math.log2(max(2.0, math.log2(max(2, alpha)))))
        )
    elif part == 4:
        comparator = math.log2(max(2, log_star(alpha)))
    else:
        raise ValueError(f"Theorem 4.2 has parts 1..4, got {part}")
    return {
        "part": part,
        "alpha": alpha,
        "c": c,
        "k_star": k_star,
        "forced_bits": forced,
        "comparator": comparator,
        "ratio": forced / comparator if comparator else float("inf"),
    }
