"""Proposition 4.1: constant advice never suffices — hairy rings,
cuts and γ-stretches (Figure 9).

A *hairy ring* is a ring with a star S_{k_i} identified with each ring
node, such that the maximum star is unique (this makes the graph feasible:
the star center of maximum degree is a unique landmark and the oriented
ring ports separate everything else).

Ring orientation: at ring node w_i, port 0 leads counter-clockwise (to
w_{i-1}) and port 1 clockwise (to w_{i+1}).  The *cut* at w removes the
edge closing the ring at w; the γ-stretch chains γ copies of the cut,
joining copy boundaries with port 0 at the entering node and port 1 at the
leaving node — exactly reproducing the ring's local port structure, which
is what makes nodes deep inside a stretch indistinguishable (for a bounded
number of rounds) from nodes of the original hairy ring.

:func:`prop41_fooling_graph` assembles the proposition's master graph: the
γ-stretches of the c advice-representative hairy rings, chained, closed by
a (γ)-star hub — itself a hairy ring, whose *foci* fool any algorithm
whose advice has constant size.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

from repro.errors import GraphStructureError
from repro.graphs.port_graph import PortGraph, PortGraphBuilder


@dataclass
class StretchLayout:
    """Node bookkeeping for a γ-stretch."""

    first: int  # first node of the first copy (the stretch's "first node")
    last: int  # last node of the last copy
    copy_starts: List[int]  # id of each copy's first ring node
    ring_nodes: List[List[int]]  # per copy, the ring nodes in order


def _add_hairy_copy(
    b: PortGraphBuilder, star_sizes: Sequence[int], close_ring: bool
) -> List[int]:
    """Add one copy of the (possibly cut) hairy ring; returns ring nodes in
    order w_1..w_n.  Ring edges {w_i, w_{i+1}} carry port 1 at w_i and port
    0 at w_{i+1}; the closing edge {w_n, w_1} (if any) carries port 1 at
    w_n, port 0 at w_1."""
    n = len(star_sizes)
    if n < 3:
        raise GraphStructureError(f"hairy ring requires ring size >= 3, got {n}")
    ring = b.add_nodes(n)
    if close_ring:
        b.add_edge(ring[-1], 1, ring[0], 0)
    for i in range(n - 1):
        b.add_edge(ring[i], 1, ring[i + 1], 0)
    for w, k in zip(ring, star_sizes):
        if k < 0:
            raise GraphStructureError(f"star size must be >= 0, got {k}")
        # star ports are 2.. as in the *closed* ring, even in a cut copy
        # (the cut removes one ring edge but keeps all other port numbers;
        # ports 0/1 of the boundary nodes stay reserved for the re-joining
        # edges of the stretch / fooling graph)
        for j in range(k):
            leaf = b.add_node()
            b.add_edge(w, 2 + j, leaf, 0)
    return ring


def hairy_ring(star_sizes: Sequence[int]) -> PortGraph:
    """The hairy ring with star S_{star_sizes[i]} at ring node w_{i+1}.

    Requires the maximum star size to be unique (the class H of
    Proposition 4.1).  Ring node w_{i+1} precedes all its star leaves in
    the node numbering; node 0 is w_1.
    """
    sizes = list(star_sizes)
    if sizes.count(max(sizes)) != 1:
        raise GraphStructureError(
            "the maximum star of a hairy ring must be unique (class H)"
        )
    b = PortGraphBuilder()
    _add_hairy_copy(b, sizes, close_ring=True)
    return b.build()


def cut_of_hairy_ring(star_sizes: Sequence[int]) -> PortGraph:
    """The cut of the hairy ring at w_1: the ring edge {w_1, w_n} removed.

    The paper's cut is an intermediate fragment with dangling port 0 at the
    first node and port 1 at the last (they get re-used by the stretch's
    joining edges).  A standalone :class:`PortGraph` must have contiguous
    ports, so this constructor caps the two dangling ports with pendant
    nodes; inner nodes are unaffected.  Node 0 is the first node (w_1).
    """
    b = PortGraphBuilder()
    ring = _add_hairy_copy(b, list(star_sizes), close_ring=False)
    cap_a = b.add_node()
    b.add_edge(ring[0], 0, cap_a, 0)
    cap_b = b.add_node()
    b.add_edge(ring[-1], 1, cap_b, 0)
    return b.build()


def gamma_stretch(
    star_sizes: Sequence[int], gamma: int, with_layout: bool = False
):
    """The γ-stretch of the hairy ring, cut at w_1 (Figure 9c).

    Copies are chained left to right; the joining edge carries port 0 at
    the entering copy's first node and port 1 at the leaving copy's last
    node, replicating the ring's port structure.  Like the cut, the
    standalone stretch caps its two outer dangling ports with pendant
    nodes (the fooling graph instead closes them through its hub).
    """
    if gamma < 2:
        raise GraphStructureError(f"gamma-stretch requires gamma >= 2, got {gamma}")
    sizes = list(star_sizes)
    b = PortGraphBuilder()
    rings: List[List[int]] = []
    for i in range(gamma):
        ring = _add_hairy_copy(b, sizes, close_ring=False)
        if rings:
            b.add_edge(rings[-1][-1], 1, ring[0], 0)
        rings.append(ring)
    cap_a = b.add_node()
    b.add_edge(rings[0][0], 0, cap_a, 0)
    cap_b = b.add_node()
    b.add_edge(rings[-1][-1], 1, cap_b, 0)
    g = b.build()
    layout = StretchLayout(
        first=rings[0][0],
        last=rings[-1][-1],
        copy_starts=[r[0] for r in rings],
        ring_nodes=rings,
    )
    return (g, layout) if with_layout else g


@dataclass
class FoolingGraphLayout:
    """Bookkeeping of Proposition 4.1's master graph."""

    hub: int  # central node of the closing star (unique max degree)
    stretch_first: List[int]  # first node of each component stretch
    stretch_copy_starts: List[List[int]]  # per stretch, copy boundaries


def prop41_fooling_graph(
    families: Sequence[Sequence[int]], gamma: int, with_layout: bool = False
):
    """The graph G of Proposition 4.1: for each hairy-ring spec in
    ``families`` take its γ-stretch, chain them all, and close the chain
    through the central node of a fresh γ-star.

    The result is itself a hairy ring (unique max degree γ+2 at the hub),
    so it belongs to the class the hypothetical algorithm must serve.
    """
    if len(families) < 1:
        raise GraphStructureError("need at least one hairy-ring family")
    b = PortGraphBuilder()
    firsts: List[int] = []
    copy_starts: List[List[int]] = []
    prev_last: Optional[int] = None
    first_of_all: Optional[int] = None
    for sizes in families:
        rings: List[List[int]] = []
        for _ in range(gamma):
            ring = _add_hairy_copy(b, list(sizes), close_ring=False)
            if rings:
                b.add_edge(rings[-1][-1], 1, ring[0], 0)
            rings.append(ring)
        if prev_last is not None:
            b.add_edge(prev_last, 1, rings[0][0], 0)
        else:
            first_of_all = rings[0][0]
        firsts.append(rings[0][0])
        copy_starts.append([r[0] for r in rings])
        prev_last = rings[-1][-1]
    # the closing γ-star hub: ring ports 0 (to prev_last side? no --
    # counter-clockwise = toward the last stretch) and 1 (clockwise =
    # toward the first stretch), plus gamma leaves
    hub = b.add_node()
    b.add_edge(prev_last, 1, hub, 0)
    b.add_edge(hub, 1, first_of_all, 0)
    for _ in range(gamma):
        leaf = b.add_node()
        b.add_edge(hub, b.next_free_port(hub), leaf, 0)
    g = b.build()
    layout = FoolingGraphLayout(
        hub=hub, stretch_first=firsts, stretch_copy_starts=copy_starts
    )
    return (g, layout) if with_layout else g
