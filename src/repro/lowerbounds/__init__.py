"""The paper's lower-bound graph families, as executable constructions.

Every family from Sections 3 and 4 is built here, exactly as described
(with deterministic choices wherever the paper says "arbitrary"):

* :mod:`cliques` — the port-shifted clique family F(x) (basis of both
  Section 3 lower bounds);
* :mod:`ring_of_cliques` — the graph H_k and family G_k of Theorem 3.2
  (Figure 1): election index 1, advice Ω(n log log n);
* :mod:`necklaces` — the k-necklaces N_k of Theorem 3.3 (Figure 2):
  election index phi, advice Ω(n (log log n)^2 / log n);
* :mod:`locks` — z-locks (Figure 3) and the ``*``-composition (Figure 4);
* :mod:`families_t` — the S_0 family (Figure 5), lock transformation T(L)
  (Figure 6) and the merge operation (Figures 7-8) of Theorem 4.2;
* :mod:`hairy_rings` — hairy rings, cuts and γ-stretches (Figure 9) of
  Proposition 4.1 (constant advice never suffices);
* :mod:`counting` — the counting arithmetic converting family sizes into
  advice-size lower bounds.
"""

from repro.lowerbounds.cliques import (
    clique_family_f,
    clique_family_sequence,
    clique_family_size,
    shift_sequence,
)
from repro.lowerbounds.ring_of_cliques import (
    gk_family_size,
    gk_graph,
    hk_graph,
    hk_params,
)
from repro.lowerbounds.necklaces import (
    necklace,
    necklace_family_size,
    necklace_node_count,
)
from repro.lowerbounds.locks import add_z_lock, attach_clique, compose_star, z_lock
from repro.lowerbounds.families_t import (
    MergeParams,
    S0Params,
    merge_graphs,
    s0_graph,
    transform_lock,
)
from repro.lowerbounds.hairy_rings import (
    cut_of_hairy_ring,
    gamma_stretch,
    hairy_ring,
    prop41_fooling_graph,
)
from repro.lowerbounds.counting import (
    advice_bits_required,
    thm32_lower_bound_bits,
    thm33_lower_bound_bits,
    thm42_k_star,
    thm42_lower_bound_bits,
)
from repro.lowerbounds.fooling import (
    enumerate_necklace_family,
    fooling_floor_curve,
    shared_view_nodes,
)

__all__ = [
    "clique_family_f",
    "clique_family_sequence",
    "clique_family_size",
    "shift_sequence",
    "hk_graph",
    "hk_params",
    "gk_graph",
    "gk_family_size",
    "necklace",
    "necklace_family_size",
    "necklace_node_count",
    "z_lock",
    "add_z_lock",
    "attach_clique",
    "compose_star",
    "S0Params",
    "MergeParams",
    "s0_graph",
    "transform_lock",
    "merge_graphs",
    "hairy_ring",
    "cut_of_hairy_ring",
    "gamma_stretch",
    "prop41_fooling_graph",
    "advice_bits_required",
    "thm32_lower_bound_bits",
    "thm33_lower_bound_bits",
    "thm42_k_star",
    "thm42_lower_bound_bits",
    "enumerate_necklace_family",
    "fooling_floor_curve",
    "shared_view_nodes",
]
