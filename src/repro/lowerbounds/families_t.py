"""Theorem 4.2's inductive families: the base family S_0 (Figure 5), the
lock transformation T(L) (Figure 6), and the merge operation (Figures 7-8).

The theorem builds sequences of families T_0 ⊃ T_1 ⊃ ... where each T_{k+1}
member is the *merge* of two T_k members: Q = L1 * M' * T(L2) * X * T(L3)
* M'' * L4.  The transformation T(L) replaces a lock's 3-cycle by the
pruned view of its central node (to depth B(k+1, c)) and pins every pruned
leaf with a uniquely-sized clique; X is a long clique-decorated chain that
pushes the two halves far apart.  These gadgets arrange that the principal
nodes of the merged graph have the *same* deep views as principal nodes of
the original family members (property 9) — the fooling pairs that force
distinct advice per family.

Faithful parameter values (the ``paper_*`` helpers) produce graphs of
10^5+ nodes even at the smallest admissible alpha; the builders therefore
take a :class:`MergeParams` whose defaults follow the paper but which the
tests override with *demo* values preserving every structural invariant
that is machine-checkable (lock shapes, connectivity, view preservation at
reduced depth, unique-degree pinning).  See DESIGN.md "Known scope cuts".
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from repro.errors import GraphStructureError
from repro.graphs.port_graph import PortGraph, PortGraphBuilder
from repro.lowerbounds.locks import LockHandles, add_z_lock, attach_clique
from repro.views.pruned import materialize_pruned_view


# ----------------------------------------------------------------------
# the A/B/R parameter functions of the four theorem parts
# ----------------------------------------------------------------------
def offset_a(x: int, c: int, part: int = 1) -> int:
    """A(x, c): the time offset above D for each part of Theorem 4.2."""
    if part == 1:
        return x + c
    if part == 2:
        return c * x
    if part == 3:
        return x**c
    if part == 4:
        return c**x
    raise ValueError(f"Theorem 4.2 has parts 1..4, got {part}")


def index_b(x: int, c: int, part: int = 1) -> int:
    """B(x, c): the election-index budget of family T_x."""
    if part == 1:
        return c * x + 2 * x + 1
    if part == 2:
        return (c + 2) ** x
    if part == 3:
        return 2 ** (c ** (3 * x)) - c if x > 0 else 1
    if part == 4:
        # tower: B(x, c) = 2^{x}c in the paper's tower notation
        value = 1
        for _ in range(x):
            value = c**value
        return 2 * value  # shape-level stand-in; exact form only feeds counting
    raise ValueError(f"Theorem 4.2 has parts 1..4, got {part}")


# ----------------------------------------------------------------------
# family member bookkeeping
# ----------------------------------------------------------------------
@dataclass
class FamilyMember:
    """A graph of some T_k family together with its distinguished parts
    (property 1's unambiguous L1 * M * L2 form)."""

    graph: PortGraph
    left_lock: LockHandles
    right_lock: LockHandles
    family_level: int  # k of T_k

    @property
    def left_principal(self) -> int:
        return self.left_lock.principal

    @property
    def right_principal(self) -> int:
        return self.right_lock.principal


# ----------------------------------------------------------------------
# the base family S_0 (Figure 5)
# ----------------------------------------------------------------------
@dataclass
class S0Params:
    """Parameters of the S_0 construction: alpha (target election-index
    budget) and the constant c > 1."""

    alpha: int
    c: int = 2

    def __post_init__(self):
        if self.alpha < 1:
            raise GraphStructureError(f"alpha must be >= 1, got {self.alpha}")
        if self.c < 2:
            raise GraphStructureError(f"c must be an integer > 1, got {self.c}")

    @property
    def chain_interior(self) -> int:
        """Number of interior chain nodes w_1..w_{alpha+c+1}."""
        return self.alpha + self.c + 1

    def x_of(self, index: int) -> int:
        """x_i = 4 + 2 i (alpha + c + 2) + i."""
        return 4 + 2 * index * (self.alpha + self.c + 2) + index

    @property
    def family_size(self) -> int:
        """s_0 = 2 alpha * alpha^{alpha+1} (the paper's |S_0|)."""
        return 2 * self.alpha * self.alpha ** (self.alpha + 1)


def s0_graph(params: S0Params, index: int) -> FamilyMember:
    """The graph G_index of the sequence S_0 (Figure 5):
    an x_i-lock, a clique-decorated chain, and an
    (x_i + 2(alpha+c+2))-lock."""
    if index < 0:
        raise GraphStructureError(f"S_0 index must be >= 0, got {index}")
    x_i = params.x_of(index)
    b = PortGraphBuilder()
    left = add_z_lock(b, x_i)
    right = add_z_lock(b, x_i + 2 * (params.alpha + params.c + 2))
    chain = b.add_nodes(params.chain_interior)
    prev = left.central
    for w in chain:
        b.add_edge_auto(prev, w)
        prev = w
    b.add_edge_auto(prev, right.central)
    for j, w in enumerate(chain, start=1):
        attach_clique(b, w, x_i + 2 * j)
    return FamilyMember(
        graph=b.build(), left_lock=left, right_lock=right, family_level=0
    )


# ----------------------------------------------------------------------
# the merge operation (Figures 6-8)
# ----------------------------------------------------------------------
@dataclass
class MergeParams:
    """Size knobs of the merge.

    ``pruned_depth``: depth of the pruned views replacing the inner locks'
    3-cycles (the paper's B(k+1, c)).
    ``clique_base``: base size of the leaf-pinning cliques (the paper's
    "largest degree of any previously constructed graph").
    ``chain_len``: length of the separating chain X (the paper's 2n with n
    the largest previous graph size).
    """

    pruned_depth: int
    clique_base: int
    chain_len: int

    def __post_init__(self):
        if self.pruned_depth < 1:
            raise GraphStructureError("pruned_depth must be >= 1")
        if self.chain_len < 2:
            raise GraphStructureError("chain_len must be >= 2")


def paper_merge_params(
    k: int, c: int, prev_max_size: int, prev_max_degree: int, part: int = 1
) -> MergeParams:
    """The faithful parameter values for merging two T_k members."""
    return MergeParams(
        pruned_depth=index_b(k + 1, c, part),
        clique_base=prev_max_degree,
        chain_len=2 * prev_max_size,
    )


def transform_lock(
    builder: PortGraphBuilder,
    source: PortGraph,
    lock: LockHandles,
    node_map: Dict[int, int],
    params: MergeParams,
    clique_offset: int = 0,
) -> Tuple[int, int]:
    """The T(L) transformation (Figure 6), applied in-place.

    ``node_map`` maps ``source`` nodes to builder nodes for everything
    *except* the lock's two cycle nodes (which the caller omitted when
    copying).  Replaces the missing 3-cycle by the pruned view of the
    central node computed in ``source``, then pins leaf f (1-based) with a
    clique of size ``clique_base + 4 f + clique_offset``.

    Returns ``(highest_degree_node, num_leaves)`` — the paper's node "a"
    (resp. "b") and t (resp. t').
    """
    central_src = lock.central
    central = node_map[central_src]
    cycle_ports = (
        source.port_to(central_src, lock.principal),
        source.port_to(central_src, lock.other_cycle),
    )
    excluded = [
        p for p in range(source.degree(central_src)) if p not in cycle_ports
    ]
    pv = materialize_pruned_view(
        builder, source, central_src, excluded, params.pruned_depth, root=central
    )
    num_leaves = len(pv.leaves)
    best_node, best_size = central, builder.degree(central)
    for f, leaf in enumerate(pv.leaves, start=1):
        size = params.clique_base + 4 * f + clique_offset
        attach_clique(builder, leaf, size)
        if size > best_size:
            best_node, best_size = leaf, size
    return best_node, num_leaves


def _copy_except(
    builder: PortGraphBuilder, g: PortGraph, excluded: List[int]
) -> Dict[int, int]:
    """Copy ``g`` into the builder, omitting ``excluded`` nodes and their
    incident edges; returns the node map for the copied nodes."""
    excl = set(excluded)
    node_map: Dict[int, int] = {}
    for v in g.nodes():
        if v not in excl:
            node_map[v] = builder.add_node()
    for (u, p, v, q) in g.edges():
        if u in excl or v in excl:
            continue
        builder.add_edge(node_map[u], p, node_map[v], q)
    return node_map


def merge_graphs(
    left: FamilyMember, right: FamilyMember, params: MergeParams
) -> FamilyMember:
    """The merge operation (Figure 7): Q = L1 * M' * T(L2) * X * T(L3) *
    M'' * L4 from H' = ``left`` and H'' = ``right``.

    The builder keeps H'-minus-L2's-cycle and H''-minus-L3's-cycle intact
    (ports included), grafts the pruned views, pins their leaves with
    uniquely-sized cliques, and inserts the clique-decorated chain X
    between the highest-degree nodes of T(L2) and T(L3).
    """
    b = PortGraphBuilder()

    # H' without the right lock's cycle companions
    lmap = _copy_except(
        b,
        left.graph,
        [left.right_lock.principal, left.right_lock.other_cycle],
    )
    a_node, t_left = transform_lock(
        b, left.graph, left.right_lock, lmap, params, clique_offset=0
    )

    # H'' without the left lock's cycle companions
    rmap = _copy_except(
        b,
        right.graph,
        [right.left_lock.principal, right.left_lock.other_cycle],
    )
    b_node, _t_right = transform_lock(
        b,
        right.graph,
        right.left_lock,
        rmap,
        params,
        clique_offset=4 * t_left + 4,
    )

    # the separating chain X with its escalating cliques
    y = max(b.degree(v) for v in range(b.num_nodes))
    chain = b.add_nodes(params.chain_len)
    for i in range(len(chain) - 1):
        b.add_edge_auto(chain[i], chain[i + 1])
    for f, gnode in enumerate(chain, start=1):
        attach_clique(b, gnode, y + 4 * f)

    b.add_edge_auto(a_node, chain[0])
    b.add_edge_auto(chain[-1], b_node)

    def remap_lock(handles: LockHandles, node_map: Dict[int, int]) -> LockHandles:
        return LockHandles(
            central=node_map[handles.central],
            principal=node_map[handles.principal],
            other_cycle=node_map[handles.other_cycle],
            clique=[node_map[v] for v in handles.clique],
        )

    return FamilyMember(
        graph=b.build(),
        left_lock=remap_lock(left.left_lock, lmap),
        right_lock=remap_lock(right.right_lock, rmap),
        family_level=max(left.family_level, right.family_level) + 1,
    )
