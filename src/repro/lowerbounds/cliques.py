"""The clique family F(x) (Section 3).

F(x) = {C_1, ..., C_y} with y = (x-1)^x: labeled cliques on x+1 nodes
{r, v_0, ..., v_{x-1}}, all sharing the port numbering at r (port i of r
leads to v_i) and differing by cyclic shifts of the port numbering at each
v_j.  Concretely, a *base clique* C fixes a deterministic assignment, and
C_t applies the shift h_j (mod x) to every port at v_j, where
(h_0, ..., h_{x-1}) in {1..x-1}^x is the t-th shift sequence.

The crucial property (exercised by Claim 3.8's proof and verified in the
tests): corresponding nodes of two distinct cliques of F(x) already differ
in their depth-1 views when the cliques are embedded the same way, because
some v_j sees a shifted remote port on its edge toward a fixed-direction
neighbor.

Node convention in the returned graphs: node 0 is ``r``; node ``1 + j``
is ``v_j``.
"""

from __future__ import annotations

from typing import List, Sequence, Tuple

from repro.errors import GraphStructureError
from repro.graphs.port_graph import PortGraph, PortGraphBuilder


def clique_family_size(x: int) -> int:
    """y = (x-1)^x, the size of F(x)."""
    if x < 2:
        raise GraphStructureError(f"F(x) requires x >= 2, got {x}")
    return (x - 1) ** x


def shift_sequence(x: int, t: int) -> Tuple[int, ...]:
    """The t-th (0-based) shift sequence (h_0..h_{x-1}) in {1..x-1}^x,
    enumerated as base-(x-1) digits of t, least-significant first."""
    size = clique_family_size(x)
    if not (0 <= t < size):
        raise GraphStructureError(
            f"clique index {t} out of range for F({x}) of size {size}"
        )
    digits = []
    for _ in range(x):
        digits.append(1 + (t % (x - 1)))
        t //= x - 1
    return tuple(digits)


def _base_ports(x: int, j: int) -> List[Tuple[int, int]]:
    """Port assignment at v_j in the base clique C: list of
    (port, neighbor) where neighbor is r (encoded -1) or an index i of v_i.

    Ports 0..x-2 lead to v_{(j+1+t) mod x} for t = 0..x-2; port x-1 leads
    to r.  (The paper fixes ports at r and says "the rest ... arbitrarily";
    this is our deterministic choice.)
    """
    out = []
    for t in range(x - 1):
        out.append((t, (j + 1 + t) % x))
    out.append((x - 1, -1))
    return out


def clique_family_f(x: int, t: int) -> PortGraph:
    """The clique C_{t+1} of F(x) (0-based index ``t``) as a PortGraph."""
    shifts = shift_sequence(x, t)
    b = PortGraphBuilder(x + 1)  # node 0 = r, node 1+j = v_j

    def port_at_vj(j: int, neighbor: int) -> int:
        for port, nb in _base_ports(x, j):
            if nb == neighbor:
                return (port + shifts[j]) % x
        raise AssertionError("neighbor not found in base assignment")

    # edges r -- v_i with port i at r
    for i in range(x):
        b.add_edge(0, i, 1 + i, port_at_vj(i, -1))
    # edges v_i -- v_j
    for i in range(x):
        for j in range(i + 1, x):
            b.add_edge(1 + i, port_at_vj(i, j), 1 + j, port_at_vj(j, i))
    return b.build()


def clique_family_sequence(x: int, count: int, start: int = 0) -> List[PortGraph]:
    """The first ``count`` cliques of F(x), starting at index ``start``."""
    size = clique_family_size(x)
    if start + count > size:
        raise GraphStructureError(
            f"requested cliques {start}..{start + count - 1} but |F({x})| = {size}"
        )
    return [clique_family_f(x, t) for t in range(start, start + count)]


def add_clique_family_member(
    builder: PortGraphBuilder, x: int, t: int, r_node: int
) -> List[int]:
    """Attach an isomorphic copy of C_{t+1} of F(x) into ``builder``,
    *identifying its node r with the existing node* ``r_node`` (the paper's
    attachment operation for H_k and for emeralds).  The ports 0..x-1 at
    ``r_node`` must still be free.  Returns the new nodes [v_0..v_{x-1}]."""
    shifts = shift_sequence(x, t)
    v_nodes = builder.add_nodes(x)

    def port_at_vj(j: int, neighbor: int) -> int:
        for port, nb in _base_ports(x, j):
            if nb == neighbor:
                return (port + shifts[j]) % x
        raise AssertionError("neighbor not found in base assignment")

    for i in range(x):
        builder.add_edge(r_node, i, v_nodes[i], port_at_vj(i, -1))
    for i in range(x):
        for j in range(i + 1, x):
            builder.add_edge(
                v_nodes[i], port_at_vj(i, j), v_nodes[j], port_at_vj(j, i)
            )
    return v_nodes
