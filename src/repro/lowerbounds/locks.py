"""z-locks (Figure 3), clique attachments and the ``*``-composition
(Figure 4) — the building blocks of Theorem 4.2's families.

A z-lock is a 3-cycle (ports 0, 1 in clockwise order at each cycle node)
with a clique of size z identified with one cycle node, the *central node*
w (the unique node of degree z+1 inside the lock).  The *principal node*
is the cycle node reached from w through port 0.

``A * B`` joins two disjoint graphs by a single edge (Figure 4); in the
Theorem 4.2 families the joining ports are the smallest free ports at the
chosen endpoints.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Tuple

from repro.errors import GraphStructureError
from repro.graphs.port_graph import PortGraph, PortGraphBuilder


@dataclass
class LockHandles:
    """Node ids of a lock written into a builder."""

    central: int
    principal: int
    other_cycle: int
    clique: List[int]  # the z-1 clique nodes besides the central node


def attach_clique(builder: PortGraphBuilder, node: int, size: int) -> List[int]:
    """Attach a clique of ``size`` nodes by identifying one of them with
    ``node`` (the paper's recurring "attach a clique of size s" step).
    Internal ports use the smallest free port at each endpoint, so the
    existing ports of ``node`` are preserved.  Returns the size-1 new
    nodes."""
    if size < 2:
        raise GraphStructureError(f"attached clique must have size >= 2, got {size}")
    fresh = builder.add_nodes(size - 1)
    members = [node, *fresh]
    for i in range(len(members)):
        for j in range(i + 1, len(members)):
            builder.add_edge_auto(members[i], members[j])
    return fresh


def add_z_lock(builder: PortGraphBuilder, z: int) -> LockHandles:
    """Write a z-lock into the builder; returns its handles.

    Ports: the 3-cycle uses 0 (clockwise) and 1 at each of its three
    nodes; the clique occupies ports 2..z at the central node and the
    smallest free ports elsewhere.
    """
    if z < 4:
        raise GraphStructureError(f"z-lock requires z >= 4, got {z}")
    central = builder.add_node()
    principal = builder.add_node()
    other = builder.add_node()
    # clockwise 3-cycle central -> principal -> other -> central
    builder.add_edge(central, 0, principal, 1)
    builder.add_edge(principal, 0, other, 1)
    builder.add_edge(other, 0, central, 1)
    clique = attach_clique(builder, central, z)
    return LockHandles(
        central=central, principal=principal, other_cycle=other, clique=clique
    )


def z_lock(z: int) -> PortGraph:
    """A standalone z-lock graph (z + 2 nodes)."""
    b = PortGraphBuilder()
    add_z_lock(b, z)
    return b.build()


def compose_star(graphs: List[PortGraph], join_nodes: List[Tuple[int, int]]) -> PortGraph:
    """``G_1 * G_2 * ... * G_r`` (Figure 4): disjoint copies joined by one
    edge between consecutive components.

    ``join_nodes[i] = (a, b)``: the edge between component i and i+1 uses
    node ``a`` of ``G_i`` and node ``b`` of ``G_{i+1}`` (original ids),
    with the smallest free port at each.  Returns the composed graph;
    component i's node v becomes ``offset_i + v`` where offsets follow
    construction order.
    """
    if len(join_nodes) != len(graphs) - 1:
        raise GraphStructureError(
            f"need {len(graphs) - 1} join edges for {len(graphs)} components, "
            f"got {len(join_nodes)}"
        )
    b = PortGraphBuilder()
    translations = [b.copy_in(g) for g in graphs]
    for i, (a, b_node) in enumerate(join_nodes):
        b.add_edge_auto(translations[i][a], translations[i + 1][b_node])
    return b.build()
