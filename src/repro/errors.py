"""Exception hierarchy for the :mod:`repro` library.

Every error raised by the library derives from :class:`ReproError`, so callers
can catch library failures without swallowing programming errors.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the repro library."""


class GraphError(ReproError):
    """Base class for errors in the port-graph substrate."""


class PortNumberingError(GraphError):
    """A port assignment violates the model: ports at a node of degree d must
    be exactly {0, ..., d-1}, and every edge carries one port per endpoint."""


class GraphStructureError(GraphError):
    """The graph violates a structural requirement (connectivity, simplicity,
    minimum size n >= 3 where the paper requires it, ...)."""


class FrozenGraphError(GraphError):
    """Attempt to mutate a frozen (finalized) :class:`PortGraph`."""


class InfeasibleGraphError(ReproError):
    """Leader election is impossible in this graph even with full knowledge of
    the map: two nodes have identical (infinite) views, so no deterministic
    algorithm can break the symmetry (Yamashita-Kameda criterion)."""


class CodingError(ReproError):
    """A binary string could not be decoded, or an object is not encodable."""


class AdviceError(ReproError):
    """Advice construction or consumption failed (oracle/algorithm mismatch)."""


class EngineError(ReproError):
    """The experiment engine was misconfigured (unknown task, bad worker or
    chunk configuration) or a worker failed."""


class CorpusError(ReproError):
    """A corpus family spec is malformed, names an unknown family, or
    carries parameters the family does not accept."""


class StoreError(EngineError):
    """A result store file is unreadable or corrupt beyond the repairable
    truncated-tail case (see :mod:`repro.engine.store`)."""


class ServiceError(ReproError):
    """The query service rejected a request (unknown task, malformed
    graph payload or batch envelope) or its cache file is corrupt beyond
    the repairable torn-tail case (see :mod:`repro.service.cache`)."""


class ConformanceError(ReproError):
    """The conformance subsystem was misconfigured (unknown algorithm or
    schedule roster), as opposed to a *disagreement*, which is recorded in
    the conformance record rather than raised."""


class SimulationError(ReproError):
    """The distributed simulation reached an invalid state."""


class AlgorithmError(ReproError):
    """A node algorithm behaved illegally (e.g. output after terminating,
    message to a nonexistent port)."""


class ElectionFailure(ReproError):
    """The outputs of an election run do not constitute a valid election:
    some output is not a simple path, or the paths do not share an endpoint."""
