"""``repro.obs`` — the unified tracing + metrics layer.

One stdlib-only instrumentation core shared by the service, the shard
pool, the engine and the simulators:

* :mod:`repro.obs.core` — the module-level enable flag, the metric
  :class:`Registry` (counters / gauges / histograms, label-tuple keyed),
  :func:`span` with per-thread nesting, and the explicit cross-process
  propagation pair :func:`export_context` / :class:`collect_remote`
  (span context rides the shard ``Pipe`` protocol and the engine's
  chunk payloads; captured worker events ship back in the replies and
  are :func:`ingest`-ed into the parent buffer, yielding one stitched
  trace per query);
* :mod:`repro.obs.export` — Prometheus text exposition (served by
  content negotiation on ``GET /metrics``) and Chrome trace-event JSON
  (``repro obs export --trace-json``, loadable in Perfetto).

Disabled by default: every helper bails on one module-level flag before
touching any state, so the instrumented hot paths are unmeasurably
slower than un-instrumented ones (pinned by ``tests/test_obs.py`` and
the CI strict-bench gate).  Enable with ``repro profile CMD``, the
``REPRO_OBS=1`` environment variable, or :func:`repro.obs.enable`.
"""

from repro.obs.core import (
    Registry,
    SpanHandle,
    collect_remote,
    current_context,
    disable,
    drain_events,
    enable,
    enabled,
    export_context,
    inc,
    ingest,
    observe,
    registry,
    reset,
    set_gauge,
    span,
    take_snapshot,
    trace_events,
)
from repro.obs.export import (
    render_prometheus,
    to_chrome_trace,
    write_chrome_trace,
)

__all__ = [
    "Registry",
    "SpanHandle",
    "collect_remote",
    "current_context",
    "disable",
    "drain_events",
    "enable",
    "enabled",
    "export_context",
    "inc",
    "ingest",
    "observe",
    "registry",
    "render_prometheus",
    "reset",
    "set_gauge",
    "span",
    "take_snapshot",
    "to_chrome_trace",
    "trace_events",
    "write_chrome_trace",
]
