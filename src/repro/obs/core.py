"""The instrumentation core: metric registry, spans, cross-process stitching.

Everything here is stdlib-only and **disabled by default**.  The single
module-level flag (:func:`enable` / :func:`disable` / :func:`enabled`)
guards a no-op fast path: with observability off, :func:`span` returns a
shared inert context manager without allocating, and the metric helpers
(:func:`inc`, :func:`observe`, :func:`set_gauge`) return before touching
the registry.  The strict/refinement hot loops this library spent PRs
4-9 speeding up therefore pay one predicate per *operation boundary*
(a query, a sim run, a chunk) and nothing per round or per message —
per-round accounting is the job of :class:`repro.sim.trace.Tracer`,
whose summary is folded into the enclosing span's attributes instead.

Spans
-----
:func:`span` is a context manager producing one *event dict* on exit:
JSON-safe, so events cross the shard ``Pipe`` and the engine's task
envelopes as-is.  Nesting is tracked per thread; cross-process edges are
explicit: the parent calls :func:`export_context` and ships the small
dict to the worker, the worker brackets its work in
:func:`collect_remote` and ships the captured events back, the parent
calls :func:`ingest`.  Span ids embed the pid, and timestamps come from
``time.monotonic_ns()`` — CLOCK_MONOTONIC is system-wide on Linux, so
parent and worker clocks agree and the stitched trace orders correctly
across process boundaries.

Metrics
-------
:class:`Registry` holds counters, gauges and histograms keyed by
``(name, labels-tuple)``.  Writes are a dict update under a lock cheap
enough to be irrelevant next to any operation worth measuring (the hot
loops never write metrics; boundaries do).  Histograms store count /
sum / fixed log-spaced buckets, enough for the Prometheus exposition
and the warehouse ``telemetry`` table.
"""

from __future__ import annotations

import bisect
import itertools
import os
import threading
import time
from collections import deque
from typing import Any, Callable, Dict, Iterator, List, Optional, Tuple

__all__ = [
    "Registry",
    "SpanHandle",
    "collect_remote",
    "disable",
    "drain_events",
    "enable",
    "enabled",
    "export_context",
    "ingest",
    "inc",
    "observe",
    "registry",
    "reset",
    "set_gauge",
    "span",
    "take_snapshot",
    "trace_events",
]

# ---------------------------------------------------------------------------
# the one flag

#: ``REPRO_OBS=1`` in the environment turns recording on at import time —
#: the hook for instrumenting a process whose entry point you do not
#: control (a shard worker inherits the parent's environment, so a
#: service started under ``REPRO_OBS=1`` records everywhere).
_ENABLED = os.environ.get("REPRO_OBS", "") not in ("", "0")


def enabled() -> bool:
    """True when instrumentation is recording."""
    return _ENABLED


def enable() -> None:
    global _ENABLED
    _ENABLED = True


def disable() -> None:
    global _ENABLED
    _ENABLED = False


# ---------------------------------------------------------------------------
# metric registry

#: Log-spaced latency buckets (seconds): 100us .. ~100s, factor ~3.16.
DEFAULT_BUCKETS: Tuple[float, ...] = (
    0.0001,
    0.000316,
    0.001,
    0.00316,
    0.01,
    0.0316,
    0.1,
    0.316,
    1.0,
    3.16,
    10.0,
    31.6,
    100.0,
)

_LabelKey = Tuple[Tuple[str, str], ...]


def _label_key(labels: Dict[str, Any]) -> _LabelKey:
    return tuple(sorted((k, str(v)) for k, v in labels.items()))


class Registry:
    """Counters, gauges and histograms keyed by ``(name, label-tuple)``."""

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._counters: Dict[Tuple[str, _LabelKey], float] = {}
        self._gauges: Dict[Tuple[str, _LabelKey], float] = {}
        # name -> {label key -> [count, sum, bucket counts]}
        self._histograms: Dict[
            Tuple[str, _LabelKey], List[Any]
        ] = {}
        self._buckets: Dict[str, Tuple[float, ...]] = {}
        self.writes = 0

    def inc(self, name: str, value: float = 1.0, **labels: Any) -> None:
        key = (name, _label_key(labels))
        with self._lock:
            self._counters[key] = self._counters.get(key, 0.0) + value
            self.writes += 1

    def set_gauge(self, name: str, value: float, **labels: Any) -> None:
        key = (name, _label_key(labels))
        with self._lock:
            self._gauges[key] = float(value)
            self.writes += 1

    def observe(
        self,
        name: str,
        value: float,
        buckets: Tuple[float, ...] = DEFAULT_BUCKETS,
        **labels: Any,
    ) -> None:
        key = (name, _label_key(labels))
        with self._lock:
            cell = self._histograms.get(key)
            if cell is None:
                self._buckets.setdefault(name, buckets)
                cell = [0, 0.0, [0] * (len(self._buckets[name]) + 1)]
                self._histograms[key] = cell
            cell[0] += 1
            cell[1] += value
            edges = self._buckets[name]
            cell[2][bisect.bisect_left(edges, value)] += 1
            self.writes += 1

    def snapshot(self) -> Dict[str, Any]:
        """A JSON-safe copy of every metric, for exporters and tests."""
        with self._lock:
            counters = [
                {"name": n, "labels": dict(lk), "value": v}
                for (n, lk), v in sorted(self._counters.items())
            ]
            gauges = [
                {"name": n, "labels": dict(lk), "value": v}
                for (n, lk), v in sorted(self._gauges.items())
            ]
            histograms = [
                {
                    "name": n,
                    "labels": dict(lk),
                    "count": cell[0],
                    "sum": cell[1],
                    "buckets": list(self._buckets[n]),
                    "bucket_counts": list(cell[2]),
                }
                for (n, lk), cell in sorted(self._histograms.items())
            ]
        return {
            "counters": counters,
            "gauges": gauges,
            "histograms": histograms,
        }

    def clear(self) -> None:
        with self._lock:
            self._counters.clear()
            self._gauges.clear()
            self._histograms.clear()
            self._buckets.clear()
            self.writes = 0


#: The process-global registry all helpers write into.
registry = Registry()


def inc(name: str, value: float = 1.0, **labels: Any) -> None:
    if not _ENABLED:
        return
    registry.inc(name, value, **labels)


def set_gauge(name: str, value: float, **labels: Any) -> None:
    if not _ENABLED:
        return
    registry.set_gauge(name, value, **labels)


def observe(name: str, value: float, **labels: Any) -> None:
    if not _ENABLED:
        return
    registry.observe(name, value, **labels)


# ---------------------------------------------------------------------------
# spans

#: Bounded event buffer: old events fall off rather than grow unbounded
#: in a long-lived service process.
TRACE_BUFFER_CAP = 10000

_events: "deque[Dict[str, Any]]" = deque(maxlen=TRACE_BUFFER_CAP)
_events_lock = threading.Lock()
_span_counter = itertools.count(1)
_tls = threading.local()


def _new_id() -> str:
    # pid-qualified so ids minted in forked shard/engine workers can
    # never collide with the parent's when the events are stitched
    return f"{os.getpid():x}-{next(_span_counter):x}"


def _stack() -> List[Dict[str, Any]]:
    stack = getattr(_tls, "stack", None)
    if stack is None:
        stack = []
        _tls.stack = stack
    return stack


class SpanHandle:
    """The live side of one span: attribute bag plus identity.

    ``recording`` is True on real spans and False on the shared no-op
    instance, so callers can skip building expensive attributes::

        with obs.span("sim.run") as sp:
            ...
            if sp.recording:
                sp.set("tracer", tracer.summary())
    """

    __slots__ = ("name", "trace_id", "span_id", "parent_id", "attrs", "_t0")

    recording = True

    def __init__(
        self,
        name: str,
        trace_id: str,
        span_id: str,
        parent_id: Optional[str],
        attrs: Dict[str, Any],
    ) -> None:
        self.name = name
        self.trace_id = trace_id
        self.span_id = span_id
        self.parent_id = parent_id
        self.attrs = attrs
        self._t0 = 0

    def set(self, key: str, value: Any) -> None:
        self.attrs[key] = value


class _NoopSpan:
    """Shared inert span: no allocation, no state, absorbs all calls."""

    __slots__ = ()

    recording = False
    name = ""
    trace_id = ""
    span_id = ""
    parent_id = None
    attrs: Dict[str, Any] = {}

    def set(self, key: str, value: Any) -> None:
        pass

    def __enter__(self) -> "_NoopSpan":
        return self

    def __exit__(self, *exc: Any) -> None:
        pass


_NOOP_SPAN = _NoopSpan()


class _LiveSpan:
    __slots__ = ("handle",)

    def __init__(self, handle: SpanHandle) -> None:
        self.handle = handle

    def __enter__(self) -> SpanHandle:
        h = self.handle
        _stack().append({"trace_id": h.trace_id, "span_id": h.span_id})
        h._t0 = time.monotonic_ns()
        return h

    def __exit__(self, exc_type: Any, exc: Any, tb: Any) -> None:
        end = time.monotonic_ns()
        h = self.handle
        stack = _stack()
        if stack and stack[-1]["span_id"] == h.span_id:
            stack.pop()
        event = {
            "name": h.name,
            "trace_id": h.trace_id,
            "span_id": h.span_id,
            "parent_id": h.parent_id,
            "pid": os.getpid(),
            "tid": threading.get_ident(),
            "start_us": h._t0 // 1000,
            "dur_us": max(0, (end - h._t0) // 1000),
        }
        if h.attrs:
            event["attrs"] = h.attrs
        if exc_type is not None:
            event["error"] = exc_type.__name__
        with _events_lock:
            _events.append(event)


def span(name: str, **attrs: Any):
    """Context manager timing one named operation.

    When obs is disabled this returns a shared no-op object — no
    allocation, no clock read.  When enabled, entering pushes the span
    onto the calling thread's stack (children nest under it) and exiting
    appends one JSON-safe event dict to the process trace buffer.
    """
    if not _ENABLED:
        return _NOOP_SPAN
    stack = _stack()
    if stack:
        top = stack[-1]
        trace_id = top["trace_id"]
        parent_id: Optional[str] = top["span_id"]
    else:
        remote = getattr(_tls, "remote_parent", None)
        if remote is not None:
            trace_id = remote["trace_id"]
            parent_id = remote["span_id"]
        else:
            trace_id = _new_id()
            parent_id = None
    return _LiveSpan(SpanHandle(name, trace_id, _new_id(), parent_id, attrs))


def current_context() -> Optional[Dict[str, str]]:
    """The innermost live span's ``{trace_id, span_id}``, or None."""
    stack = getattr(_tls, "stack", None)
    if stack:
        return dict(stack[-1])
    return getattr(_tls, "remote_parent", None)


def export_context() -> Optional[Dict[str, str]]:
    """Span context to ship across a process boundary (None when off)."""
    if not _ENABLED:
        return None
    return current_context()


def trace_events() -> List[Dict[str, Any]]:
    """A copy of the buffered trace events, oldest first."""
    with _events_lock:
        return list(_events)


def drain_events() -> List[Dict[str, Any]]:
    """Return the buffered events and empty the buffer."""
    with _events_lock:
        out = list(_events)
        _events.clear()
    return out


def ingest(events: Optional[List[Dict[str, Any]]]) -> None:
    """Append events captured in another process to this buffer."""
    if not events:
        return
    with _events_lock:
        _events.extend(events)


class collect_remote:
    """Worker-side bracket for work done on behalf of a remote parent.

    ``ctx`` is the parent's :func:`export_context` dict (or None, in
    which case the bracket is inert and ``.events`` stays empty).  On
    entry obs is enabled and a fresh buffer swapped in; spans opened
    inside parent to ``ctx``.  On exit the previous state is restored —
    whether or not the worker inherited an enabled flag or buffered
    events via fork — and the captured events are exposed as
    ``.events``, ready to ship back verbatim::

        with obs.collect_remote(ctx) as collected:
            record = compute(...)
        reply = ("ok", record, collected.events)
    """

    def __init__(self, ctx: Optional[Dict[str, str]]) -> None:
        self._ctx = ctx
        self.events: List[Dict[str, Any]] = []
        self._saved: Optional[Tuple[bool, List[Dict[str, Any]], Any]] = None

    def __enter__(self) -> "collect_remote":
        if self._ctx is None:
            return self
        global _ENABLED
        with _events_lock:
            inherited = list(_events)
            _events.clear()
        self._saved = (
            _ENABLED,
            inherited,
            getattr(_tls, "remote_parent", None),
        )
        _ENABLED = True
        _tls.remote_parent = dict(self._ctx)
        return self

    def __exit__(self, *exc: Any) -> None:
        if self._saved is None:
            return
        global _ENABLED
        was_enabled, inherited, prev_remote = self._saved
        with _events_lock:
            self.events = list(_events)
            _events.clear()
            _events.extend(inherited)
        _ENABLED = was_enabled
        _tls.remote_parent = prev_remote


def take_snapshot() -> Dict[str, Any]:
    """Registry snapshot plus trace buffer size — the `/metrics` payload."""
    snap = registry.snapshot()
    snap["trace_events_buffered"] = len(_events)
    snap["enabled"] = _ENABLED
    return snap


def reset() -> None:
    """Disable, clear the registry, trace buffer and thread-local state.

    Test isolation helper; not used on any production path.
    """
    global _ENABLED
    _ENABLED = False
    registry.clear()
    with _events_lock:
        _events.clear()
    _tls.stack = []
    _tls.remote_parent = None
