"""Exporters: Prometheus text exposition and Chrome trace-event JSON.

Both operate on plain JSON-safe data — a :meth:`Registry.snapshot`
dict and a list of span event dicts — so they work identically on live
in-process state, on events shipped back from shard/engine workers, and
on rows replayed out of the warehouse ``telemetry`` table.
"""

from __future__ import annotations

import json
import math
import re
from typing import Any, Dict, Iterable, List, Mapping, Optional

__all__ = [
    "render_prometheus",
    "to_chrome_trace",
    "write_chrome_trace",
]

_NAME_BAD = re.compile(r"[^a-zA-Z0-9_:]")
_LABEL_BAD = re.compile(r"[^a-zA-Z0-9_]")


def _metric_name(name: str) -> str:
    name = _NAME_BAD.sub("_", name)
    if name and name[0].isdigit():
        name = "_" + name
    return name


def _label_str(labels: Mapping[str, Any]) -> str:
    if not labels:
        return ""
    parts = []
    for k in sorted(labels):
        key = _LABEL_BAD.sub("_", str(k))
        val = str(labels[k]).replace("\\", r"\\").replace('"', r"\"")
        val = val.replace("\n", r"\n")
        parts.append(f'{key}="{val}"')
    return "{" + ",".join(parts) + "}"


def _fmt(value: float) -> str:
    if value == math.inf:
        return "+Inf"
    if isinstance(value, float) and value.is_integer():
        return str(int(value))
    return repr(value)


def render_prometheus(
    snapshot: Mapping[str, Any],
    extra_counters: Optional[Mapping[str, float]] = None,
    prefix: str = "repro",
) -> str:
    """Render a registry snapshot in Prometheus text format 0.0.4.

    ``extra_counters`` lets the HTTP server fold flat service counters
    (the ``/metrics`` JSON payload's numbers) into the same scrape.
    """
    lines: List[str] = []

    def emit(name: str, kind: str, samples: Iterable[str]) -> None:
        lines.append(f"# TYPE {name} {kind}")
        lines.extend(samples)

    if extra_counters:
        for key in sorted(extra_counters):
            name = _metric_name(f"{prefix}_{key}")
            emit(name, "gauge", [f"{name} {_fmt(float(extra_counters[key]))}"])

    for c in snapshot.get("counters", []):
        name = _metric_name(f"{prefix}_{c['name']}_total")
        emit(
            name,
            "counter",
            [f"{name}{_label_str(c.get('labels', {}))} {_fmt(c['value'])}"],
        )
    for g in snapshot.get("gauges", []):
        name = _metric_name(f"{prefix}_{g['name']}")
        emit(
            name,
            "gauge",
            [f"{name}{_label_str(g.get('labels', {}))} {_fmt(g['value'])}"],
        )
    for h in snapshot.get("histograms", []):
        name = _metric_name(f"{prefix}_{h['name']}")
        labels = h.get("labels", {})
        samples: List[str] = []
        cumulative = 0
        for edge, count in zip(h["buckets"], h["bucket_counts"]):
            cumulative += count
            le = dict(labels)
            le["le"] = _fmt(float(edge))
            samples.append(f"{name}_bucket{_label_str(le)} {cumulative}")
        cumulative += h["bucket_counts"][len(h["buckets"])]
        le = dict(labels)
        le["le"] = "+Inf"
        samples.append(f"{name}_bucket{_label_str(le)} {cumulative}")
        samples.append(f"{name}_sum{_label_str(labels)} {_fmt(h['sum'])}")
        samples.append(f"{name}_count{_label_str(labels)} {h['count']}")
        emit(name, "histogram", samples)

    return "\n".join(lines) + "\n"


def _json_safe_attr(value: Any) -> Any:
    try:
        json.dumps(value)
        return value
    except (TypeError, ValueError):
        return repr(value)


def to_chrome_trace(events: Iterable[Mapping[str, Any]]) -> Dict[str, Any]:
    """Convert span event dicts to the Chrome trace-event JSON format.

    Each span becomes one complete event (``ph: "X"``); ``pid``/``tid``
    come straight off the event, so a stitched cross-process trace lays
    parent and shard-worker spans out on separate tracks in Perfetto /
    ``chrome://tracing``.  Timestamps are CLOCK_MONOTONIC microseconds,
    comparable across the processes of one machine.
    """
    trace_events: List[Dict[str, Any]] = []
    for ev in events:
        args: Dict[str, Any] = {
            "trace_id": ev.get("trace_id"),
            "span_id": ev.get("span_id"),
        }
        if ev.get("parent_id"):
            args["parent_id"] = ev["parent_id"]
        if ev.get("error"):
            args["error"] = ev["error"]
        for key, value in (ev.get("attrs") or {}).items():
            args[key] = _json_safe_attr(value)
        trace_events.append(
            {
                "name": ev.get("name", "?"),
                "ph": "X",
                "ts": ev.get("start_us", 0),
                "dur": ev.get("dur_us", 0),
                "pid": ev.get("pid", 0),
                "tid": ev.get("tid", 0),
                "cat": "repro",
                "args": args,
            }
        )
    return {"traceEvents": trace_events, "displayTimeUnit": "ms"}


def write_chrome_trace(path: str, events: Iterable[Mapping[str, Any]]) -> int:
    """Write events as Chrome trace JSON; returns the event count."""
    doc = to_chrome_trace(events)
    with open(path, "w", encoding="utf-8") as fh:
        json.dump(doc, fh, indent=None, separators=(",", ":"))
    return len(doc["traceEvents"])
