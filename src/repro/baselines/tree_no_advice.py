"""Leader election in feasible trees with NO advice, in time D.

The paper contrasts arbitrary graphs (where election with no advice is
impossible — Proposition 4.1) with trees, where "for time equal to the
diameter D, leader election can be done in feasible trees without any
advice, as all nodes can reconstruct the map of the tree" (citing [25]).

Reconstruction: in a tree, the view of u *folds* back into the tree — at
every non-root view node the child through the arrival port is exactly
the walk back to the parent, so pruning it leaves the genuine subtree.
The fold succeeds (every pruned branch terminates at a degree-1 node)
exactly when the view depth reaches ecc(u) <= D; no knowledge of D is
needed — the node simply tries to fold after every round.  All nodes
recover the *same* anonymous tree, compute its election index and views
locally, and output a path to the node with the canonically smallest
view — a common leader.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Tuple

from repro.baselines.map_based import _lex_shortest_port_path
from repro.core.verify import verify_election
from repro.errors import AlgorithmError, InfeasibleGraphError
from repro.graphs.port_graph import PortGraph, PortGraphBuilder
from repro.sim.com import ViewAccumulator
from repro.sim.local_model import NodeContext, run_sync
from repro.views.election_index import election_index
from repro.views.order import view_min
from repro.views.view import View, views_of_graph


def _fold_children(view: View, arrival_port: Optional[int]):
    """Try to fold a tree view: returns the list of
    (my_port, remote_port, folded_child) for all ports except the arrival
    port, or None if some branch runs out of depth before hitting a leaf.
    """
    if arrival_port is not None and view.degree == 1:
        return []
    if view.depth == 0:
        return None  # unexplored ports remain
    out = []
    for p, (q, child) in enumerate(view.children):
        if p == arrival_port:
            continue
        sub = _fold_children(child, q)
        if sub is None:
            return None
        out.append((p, q, sub))
    return out


def _build_folded_tree(folded, root_degree: int) -> Tuple[PortGraph, int]:
    """Materialize a successful fold as a PortGraph; returns (tree, root id)."""
    b = PortGraphBuilder()
    root = b.add_node()

    def grow(node: int, children) -> None:
        for p, q, sub in children:
            child = b.add_node()
            b.add_edge(node, p, child, q)
            grow(child, sub)

    grow(root, folded)
    return b.build(), root


class TreeNoAdviceAlgorithm:
    """Per-node election for feasible trees; no advice used."""

    def __init__(self):
        self._acc: Optional[ViewAccumulator] = None

    def setup(self, ctx: NodeContext) -> None:
        self._acc = ViewAccumulator(ctx.degree)
        if ctx.degree == 0:
            raise AlgorithmError("isolated node cannot take part in election")

    def compose(self, ctx: NodeContext):
        return self._acc.outgoing()

    def deliver(self, ctx: NodeContext, inbox) -> None:
        self._acc.absorb(inbox)
        if ctx.has_output:
            return
        folded = _fold_children(self._acc.view, None)
        if folded is None:
            return  # have not seen the whole tree yet
        tree, me = _build_folded_tree(folded, ctx.degree)
        try:
            phi = election_index(tree)
        except InfeasibleGraphError:
            raise AlgorithmError(
                "reconstructed tree is infeasible: no deterministic election "
                "exists (run this baseline on feasible trees only)"
            )
        tree_views = views_of_graph(tree, phi)
        leader_view = view_min(tree_views)
        leader = next(v for v in tree.nodes() if tree_views[v] is leader_view)
        ctx.output(_lex_shortest_port_path(tree, me, leader))


@dataclass
class TreeNoAdviceRecord:
    n: int
    diameter: int
    election_time: int
    leader: int


def run_tree_no_advice(g: PortGraph) -> TreeNoAdviceRecord:
    """Pipeline: simulate on a feasible tree, verify, assert time <= D."""
    if g.num_edges != g.n - 1:
        raise AlgorithmError("this baseline requires a tree")
    diameter = g.diameter()
    result = run_sync(g, TreeNoAdviceAlgorithm, advice=None, max_rounds=diameter + 1)
    outcome = verify_election(g, result.outputs)
    if result.election_time > diameter:
        raise AlgorithmError(
            f"tree election took {result.election_time} > D = {diameter}"
        )
    return TreeNoAdviceRecord(
        n=g.n,
        diameter=diameter,
        election_time=result.election_time,
        leader=outcome.leader,
    )
