"""The naive rank-label advice of Section 3's discussion.

"A naive way ... nodes could list all possible augmented truncated views
at depth phi, order them lexicographically, and adopt the rank as label
... these labels would be of size Ω(n log n) [and] item A2 would have to
give the tree with all these labels, thus potentially requiring at least
Ω(n^2 log n) bits."

We implement the realizable variant: the oracle ships the sorted list of
the *present* view encodings plus the BFS tree labeled by rank.  The
advice is dominated by the n view encodings of Θ(n log n) bits each at
phi = 1 — the quadratic blowup the trie construction exists to avoid,
measured head-to-head in the ablation bench.

View encodings use ``bin(B^1)`` at depth 1 and the nested canonical code
at larger depths; the latter grows exponentially with phi, so this
baseline is honest only for small phi (the regime the paper's remark is
about is phi = 1).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from repro.coding.bitstring import Bits
from repro.coding.concat import concat_bits, decode_concat
from repro.coding.integers import decode_uint, encode_uint
from repro.coding.trees import LabeledRootedTree, decode_tree, encode_tree
from repro.core.advice import canonical_bfs_tree
from repro.core.verify import verify_election
from repro.errors import AdviceError, AlgorithmError
from repro.graphs.port_graph import PortGraph
from repro.sim.com import ViewAccumulator
from repro.sim.local_model import NodeContext, run_sync
from repro.views.election_index import election_index
from repro.views.encoding import encode_b1
from repro.views.view import View, views_of_graph


def encode_view_nested(view: View) -> Bits:
    """Canonical self-contained code of a view: ``bin(B^1)`` at depth 1,
    otherwise Concat(bin(deg), Concat(bin(q_i), code(child_i)) ...).
    Exponential in depth — by design, this is the naive baseline."""
    if view.depth == 1:
        return encode_b1(view)
    parts = [encode_uint(view.degree)]
    for q, child in view.children:
        parts.append(concat_bits([encode_uint(q), encode_view_nested(child)]))
    return concat_bits(parts)


def naive_rank_advice(g: PortGraph, phi: Optional[int] = None) -> Bits:
    """Concat(bin(phi), Concat(sorted view codes), bin(rank-labeled BFS
    tree)).  Rank r (1-based, sorted ascending) plays the role of
    RetrieveLabel; the leader is the rank-1 node."""
    if phi is None:
        phi = election_index(g)
    views = views_of_graph(g, phi)
    codes = {v: encode_view_nested(views[v]) for v in g.nodes()}
    ordered = sorted(codes.values(), key=lambda bits: (len(bits), bits.as_str()))
    rank_of_code = {bits.as_str(): i + 1 for i, bits in enumerate(ordered)}
    labels = {v: rank_of_code[codes[v].as_str()] for v in g.nodes()}
    if sorted(labels.values()) != list(range(1, g.n + 1)):
        raise AdviceError("view codes are not distinct at depth phi")
    root = next(v for v in g.nodes() if labels[v] == 1)
    tree = canonical_bfs_tree(g, root, labels)
    return concat_bits(
        [encode_uint(phi), concat_bits(ordered), encode_tree(tree)]
    )


class NaiveRankAlgorithm:
    """Per-node algorithm for the naive advice."""

    def __init__(self):
        self._acc: Optional[ViewAccumulator] = None
        self._phi: Optional[int] = None
        self._ranks: Optional[Dict[str, int]] = None
        self._tree: Optional[LabeledRootedTree] = None

    def setup(self, ctx: NodeContext) -> None:
        if ctx.advice is None:
            raise AdviceError("naive-rank election requires advice")
        parts = decode_concat(ctx.advice)
        if len(parts) != 3:
            raise AdviceError("naive advice must have (phi, codes, tree)")
        self._phi = decode_uint(parts[0])
        codes = decode_concat(parts[1])
        self._ranks = {bits.as_str(): i + 1 for i, bits in enumerate(codes)}
        self._tree = decode_tree(parts[2])
        self._acc = ViewAccumulator(ctx.degree)

    def compose(self, ctx: NodeContext):
        return self._acc.outgoing()

    def deliver(self, ctx: NodeContext, inbox) -> None:
        self._acc.absorb(inbox)
        if ctx.has_output or self._acc.depth < self._phi:
            return
        my_code = encode_view_nested(self._acc.view).as_str()
        rank = self._ranks.get(my_code)
        if rank is None:
            raise AlgorithmError("own view code missing from the advice list")
        pairs = self._tree.path_to_root_ports(rank)
        ctx.output(tuple(x for pair in pairs for x in pair))


@dataclass
class NaiveRankRecord:
    n: int
    phi: int
    advice_bits: int
    election_time: int
    leader: int


def run_naive_rank(g: PortGraph, phi: Optional[int] = None) -> NaiveRankRecord:
    """Pipeline: naive advice -> simulate -> verify -> assert time phi."""
    if phi is None:
        phi = election_index(g)
    advice = naive_rank_advice(g, phi)
    result = run_sync(g, NaiveRankAlgorithm, advice=advice, max_rounds=phi + 1)
    outcome = verify_election(g, result.outputs)
    if result.election_time != phi:
        raise AlgorithmError(
            f"naive-rank election took {result.election_time} != phi = {phi}"
        )
    return NaiveRankRecord(
        n=g.n,
        phi=phi,
        advice_bits=len(advice),
        election_time=result.election_time,
        leader=outcome.leader,
    )
