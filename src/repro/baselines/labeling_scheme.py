"""The informative-labeling contrast: per-node advice trivializes election.

Section 1: "since the advice given to all nodes is the same, this
information does not increase the asymmetries of the network (unlike in
the case when different pieces of information could be given to different
nodes)".  This module makes the contrast executable: if the oracle may
give *different* strings to different nodes ("informative labeling
schemes"), it can simply hand every node its port-path to a chosen
leader — and election completes in **zero rounds** with
O(D log Δ) bits per node, no symmetry required (even on a bare ring!).

This is not an algorithm of the paper; it is the reference point that
makes the paper's model choice meaningful, and the benches quote it.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import Dict, Optional

from repro.coding.bitstring import Bits
from repro.coding.concat import concat_bits, decode_concat
from repro.coding.integers import decode_uint, encode_uint
from repro.core.verify import verify_election
from repro.errors import AdviceError, AlgorithmError
from repro.graphs.port_graph import PortGraph
from repro.sim.local_model import NodeContext, run_sync


def labeling_advice_map(g: PortGraph, leader: int = 0) -> Dict[int, Bits]:
    """Per-node advice: each node's port-pair path to ``leader`` (shortest,
    BFS-canonical), encoded as Concat(bin(p1), bin(q1), ...)."""
    if not (0 <= leader < g.n):
        raise AdviceError(f"leader {leader} is not a node")
    # BFS tree toward the leader: parent pointers with port pairs
    parent: Dict[int, Optional[int]] = {leader: None}
    parent_ports: Dict[int, tuple] = {}
    queue = deque([leader])
    while queue:
        u = queue.popleft()
        for p in range(g.degree(u)):
            v, q = g.neighbor(u, p)
            if v not in parent:
                parent[v] = u
                # the child walks: leaves v through q, arrives at u via p
                parent_ports[v] = (q, p)
                queue.append(v)
    advice: Dict[int, Bits] = {}
    for v in g.nodes():
        pairs = []
        node = v
        while parent[node] is not None:
            pairs.extend(parent_ports[node])
            node = parent[node]
        advice[v] = concat_bits([encode_uint(x) for x in pairs])
    return advice


class LabelingSchemeAlgorithm:
    """Output the decoded path immediately: election time 0."""

    def setup(self, ctx: NodeContext) -> None:
        if ctx.advice is None:
            raise AdviceError("labeling-scheme election requires per-node advice")
        fields = decode_concat(ctx.advice)
        if len(fields) % 2 != 0:
            raise AdviceError("path advice must hold port pairs")
        ctx.output(tuple(decode_uint(f) for f in fields))

    def compose(self, ctx: NodeContext):
        return None

    def deliver(self, ctx: NodeContext, inbox) -> None:
        pass


@dataclass
class LabelingSchemeRecord:
    n: int
    election_time: int
    leader: int
    max_advice_bits: int
    total_advice_bits: int


def run_labeling_scheme(g: PortGraph, leader: int = 0) -> LabelingSchemeRecord:
    """Pipeline: per-node path advice -> zero-round election -> verify.

    Works on *any* connected graph, including infeasible ones — the whole
    point of the contrast.
    """
    advice_map = labeling_advice_map(g, leader)
    result = run_sync(
        g, LabelingSchemeAlgorithm, advice_map=advice_map, max_rounds=1
    )
    outcome = verify_election(g, result.outputs)
    if outcome.leader != leader:
        raise AlgorithmError(
            f"labeling scheme elected {outcome.leader}, wanted {leader}"
        )
    if result.election_time != 0:
        raise AlgorithmError("labeling-scheme election must take zero rounds")
    sizes = [len(bits) for bits in advice_map.values()]
    return LabelingSchemeRecord(
        n=g.n,
        election_time=result.election_time,
        leader=outcome.leader,
        max_advice_bits=max(sizes),
        total_advice_bits=sum(sizes),
    )
