"""Full-map advice: elect in time phi with Theta(m log n) bits.

The oracle ships ``Concat(bin(phi), bits(map))``.  A node acquires
B^phi(u) in phi rounds, recomputes the depth-phi views of every map node,
locates itself (views are distinct at depth phi), and outputs the
lexicographically-smallest shortest path to the map node with the
canonically smallest view — the procedure in Proposition 2.1's proof.

This is the baseline ComputeAdvice beats: same minimum election time,
advice a factor ~average-degree larger (measured by the ablation bench).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from repro.coding.bitstring import Bits
from repro.coding.concat import concat_bits, decode_concat
from repro.coding.integers import decode_uint, encode_uint
from repro.core.verify import verify_election
from repro.errors import AdviceError, AlgorithmError
from repro.graphs.port_graph import PortGraph
from repro.graphs.serialization import from_json, to_json
from repro.sim.com import ViewAccumulator
from repro.sim.local_model import NodeContext, run_sync
from repro.views.election_index import election_index
from repro.views.order import view_min
from repro.views.view import views_of_graph


def _text_to_bits(text: str) -> Bits:
    return Bits("".join(format(b, "08b") for b in text.encode("utf-8")))


def _bits_to_text(bits: Bits) -> str:
    s = bits.as_str()
    if len(s) % 8 != 0:
        raise AdviceError("map payload is not byte-aligned")
    data = bytes(int(s[i : i + 8], 2) for i in range(0, len(s), 8))
    return data.decode("utf-8")


def map_advice(g: PortGraph, phi: Optional[int] = None) -> Bits:
    """Concat(bin(phi), utf8-bits of the canonical JSON of the map)."""
    if phi is None:
        phi = election_index(g)
    return concat_bits([encode_uint(phi), _text_to_bits(to_json(g))])


class MapBasedAlgorithm:
    """Per-node algorithm: decode the map, COM for phi rounds, locate
    yourself, walk to the canonical leader."""

    def __init__(self):
        self._acc: Optional[ViewAccumulator] = None
        self._phi: Optional[int] = None
        self._map: Optional[PortGraph] = None

    def setup(self, ctx: NodeContext) -> None:
        if ctx.advice is None:
            raise AdviceError("map-based election requires the map advice")
        parts = decode_concat(ctx.advice)
        if len(parts) != 2:
            raise AdviceError("map advice must be Concat(bin(phi), map)")
        self._phi = decode_uint(parts[0])
        self._map = from_json(_bits_to_text(parts[1]))
        self._acc = ViewAccumulator(ctx.degree)

    def compose(self, ctx: NodeContext):
        return self._acc.outgoing()

    def deliver(self, ctx: NodeContext, inbox) -> None:
        self._acc.absorb(inbox)
        if ctx.has_output or self._acc.depth < self._phi:
            return
        g = self._map
        map_views = views_of_graph(g, self._phi)
        matches = [v for v in g.nodes() if map_views[v] is self._acc.view]
        if len(matches) != 1:
            raise AlgorithmError(
                f"self-localization found {len(matches)} map nodes with my "
                "view; the map or phi in the advice is wrong"
            )
        me = matches[0]
        leader_view = view_min(map_views)
        leader = next(v for v in g.nodes() if map_views[v] is leader_view)
        ctx.output(_lex_shortest_port_path(g, me, leader))


def _lex_shortest_port_path(g: PortGraph, start: int, goal: int) -> Tuple[int, ...]:
    """Lexicographically smallest among shortest port-pair paths."""
    best: Dict[int, Tuple[int, ...]] = {start: ()}
    frontier = {start: ()}
    while frontier:
        if goal in frontier:
            return frontier[goal]
        nxt: Dict[int, Tuple[int, ...]] = {}
        for u, path in frontier.items():
            for p in range(g.degree(u)):
                v, q = g.neighbor(u, p)
                if v in best:
                    continue
                candidate = path + (p, q)
                if v not in nxt or candidate < nxt[v]:
                    nxt[v] = candidate
        best.update(nxt)
        frontier = nxt
    raise AlgorithmError(f"no path from {start} to {goal} in the map")


@dataclass
class MapBasedRecord:
    n: int
    phi: int
    advice_bits: int
    election_time: int
    leader: int


def run_map_based(g: PortGraph, phi: Optional[int] = None) -> MapBasedRecord:
    """Pipeline: map advice -> simulate -> verify -> assert time == phi."""
    if phi is None:
        phi = election_index(g)
    advice = map_advice(g, phi)
    result = run_sync(g, MapBasedAlgorithm, advice=advice, max_rounds=phi + 1)
    outcome = verify_election(g, result.outputs)
    if result.election_time != phi:
        raise AlgorithmError(
            f"map-based election took {result.election_time} != phi = {phi}"
        )
    return MapBasedRecord(
        n=g.n,
        phi=phi,
        advice_bits=len(advice),
        election_time=result.election_time,
        leader=outcome.leader,
    )
