"""Baselines the paper compares against (explicitly or implicitly).

* :mod:`map_based` — the classical knowledge regime ([44]/Proposition 2.1's
  proof): give every node the full map; elect in minimum time phi with
  Theta(m log n)-bit advice.  The contrast against ComputeAdvice's
  O(n log n) bits is the point of the A1 trie machinery.
* :mod:`naive_rank` — the strawman of Section 3: label nodes by the rank
  of their view encodings and ship the labeled BFS tree; the labels are
  Ω(n log n) bits *each*, so the advice balloons to Ω(n^2 log n) already
  for phi = 1.
* :mod:`tree_no_advice` — the [25] contrast the paper highlights: in
  feasible *trees*, time D needs no advice at all, because every node can
  fold its view back into the exact map of the tree.

Every baseline (and the core algorithms) is also registered behind the
uniform runner protocol of :mod:`repro.conformance.algorithms` — an
``AlgorithmSpec`` describing applicability, advice construction, round
budget and leader rule — which is how the conformance oracle drives all
of them through every simulation model interchangeably.
"""

from repro.baselines.map_based import (
    MapBasedAlgorithm,
    map_advice,
    run_map_based,
)
from repro.baselines.naive_rank import (
    NaiveRankAlgorithm,
    naive_rank_advice,
    run_naive_rank,
)
from repro.baselines.tree_no_advice import TreeNoAdviceAlgorithm, run_tree_no_advice
from repro.baselines.labeling_scheme import (
    LabelingSchemeAlgorithm,
    labeling_advice_map,
    run_labeling_scheme,
)

__all__ = [
    "LabelingSchemeAlgorithm",
    "labeling_advice_map",
    "run_labeling_scheme",
    "MapBasedAlgorithm",
    "map_advice",
    "run_map_based",
    "NaiveRankAlgorithm",
    "naive_rank_advice",
    "run_naive_rank",
    "TreeNoAdviceAlgorithm",
    "run_tree_no_advice",
]
