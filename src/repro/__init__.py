"""repro — reproduction of *Impact of Knowledge on Election Time in
Anonymous Networks* (Dieudonné & Pelc, SPAA 2017; arXiv:1604.05023).

Deterministic leader election with advice in anonymous port-numbered
networks:

* :mod:`repro.graphs` — port-numbered graph substrate and generators;
* :mod:`repro.views` — augmented truncated views, election index phi;
* :mod:`repro.sim` — LOCAL-model simulator (sync + async);
* :mod:`repro.coding` — the advice binary codecs;
* :mod:`repro.core` — ComputeAdvice/Elect (Theorem 3.1), Generic and
  Election1..4 (Theorem 4.1), the D+phi remark, output verification;
* :mod:`repro.baselines` — full-map / naive-rank / tree-no-advice;
* :mod:`repro.lowerbounds` — every lower-bound family of Sections 3-4;
* :mod:`repro.analysis` — sweeps and table rendering for the benches.

Quickstart::

    from repro import cycle_with_leader_gadget, run_elect
    g = cycle_with_leader_gadget(8)     # a feasible anonymous network
    record = run_elect(g)               # oracle + simulation + verification
    print(record.phi, record.advice_bits, record.leader)
"""

from repro.errors import (
    AdviceError,
    AlgorithmError,
    CodingError,
    ElectionFailure,
    GraphError,
    InfeasibleGraphError,
    ReproError,
    SimulationError,
)
from repro.graphs import (
    PortGraph,
    PortGraphBuilder,
    clique,
    cycle_with_leader_gadget,
    hypercube,
    lollipop,
    path_graph,
    random_connected_graph,
    random_regular,
    ring,
    star,
)
from repro.views import (
    View,
    election_index,
    is_feasible,
    truncate_view,
    views_of_graph,
)
from repro.core import (
    compute_advice,
    run_elect,
    run_election_milestone,
    run_generic,
    run_known_d_phi,
    verify_election,
)
from repro.sim import AsyncEngine, SyncEngine, run_async, run_sync

__version__ = "1.0.0"

__all__ = [
    "ReproError",
    "GraphError",
    "InfeasibleGraphError",
    "CodingError",
    "AdviceError",
    "SimulationError",
    "AlgorithmError",
    "ElectionFailure",
    "PortGraph",
    "PortGraphBuilder",
    "ring",
    "path_graph",
    "clique",
    "star",
    "hypercube",
    "lollipop",
    "cycle_with_leader_gadget",
    "random_connected_graph",
    "random_regular",
    "View",
    "views_of_graph",
    "truncate_view",
    "election_index",
    "is_feasible",
    "compute_advice",
    "run_elect",
    "run_generic",
    "run_election_milestone",
    "run_known_d_phi",
    "verify_election",
    "SyncEngine",
    "AsyncEngine",
    "run_sync",
    "run_async",
    "__version__",
]
