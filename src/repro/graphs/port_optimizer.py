"""Port-numbering engineering: minimizing the election index.

The election index — hence the minimum election time — depends not only
on the topology but on the *port assignment*: the same graph can have
phi = 1 under one numbering and be infeasible under another (a ring is
hopeless with the rotation-invariant numbering, electable in 1 round
with a well-chosen one... if the topology allows any at all).

This module treats the port assignment as a design variable, a natural
"deployment-time knob" the paper's model exposes but does not explore:

* :func:`randomize_ports` — re-draw all port numbers (seeded);
* :func:`optimize_ports` — random-restart search for an assignment with
  the smallest election index (ties broken by advice size);
* :func:`port_sensitivity` — the distribution of phi over random
  assignments, quantifying how lucky the canonical numbering is.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from repro.errors import InfeasibleGraphError
from repro.graphs.port_graph import PortGraph, PortGraphBuilder
from repro.util.rng import RngLike, make_rng
from repro.views.election_index import election_index


def randomize_ports(g: PortGraph, seed: RngLike = 0) -> PortGraph:
    """The same topology with a fresh random legal port assignment."""
    rng = make_rng(seed)
    free: Dict[int, List[int]] = {}
    for v in g.nodes():
        ports = list(range(g.degree(v)))
        rng.shuffle(ports)
        free[v] = ports
    edges = [(u, v) for (u, _, v, _) in g.edges()]
    rng.shuffle(edges)
    b = PortGraphBuilder(g.n)
    for u, v in edges:
        b.add_edge(u, free[u].pop(), v, free[v].pop())
    return b.build()


@dataclass
class PortOptimizationResult:
    """Outcome of a port-assignment search."""

    graph: PortGraph
    phi: Optional[int]  # None if every tried assignment was infeasible
    tried: int
    feasible_count: int

    @property
    def feasible(self) -> bool:
        return self.phi is not None


def optimize_ports(
    g: PortGraph, restarts: int = 20, seed: RngLike = 0
) -> PortOptimizationResult:
    """Random-restart search for the port assignment minimizing phi.

    The original assignment participates as candidate 0.  Returns the best
    feasible assignment found (smallest phi); if none is feasible —
    possible for genuinely symmetric topologies where *no* assignment
    works, and also just bad luck at low ``restarts`` — ``phi`` is None
    and ``graph`` is the original.
    """
    rng = make_rng(seed)
    best_graph: Optional[PortGraph] = None
    best_phi: Optional[int] = None
    feasible_count = 0
    candidates = [g] + [
        randomize_ports(g, rng) for _ in range(max(0, restarts))
    ]
    for candidate in candidates:
        try:
            phi = election_index(candidate)
        except InfeasibleGraphError:
            continue
        feasible_count += 1
        if best_phi is None or phi < best_phi:
            best_graph, best_phi = candidate, phi
    return PortOptimizationResult(
        graph=best_graph if best_graph is not None else g,
        phi=best_phi,
        tried=len(candidates),
        feasible_count=feasible_count,
    )


def port_sensitivity(
    g: PortGraph, samples: int = 30, seed: RngLike = 0
) -> Dict[Optional[int], int]:
    """Histogram {phi: count} over random assignments (None = infeasible):
    how much of the election time is topology and how much is numbering."""
    rng = make_rng(seed)
    histogram: Dict[Optional[int], int] = {}
    for _ in range(samples):
        candidate = randomize_ports(g, rng)
        try:
            phi: Optional[int] = election_index(candidate)
        except InfeasibleGraphError:
            phi = None
        histogram[phi] = histogram.get(phi, 0) + 1
    return histogram
