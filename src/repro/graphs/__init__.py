"""Port-numbered anonymous graph substrate.

The paper's model: a simple undirected connected n-node graph, nodes have no
identifiers, but at each node ``v`` the incident edges carry distinct *port
numbers* ``0..deg(v)-1``, locally and independently at each endpoint.

:class:`PortGraph` is the frozen runtime representation; it is built through
:class:`PortGraphBuilder`, which validates the port-numbering axioms.  The
generators produce the standard topologies used by the experiments, and
:func:`are_port_isomorphic` decides port-preserving isomorphism (the right
notion of "same network" for anonymous algorithms).
"""

from repro.graphs.port_graph import PortGraph, PortGraphBuilder
from repro.graphs.canonical import (
    CanonicalForm,
    canonical_form,
    canonical_graph,
    graph_fingerprint,
    relabel_nodes,
    rooted_certificate,
)
from repro.graphs.csr import CSRAdjacency, csr_of
from repro.graphs.generators import (
    broom,
    caterpillar,
    circulant,
    clique,
    complete_binary_tree,
    complete_bipartite,
    cycle_with_leader_gadget,
    grid_torus,
    hypercube,
    lift,
    lollipop,
    path_graph,
    random_connected_graph,
    random_regular,
    random_tree,
    ring,
    star,
    wheel,
)
from repro.graphs.isomorphism import are_port_isomorphic, port_automorphism_exists
from repro.graphs.port_optimizer import (
    optimize_ports,
    port_sensitivity,
    randomize_ports,
)
from repro.graphs.serialization import (
    from_dict,
    from_json,
    from_networkx,
    from_payload,
    is_graph_envelope,
    to_dict,
    to_json,
    to_networkx,
)

__all__ = [
    "PortGraph",
    "PortGraphBuilder",
    "CanonicalForm",
    "canonical_form",
    "canonical_graph",
    "graph_fingerprint",
    "relabel_nodes",
    "rooted_certificate",
    "CSRAdjacency",
    "csr_of",
    "broom",
    "caterpillar",
    "circulant",
    "complete_binary_tree",
    "wheel",
    "clique",
    "complete_bipartite",
    "cycle_with_leader_gadget",
    "grid_torus",
    "hypercube",
    "lift",
    "lollipop",
    "path_graph",
    "random_connected_graph",
    "random_regular",
    "random_tree",
    "ring",
    "star",
    "are_port_isomorphic",
    "port_automorphism_exists",
    "optimize_ports",
    "port_sensitivity",
    "randomize_ports",
    "from_dict",
    "from_json",
    "from_networkx",
    "from_payload",
    "is_graph_envelope",
    "to_dict",
    "to_json",
    "to_networkx",
]
