"""The frozen port-numbered graph and its builder.

Design notes
------------
* Nodes are dense integers ``0..n-1``.  Anonymity is a property of the
  *algorithms* (they never see these integers), not of the data structure:
  the oracle, the verifier and the test suite all need stable handles.
* Adjacency is stored as, for each node ``u``, a tuple indexed by local port
  ``p`` holding ``(v, q)``: the neighbor reached through port ``p`` and the
  port number of the same edge at ``v``.  This makes the two primitives of
  the model O(1): "follow port p" and "on which port did this message
  arrive".
* The structure is immutable after :meth:`PortGraphBuilder.build`, so graphs
  can be shared freely between the oracle, the simulator and the analyses.
"""

from __future__ import annotations

from collections import deque
from typing import Dict, Iterator, List, Optional, Sequence, Tuple

from repro.errors import (
    FrozenGraphError,
    GraphStructureError,
    PortNumberingError,
)

Endpoint = Tuple[int, int]  # (node, port)


class PortGraph:
    """A simple undirected connected graph with local port numbers.

    Instances must be created through :class:`PortGraphBuilder` (or the
    generator/serialization helpers), which enforce the model's axioms:

    * simple: no self-loops, no parallel edges;
    * at every node of degree ``d``, the incident edges carry the distinct
      port numbers ``{0, ..., d-1}``;
    * port numbers are local: the two endpoints of an edge carry independent
      numbers.

    Connectivity is required by the paper's model and checked by default,
    but the builder can skip the check for intermediate constructions.
    """

    __slots__ = (
        "_adj",
        "_num_edges",
        "_diameter_cache",
        "_ecc_cache",
        "_csr_cache",
        "_canon_cache",
    )

    def __init__(self, adj: Sequence[Sequence[Endpoint]], _token: object = None):
        if _token is not _BUILD_TOKEN:
            raise TypeError(
                "PortGraph cannot be instantiated directly; use PortGraphBuilder"
            )
        self._adj: Tuple[Tuple[Endpoint, ...], ...] = tuple(
            tuple(row) for row in adj
        )
        self._num_edges = sum(len(row) for row in self._adj) // 2
        self._diameter_cache: Optional[int] = None
        self._ecc_cache: Dict[int, int] = {}
        # lazily derived flat-array view (repro.graphs.csr.csr_of) and
        # canonical form (repro.graphs.canonical.canonical_form); the
        # graph is frozen, so neither derived structure can go stale
        self._csr_cache: Optional[object] = None
        self._canon_cache: Optional[object] = None

    # ------------------------------------------------------------------
    # basic accessors
    # ------------------------------------------------------------------
    @property
    def n(self) -> int:
        """Number of nodes."""
        return len(self._adj)

    @property
    def num_edges(self) -> int:
        """Number of undirected edges."""
        return self._num_edges

    def nodes(self) -> range:
        """Iterate node identifiers ``0..n-1``."""
        return range(self.n)

    def degree(self, u: int) -> int:
        """Degree of node ``u``."""
        return len(self._adj[u])

    def max_degree(self) -> int:
        """Maximum degree over all nodes."""
        return max(len(row) for row in self._adj)

    def degree_sequence(self) -> Tuple[int, ...]:
        """Sorted (descending) degree sequence."""
        return tuple(sorted((len(row) for row in self._adj), reverse=True))

    def neighbor(self, u: int, port: int) -> Endpoint:
        """Return ``(v, q)``: the node reached from ``u`` through local port
        ``port`` and the port number of that edge at ``v``."""
        try:
            return self._adj[u][port]
        except IndexError:
            raise PortNumberingError(
                f"node {u} has degree {self.degree(u)}; port {port} does not exist"
            ) from None

    def ports(self, u: int) -> Tuple[Endpoint, ...]:
        """All ``(neighbor, remote_port)`` pairs at ``u``, indexed by local
        port (position ``p`` in the tuple is local port ``p``)."""
        return self._adj[u]

    def port_to(self, u: int, v: int) -> int:
        """The local port at ``u`` of the edge ``{u, v}``.

        Raises :class:`GraphStructureError` if ``u`` and ``v`` are not
        adjacent.
        """
        for p, (w, _) in enumerate(self._adj[u]):
            if w == v:
                return p
        raise GraphStructureError(f"nodes {u} and {v} are not adjacent")

    def has_edge(self, u: int, v: int) -> bool:
        """Whether ``{u, v}`` is an edge."""
        return any(w == v for w, _ in self._adj[u])

    def edges(self) -> Iterator[Tuple[int, int, int, int]]:
        """Iterate edges as ``(u, p, v, q)`` with ``u < v``: ``p`` is the
        port at ``u``, ``q`` the port at ``v``."""
        for u, row in enumerate(self._adj):
            for p, (v, q) in enumerate(row):
                if u < v:
                    yield (u, p, v, q)

    # ------------------------------------------------------------------
    # distances
    # ------------------------------------------------------------------
    def bfs_distances(self, source: int) -> List[int]:
        """Distances from ``source`` to every node (``-1`` if unreachable)."""
        dist = [-1] * self.n
        dist[source] = 0
        queue = deque([source])
        while queue:
            u = queue.popleft()
            du = dist[u]
            for v, _ in self._adj[u]:
                if dist[v] < 0:
                    dist[v] = du + 1
                    queue.append(v)
        return dist

    def distance(self, u: int, v: int) -> int:
        """Distance between ``u`` and ``v`` (``-1`` if disconnected)."""
        return self.bfs_distances(u)[v]

    def eccentricity(self, u: int) -> int:
        """Maximum distance from ``u`` to any node."""
        if u not in self._ecc_cache:
            dist = self.bfs_distances(u)
            if min(dist) < 0:
                raise GraphStructureError(
                    "eccentricity undefined: graph is disconnected"
                )
            self._ecc_cache[u] = max(dist)
        return self._ecc_cache[u]

    def diameter(self) -> int:
        """Graph diameter (max eccentricity); O(n * m) by repeated BFS."""
        if self._diameter_cache is None:
            self._diameter_cache = max(
                self.eccentricity(u) for u in self.nodes()
            )
        return self._diameter_cache

    def is_connected(self) -> bool:
        """Whether the graph is connected (vacuously true for n <= 1)."""
        if self.n <= 1:
            return True
        return min(self.bfs_distances(0)) >= 0

    # ------------------------------------------------------------------
    # path utilities (used by the election verifier)
    # ------------------------------------------------------------------
    def follow_port_path(
        self, start: int, port_pairs: Sequence[Tuple[int, int]]
    ) -> List[int]:
        """Follow a path coded as the paper's output format.

        ``port_pairs`` is ``[(p1, q1), ..., (pk, qk)]``: the i-th edge is
        taken through local port ``p_i`` at the current node and must carry
        port ``q_i`` at the other end.  Returns the list of visited nodes
        (length ``k+1``).  Raises :class:`GraphStructureError` if any ``q_i``
        does not match the actual remote port (the coded path does not exist
        in this graph).
        """
        nodes = [start]
        current = start
        for i, (p, q) in enumerate(port_pairs):
            v, q_actual = self.neighbor(current, p)
            if q_actual != q:
                raise GraphStructureError(
                    f"port path invalid at step {i}: edge from node {current} "
                    f"port {p} carries remote port {q_actual}, expected {q}"
                )
            current = v
            nodes.append(current)
        return nodes

    # ------------------------------------------------------------------
    # dunder
    # ------------------------------------------------------------------
    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"PortGraph(n={self.n}, m={self.num_edges})"

    def __eq__(self, other: object) -> bool:
        """Structural equality *including node identities and ports* (this is
        labelled equality, not anonymity-respecting isomorphism; see
        :func:`repro.graphs.are_port_isomorphic` for the latter)."""
        if not isinstance(other, PortGraph):
            return NotImplemented
        return self._adj == other._adj

    def __hash__(self) -> int:
        return hash(self._adj)


_BUILD_TOKEN = object()


class PortGraphBuilder:
    """Incremental, validating constructor for :class:`PortGraph`.

    Typical use::

        b = PortGraphBuilder()
        u, v, w = b.add_nodes(3)
        b.add_edge(u, 0, v, 0)      # explicit ports
        b.add_edge_auto(v, w)       # smallest free port at each endpoint
        g = b.build()

    The builder also supports :meth:`copy_in`, which imports another
    port graph as a disjoint block and returns the node translation —
    the workhorse of the paper's composite lower-bound constructions
    (rings of cliques, necklaces, lock merges, stretches).
    """

    def __init__(self, num_nodes: int = 0):
        # per node: dict port -> (neighbor, remote_port)
        self._ports: List[Dict[int, Endpoint]] = [dict() for _ in range(num_nodes)]
        # per node: lower bound on the smallest unassigned port.  Ports are
        # only ever added, so the pointer advances monotonically and
        # next_free_port is amortized O(1) per insertion instead of O(d) —
        # O(m) total for generator-built graphs instead of O(sum d^2).
        self._free_hint: List[int] = [0] * num_nodes
        self._edge_set: set = set()
        self._built = False

    # ------------------------------------------------------------------
    @property
    def num_nodes(self) -> int:
        return len(self._ports)

    def add_node(self) -> int:
        """Append one node; returns its id."""
        self._check_mutable()
        self._ports.append(dict())
        self._free_hint.append(0)
        return len(self._ports) - 1

    def add_nodes(self, k: int) -> List[int]:
        """Append ``k`` nodes; returns their ids."""
        self._check_mutable()
        start = len(self._ports)
        self._ports.extend(dict() for _ in range(k))
        self._free_hint.extend([0] * k)
        return list(range(start, start + k))

    def degree(self, u: int) -> int:
        """Current number of ports assigned at ``u``."""
        return len(self._ports[u])

    def used_ports(self, u: int) -> List[int]:
        """Sorted list of port numbers already assigned at ``u``."""
        return sorted(self._ports[u])

    def has_edge(self, u: int, v: int) -> bool:
        key = (u, v) if u < v else (v, u)
        return key in self._edge_set

    def next_free_port(self, u: int) -> int:
        """Smallest port number not yet assigned at ``u`` (amortized O(1):
        the scan resumes from a per-node hint that only moves forward)."""
        used = self._ports[u]
        p = self._free_hint[u]
        while p in used:
            p += 1
        self._free_hint[u] = p
        return p

    # ------------------------------------------------------------------
    def add_edge(self, u: int, port_u: int, v: int, port_v: int) -> None:
        """Add edge ``{u, v}`` with explicit ports at both endpoints."""
        self._check_mutable()
        self._check_node(u)
        self._check_node(v)
        if u == v:
            raise GraphStructureError(f"self-loop at node {u} is not allowed")
        key = (u, v) if u < v else (v, u)
        if key in self._edge_set:
            raise GraphStructureError(
                f"parallel edge {{{u}, {v}}}: the graph must be simple"
            )
        if port_u < 0 or port_v < 0:
            raise PortNumberingError(
                f"port numbers must be non-negative, got {port_u}, {port_v}"
            )
        if port_u in self._ports[u]:
            raise PortNumberingError(
                f"port {port_u} at node {u} is already assigned"
            )
        if port_v in self._ports[v]:
            raise PortNumberingError(
                f"port {port_v} at node {v} is already assigned"
            )
        self._ports[u][port_u] = (v, port_v)
        self._ports[v][port_v] = (u, port_u)
        self._edge_set.add(key)

    def add_edge_auto(self, u: int, v: int) -> Tuple[int, int]:
        """Add edge ``{u, v}`` using the smallest free port at each endpoint;
        returns the assigned ``(port_u, port_v)``."""
        pu = self.next_free_port(u)
        pv = self.next_free_port(v)
        self.add_edge(u, pu, v, pv)
        return pu, pv

    def copy_in(self, other: "PortGraph") -> List[int]:
        """Import ``other`` as a disjoint block; returns the translation list
        (``other``'s node ``i`` becomes ``translation[i]`` here).  All port
        numbers are preserved verbatim."""
        self._check_mutable()
        translation = self.add_nodes(other.n)
        for (a, p, b, q) in other.edges():
            self.add_edge(translation[a], p, translation[b], q)
        return translation

    # ------------------------------------------------------------------
    def build(
        self, require_connected: bool = True, min_nodes: int = 1
    ) -> PortGraph:
        """Validate and freeze into a :class:`PortGraph`.

        * ports at every node must be contiguous ``0..deg-1``;
        * the graph must have at least ``min_nodes`` nodes (the paper's model
          assumes ``n >= 3``; pass ``min_nodes=3`` to enforce that);
        * connectivity is checked unless ``require_connected=False``.
        """
        self._check_mutable()
        if len(self._ports) < min_nodes:
            raise GraphStructureError(
                f"graph has {len(self._ports)} nodes, fewer than the required "
                f"{min_nodes}"
            )
        adj: List[List[Endpoint]] = []
        for u, port_map in enumerate(self._ports):
            d = len(port_map)
            row: List[Endpoint] = []
            for p in range(d):
                if p not in port_map:
                    raise PortNumberingError(
                        f"node {u} has degree {d} but port {p} is unassigned "
                        f"(assigned ports: {sorted(port_map)}); ports must be "
                        f"exactly 0..{d - 1}"
                    )
                row.append(port_map[p])
            adj.append(row)
        graph = PortGraph(adj, _token=_BUILD_TOKEN)
        if require_connected and not graph.is_connected():
            raise GraphStructureError("graph is not connected")
        self._built = True
        return graph

    # ------------------------------------------------------------------
    def _check_mutable(self) -> None:
        if self._built:
            raise FrozenGraphError(
                "builder has already produced a graph and is frozen"
            )

    def _check_node(self, u: int) -> None:
        if not (0 <= u < len(self._ports)):
            raise GraphStructureError(
                f"node {u} does not exist (builder has {len(self._ports)} nodes)"
            )
