"""Canonical forms of port-numbered graphs: certificates and fingerprints.

Two port-numbered graphs are "the same network" for every anonymous
algorithm iff they are port-preservingly isomorphic
(:mod:`repro.graphs.isomorphism`).  This module produces a **certificate**
of that equivalence class: :func:`canonical_form` returns bytes such that

    ``canonical_form(g1) == canonical_form(g2)``
    iff ``g1`` and ``g2`` are port-isomorphic,

and :func:`graph_fingerprint` is its sha256 — the content-address under
which the query service (:mod:`repro.service`) deduplicates isomorphic
requests.

The algorithm is individualization-refinement collapsed to its port-graph
special case.  In a connected port-numbered graph, *individualizing a
single node makes the refinement discrete in one sweep*: starting from a
fixed root, the breadth-first traversal that expands local ports in order
``0..d-1`` visits nodes in an order determined entirely by the port
structure, so the root alone induces a complete canonical relabeling
(a port-isomorphism is determined by the image of one node).  The
certificate is therefore

    ``min over candidate roots r of encode(relabel(g, bfs_order(r)))``

under the lexicographic order of the flattened adjacency encoding.  The
refinement layer (:mod:`repro.views.refinement`) supplies the pruning:
the encoding's lexicographic prefix is exactly the level-1 refinement key
``(degree(r), remote ports of r)`` — the static half that
:mod:`repro.graphs.csr` folds into ``port_keys`` — so only nodes of the
lexicographically minimal level-1 class can win, and every other class is
skipped without running its BFS.  On feasible graphs the stable partition
is discrete and the candidate class is typically tiny; the worst case is
a vertex-transitive graph (every node is a candidate), costing
``O(n * m)`` — the price any certificate scheme pays for full symmetry.

:func:`rooted_certificate` is the same encoding *without* the min over
roots: it canonicalizes the pair ``(g, r)``, so

    ``rooted_certificate(g, a) == rooted_certificate(g, b)``
    iff some port-preserving automorphism of ``g`` maps ``a`` to ``b``

— an exact O(m) replacement for the anchored VF2 search in the orbit
check of :func:`repro.core.verify.leaders_equivalent` (parity with VF2 is
locked in by ``tests/test_graphs_canonical.py``).

Certificate bytes are the canonical JSON of the relabeled graph
(:func:`repro.graphs.serialization.to_dict` layout), so a certificate is
also a *constructive* witness: :func:`canonical_graph` rebuilds the
canonical representative, and equal certificates yield an explicit
isomorphism through the two relabelings (used by
:func:`repro.graphs.isomorphism.port_isomorphism` to bypass VF2).
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

from repro.errors import GraphError
from repro.graphs.csr import csr_of
from repro.graphs.port_graph import PortGraph, PortGraphBuilder


@dataclass(frozen=True)
class CanonicalForm:
    """The canonical form of one port graph.

    Attributes
    ----------
    certificate:
        Canonical JSON bytes of the relabeled graph — equal across all
        port-isomorphic graphs, different otherwise.
    fingerprint:
        ``sha256(certificate)`` hex digest: the content address.
    to_canonical:
        The winning relabeling: node ``u`` of the original graph is node
        ``to_canonical[u]`` of the canonical graph.
    """

    certificate: bytes
    fingerprint: str
    to_canonical: Tuple[int, ...]


def _bfs_labels(csr, root: int) -> List[int]:
    """The port-deterministic BFS relabeling from ``root``: FIFO over
    discovery order, neighbors expanded in local port order.  Returns
    ``labels`` with ``labels[u]`` the new id of node ``u`` (root -> 0)."""
    labels = [-1] * csr.n
    labels[root] = 0
    order = [root]
    nbrs = csr.neighbor_tuples
    next_label = 1
    for u in order:  # `order` grows while iterating: the BFS queue
        for v in nbrs[u]:
            if labels[v] < 0:
                labels[v] = next_label
                next_label += 1
                order.append(v)
    if next_label != csr.n:
        raise GraphError(
            "canonical form requires a connected graph"
        )  # pragma: no cover - PortGraph construction enforces connectivity
    return labels


def _encoding(csr, labels: List[int]) -> List[int]:
    """Flatten the relabeled adjacency into one int list: for each new
    label ``0..n-1`` in order, ``degree`` then ``(label(nbr), remote
    port)`` per local port.  Lexicographic comparison of these lists is
    the total order the canonical root minimizes; its prefix is
    ``(degree(root), remote ports of root)`` because the root's neighbors
    receive labels ``1..d`` in port order."""
    by_label = [0] * csr.n
    for u, lab in enumerate(labels):
        by_label[lab] = u
    nbrs = csr.neighbor_tuples
    rports = csr.remote_port_tuples
    enc: List[int] = []
    for u in by_label:
        enc.append(csr.degrees[u])
        for v, q in zip(nbrs[u], rports[u]):
            enc.append(labels[v])
            enc.append(q)
    return enc


def _certificate_bytes(g: PortGraph, labels: Sequence[int]) -> bytes:
    """Serialize the relabeled graph in the canonical dict layout of
    :mod:`repro.graphs.serialization` (sorted ``[u, p, v, q]`` edge list,
    compact JSON) — byte-stable, and reconstructible via ``from_json``."""
    edges = []
    for (u, p, v, q) in g.edges():
        a, b = labels[u], labels[v]
        edges.append([a, p, b, q] if a < b else [b, q, a, p])
    edges.sort()
    return json.dumps(
        {"edges": edges, "n": g.n}, sort_keys=True, separators=(",", ":")
    ).encode("ascii")


def rooted_certificate(g: PortGraph, root: int) -> bytes:
    """Canonical bytes of the *rooted* graph ``(g, root)``.

    Exactness (both directions): the port-deterministic BFS relabeling
    from a root is mirrored step-by-step by any port-isomorphism, so
    ``rooted_certificate(g1, r1) == rooted_certificate(g2, r2)`` iff some
    port-preserving isomorphism ``g1 -> g2`` maps ``r1`` to ``r2``.  With
    ``g1 is g2`` this decides anchored automorphism (node-orbit
    membership) in O(m), replacing the VF2 search.
    """
    if not (0 <= root < g.n):
        raise GraphError(f"root {root} must be in 0..{g.n - 1}")
    return _certificate_bytes(g, _bfs_labels(csr_of(g), root))


def canonical_form(g: PortGraph) -> CanonicalForm:
    """The graph's canonical form, cached on the instance (PortGraphs are
    frozen, so the cache can never go stale)."""
    cached = g._canon_cache
    if cached is None:
        cached = _compute_canonical_form(g)
        g._canon_cache = cached
    return cached


def _compute_canonical_form(g: PortGraph) -> CanonicalForm:
    csr = csr_of(g)
    # Candidate roots: only the lexicographically minimal level-1
    # refinement class (degree, remote-port tuple) can produce the
    # minimal encoding, because that pair is the encoding's prefix.
    # Tuple comparison covers the degree: a shorter remote-port tuple
    # sorts by its (shorter) length first via the explicit degree field.
    best_key: Optional[Tuple[int, Tuple[int, ...]]] = None
    candidates: List[int] = []
    for v in range(csr.n):
        key = (csr.degrees[v], csr.remote_port_tuples[v])
        if best_key is None or key < best_key:
            best_key = key
            candidates = [v]
        elif key == best_key:
            candidates.append(v)
    best_enc: Optional[List[int]] = None
    best_labels: Optional[List[int]] = None
    for root in candidates:
        labels = _bfs_labels(csr, root)
        enc = _encoding(csr, labels)
        if best_enc is None or enc < best_enc:
            best_enc = enc
            best_labels = labels
    assert best_labels is not None  # n >= 1: there is always a candidate
    certificate = _certificate_bytes(g, best_labels)
    return CanonicalForm(
        certificate=certificate,
        fingerprint=hashlib.sha256(certificate).hexdigest(),
        to_canonical=tuple(best_labels),
    )


def graph_fingerprint(g: PortGraph) -> str:
    """sha256 hex digest of :func:`canonical_form` — equal exactly for
    port-isomorphic graphs (up to hash collision); the content address of
    the service's result cache."""
    return canonical_form(g).fingerprint


def canonical_graph(g: PortGraph) -> PortGraph:
    """The canonical representative of ``g``'s isomorphism class: the
    relabeled graph the certificate serializes.  Port-isomorphic inputs
    yield structurally *equal* (``==``) canonical graphs."""
    return relabel_nodes(g, canonical_form(g).to_canonical)


def relabel_nodes(g: PortGraph, perm: Sequence[int]) -> PortGraph:
    """The graph with node ``u`` renamed ``perm[u]`` (ports untouched) —
    a port-isomorphic copy by construction.  ``perm`` must be a
    permutation of ``0..n-1``."""
    if len(perm) != g.n or sorted(perm) != list(range(g.n)):
        raise GraphError(
            f"perm must be a permutation of 0..{g.n - 1}, got {list(perm)!r}"
        )
    b = PortGraphBuilder(g.n)
    for (u, p, v, q) in g.edges():
        b.add_edge(perm[u], p, perm[v], q)
    return b.build()
