"""Flat-array (CSR) adjacency: the kernel layer behind the hot loops.

:class:`PortGraph` stores adjacency as per-node tuples of ``(v, q)``
pairs — the right shape for the O(1) model primitives, but a slow one for
the library's kernels: partition refinement, view construction and the
engines' delivery loop all iterate *every* incident edge of *every* node
per level/round, and paying a method call plus tuple unpacking per edge
dominates their runtime.

:class:`CSRAdjacency` is the same graph flattened once into parallel
arrays, in the classic compressed-sparse-row layout:

* ``offsets[v] : offsets[v + 1]`` is node ``v``'s slice of the edge
  arrays (``offsets`` has length ``n + 1``);
* ``neighbors[i]`` / ``remote_ports[i]`` are the far endpoint of the
  ``i``-th directed edge: for ``i = offsets[v] + p``, the edge out of
  ``v`` through local port ``p`` reaches ``neighbors[i]``, arriving there
  on port ``remote_ports[i]``;
* ``degrees[v] == offsets[v + 1] - offsets[v]``;
* ``neighbor_tuples[v]`` / ``remote_port_tuples[v]`` are the per-node
  slices as tuples — the shape ``map``/``zip`` consume at C speed;
* ``port_keys[v]`` is a dense id of ``remote_port_tuples[v]``: two nodes
  share a port key iff they have the same degree *and* the same remote
  port on every local port — exactly the static part of the refinement
  signature, renumbered once instead of once per level.

The CSR view is derived lazily, **once per PortGraph**, and cached on the
instance (graphs are immutable, so the cache can never go stale).  Hot
paths call :func:`csr_of` and index flat arrays; everything user-facing
keeps going through the PortGraph API.
"""

from __future__ import annotations

from typing import List, Tuple

from repro.graphs.port_graph import PortGraph


class CSRAdjacency:
    """Immutable flat-array view of a :class:`PortGraph` (see module
    docstring for the layout).  Build through :func:`csr_of`, which
    caches one instance per graph."""

    __slots__ = (
        "n",
        "offsets",
        "neighbors",
        "remote_ports",
        "degrees",
        "neighbor_tuples",
        "remote_port_tuples",
        "port_keys",
        "num_port_keys",
    )

    n: int
    offsets: List[int]
    neighbors: List[int]
    remote_ports: List[int]
    degrees: List[int]
    neighbor_tuples: List[Tuple[int, ...]]
    remote_port_tuples: List[Tuple[int, ...]]
    port_keys: List[int]
    num_port_keys: int

    def __init__(self, g: PortGraph):
        adj = g._adj
        offsets: List[int] = [0]
        neighbors: List[int] = []
        remote_ports: List[int] = []
        degrees: List[int] = []
        neighbor_tuples: List[Tuple[int, ...]] = []
        remote_port_tuples: List[Tuple[int, ...]] = []
        for row in adj:
            if row:
                us, qs = zip(*row)
            else:  # isolated node (n == 1 graphs)
                us, qs = (), ()
            neighbor_tuples.append(us)
            remote_port_tuples.append(qs)
            neighbors.extend(us)
            remote_ports.extend(qs)
            degrees.append(len(row))
            offsets.append(len(neighbors))
        pk_of: dict = {}
        self.n = len(adj)
        self.offsets = offsets
        self.neighbors = neighbors
        self.remote_ports = remote_ports
        self.degrees = degrees
        self.neighbor_tuples = neighbor_tuples
        self.remote_port_tuples = remote_port_tuples
        # tuple equality covers length, so equal port keys imply equal
        # degree — the static half of every refinement signature
        self.port_keys = [
            pk_of.setdefault(t, len(pk_of)) for t in remote_port_tuples
        ]
        self.num_port_keys = len(pk_of)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"CSRAdjacency(n={self.n}, directed_edges={len(self.neighbors)})"


def csr_of(g: PortGraph) -> CSRAdjacency:
    """The graph's CSR view, derived on first use and cached on the
    instance (PortGraphs are frozen, so this is sound)."""
    csr = g._csr_cache
    if csr is None:
        csr = CSRAdjacency(g)
        g._csr_cache = csr
    return csr
