"""Standard topology generators.

Every generator returns a frozen :class:`~repro.graphs.PortGraph` with a
*deterministic* port assignment (documented per generator) so that test
results and benchmarks are reproducible.  Where the paper says "assign the
remaining port numbers arbitrarily", we use the smallest-free-port rule
unless a seed is given.

A note on symmetry: several of these topologies (rings, hypercubes, tori
with the canonical port numbering) are *infeasible* for leader election —
all nodes have identical views.  That is intentional: the test suite uses
them to exercise the feasibility detector.  Generators whose purpose is to
produce feasible inputs (e.g. :func:`cycle_with_leader_gadget`,
:func:`random_connected_graph`) document the feasibility they provide.
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Tuple

from repro.errors import GraphStructureError
from repro.graphs.port_graph import PortGraph, PortGraphBuilder
from repro.util.rng import RngLike, make_rng


def ring(n: int) -> PortGraph:
    """Cycle of ``n >= 3`` nodes, ports 0 (clockwise) and 1 (counter-clockwise)
    at every node.  Fully symmetric: infeasible for leader election."""
    if n < 3:
        raise GraphStructureError(f"ring requires n >= 3, got {n}")
    b = PortGraphBuilder(n)
    for i in range(n):
        b.add_edge(i, 0, (i + 1) % n, 1)
    return b.build()


def path_graph(n: int) -> PortGraph:
    """Path on ``n >= 2`` nodes.  At internal nodes, port 0 points away
    from node 0 ("forward"); endpoints have the single port 0.

    This directional numbering breaks the mirror symmetry, so every path
    with n >= 3 is feasible; n = 2 is the paper's canonical infeasible
    instance (the two nodes are indistinguishable).
    """
    if n < 2:
        raise GraphStructureError(f"path requires n >= 2, got {n}")
    b = PortGraphBuilder(n)
    for i in range(n - 1):
        pu = 0 if i == 0 else 1
        b.add_edge(i, pu, i + 1, 0)
    return b.build()


def clique(n: int, seed: RngLike = None) -> PortGraph:
    """Complete graph on ``n >= 2`` nodes.

    Default (``seed=None``): the canonical circulant port assignment — the
    edge ``{i, j}`` gets port ``(j - i - 1) mod n  ... `` reduced to the
    range ``0..n-2`` at ``i``.  This assignment is vertex-transitive, hence
    the default clique is *infeasible*.  With a seed, ports are a random
    legal assignment (usually feasible for n >= 4).
    """
    if n < 2:
        raise GraphStructureError(f"clique requires n >= 2, got {n}")
    b = PortGraphBuilder(n)
    if seed is None:
        for i in range(n):
            for j in range(i + 1, n):
                pi = (j - i - 1) % n
                pj = (i - j - 1) % n
                # circulant offsets are in 1..n-1; shift to ports 0..n-2
                b.add_edge(i, pi, j, pj)
    else:
        rng = make_rng(seed)
        perms = [rng.sample(range(n - 1), n - 1) for _ in range(n)]
        counters = [0] * n
        for i in range(n):
            for j in range(i + 1, n):
                pi = perms[i][counters[i]]
                pj = perms[j][counters[j]]
                counters[i] += 1
                counters[j] += 1
                b.add_edge(i, pi, j, pj)
    return b.build()


def star(k: int) -> PortGraph:
    """The k-star S_k of the paper's Proposition 4.1: ``k + 1`` nodes, the
    central node 0 adjacent to ``k`` leaves through ports ``0..k-1``.
    Requires ``k >= 1``."""
    if k < 1:
        raise GraphStructureError(f"star requires k >= 1 leaves, got {k}")
    b = PortGraphBuilder(k + 1)
    for leaf in range(1, k + 1):
        b.add_edge(0, leaf - 1, leaf, 0)
    return b.build()


def complete_bipartite(a: int, b_: int) -> PortGraph:
    """K_{a,b} with row-major canonical ports. Left nodes are 0..a-1."""
    if a < 1 or b_ < 1:
        raise GraphStructureError("complete_bipartite requires a, b >= 1")
    b = PortGraphBuilder(a + b_)
    for i in range(a):
        for j in range(b_):
            b.add_edge(i, j, a + j, i)
    return b.build()


def hypercube(dim: int) -> PortGraph:
    """d-dimensional hypercube; port i at each node flips bit i.
    Vertex-transitive with this numbering, hence infeasible."""
    if dim < 1:
        raise GraphStructureError(f"hypercube requires dim >= 1, got {dim}")
    n = 1 << dim
    b = PortGraphBuilder(n)
    for u in range(n):
        for i in range(dim):
            v = u ^ (1 << i)
            if u < v:
                b.add_edge(u, i, v, i)
    return b.build()


def grid_torus(rows: int, cols: int) -> PortGraph:
    """rows x cols torus; ports 0=east, 1=west, 2=south, 3=north.
    Vertex-transitive with this numbering, hence infeasible.
    Requires rows, cols >= 3 (so the graph is simple)."""
    if rows < 3 or cols < 3:
        raise GraphStructureError("grid_torus requires rows, cols >= 3")
    b = PortGraphBuilder(rows * cols)

    def node(r: int, c: int) -> int:
        return (r % rows) * cols + (c % cols)

    for r in range(rows):
        for c in range(cols):
            b.add_edge(node(r, c), 0, node(r, c + 1), 1)
            b.add_edge(node(r, c), 2, node(r + 1, c), 3)
    return b.build()


def lollipop(clique_size: int, tail_len: int) -> PortGraph:
    """A clique with a path ("tail") attached — a classical feasible,
    asymmetric topology.  Node 0 is the clique node carrying the tail.
    Requires ``clique_size >= 3`` and ``tail_len >= 1``."""
    if clique_size < 3 or tail_len < 1:
        raise GraphStructureError(
            "lollipop requires clique_size >= 3 and tail_len >= 1"
        )
    b = PortGraphBuilder(clique_size + tail_len)
    for i in range(clique_size):
        for j in range(i + 1, clique_size):
            b.add_edge_auto(i, j)
    prev = 0
    for t in range(tail_len):
        cur = clique_size + t
        b.add_edge_auto(prev, cur)
        prev = cur
    return b.build()


def cycle_with_leader_gadget(n: int, pendant_at: int = 0) -> PortGraph:
    """A ring of ``n >= 3`` nodes with one pendant node attached — the
    smallest natural feasible family (the pendant's neighbor is the unique
    degree-3 node).  Election index is small; exact value depends on n and
    is computed, not assumed, by the tests."""
    if n < 3:
        raise GraphStructureError(f"needs ring size n >= 3, got {n}")
    if not (0 <= pendant_at < n):
        raise GraphStructureError("pendant_at must index a ring node")
    b = PortGraphBuilder(n + 1)
    for i in range(n):
        b.add_edge(i, 0, (i + 1) % n, 1)
    b.add_edge(pendant_at, 2, n, 0)
    return b.build()


def random_regular(n: int, d: int, seed: RngLike = 0, max_tries: int = 200) -> PortGraph:
    """Random d-regular simple connected graph via the pairing model, with
    ports assigned by the smallest-free-port rule in pairing order.

    Retries until a simple connected pairing is found (up to ``max_tries``).
    """
    if n * d % 2 != 0:
        raise GraphStructureError("n * d must be even for a d-regular graph")
    if d >= n:
        raise GraphStructureError("degree must be < n")
    if d < 1:
        raise GraphStructureError("degree must be >= 1")
    rng = make_rng(seed)
    for _ in range(max_tries):
        stubs = [u for u in range(n) for _ in range(d)]
        rng.shuffle(stubs)
        b = PortGraphBuilder(n)
        ok = True
        for i in range(0, len(stubs), 2):
            u, v = stubs[i], stubs[i + 1]
            if u == v or b.has_edge(u, v):
                ok = False
                break
            b.add_edge_auto(u, v)
        if not ok:
            continue
        try:
            return b.build()
        except GraphStructureError:
            continue  # disconnected pairing; retry
    raise GraphStructureError(
        f"failed to sample a connected simple {d}-regular graph on {n} nodes "
        f"in {max_tries} tries"
    )


def random_connected_graph(
    n: int, extra_edges: int = 0, seed: RngLike = 0
) -> PortGraph:
    """Random connected graph: a random spanning tree (random attachment)
    plus ``extra_edges`` random chords; ports by smallest-free-port in
    creation order.  With high probability feasible for n >= 4 thanks to
    the irregular degree profile (the tests *verify* feasibility rather than
    assuming it)."""
    if n < 2:
        raise GraphStructureError(f"random_connected_graph requires n >= 2")
    rng = make_rng(seed)
    b = PortGraphBuilder(n)
    for v in range(1, n):
        u = rng.randrange(v)
        b.add_edge_auto(u, v)
    added = 0
    tries = 0
    max_possible = n * (n - 1) // 2 - (n - 1)
    extra_edges = min(extra_edges, max_possible)
    while added < extra_edges and tries < 50 * (extra_edges + 1):
        tries += 1
        u = rng.randrange(n)
        v = rng.randrange(n)
        if u == v or b.has_edge(u, v):
            continue
        b.add_edge_auto(u, v)
        added += 1
    return b.build()


def random_tree(n: int, seed: RngLike = 0) -> PortGraph:
    """Uniform-attachment random tree on ``n >= 2`` nodes: node v attaches
    to a uniformly random earlier node, ports by smallest-free-port in
    creation order.  Usually feasible for n >= 4 (irregular degrees plus
    asymmetric port assignment); consumers that need certainty verify with
    :func:`~repro.views.election_index.is_feasible`."""
    if n < 2:
        raise GraphStructureError(f"random_tree requires n >= 2, got {n}")
    rng = make_rng(seed)
    b = PortGraphBuilder(n)
    for v in range(1, n):
        b.add_edge_auto(rng.randrange(v), v)
    return b.build()


def lift(base: PortGraph, multiplicity: int, seed: RngLike = 0,
         max_tries: int = 200) -> PortGraph:
    """A connected ``multiplicity``-fold covering lift of ``base``.

    Node ``(v, i)`` of the lift is ``v * multiplicity + i``.  Every base
    edge ``{u, v}`` with ports ``p`` at ``u`` and ``q`` at ``v`` becomes a
    perfect matching between the copies of ``u`` and the copies of ``v``
    (copy ``(u, i)`` joins ``(v, pi(i))`` for a seeded random permutation
    ``pi`` per edge), carrying the same two port numbers.  The projection
    ``(v, i) -> v`` is then a port-preserving covering map, so every
    lifted node has exactly the view of its base image: for
    ``multiplicity >= 2`` the lift is *infeasible*, its view quotient is
    the stabilized partition of the base, and its refinement stabilizes at
    the depth where the base's refinement stabilizes (= phi(base) for a
    feasible base).

    Permutations are resampled until the lift is connected, so the base
    must contain a cycle: every lift of a tree is a disjoint forest of
    copies, and is rejected here after ``max_tries`` attempts.
    """
    if multiplicity < 1:
        raise GraphStructureError(
            f"lift requires multiplicity >= 1, got {multiplicity}"
        )
    rng = make_rng(seed)
    edges = list(base.edges())
    for _ in range(max_tries):
        b = PortGraphBuilder(base.n * multiplicity)
        for u, p, v, q in edges:
            perm = rng.sample(range(multiplicity), multiplicity)
            for i, j in enumerate(perm):
                b.add_edge(u * multiplicity + i, p, v * multiplicity + j, q)
        try:
            return b.build()
        except GraphStructureError:
            continue  # disconnected lift (cycle voltages not transitive)
    raise GraphStructureError(
        f"failed to sample a connected {multiplicity}-lift in {max_tries} "
        f"tries; does the base graph contain a cycle?"
    )


def wheel(spokes: int) -> PortGraph:
    """Wheel W_n: a hub joined to every node of an n-cycle.

    The hub is node 0 (port i to rim node i; rim ports 0/1 around the
    cycle, 2 to the hub).  Always feasible: any port-preserving
    automorphism must fix the hub, and the hub's distinct ports then pin
    every rim node — so phi(W_n) is small regardless of n.
    Requires ``spokes >= 4`` (W_3 would duplicate triangle edges).
    """
    if spokes < 4:
        raise GraphStructureError(f"wheel requires >= 4 spokes, got {spokes}")
    b = PortGraphBuilder(spokes + 1)
    for i in range(spokes):
        rim = 1 + i
        nxt = 1 + (i + 1) % spokes
        b.add_edge(rim, 0, nxt, 1)
    for i in range(spokes):
        b.add_edge(0, i, 1 + i, 2)
    return b.build()


def caterpillar(spine: int, legs: Sequence[int]) -> PortGraph:
    """A caterpillar tree: a spine path with ``legs[i]`` pendant leaves at
    spine node i.  Spine nodes are 0..spine-1 (port 0 forward along the
    spine, 1 backward); leaves follow.  Feasible whenever the leg profile
    is not mirror-symmetric (the tests compute, never assume)."""
    if spine < 2:
        raise GraphStructureError(f"caterpillar requires spine >= 2, got {spine}")
    if len(legs) != spine:
        raise GraphStructureError(
            f"need one leg count per spine node ({spine}), got {len(legs)}"
        )
    b = PortGraphBuilder(spine)
    for i in range(spine - 1):
        pu = 0 if i == 0 else 1  # matches path_graph's directional scheme
        b.add_edge(i, pu, i + 1, 0)
    for i, k in enumerate(legs):
        if k < 0:
            raise GraphStructureError("leg counts must be >= 0")
        for _ in range(k):
            leaf = b.add_node()
            b.add_edge(i, b.next_free_port(i), leaf, 0)
    return b.build()


def broom(handle: int, bristles: int) -> PortGraph:
    """A broom: a path of ``handle`` nodes with ``bristles`` pendant leaves
    at its far end — the classic high-eccentricity feasible tree."""
    if handle < 2 or bristles < 1:
        raise GraphStructureError("broom requires handle >= 2, bristles >= 1")
    legs = [0] * handle
    legs[-1] = bristles
    return caterpillar(handle, legs)


def complete_binary_tree(height: int) -> PortGraph:
    """Complete binary tree of the given height (2^(h+1) - 1 nodes).

    Ports at an internal node: 0 to the left child, 1 to the right child,
    2 to the parent (0/1 only at the root); each child's port to the
    parent is its last port.  Left/right are distinguished by ports, so
    the tree is feasible for height >= 1.
    """
    if height < 1:
        raise GraphStructureError(f"height must be >= 1, got {height}")
    n = (1 << (height + 1)) - 1
    b = PortGraphBuilder(n)
    for v in range(n):
        left, right = 2 * v + 1, 2 * v + 2
        if left < n:
            child_parent_port = 2 if 2 * left + 1 < n else 0
            b.add_edge(v, 0, left, child_parent_port)
        if right < n:
            child_parent_port = 2 if 2 * right + 1 < n else 0
            b.add_edge(v, 1, right, child_parent_port)
    return b.build()


def circulant(n: int, offsets: Sequence[int]) -> PortGraph:
    """Circulant graph C_n(offsets) with the canonical rotation-invariant
    port numbering: at every node, port 2j goes +offsets[j], port 2j+1
    goes -offsets[j].  Vertex-transitive, hence infeasible — the standard
    family for exercising the quotient machinery.  Offsets must be
    distinct, in 1..n/2, and must not include n/2 (which would fold)."""
    if n < 3:
        raise GraphStructureError(f"circulant requires n >= 3, got {n}")
    offs = list(offsets)
    if len(set(offs)) != len(offs) or not offs:
        raise GraphStructureError("offsets must be non-empty and distinct")
    for o in offs:
        if not (1 <= o < n / 2):
            raise GraphStructureError(
                f"offset {o} out of range (need 1 <= o < n/2 = {n / 2})"
            )
    b = PortGraphBuilder(n)
    for j, o in enumerate(offs):
        for v in range(n):
            b.add_edge(v, 2 * j, (v + o) % n, 2 * j + 1)
    return b.build()
