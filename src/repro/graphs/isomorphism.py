"""Port-preserving isomorphism.

Two port-numbered graphs are "the same network" for an anonymous algorithm
iff there is a bijection of nodes that preserves edges *and both port
numbers of every edge*.  This is the notion the paper uses when it speaks
of "isomorphic copies" of cliques/locks (e.g. the construction of H_k
attaches *isomorphic* copies, meaning all port numbers are preserved).

We reduce to directed-graph isomorphism with edge labels and delegate the
search to networkx's VF2, which is exact.
"""

from __future__ import annotations

from typing import Dict, Optional

import networkx as nx
from networkx.algorithms import isomorphism as nxiso

from repro.errors import GraphError
from repro.graphs.port_graph import PortGraph


def _as_labeled_digraph(g: PortGraph) -> "nx.DiGraph":
    dg = nx.DiGraph()
    for u in g.nodes():
        dg.add_node(u, degree=g.degree(u))
    for u in g.nodes():
        for p, (v, q) in enumerate(g.ports(u)):
            dg.add_edge(u, v, port=p)
    return dg


def port_isomorphism(g1: PortGraph, g2: PortGraph) -> Optional[Dict[int, int]]:
    """Return a port-preserving isomorphism ``g1 -> g2`` as a dict, or
    ``None`` if none exists.

    Decided through the canonical certificates of
    :mod:`repro.graphs.canonical`: unequal certificates mean no
    isomorphism exists (the cheap pre-filter — no VF2 search is ever
    started), and equal certificates *construct* one — both canonical
    relabelings map onto the same canonical graph, so composing one with
    the other's inverse is a witness.  Parity with the VF2 search is
    locked in on every connected <= 5-node graph by
    ``tests/test_graphs_canonical.py``.
    """
    if g1.n != g2.n or g1.num_edges != g2.num_edges:
        return None
    if g1.degree_sequence() != g2.degree_sequence():
        return None
    from repro.graphs.canonical import canonical_form

    cf1, cf2 = canonical_form(g1), canonical_form(g2)
    if cf1.certificate != cf2.certificate:
        return None
    from_canonical_2 = {lab: v for v, lab in enumerate(cf2.to_canonical)}
    return {u: from_canonical_2[lab] for u, lab in enumerate(cf1.to_canonical)}


def _port_isomorphism_vf2(
    g1: PortGraph, g2: PortGraph
) -> Optional[Dict[int, int]]:
    """The original VF2 reduction — kept as the executable specification
    the certificate path is differentially tested against (tests only)."""
    if g1.n != g2.n or g1.num_edges != g2.num_edges:
        return None
    d1, d2 = _as_labeled_digraph(g1), _as_labeled_digraph(g2)
    matcher = nxiso.DiGraphMatcher(
        d1,
        d2,
        node_match=lambda a, b: a["degree"] == b["degree"],
        edge_match=lambda a, b: a["port"] == b["port"],
    )
    if matcher.is_isomorphic():
        return dict(matcher.mapping)
    return None


def are_port_isomorphic(g1: PortGraph, g2: PortGraph) -> bool:
    """Whether a port-preserving isomorphism ``g1 -> g2`` exists."""
    return port_isomorphism(g1, g2) is not None


def port_automorphism_maps(g: PortGraph, a: int, b: int) -> bool:
    """Whether some port-preserving automorphism of ``g`` maps ``a`` to ``b``.

    This is the orbit-equivalence an anonymous algorithm cannot see past:
    two nodes in the same orbit are interchangeable outcomes of any
    deterministic anonymous election.  The search is anchored by marking
    ``a`` in one copy and ``b`` in the other, so VF2 only explores
    mappings that already send ``a`` to ``b`` — cheap even on
    vertex-transitive graphs whose full automorphism group is large.
    """
    if not (0 <= a < g.n and 0 <= b < g.n):
        raise GraphError(f"nodes {a}, {b} must be in 0..{g.n - 1}")
    if a == b:
        return True
    if g.degree(a) != g.degree(b):
        return False
    d1, d2 = _as_labeled_digraph(g), _as_labeled_digraph(g)
    d1.nodes[a]["mark"] = 1
    d2.nodes[b]["mark"] = 1
    matcher = nxiso.DiGraphMatcher(
        d1,
        d2,
        node_match=lambda x, y: (
            x["degree"] == y["degree"] and x.get("mark", 0) == y.get("mark", 0)
        ),
        edge_match=lambda x, y: x["port"] == y["port"],
    )
    return matcher.is_isomorphic()


def port_automorphism_exists(g: PortGraph) -> bool:
    """Whether ``g`` has a *non-trivial* port-preserving automorphism.

    A feasible graph (all views distinct) never has one; the converse is
    false in general, but for the paper's constructions this is a cheap
    necessary-condition sanity check used by the tests.
    """
    dg = _as_labeled_digraph(g)
    matcher = nxiso.DiGraphMatcher(
        dg,
        dg,
        node_match=lambda a, b: a["degree"] == b["degree"],
        edge_match=lambda a, b: a["port"] == b["port"],
    )
    for mapping in matcher.isomorphisms_iter():
        if any(mapping[u] != u for u in mapping):
            return True
    return False
