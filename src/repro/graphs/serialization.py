"""Serialization of port graphs and the networkx bridge.

The canonical interchange form is a plain dict::

    {"n": 4, "edges": [[0, 0, 1, 1], [1, 0, 2, 1], ...]}

where each edge entry is ``[u, port_u, v, port_v]`` with ``u < v``.  This
round-trips exactly (including port numbers) and is JSON-stable because the
edge list is emitted in sorted order.
"""

from __future__ import annotations

import json
from typing import Any, Dict, Optional

import networkx as nx

from repro.errors import CodingError
from repro.graphs.port_graph import PortGraph, PortGraphBuilder
from repro.util.rng import RngLike, make_rng


def to_dict(g: PortGraph) -> Dict[str, Any]:
    """Canonical dict form of a port graph."""
    return {
        "n": g.n,
        "edges": sorted([u, p, v, q] for (u, p, v, q) in g.edges()),
    }


def from_dict(data: Dict[str, Any], require_connected: bool = True) -> PortGraph:
    """Rebuild a port graph from its canonical dict form."""
    try:
        n = int(data["n"])
        edges = data["edges"]
    except (KeyError, TypeError, ValueError) as exc:
        raise CodingError(f"malformed port-graph dict: {exc}") from exc
    b = PortGraphBuilder(n)
    for entry in edges:
        if len(entry) != 4:
            raise CodingError(f"edge entry must have 4 fields, got {entry!r}")
        u, p, v, q = (int(x) for x in entry)
        b.add_edge(u, p, v, q)
    return b.build(require_connected=require_connected)


def is_graph_envelope(data: Any) -> bool:
    """Whether ``data`` is the ``{"name": ..., "graph": {...}}`` envelope
    shape of a ``repro corpus emit`` line (rather than a bare graph
    dict).  The single authority for envelope detection — the CLI's spec
    loaders and the service's request parser all defer to it."""
    return isinstance(data, dict) and isinstance(data.get("graph"), dict)


def from_payload(data: Any, require_connected: bool = True) -> PortGraph:
    """A graph from either accepted payload shape: the canonical dict of
    :func:`to_dict`, or a corpus-emit envelope carrying it under
    ``"graph"``.  Raises :class:`CodingError` on anything else."""
    if is_graph_envelope(data):
        data = data["graph"]
    if not isinstance(data, dict) or "edges" not in data:
        raise CodingError(
            'expected the canonical graph dict {"n": ..., "edges": '
            '[[u, p, v, q], ...]} or a corpus-emit envelope carrying it '
            'under "graph"'
        )
    return from_dict(data, require_connected=require_connected)


def to_json(g: PortGraph) -> str:
    """JSON text of the canonical dict form (stable ordering)."""
    return json.dumps(to_dict(g), sort_keys=True, separators=(",", ":"))


def from_json(text: str, require_connected: bool = True) -> PortGraph:
    """Inverse of :func:`to_json`."""
    try:
        data = json.loads(text)
    except json.JSONDecodeError as exc:
        raise CodingError(f"invalid JSON for port graph: {exc}") from exc
    return from_dict(data, require_connected=require_connected)


def to_networkx(g: PortGraph) -> "nx.Graph":
    """Undirected networkx graph; edge attribute ``ports`` maps each endpoint
    node id to its port number for that edge."""
    nxg = nx.Graph()
    nxg.add_nodes_from(g.nodes())
    for (u, p, v, q) in g.edges():
        nxg.add_edge(u, v, ports={u: p, v: q})
    return nxg


def from_networkx(
    nxg: "nx.Graph",
    seed: RngLike = None,
    require_connected: bool = True,
) -> PortGraph:
    """Turn an (unlabelled) networkx graph into a port graph.

    If edges carry a ``ports`` attribute (as produced by
    :func:`to_networkx`), those ports are used verbatim.  Otherwise ports
    are assigned: deterministically by sorted-neighbor order when ``seed``
    is None, or by a seeded random legal assignment.

    Node labels must be hashable; they are relabelled to ``0..n-1`` in
    sorted order (falling back to insertion order if unsortable).
    """
    nodes = list(nxg.nodes())
    try:
        nodes.sort()
    except TypeError:
        pass
    index = {v: i for i, v in enumerate(nodes)}
    b = PortGraphBuilder(len(nodes))

    has_ports = all("ports" in d for _, _, d in nxg.edges(data=True)) and nxg.number_of_edges() > 0
    if has_ports:
        for u, v, d in nxg.edges(data=True):
            ports = d["ports"]
            b.add_edge(index[u], ports[u], index[v], ports[v])
        return b.build(require_connected=require_connected)

    if seed is None:
        for u in nodes:
            for v in sorted(nxg.neighbors(u), key=lambda w: index[w]):
                if index[u] < index[v] and not b.has_edge(index[u], index[v]):
                    b.add_edge_auto(index[u], index[v])
        # second pass not needed: auto assignment handles both endpoints
        return b.build(require_connected=require_connected)

    rng = make_rng(seed)
    # random legal assignment: per node, a shuffled list of its ports,
    # consumed in a global random edge order.
    edge_list = list(nxg.edges())
    rng.shuffle(edge_list)
    free: Dict[int, list] = {}
    for v in nodes:
        ports = list(range(nxg.degree(v)))
        rng.shuffle(ports)
        free[index[v]] = ports
    for u, v in edge_list:
        pu = free[index[u]].pop()
        pv = free[index[v]].pop()
        b.add_edge(index[u], pu, index[v], pv)
    return b.build(require_connected=require_connected)
