"""Command-line interface: ``python -m repro <command>``.

Commands
--------
``index SPEC``
    Feasibility and election index of a network.
``elect SPEC``
    Run the full Theorem 3.1 pipeline (oracle -> simulate -> verify).
``spectrum SPEC``
    The advice-vs-time table across all milestones.
``quotient SPEC``
    The view quotient (what symmetry remains).
``report [--out FILE]``
    Regenerate the small-scale experiment report (markdown).

Graph SPECs
-----------
``name`` or ``name:a,b,key=val`` selects a generator with positional /
keyword integer arguments, e.g.::

    ring:8   necklace:5,3   lollipop:4,3   hk:6   random:20,extra_edges=10
    wheel:6  caterpillar is not spec-able (needs a list) — use @file.json

``@path.json`` loads a serialized port graph (see repro.graphs.to_json).
"""

from __future__ import annotations

import argparse
import sys
from typing import Callable, Dict, List, Optional

from repro.errors import ReproError
from repro.graphs import (
    PortGraph,
    clique,
    complete_binary_tree,
    cycle_with_leader_gadget,
    from_json,
    grid_torus,
    hypercube,
    lollipop,
    path_graph,
    random_connected_graph,
    random_regular,
    ring,
    star,
    wheel,
)
from repro.lowerbounds import hk_graph, necklace

GENERATORS: Dict[str, Callable[..., PortGraph]] = {
    "ring": ring,
    "path": path_graph,
    "clique": clique,
    "star": star,
    "wheel": wheel,
    "hypercube": hypercube,
    "torus": grid_torus,
    "lollipop": lollipop,
    "binary-tree": complete_binary_tree,
    "gadget-ring": cycle_with_leader_gadget,
    "random": random_connected_graph,
    "random-regular": random_regular,
    "hk": hk_graph,
    "necklace": necklace,
}


def parse_graph_spec(spec: str) -> PortGraph:
    """Parse a graph SPEC (see module docstring) into a PortGraph."""
    if spec.startswith("@"):
        with open(spec[1:], "r", encoding="utf-8") as fh:
            return from_json(fh.read())
    name, _, argtext = spec.partition(":")
    if name not in GENERATORS:
        raise ReproError(
            f"unknown generator '{name}'; available: {', '.join(sorted(GENERATORS))}"
        )
    args: List[int] = []
    kwargs: Dict[str, int] = {}
    if argtext:
        for token in argtext.split(","):
            token = token.strip()
            if not token:
                continue
            if "=" in token:
                key, _, value = token.partition("=")
                kwargs[key.strip()] = int(value)
            else:
                args.append(int(token))
    return GENERATORS[name](*args, **kwargs)


# ----------------------------------------------------------------------
def _cmd_index(args: argparse.Namespace) -> int:
    from repro.views import election_index, is_feasible

    g = parse_graph_spec(args.spec)
    print(f"n = {g.n}, m = {g.num_edges}, diameter = {g.diameter()}")
    if is_feasible(g):
        print(f"feasible; election index phi = {election_index(g)}")
        return 0
    print("INFEASIBLE: some nodes share all views; no deterministic "
          "algorithm can elect, with any advice")
    return 1


def _cmd_elect(args: argparse.Namespace) -> int:
    from repro.core import run_elect

    g = parse_graph_spec(args.spec)
    rec = run_elect(g)
    print(f"n = {rec.n}, phi = {rec.phi}")
    print(f"advice: {rec.advice_bits} bits")
    print(f"elected node {rec.leader} in {rec.election_time} rounds "
          f"({rec.total_messages} messages)")
    return 0


def _cmd_spectrum(args: argparse.Namespace) -> int:
    from repro.analysis import format_table
    from repro.core import run_elect, run_election_milestone, run_known_d_phi

    g = parse_graph_spec(args.spec)
    rows = []
    e = run_elect(g)
    rows.append(("phi (minimum)", e.election_time, e.advice_bits))
    kd = run_known_d_phi(g)
    rows.append(("D+phi", kd.election_time, kd.advice_bits))
    for m, label in ((1, "D+phi+c"), (2, "D+c*phi"), (3, "D+phi^c"), (4, "D+c^phi")):
        rec = run_election_milestone(g, m, c=args.c)
        rows.append((label, rec.election_time, rec.advice_bits))
    print(f"n = {g.n}, phi = {e.phi}, D = {g.diameter()}, c = {args.c}")
    print(format_table(["time regime", "rounds", "advice bits"], rows))
    return 0


def _cmd_quotient(args: argparse.Namespace) -> int:
    from repro.views.quotient import view_quotient

    g = parse_graph_spec(args.spec)
    q = view_quotient(g)
    print(f"n = {g.n}; {q.num_classes} view classes "
          f"(stabilized at depth {q.stabilization_depth})")
    if q.is_discrete:
        print("discrete: the graph is feasible")
    else:
        for i, members in enumerate(q.classes):
            if len(members) > 1:
                print(f"  class {i}: {len(members)} indistinguishable nodes "
                      f"{members[:8]}{'...' if len(members) > 8 else ''}")
    return 0


def _cmd_report(args: argparse.Namespace) -> int:
    from repro.analysis.report import generate_report

    text = generate_report()
    if args.out:
        with open(args.out, "w", encoding="utf-8") as fh:
            fh.write(text)
        print(f"report written to {args.out}")
    else:
        print(text)
    return 0


# ----------------------------------------------------------------------
def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Leader election with advice in anonymous networks "
        "(Dieudonné & Pelc, SPAA 2017 reproduction)",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p = sub.add_parser("index", help="feasibility and election index")
    p.add_argument("spec", help="graph spec, e.g. necklace:5,3 or @graph.json")
    p.set_defaults(func=_cmd_index)

    p = sub.add_parser("elect", help="run the minimum-time election pipeline")
    p.add_argument("spec")
    p.set_defaults(func=_cmd_elect)

    p = sub.add_parser("spectrum", help="advice-vs-time table")
    p.add_argument("spec")
    p.add_argument("--c", type=int, default=2, help="the constant c > 1")
    p.set_defaults(func=_cmd_spectrum)

    p = sub.add_parser("quotient", help="view quotient / symmetry diagnosis")
    p.add_argument("spec")
    p.set_defaults(func=_cmd_quotient)

    p = sub.add_parser("report", help="regenerate the experiment report")
    p.add_argument("--out", default=None, help="write markdown to this file")
    p.set_defaults(func=_cmd_report)

    return parser


def main(argv: Optional[List[str]] = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    try:
        return args.func(args)
    except ReproError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
